"""The chaos-serving scenario behind ``repro bench run serve``.

:func:`run_serve_scenario` is the one shared driver: it wires a
:class:`~repro.serve.server.CoalescingServer` (logical clock, admission
control, seeded :meth:`FaultPlan.chaos <repro.serve.faults.FaultPlan.
chaos>`) to the closed-loop hotspot load generator, runs a fixed request
sequence, and returns the metrics report plus every response.  Both the
``serve`` registry experiment (gated by ``repro bench compare``) and the
``benchmarks/test_serve_bench.py`` recorder call it, so the gated
counters and the archived ``BENCH_serve.json`` always describe the same
scenario.

Determinism contract (what makes the counters gateable):

* the logical clock advances **only** in the load generator, ``pace``
  seconds before each submission, and admission is decided synchronously
  at submit time → ``offered``/``admitted``/``shed`` depend only on the
  request sequence;
* batch executions are single-flighted, so the seeded fault burst is
  absorbed by one victim batch's retry loop → ``retries`` equals the
  burst length and ``breaker_opens`` equals 1;
* deadlines are generous on the logical clock (nothing expires) and the
  request mix contains no deletes/compactions → every admitted request
  completes → ``completed == admitted`` and ``errors == 0``;
* ``faults_injected`` is the plan's total fired count — a pure function
  of the seed and the (ample) number of executions.

Wall-clock quantities (p50/p99 latency, QPS) ride along in the report
but are classified as timing metrics and never gated.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.serve.faults import FaultPlan
from repro.serve.loadgen import generate_requests, run_closed_loop
from repro.serve.resilience import LogicalClock
from repro.serve.server import CoalescingServer, Request, Response, ServeConfig

#: oid for the sentinel insert that precedes the generated stream (keeps
#: the overlay non-empty, so degraded answers are visibly stale-stamped).
SENTINEL_OID = 10**6 - 1


def scenario_config(
    *,
    admission_rate: float = 80.0,
    admission_burst: int = 24,
    breaker_threshold: int = 3,
    workers: int = 1,
) -> ServeConfig:
    """The :class:`ServeConfig` the scenario runs under.

    Retry backoff is real (tiny) sleeps; the deadline, admission bucket,
    and breaker cooldown all run on the scenario's logical clock.
    """
    return ServeConfig(
        batch_window=0.001,
        degraded_batch_window=0.0002,
        max_batch=32,
        default_deadline=60.0,  # logical seconds — generous, never expires
        admission_rate=admission_rate,
        admission_burst=admission_burst,
        retry_max_attempts=breaker_threshold + 2,
        retry_base_delay=0.001,
        retry_max_delay=0.01,
        breaker_failure_threshold=breaker_threshold,
        breaker_cooldown=0.5,  # logical seconds; recovers mid-run
        workers=workers,
    )


def scenario_requests(
    n: int,
    *,
    seed: int,
    dims: int,
    extent: float = 100.0,
    knn_fraction: float = 0.2,
    write_fraction: float = 0.05,
) -> List[Request]:
    """The sentinel insert plus ``n`` generated hotspot-skewed requests."""
    side = [1.0] * dims
    sentinel = Request.insert(
        SpatialObject(SENTINEL_OID, Rect([0.0] * dims, side))
    )
    return [sentinel] + generate_requests(
        n,
        seed=seed,
        dims=dims,
        extent=extent,
        knn_fraction=knn_fraction,
        write_fraction=write_fraction,
    )


def run_serve_scenario(
    source,
    *,
    n_requests: int = 400,
    seed: int = 11,
    concurrency: int = 32,
    pace: float = 0.01,
    admission_rate: float = 80.0,
    admission_burst: int = 24,
    breaker_threshold: int = 3,
    workers: int = 1,
    latency_delay: float = 0.005,
    extent: float = 100.0,
    force_degraded_probe: bool = False,
) -> Tuple[Dict[str, Any], List[Response]]:
    """Run the chaos-serving scenario; return ``(report, responses)``.

    ``source`` is a :class:`~repro.engine.delta.SnapshotManager` or
    anything one can wrap.  ``force_degraded_probe`` appends one range
    query served with the breaker forced open — the deterministic way
    for the benchmark recorder to pin a nonzero ``stale_served`` floor
    without relying on where the fault burst lands.
    """
    clock = LogicalClock()
    plan = FaultPlan.chaos(
        seed, breaker_threshold=breaker_threshold, latency_delay=latency_delay
    )
    config = scenario_config(
        admission_rate=admission_rate,
        admission_burst=admission_burst,
        breaker_threshold=breaker_threshold,
        workers=workers,
    )

    async def main() -> Tuple[Dict[str, Any], List[Response]]:
        server = CoalescingServer(source, config, fault_plan=plan, clock=clock)
        dims = server.manager.snapshot.dims
        requests = scenario_requests(n_requests, seed=seed, dims=dims, extent=extent)
        await server.start()
        try:
            responses = await run_closed_loop(
                server, requests, concurrency=concurrency, pace=pace, clock=clock
            )
            if force_degraded_probe:
                server.breaker.force_open()
                probe = await server.range_query(
                    Rect([0.0] * dims, [extent] * dims)
                )
                responses.append(probe)
            report = server.report()
        finally:
            await server.stop()
        return report, responses

    return asyncio.run(main())


#: the report keys ``repro bench compare`` gates (count metrics; exact).
GATED_COUNTERS = (
    "offered",
    "admitted",
    "shed",
    "completed",
    "errors",
    "retries",
    "breaker_opens",
    "faults_injected",
)

#: wall-clock report keys that ride along but are never gated.
TIMING_KEYS = ("p50_ms", "p99_ms", "qps")


def report_row(report: Dict[str, Any], **extra) -> Dict[str, Any]:
    """One table row: gated counters + timing columns (+ ``extra``)."""
    row: Dict[str, Any] = dict(extra)
    for key in GATED_COUNTERS:
        row[key] = report.get(key, 0)
    for key in TIMING_KEYS:
        row[key] = report.get(key)
    return row
