"""Robustness primitives: deadlines, retries, admission, circuit breaking.

Everything here is *clock-injectable*: each primitive reads time through
a :class:`Clock`, so production code uses the monotonic wall clock while
tests and the deterministic load generator drive a :class:`LogicalClock`
by hand — admission and breaker decisions then depend only on the
request sequence, never on scheduler jitter, which is what lets
``repro bench compare serve`` gate on exact shed/retry counts.

* :class:`Deadline` — an absolute expiry; requests carry one from
  admission to delivery and are cancelled (never silently served late)
  once it passes.
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic seeded jitter; the jitter sequence is a pure function of
  the seed, so two runs retry at identical offsets.
* :class:`TokenBucket` — admission control: a bucket of ``burst`` tokens
  refilled at ``rate`` per second; a request that finds the bucket empty
  is *shed* with an explicit :class:`Overloaded` signal instead of
  joining an unbounded queue (load shedding beats queue collapse).
* :class:`CircuitBreaker` — trips open after ``failure_threshold``
  consecutive failures, serves degraded for ``cooldown`` seconds, then
  half-opens to probe; a probe success closes it, a probe failure
  re-opens it.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional


class Overloaded(RuntimeError):
    """Admission control shed this request: the server is over capacity."""


class DeadlineExceeded(RuntimeError):
    """The request's deadline passed before a result could be delivered."""


# ----------------------------------------------------------------------
# clocks
# ----------------------------------------------------------------------


class Clock:
    """Time source protocol: ``now()`` in seconds, monotonic."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real monotonic clock (production default)."""

    def now(self) -> float:
        return time.monotonic()


class LogicalClock(Clock):
    """A manually advanced clock for deterministic tests and load runs."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward (never backward); returns the new now."""
        if seconds < 0:
            raise ValueError("logical time cannot move backward")
        self._now += seconds
        return self._now


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------


class Deadline:
    """An absolute expiry measured on an injectable clock.

    ``seconds=None`` builds a deadline that never expires.
    """

    __slots__ = ("clock", "expires_at")

    def __init__(self, seconds: Optional[float], clock: Optional[Clock] = None):
        self.clock = clock if clock is not None else MonotonicClock()
        self.expires_at = None if seconds is None else self.clock.now() + float(seconds)

    def expired(self) -> bool:
        return self.expires_at is not None and self.clock.now() >= self.expires_at

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0), or ``None`` for no deadline."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - self.clock.now())

    def __repr__(self) -> str:
        return f"Deadline(remaining={self.remaining()})"


# ----------------------------------------------------------------------
# retries
# ----------------------------------------------------------------------


@dataclass
class RetryPolicy:
    """Exponential backoff with seeded jitter: ``base * multiplier**n``.

    ``max_attempts`` counts the first try too — a policy with
    ``max_attempts=4`` retries at most 3 times.  Each delay is capped at
    ``max_delay`` and then shrunk by up to ``jitter`` (a fraction of the
    delay) using a RNG seeded per policy instance: :meth:`delays` yields
    the identical sequence for identical seeds, making retry timing —
    and therefore every downstream counter — reproducible.
    """

    max_attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def delays(self) -> List[float]:
        """The deterministic backoff delays between consecutive attempts."""
        rng = random.Random(self.seed)
        out: List[float] = []
        for attempt in range(self.max_attempts - 1):
            delay = min(self.max_delay, self.base_delay * self.multiplier**attempt)
            out.append(delay * (1.0 - self.jitter * rng.random()))
        return out

    def run(
        self,
        fn: Callable[[], object],
        retryable: tuple,
        on_retry: Optional[Callable[[BaseException, int], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        """Call ``fn`` under this policy (synchronous helper).

        ``on_retry(error, attempt)`` is invoked before each backoff
        sleep; the last error is re-raised once attempts are exhausted.
        """
        delays = self.delays()
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retryable as exc:
                if attempt >= self.max_attempts - 1:
                    raise
                if on_retry is not None:
                    on_retry(exc, attempt + 1)
                sleep(delays[attempt])
        raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------


class TokenBucket:
    """Classic token-bucket admission: ``rate`` tokens/s, depth ``burst``.

    ``rate=None`` admits everything (the bucket is disabled).  The
    bucket refills lazily on each :meth:`try_acquire`, reading time from
    the injected clock — with a :class:`LogicalClock`, admission
    decisions are a pure function of the request/advance sequence.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: int = 1,
        clock: Optional[Clock] = None,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None for unlimited)")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = rate
        self.burst = int(burst)
        self.clock = clock if clock is not None else MonotonicClock()
        self._tokens = float(burst)
        self._last = self.clock.now()
        self.admitted = 0
        self.shed = 0

    def _refill(self) -> None:
        now = self.clock.now()
        if self.rate is not None and now > self._last:
            self._tokens = min(float(self.burst), self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; False (= shed) otherwise."""
        if self.rate is None:
            self.admitted += 1
            return True
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            self.admitted += 1
            return True
        self.shed += 1
        return False

    def acquire_or_raise(self, tokens: float = 1.0) -> None:
        """:meth:`try_acquire` that raises :class:`Overloaded` when shed."""
        if not self.try_acquire(tokens):
            raise Overloaded(
                f"token bucket empty (rate={self.rate}/s, burst={self.burst})"
            )

    @property
    def available(self) -> float:
        """Tokens currently in the bucket (after a lazy refill)."""
        if self.rate is None:
            return float("inf")
        self._refill()
        return self._tokens


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------


class CircuitBreaker:
    """Trip after consecutive failures; cool down; probe; recover.

    States: ``closed`` (normal), ``open`` (every caller should take its
    degraded path), ``half_open`` (cooldown elapsed — let traffic probe;
    one success closes, one failure re-opens).  ``opened_count`` counts
    closed/half-open → open transitions, which is the deterministic
    counter the serve benchmark gates on.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 0.25,
        clock: Optional[Clock] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.cooldown = float(cooldown)
        self.clock = clock if clock is not None else MonotonicClock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.opened_count = 0

    @property
    def state(self) -> str:
        """Current state; an elapsed cooldown surfaces as ``half_open``."""
        if (
            self._state == self.OPEN
            and self.clock.now() - self._opened_at >= self.cooldown
        ):
            self._state = self.HALF_OPEN
        return self._state

    @property
    def closed(self) -> bool:
        return self.state == self.CLOSED

    def allow(self) -> bool:
        """True when callers should take the normal (non-degraded) path."""
        return self.state != self.OPEN

    def _open(self) -> None:
        self._state = self.OPEN
        self._opened_at = self.clock.now()
        self.opened_count += 1

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state == self.HALF_OPEN:
            self._state = self.CLOSED

    def record_failure(self) -> None:
        state = self.state
        self._consecutive_failures += 1
        if state == self.HALF_OPEN:
            self._open()
        elif state == self.CLOSED and self._consecutive_failures >= self.failure_threshold:
            self._open()

    def force_open(self) -> None:
        """Trip the breaker unconditionally (tests, manual degrade)."""
        self._open()

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state}, failures="
            f"{self._consecutive_failures}/{self.failure_threshold}, "
            f"opened={self.opened_count})"
        )
