"""Deterministic fault injection for the serving stack.

Chaos testing only proves something when the chaos is *reproducible*: a
:class:`FaultPlan` is a seeded, fully deterministic schedule of faults
keyed by *site* — a short string naming one instrumented code location.
Each site keeps an invocation counter; a :class:`FaultSpec` fires on a
contiguous ordinal window ``[at, at + times)`` of that counter, so the
same plan driven by the same workload injects exactly the same faults,
and ``tests/test_chaos.py`` can assert exact recovery invariants
(retry counts, breaker transitions, rebuilt pools) instead of "it
usually survives".

Instrumented sites:

* :data:`WORKER_KILL` — consulted by
  :class:`~repro.engine.parallel.ParallelExecutor` once per shard
  submission; a firing spec replaces that shard's task with one that
  ``os._exit``\\ s the worker, breaking the process pool mid-batch;
* :data:`SNAPSHOT_LOAD` — consulted by
  :func:`repro.engine.snapshot_io.load_snapshot` through the module's
  fault hook (see :meth:`FaultPlan.install`); a firing spec raises an
  :class:`InjectedFault` in place of the load, simulating a truncated or
  unreadable snapshot file;
* :data:`COMPACTION` — consulted by
  :meth:`repro.engine.delta.SnapshotManager.compact` through its
  ``compaction_fault_hook`` *after* the compaction has started, crashing
  the background rebuild mid-fold;
* :data:`BATCH_FAULT` — consulted by the server once per batch execution
  attempt; fires a transient error into the request path (what the
  retry policy and circuit breaker exist for);
* :data:`REQUEST_LATENCY` — consulted once per dispatched batch; a
  firing spec stalls the batch by ``spec.delay`` seconds (a slow-request
  latency spike).

The plan's ``seed`` makes randomized schedules reproducible:
:meth:`FaultPlan.chaos` derives a pseudo-random — but seed-deterministic
— set of specs for load-generator runs.

Layering note: the engine modules never import this package.  They
accept any object with the small ``fires(site)`` protocol (or a plain
callable hook), so ``repro.serve`` stays strictly above
``repro.engine``.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Site names (kept in sync with the literals used at the injection
#: points — the engine cannot import them from here).
WORKER_KILL = "parallel.worker_kill"
SNAPSHOT_LOAD = "snapshot_io.load"
COMPACTION = "delta.compaction"
BATCH_FAULT = "serve.batch"
REQUEST_LATENCY = "serve.latency"

KNOWN_SITES = (WORKER_KILL, SNAPSHOT_LOAD, COMPACTION, BATCH_FAULT, REQUEST_LATENCY)


class TransientFault(RuntimeError):
    """Base class for faults a retry policy is allowed to absorb."""


class InjectedFault(TransientFault):
    """A fault raised by a firing :class:`FaultSpec` (always transient)."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire at calls ``at .. at + times - 1`` of a site."""

    site: str
    at: int = 1
    times: int = 1
    delay: float = 0.0
    message: str = "injected fault"

    def __post_init__(self):
        if self.at < 1:
            raise ValueError("FaultSpec.at is 1-based and must be >= 1")
        if self.times < 1:
            raise ValueError("FaultSpec.times must be >= 1")

    def covers(self, ordinal: int) -> bool:
        """True when the ``ordinal``-th call of the site should fault."""
        return self.at <= ordinal < self.at + self.times


class FaultPlan:
    """A deterministic, thread-safe schedule of :class:`FaultSpec` firings.

    Counters are per-site and advance on every :meth:`fires` call, so the
    N-th consultation of a site always sees the same verdict.  The plan
    only fires in the process that created it (checked by pid): a forked
    pool worker inheriting an installed plan never double-fires faults
    that the coordinator's schedule owns.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self.seed = seed
        self.specs: List[FaultSpec] = list(specs)
        self._by_site: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._calls: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._installed_previous = None
        self._installed = False

    # ------------------------------------------------------------------
    # firing protocol (what the instrumented sites call)
    # ------------------------------------------------------------------

    def fires(self, site: str) -> Optional[FaultSpec]:
        """Advance ``site``'s counter; the spec covering this call, if any."""
        if os.getpid() != self._pid:
            return None
        with self._lock:
            ordinal = self._calls.get(site, 0) + 1
            self._calls[site] = ordinal
            for spec in self._by_site.get(site, ()):
                if spec.covers(ordinal):
                    self._fired[site] = self._fired.get(site, 0) + 1
                    return spec
        return None

    def raise_if_fires(self, site: str) -> None:
        """Raise :class:`InjectedFault` when the site's next call faults."""
        spec = self.fires(site)
        if spec is not None:
            raise InjectedFault(f"{site}: {spec.message}")

    def hook(self, site: str):
        """A ``callable(*args, **kwargs)`` adapter over :meth:`raise_if_fires`.

        Engine modules expose plain callable hooks (so they need not know
        about plans); this builds one bound to ``site``.
        """

        def _hook(*_args, **_kwargs):
            self.raise_if_fires(site)

        return _hook

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def calls(self, site: str) -> int:
        """How many times ``site`` has been consulted."""
        with self._lock:
            return self._calls.get(site, 0)

    def fired(self, site: str) -> int:
        """How many faults have fired at ``site``."""
        with self._lock:
            return self._fired.get(site, 0)

    def total_fired(self) -> int:
        """Faults fired across every site."""
        with self._lock:
            return sum(self._fired.values())

    def fired_by_site(self) -> Dict[str, int]:
        """``{site: faults fired}`` snapshot."""
        with self._lock:
            return dict(self._fired)

    def reset(self) -> None:
        """Zero every counter (the schedule itself is immutable)."""
        with self._lock:
            self._calls.clear()
            self._fired.clear()

    # ------------------------------------------------------------------
    # global hook installation (snapshot_io.load_snapshot)
    # ------------------------------------------------------------------

    def install(self) -> "FaultPlan":
        """Route :func:`repro.engine.snapshot_io.load_snapshot` through this plan."""
        from repro.engine import snapshot_io

        if not self._installed:
            self._installed_previous = snapshot_io.set_load_fault_hook(
                self.hook(SNAPSHOT_LOAD)
            )
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the previous :mod:`snapshot_io` fault hook."""
        from repro.engine import snapshot_io

        if self._installed:
            snapshot_io.set_load_fault_hook(self._installed_previous)
            self._installed_previous = None
            self._installed = False

    def __enter__(self) -> "FaultPlan":
        return self.install()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # canned schedules
    # ------------------------------------------------------------------

    @classmethod
    def chaos(
        cls,
        seed: int = 0,
        *,
        breaker_threshold: int = 3,
        include_pool_faults: bool = False,
        latency_spikes: int = 1,
        latency_delay: float = 0.02,
    ) -> "FaultPlan":
        """A seed-deterministic chaos schedule for load-generator runs.

        Always includes one burst of ``breaker_threshold`` consecutive
        transient batch faults (enough to trip a breaker with that
        threshold) and ``latency_spikes`` slow-request stalls; with
        ``include_pool_faults`` it additionally kills one pool worker
        mid-batch and corrupts one snapshot load (only meaningful when
        the server runs a :class:`~repro.engine.parallel.ParallelExecutor`,
        i.e. ``workers > 1``).  All ordinals are drawn from ``seed``, so
        two plans built with the same arguments fire identically.
        """
        rng = random.Random(seed)
        specs = [
            FaultSpec(
                BATCH_FAULT,
                at=rng.randint(2, 4),
                times=breaker_threshold,
                message="transient batch failure burst",
            )
        ]
        for _ in range(latency_spikes):
            specs.append(
                FaultSpec(
                    REQUEST_LATENCY,
                    at=rng.randint(1, 3),
                    delay=latency_delay,
                    message="latency spike",
                )
            )
        if include_pool_faults:
            specs.append(
                FaultSpec(WORKER_KILL, at=rng.randint(1, 2), message="worker killed")
            )
            specs.append(
                FaultSpec(
                    SNAPSHOT_LOAD, at=rng.randint(1, 2), message="snapshot load I/O error"
                )
            )
        return cls(specs, seed=seed)

    def __repr__(self) -> str:
        sites = {spec.site for spec in self.specs}
        return (
            f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, "
            f"sites={sorted(sites)}, fired={self.total_fired()})"
        )
