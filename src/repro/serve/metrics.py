"""Per-request serving metrics: counters, latency percentiles, QPS.

The counter set mirrors the request lifecycle (offered → admitted →
completed | shed | deadline | error) plus the robustness machinery
(retries, breaker trips, stale serves, degraded batches).  Counters that
depend only on the request sequence and the seeded fault plan —
``offered``/``admitted``/``shed``/``retries``/``breaker_opens``/
``deadline_exceeded``/``faults_injected`` — are deterministic and gate
in ``repro bench compare serve``; latency-derived numbers (p50/p99,
QPS) are timing metrics and are reported but never gated.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


def percentile(values: List[float], q: float) -> Optional[float]:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Returns ``None`` for an empty sample (no latencies recorded yet).
    """
    if not values:
        return None
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class ServerMetrics:
    """Thread-safe counters + latency sample for one server instance."""

    COUNTERS = (
        "offered",
        "admitted",
        "shed",
        "completed",
        "deadline_exceeded",
        "errors",
        "retries",
        "breaker_opens",
        "stale_served",
        "degraded_batches",
        "batches",
        "coalesced",
        "compactions",
        "compaction_failures",
        "snapshot_swaps",
        "pool_rebuilds",
        "serial_fallbacks",
        "faults_injected",
    )

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {name: 0 for name in self.COUNTERS}
        self._latencies: List[float] = []
        self._elapsed: float = 0.0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            if name not in self._counters:
                raise KeyError(f"unknown counter {name!r}")
            self._counters[name] += amount

    def __getattr__(self, name: str) -> int:
        # Counter reads look like plain attributes: metrics.shed etc.
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            with self.__dict__["_lock"]:
                return counters[name]
        raise AttributeError(name)

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._latencies.append(float(seconds))

    def set_elapsed(self, seconds: float) -> None:
        """Record the wall-clock span of the measured run (for QPS)."""
        with self._lock:
            self._elapsed = float(seconds)

    # ------------------------------------------------------------------
    # derived
    # ------------------------------------------------------------------

    def latency_count(self) -> int:
        with self._lock:
            return len(self._latencies)

    def p50_ms(self) -> Optional[float]:
        with self._lock:
            p = percentile(self._latencies, 50.0)
        return None if p is None else p * 1000.0

    def p99_ms(self) -> Optional[float]:
        with self._lock:
            p = percentile(self._latencies, 99.0)
        return None if p is None else p * 1000.0

    def qps(self) -> Optional[float]:
        """Completed requests per wall-clock second of the measured run."""
        with self._lock:
            if self._elapsed <= 0.0:
                return None
            return self._counters["completed"] / self._elapsed

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view: every counter plus the derived numbers."""
        with self._lock:
            out: Dict[str, object] = dict(self._counters)
            latencies = list(self._latencies)
            elapsed = self._elapsed
        p50 = percentile(latencies, 50.0)
        p99 = percentile(latencies, 99.0)
        out["p50_ms"] = None if p50 is None else p50 * 1000.0
        out["p99_ms"] = None if p99 is None else p99 * 1000.0
        out["qps"] = (
            None if elapsed <= 0.0 else out["completed"] / elapsed  # type: ignore[operator]
        )
        out["elapsed_seconds"] = elapsed
        return out

    def __repr__(self) -> str:
        snap = self.snapshot()
        keys = ("offered", "admitted", "completed", "shed", "retries", "breaker_opens")
        inner = ", ".join(f"{k}={snap[k]}" for k in keys)
        return f"ServerMetrics({inner})"
