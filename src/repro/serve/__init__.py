"""Fault-tolerant online serving layer (ROADMAP item 1).

The package has four parts, composable but separately testable:

* :mod:`repro.serve.resilience` — the robustness kernel: injectable
  clocks, deadlines, retry-with-backoff-and-jitter, token-bucket
  admission control, and a circuit breaker;
* :mod:`repro.serve.faults` — deterministic seeded fault injection
  (:class:`FaultPlan`) threading through the worker pool, snapshot
  loads, compaction, and the serving loop itself;
* :mod:`repro.serve.server` — :class:`CoalescingServer`, the asyncio
  micro-batching loop over a live :class:`~repro.engine.delta.
  SnapshotManager`, wrapped in the kernel (shed → explicit
  ``Overloaded``-style responses, breaker-open → serve-stale degraded
  mode, self-healing parallel execution);
* :mod:`repro.serve.loadgen` / :mod:`repro.serve.bench` — the
  closed-loop hotspot load generator and the chaos scenario behind the
  ``serve`` experiment and ``BENCH_serve.json``.
"""

from repro.serve.faults import (
    BATCH_FAULT,
    COMPACTION,
    KNOWN_SITES,
    REQUEST_LATENCY,
    SNAPSHOT_LOAD,
    WORKER_KILL,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TransientFault,
)
from repro.serve.loadgen import generate_requests, run_closed_loop
from repro.serve.metrics import ServerMetrics, percentile
from repro.serve.resilience import (
    CircuitBreaker,
    Clock,
    Deadline,
    DeadlineExceeded,
    LogicalClock,
    MonotonicClock,
    Overloaded,
    RetryPolicy,
    TokenBucket,
)
from repro.serve.server import CoalescingServer, Request, Response, ServeConfig
from repro.serve.bench import run_serve_scenario

__all__ = [
    "BATCH_FAULT",
    "COMPACTION",
    "KNOWN_SITES",
    "REQUEST_LATENCY",
    "SNAPSHOT_LOAD",
    "WORKER_KILL",
    "CircuitBreaker",
    "Clock",
    "CoalescingServer",
    "Deadline",
    "DeadlineExceeded",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "LogicalClock",
    "MonotonicClock",
    "Overloaded",
    "Request",
    "Response",
    "RetryPolicy",
    "ServeConfig",
    "ServerMetrics",
    "TokenBucket",
    "TransientFault",
    "generate_requests",
    "percentile",
    "run_closed_loop",
    "run_serve_scenario",
]
