"""Closed-loop load generator with hotspot skew for the serving layer.

Produces a deterministic request sequence (seeded RNG, hotspot-skewed
query centres, a small write mix) and drives a
:class:`~repro.serve.server.CoalescingServer` in a closed loop: at most
``concurrency`` requests in flight, new submissions issued in sequence
order the moment a slot frees up.  When the server runs on a
:class:`~repro.serve.resilience.LogicalClock`, the generator is the only
thing advancing it (``pace`` seconds per submission), which pins the
token-bucket refill sequence — and therefore the shed count — to the
request sequence alone.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import List, Optional, Sequence

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.serve.server import Request, Response


def generate_requests(
    n: int,
    *,
    seed: int = 0,
    dims: int = 2,
    extent: float = 100.0,
    hotspot_share: float = 0.9,
    hotspot_extent: float = 8.0,
    knn_fraction: float = 0.2,
    write_fraction: float = 0.05,
    k: int = 5,
    query_side: float = 2.0,
    deadline_s: Optional[float] = None,
    oid_base: int = 10**6,
) -> List[Request]:
    """A deterministic skewed request mix.

    ``hotspot_share`` of query centres land in the ``[0, hotspot_extent]``
    corner of the ``[0, extent]`` space (the classic skew that makes
    coalescing pay off); the rest are uniform.  ``write_fraction`` of
    requests are inserts of fresh objects (oids from ``oid_base`` up, so
    they never collide with a dataset built by ``make_random_objects``),
    ``knn_fraction`` are kNN probes, and the remainder are range queries.
    """
    rng = random.Random(seed)

    def center() -> List[float]:
        if rng.random() < hotspot_share:
            return [rng.uniform(0.0, hotspot_extent) for _ in range(dims)]
        return [rng.uniform(0.0, extent) for _ in range(dims)]

    requests: List[Request] = []
    for i in range(n):
        u = rng.random()
        if u < write_fraction:
            c = center()
            side = rng.uniform(0.1, 1.0)
            rect = Rect([x for x in c], [x + side for x in c])
            requests.append(
                Request.insert(SpatialObject(oid_base + i, rect), deadline_s=deadline_s)
            )
        elif u < write_fraction + knn_fraction:
            requests.append(Request.knn(center(), k, deadline_s=deadline_s))
        else:
            c = center()
            rect = Rect(c, [x + query_side for x in c])
            requests.append(Request.range(rect, deadline_s=deadline_s))
    return requests


async def run_closed_loop(
    server,
    requests: Sequence[Request],
    *,
    concurrency: int = 64,
    pace: Optional[float] = None,
    clock=None,
) -> List[Response]:
    """Drive ``requests`` through ``server``; return responses in order.

    ``pace`` (with a ``clock`` exposing ``advance``) moves the server's
    logical clock by that many seconds immediately before each
    submission — the deterministic stand-in for inter-arrival time.
    The wall-clock elapsed time is recorded into the server's metrics
    for QPS/latency reporting.
    """
    started = time.perf_counter()
    in_flight = set()
    futures = []
    for request in requests:
        while len(in_flight) >= concurrency:
            done, in_flight = await asyncio.wait(
                in_flight, return_when=asyncio.FIRST_COMPLETED
            )
        if pace is not None and clock is not None:
            clock.advance(pace)
        future = server.submit_nowait(request)
        futures.append(future)
        in_flight.add(future)
    responses = await asyncio.gather(*futures)
    server.metrics.set_elapsed(time.perf_counter() - started)
    return list(responses)
