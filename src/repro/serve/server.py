"""The coalescing async serving loop over a live :class:`SnapshotManager`.

:class:`CoalescingServer` is the online layer ROADMAP item 1 asks for:
concurrent range/kNN/join/write requests are admitted synchronously
(token bucket — over-capacity requests get an explicit ``shed`` response
instead of joining an unbounded queue), coalesced per kind into
micro-batches inside a small time window, and executed through the
columnar batch engines (`range_query_batch`/`knn_batch`/`overlay_join`)
against the manager's live ``(snapshot, overlay)`` view.

The robustness kernel wraps every batch execution:

* **deadlines** — each request carries a :class:`~repro.serve.resilience.
  Deadline`; expired requests are answered ``deadline`` (never silently
  served late), checked both before execution and before delivery;
* **retries** — transient faults (injected chaos, a broken worker pool,
  a truncated snapshot load, an I/O error, a raced compaction) are
  absorbed by :class:`~repro.serve.resilience.RetryPolicy` with
  exponential backoff and deterministic seeded jitter;
* **circuit breaker** — consecutive failures trip it open, and open
  batches take the *degraded* path instead of failing hard: batch
  windows shrink (``degraded_batch_window``), queries are served
  serially from the frozen base snapshot via the existing
  ``resolve_stale(..., "serve")`` policy with ``stale=True`` stamped in
  the response metadata whenever the answer may miss pending writes,
  and the :class:`~repro.engine.parallel.ParallelExecutor` is bypassed;
* **self-healing parallelism** — when ``workers > 1`` and the overlay is
  clean, query batches run through a ``ParallelExecutor`` (rebuilt
  whenever the manager's epoch moves); its pool-rebuild/serial-fallback
  recovery and the snapshot-load validation both thread through the
  attached :class:`~repro.serve.faults.FaultPlan`.

Determinism: admission is decided *synchronously at submit time* in
issue order, so with a :class:`~repro.serve.resilience.LogicalClock`
advanced only by the load generator, shed counts are a pure function of
the request sequence — likewise retry and breaker-trip counts under a
seeded plan (batch executions are single-flighted through one gate, so
a fault burst is absorbed by one batch's retry loop).  That is what lets
``repro bench compare serve`` gate exact counters while p50/p99/QPS
(measured on the wall clock) merely report.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.engine import (
    CompactionInProgressError,
    ParallelExecutor,
    SnapshotFormatError,
    SnapshotManager,
    load_snapshot,
    resolve_stale,
)
from repro.engine.delta import overlay_join
from repro.engine.executor import knn_batch as base_knn_batch
from repro.engine.executor import range_query_batch as base_range_query_batch
from repro.serve.faults import BATCH_FAULT, REQUEST_LATENCY, InjectedFault, TransientFault
from repro.serve.metrics import ServerMetrics
from repro.serve.resilience import (
    CircuitBreaker,
    Clock,
    Deadline,
    MonotonicClock,
    RetryPolicy,
    TokenBucket,
)

try:  # pragma: no cover - exercised only where process pools exist
    from concurrent.futures.process import BrokenProcessPool
except ImportError:  # pragma: no cover
    class BrokenProcessPool(RuntimeError):
        """Placeholder on platforms without process pools."""


#: Exceptions the retry policy absorbs (everything else is a hard error).
RETRYABLE_EXCEPTIONS = (
    TransientFault,
    BrokenProcessPool,
    SnapshotFormatError,
    CompactionInProgressError,
    concurrent.futures.TimeoutError,
    TimeoutError,
    OSError,
)

#: Request kinds the server understands.
KINDS = ("range", "knn", "join", "insert", "delete", "compact")

#: Kinds that answer from the index (eligible for stale/degraded serving).
QUERY_KINDS = ("range", "knn", "join")


@dataclass
class Request:
    """One client request.

    ``payload`` by kind: ``range`` → a :class:`~repro.geometry.rect.Rect`;
    ``knn`` → ``(point, k)``; ``join`` → a dict with ``algorithm`` plus
    ``probes`` (INLJ) or ``other`` (STT); ``insert``/``delete`` → a
    :class:`~repro.geometry.objects.SpatialObject`; ``compact`` → None.
    ``deadline_s`` overrides the server's default deadline (None → use
    the default; ``float("inf")`` effectively disables it).
    """

    kind: str
    payload: Any = None
    deadline_s: Optional[float] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}; known: {KINDS}")

    # convenience constructors --------------------------------------------
    @classmethod
    def range(cls, rect, deadline_s: Optional[float] = None) -> "Request":
        return cls("range", rect, deadline_s)

    @classmethod
    def knn(cls, point, k: int, deadline_s: Optional[float] = None) -> "Request":
        return cls("knn", (tuple(point), int(k)), deadline_s)

    @classmethod
    def join(
        cls,
        probes=None,
        other=None,
        algorithm: str = "inlj",
        deadline_s: Optional[float] = None,
    ) -> "Request":
        return cls(
            "join",
            {"probes": probes, "other": other, "algorithm": algorithm},
            deadline_s,
        )

    @classmethod
    def insert(cls, obj, deadline_s: Optional[float] = None) -> "Request":
        return cls("insert", obj, deadline_s)

    @classmethod
    def delete(cls, obj, deadline_s: Optional[float] = None) -> "Request":
        return cls("delete", obj, deadline_s)

    @classmethod
    def compact(cls, deadline_s: Optional[float] = None) -> "Request":
        return cls("compact", None, deadline_s)


@dataclass
class Response:
    """What every request resolves to — success, shed, expiry, or error.

    ``stale=True`` marks an answer served from the frozen base under the
    breaker's serve-stale policy when pending writes may be missing from
    it; ``degraded`` marks any answer produced on the degraded path.
    """

    status: str  # "ok" | "shed" | "deadline" | "error"
    value: Any = None
    stale: bool = False
    degraded: bool = False
    retries: int = 0
    error: Optional[str] = None
    latency_s: Optional[float] = None
    epoch: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


@dataclass
class ServeConfig:
    """Tunables for :class:`CoalescingServer` (defaults favour tests)."""

    batch_window: float = 0.002  # seconds to linger collecting a batch
    degraded_batch_window: float = 0.0005  # shrunk window while the breaker is open
    max_batch: int = 64
    default_deadline: float = 5.0
    admission_rate: Optional[float] = None  # requests/second; None = admit all
    admission_burst: int = 64
    retry_max_attempts: int = 5
    retry_base_delay: float = 0.002
    retry_max_delay: float = 0.05
    retry_jitter: float = 0.5
    retry_seed: int = 0
    breaker_failure_threshold: int = 3
    breaker_cooldown: float = 0.05
    workers: int = 1  # >1 enables the ParallelExecutor fast path
    pool_rebuild_retries: int = 2
    compact_threshold: Optional[int] = None  # pending ops before background compact
    task_timeout: float = 120.0


class _Pending:
    """An admitted request waiting for (or undergoing) execution."""

    __slots__ = ("request", "future", "deadline", "issued_wall")

    def __init__(self, request: Request, future, deadline: Deadline, issued_wall: float):
        self.request = request
        self.future = future
        self.deadline = deadline
        self.issued_wall = issued_wall


_STOP = object()

#: queue routing: range and kNN coalesce; everything else runs per-item.
_QUEUE_FOR_KIND = {
    "range": "range",
    "knn": "knn",
    "join": "other",
    "insert": "other",
    "delete": "other",
    "compact": "other",
}


class CoalescingServer:
    """Coalesce concurrent requests into batches over a snapshot manager.

    ``source`` may be a :class:`~repro.engine.delta.SnapshotManager` (used
    live — writes through the server and writes from outside both work) or
    any index/tree a manager can wrap.  ``clock`` drives admission,
    deadlines, and the breaker (inject a
    :class:`~repro.serve.resilience.LogicalClock` for determinism);
    latencies are always measured on the wall clock.  ``fault_plan`` is
    installed on :meth:`start` (snapshot-load hook, compaction hook,
    worker kills, batch faults, latency spikes) and uninstalled on
    :meth:`stop`.

    Lifecycle::

        server = CoalescingServer(manager, config)
        await server.start()
        response = await server.submit_nowait(Request.range(rect))
        await server.stop()
    """

    def __init__(
        self,
        source,
        config: Optional[ServeConfig] = None,
        *,
        fault_plan=None,
        clock: Optional[Clock] = None,
    ):
        self.config = config if config is not None else ServeConfig()
        self.clock = clock if clock is not None else MonotonicClock()
        if getattr(source, "is_snapshot_manager", False):
            self.manager: SnapshotManager = source
        else:
            self.manager = SnapshotManager(source, update_engine="delta")
        self.fault_plan = fault_plan
        self.metrics = ServerMetrics()
        self.admission = TokenBucket(
            self.config.admission_rate, self.config.admission_burst, clock=self.clock
        )
        self.breaker = CircuitBreaker(
            self.config.breaker_failure_threshold,
            self.config.breaker_cooldown,
            clock=self.clock,
        )
        self.retry = RetryPolicy(
            max_attempts=self.config.retry_max_attempts,
            base_delay=self.config.retry_base_delay,
            max_delay=self.config.retry_max_delay,
            jitter=self.config.retry_jitter,
            seed=self.config.retry_seed,
        )
        self._queues: Dict[str, asyncio.Queue] = {}
        self._batchers: List[asyncio.Task] = []
        self._compaction_task: Optional[asyncio.Task] = None
        self._engine_lock = threading.Lock()
        self._execute_gate: Optional[asyncio.Lock] = None
        self._executor: Optional[ParallelExecutor] = None
        self._executor_epoch: Optional[int] = None
        self._executor_seen: Dict[str, int] = {}
        self._last_epoch = self.manager.epoch
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._running = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "CoalescingServer":
        if self._running:
            return self
        self._loop = asyncio.get_running_loop()
        self._execute_gate = asyncio.Lock()
        self._queues = {name: asyncio.Queue() for name in ("range", "knn", "other")}
        plan = self.fault_plan
        if plan is not None:
            plan.install()
            self.manager.compaction_fault_hook = plan.hook("delta.compaction")
        self._running = True
        self._batchers = [
            asyncio.ensure_future(self._batcher(name)) for name in self._queues
        ]
        return self

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for queue in self._queues.values():
            queue.put_nowait(_STOP)
        await asyncio.gather(*self._batchers, return_exceptions=True)
        self._batchers = []
        if self._compaction_task is not None:
            await asyncio.gather(self._compaction_task, return_exceptions=True)
            self._compaction_task = None
        plan = self.fault_plan
        if plan is not None:
            plan.uninstall()
            self.manager.compaction_fault_hook = None
        if self._executor is not None:
            self._executor.close()
            self._executor = None
        # Anything still queued gets an explicit error, never silence.
        for queue in self._queues.values():
            while not queue.empty():
                item = queue.get_nowait()
                if item is not _STOP:
                    self._resolve(item, Response(status="error", error="server stopped"))

    async def __aenter__(self) -> "CoalescingServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # submission (synchronous admission — deterministic in issue order)
    # ------------------------------------------------------------------

    def submit_nowait(self, request: Request) -> "asyncio.Future[Response]":
        """Admit-or-shed ``request`` immediately; resolve later.

        Must be called from the event-loop thread.  Admission control
        runs synchronously here, so with a logical clock the shed/admit
        decision depends only on the submission sequence.
        """
        if self._loop is None:
            raise RuntimeError("server not started")
        future: asyncio.Future = self._loop.create_future()
        self.metrics.incr("offered")
        if not self._running:
            future.set_result(Response(status="error", error="server not running"))
            return future
        if not self.admission.try_acquire():
            self.metrics.incr("shed")
            future.set_result(
                Response(status="shed", error="overloaded: admission bucket empty")
            )
            return future
        self.metrics.incr("admitted")
        seconds = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline
        )
        item = _Pending(
            request,
            future,
            Deadline(seconds, self.clock),
            issued_wall=time.perf_counter(),
        )
        self._queues[_QUEUE_FOR_KIND[request.kind]].put_nowait(item)
        return future

    async def submit(self, request: Request) -> Response:
        """Submit and await the response."""
        return await self.submit_nowait(request)

    # async conveniences ------------------------------------------------
    async def range_query(self, rect, **kwargs) -> Response:
        return await self.submit(Request.range(rect, **kwargs))

    async def knn(self, point, k: int, **kwargs) -> Response:
        return await self.submit(Request.knn(point, k, **kwargs))

    async def join(self, **kwargs) -> Response:
        return await self.submit(Request.join(**kwargs))

    async def insert(self, obj, **kwargs) -> Response:
        return await self.submit(Request.insert(obj, **kwargs))

    async def delete(self, obj, **kwargs) -> Response:
        return await self.submit(Request.delete(obj, **kwargs))

    async def compact(self, **kwargs) -> Response:
        return await self.submit(Request.compact(**kwargs))

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------

    async def _batcher(self, name: str) -> None:
        queue = self._queues[name]
        coalesce = name in ("range", "knn")
        stopping = False
        while not stopping:
            item = await queue.get()
            if item is _STOP:
                return
            batch = [item]
            if coalesce:
                window = (
                    self.config.batch_window
                    if self.breaker.allow()
                    else self.config.degraded_batch_window
                )
                while len(batch) < self.config.max_batch:
                    try:
                        nxt = await asyncio.wait_for(queue.get(), timeout=window)
                    except asyncio.TimeoutError:
                        break
                    if nxt is _STOP:
                        stopping = True
                        break
                    batch.append(nxt)
            try:
                await self._dispatch(batch[0].request.kind if not coalesce else name, batch)
            except Exception as exc:  # pragma: no cover - defensive backstop
                for pending in batch:
                    self._resolve(
                        pending, Response(status="error", error=f"dispatch failed: {exc!r}")
                    )

    async def _dispatch(self, kind: str, batch: List[_Pending]) -> None:
        self.metrics.incr("batches")
        if len(batch) > 1:
            self.metrics.incr("coalesced", len(batch) - 1)

        # Injected latency spike: stall the whole batch (slow-request chaos).
        plan = self.fault_plan
        if plan is not None:
            spec = plan.fires(REQUEST_LATENCY)
            if spec is not None and spec.delay > 0:
                await asyncio.sleep(spec.delay)

        live: List[_Pending] = []
        for item in batch:
            if item.future.cancelled():
                continue
            if item.deadline.expired():
                self.metrics.incr("deadline_exceeded")
                self._resolve(
                    item,
                    Response(
                        status="deadline", error="deadline exceeded before execution"
                    ),
                )
            else:
                live.append(item)
        if not live:
            return

        # ``other`` queue items are homogeneous per _dispatch only when
        # not coalescing — they arrive one per batch, so kind is exact.
        assert self._execute_gate is not None
        async with self._execute_gate:
            await self._dispatch_locked(kind, live)

    async def _dispatch_locked(self, kind: str, live: List[_Pending]) -> None:
        attempts = 0
        delays = self.retry.delays()
        degraded_reason: Optional[str] = None
        values: Optional[List[Tuple[str, Any, bool]]] = None
        while True:
            if not self.breaker.allow():
                degraded_reason = "circuit breaker open"
                break
            try:
                values = await self._execute(kind, live)
            except RETRYABLE_EXCEPTIONS as exc:
                before = self.breaker.opened_count
                self.breaker.record_failure()
                if self.breaker.opened_count > before:
                    self.metrics.incr("breaker_opens")
                attempts += 1
                if attempts >= self.retry.max_attempts:
                    degraded_reason = f"retries exhausted: {exc!r}"
                    break
                self.metrics.incr("retries")
                await asyncio.sleep(delays[attempts - 1])
            except Exception as exc:
                before = self.breaker.opened_count
                self.breaker.record_failure()
                if self.breaker.opened_count > before:
                    self.metrics.incr("breaker_opens")
                self.metrics.incr("errors", len(live))
                for item in live:
                    self._resolve(
                        item,
                        Response(status="error", error=repr(exc), retries=attempts),
                    )
                return
            else:
                self.breaker.record_success()
                break

        degraded = degraded_reason is not None
        if degraded:
            self.metrics.incr("degraded_batches")
            try:
                values = await asyncio.to_thread(
                    self._execute_degraded_sync, kind, live
                )
            except Exception as exc:
                self.metrics.incr("errors", len(live))
                for item in live:
                    self._resolve(
                        item,
                        Response(
                            status="error",
                            error=f"degraded path failed: {exc!r}",
                            retries=attempts,
                            degraded=True,
                        ),
                    )
                return

        epoch = self.manager.epoch
        assert values is not None
        for item, (status, value, stale) in zip(live, values):
            if stale:
                self.metrics.incr("stale_served")
            error = None
            if status == "error":
                self.metrics.incr("errors")
                error = value if isinstance(value, str) else degraded_reason
                value = None
            self._resolve(
                item,
                Response(
                    status=status,
                    value=value,
                    stale=stale,
                    degraded=degraded,
                    retries=attempts,
                    error=error,
                    epoch=epoch,
                ),
            )

    def _resolve(self, item: _Pending, response: Response) -> None:
        if item.future.done():
            return
        if response.status == "ok" and item.deadline.expired():
            self.metrics.incr("deadline_exceeded")
            response = Response(
                status="deadline",
                error="deadline exceeded before delivery",
                retries=response.retries,
                degraded=response.degraded,
            )
        response.latency_s = time.perf_counter() - item.issued_wall
        if response.status == "ok":
            self.metrics.incr("completed")
            self.metrics.observe_latency(response.latency_s)
        item.future.set_result(response)

    # ------------------------------------------------------------------
    # execution — normal path
    # ------------------------------------------------------------------

    async def _execute(self, kind: str, items: List[_Pending]):
        plan = self.fault_plan
        if plan is not None:
            # One consultation per execution attempt, in the event loop
            # (single-flighted), so a seeded burst maps to exact retry
            # and breaker counts.
            plan.raise_if_fires(BATCH_FAULT)
        def work():
            with self._engine_lock:
                return self._execute_sync(kind, items)

        return await asyncio.to_thread(work)

    def _execute_sync(self, kind: str, items: List[_Pending]):
        manager = self.manager
        epoch = manager.epoch
        if epoch != self._last_epoch:
            self.metrics.incr("snapshot_swaps", epoch - self._last_epoch)
            self._last_epoch = epoch
        out: List[Tuple[str, Any, bool]] = []
        if kind == "range":
            rects = [item.request.payload for item in items]
            executor = self._parallel_executor()
            if executor is not None:
                results = executor.range_query_batch(rects)
                self._drain_executor_counters(executor)
            else:
                results = manager.range_query_batch(rects)
            out = [("ok", hits, False) for hits in results]
        elif kind == "knn":
            points = [item.request.payload[0] for item in items]
            ks = [item.request.payload[1] for item in items]
            kmax = max(ks)
            executor = self._parallel_executor()
            if executor is not None:
                results = executor.knn_batch(points, kmax)
                self._drain_executor_counters(executor)
            else:
                results = manager.knn_batch(points, kmax)
            out = [("ok", hits[:k], False) for hits, k in zip(results, ks)]
        else:
            for item in items:
                out.append(self._execute_single(item.request))
        return out

    def _execute_single(self, request: Request) -> Tuple[str, Any, bool]:
        manager = self.manager
        if request.kind == "join":
            spec = request.payload
            algorithm = spec.get("algorithm", "inlj")
            if algorithm == "inlj":
                probes = spec.get("probes")
                if probes is None:
                    left = spec.get("other")
                    if left is None:
                        raise ValueError("INLJ join request needs probes")
                    probes = left
                result = overlay_join(probes, manager, algorithm="inlj")
            else:
                other = spec.get("other")
                if other is None:
                    raise ValueError("STT join request needs an `other` index")
                result = overlay_join(other, manager, algorithm=algorithm)
            return ("ok", result, False)
        if request.kind == "insert":
            manager.insert(request.payload)
            self._maybe_background_compact()
            return ("ok", True, False)
        if request.kind == "delete":
            found = manager.delete(request.payload)
            self._maybe_background_compact()
            return ("ok", found, False)
        if request.kind == "compact":
            try:
                stats = manager.compact()
            except BaseException:
                self.metrics.incr("compaction_failures")
                raise
            self.metrics.incr("compactions")
            return ("ok", stats, False)
        raise ValueError(f"unroutable request kind {request.kind!r}")

    # ------------------------------------------------------------------
    # execution — degraded (serve-stale) path
    # ------------------------------------------------------------------

    def _execute_degraded_sync(self, kind: str, items: List[_Pending]):
        """Serve from the frozen base, serially, stamping staleness.

        The breaker is open (or retries ran dry): bypass the parallel
        pool and the overlay merge, answer queries straight off the base
        snapshot under the ``"serve"`` stale policy, and mark every
        answer that may be missing pending writes with ``stale=True``.
        Writes still apply (the overlay is cheap and not the failing
        component); explicit compaction requests are refused while
        degraded.
        """
        with self._engine_lock:
            manager = self.manager
            snapshot, overlay = manager.view
            snapshot = resolve_stale(snapshot, "serve")
            stale = bool(snapshot.is_stale or not overlay.is_empty)
            out: List[Tuple[str, Any, bool]] = []
            if kind == "range":
                rects = [item.request.payload for item in items]
                results = base_range_query_batch(snapshot, rects)
                out = [("ok", hits, stale) for hits in results]
            elif kind == "knn":
                points = [item.request.payload[0] for item in items]
                ks = [item.request.payload[1] for item in items]
                results = base_knn_batch(snapshot, points, max(ks))
                out = [("ok", hits[:k], stale) for hits, k in zip(results, ks)]
            else:
                for item in items:
                    request = item.request
                    if request.kind == "join":
                        spec = request.payload
                        algorithm = spec.get("algorithm", "inlj")
                        left = spec.get("probes") or spec.get("other")
                        if algorithm == "inlj":
                            from repro.engine.join_exec import inlj_batch

                            result = inlj_batch(list(left), snapshot)
                        else:
                            from repro.engine.join_exec import stt_batch

                            other = spec.get("other")
                            other_snapshot = (
                                other.snapshot
                                if getattr(other, "is_snapshot_manager", False)
                                else other
                            )
                            result = stt_batch(other_snapshot, snapshot)
                        out.append(("ok", result, stale))
                    elif request.kind == "insert":
                        manager.insert(request.payload)
                        out.append(("ok", True, False))
                    elif request.kind == "delete":
                        try:
                            found = manager.delete(request.payload)
                        except CompactionInProgressError:
                            out.append(
                                ("error", "delete raced a compaction; retry", False)
                            )
                            continue
                        out.append(("ok", found, False))
                    else:  # compact
                        out.append(
                            ("error", "compaction refused while degraded", False)
                        )
            return out

    # ------------------------------------------------------------------
    # parallel execution + background compaction plumbing
    # ------------------------------------------------------------------

    def _parallel_executor(self) -> Optional[ParallelExecutor]:
        """The pool-backed executor, when eligible (workers>1, clean overlay).

        Rebuilt whenever the manager's epoch moves (the pool mmaps a
        saved copy of the snapshot; a swap makes it stale).  The saved
        snapshot is validated with one coordinator-side
        :func:`load_snapshot` — the deterministic point where an attached
        plan's snapshot-load fault fires (and gets retried upstream).
        """
        if self.config.workers <= 1:
            return None
        manager = self.manager
        snapshot, overlay = manager.view
        if not overlay.is_empty:
            return None  # pool serves the base only; overlay needs the manager
        if self._executor is not None and self._executor_epoch != manager.epoch:
            self._executor.close()
            self._executor = None
        if self._executor is None:
            executor = ParallelExecutor(
                snapshot,
                workers=self.config.workers,
                task_timeout=self.config.task_timeout,
                pool_rebuild_retries=self.config.pool_rebuild_retries,
                fault_plan=self.fault_plan,
            )
            try:
                load_snapshot(executor.path, mmap=True)
            except BaseException:
                executor.close()
                raise
            self._executor = executor
            self._executor_epoch = manager.epoch
            self._executor_seen = {"pool_rebuilds": 0, "serial_fallbacks": 0}
        return self._executor

    def _drain_executor_counters(self, executor: ParallelExecutor) -> None:
        for name in ("pool_rebuilds", "serial_fallbacks"):
            current = getattr(executor, name)
            seen = self._executor_seen.get(name, 0)
            if current > seen:
                self.metrics.incr(name, current - seen)
                self._executor_seen[name] = current

    def _maybe_background_compact(self) -> None:
        threshold = self.config.compact_threshold
        if threshold is None or self.manager.pending_ops < threshold:
            return
        if self._compaction_task is not None and not self._compaction_task.done():
            return
        if self._loop is None:
            return
        self._compaction_task = self._loop.create_task(self._run_compaction())

    async def _run_compaction(self) -> None:
        """Background compaction with explicit failure accounting.

        Runs off the engine lock (readers keep serving the old view; the
        swap is atomic).  A crash — injected or real — counts as a
        breaker failure and a ``compaction_failures`` tick; the delta
        stays buffered, so the next trigger retries the whole fold.
        """
        before = self.manager.epoch
        try:
            await asyncio.to_thread(self.manager.compact)
        except CompactionInProgressError:
            return  # another compaction beat us to it
        except Exception:
            self.metrics.incr("compaction_failures")
            opened = self.breaker.opened_count
            self.breaker.record_failure()
            if self.breaker.opened_count > opened:
                self.metrics.incr("breaker_opens")
            return
        self.metrics.incr("compactions")
        swapped = self.manager.epoch - before
        if swapped > 0:
            self.metrics.incr("snapshot_swaps", swapped)
            self._last_epoch = self.manager.epoch

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def report(self) -> Dict[str, Any]:
        """Metrics snapshot, with fault-plan accounting folded in."""
        snap = self.metrics.snapshot()
        plan = self.fault_plan
        snap["faults_injected"] = plan.total_fired() if plan is not None else 0
        snap["breaker_state"] = self.breaker.state
        snap["epoch"] = self.manager.epoch
        return snap
