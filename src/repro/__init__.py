"""repro — Clipped Bounding Boxes (CBB) for spatial data processing.

A from-scratch reproduction of *"Improving Spatial Data Processing by
Clipping Minimum Bounding Boxes"* (Šidlauskas et al., ICDE 2018): four
disk-based R-tree variants, the clipped-bounding-box plugin (skyline and
stairline clipping), alternative bounding geometries, spatial joins,
synthetic stand-ins for the paper's datasets, and a benchmark harness that
regenerates every table and figure of the paper's evaluation.

Quick start::

    from repro.datasets import generate
    from repro.rtree import build_rtree, ClippedRTree
    from repro.query import RangeQueryWorkload

    objects = generate("par02", size=5000, seed=7)
    tree = build_rtree("rstar", objects)
    clipped = ClippedRTree.wrap(tree, method="stairline")

    workload = RangeQueryWorkload.from_objects(objects, target_results=10, seed=1)
    for box in workload.queries(100):
        hits = clipped.range_query(box)

Batch workloads run much faster through the columnar engine::

    from repro.engine import ColumnarIndex

    snapshot = ColumnarIndex.from_tree(clipped)
    results = snapshot.range_query_batch(workload.query_list(100))
"""

from repro.geometry import Rect, SpatialObject

__version__ = "0.2.0"

__all__ = ["Rect", "SpatialObject", "__version__"]
