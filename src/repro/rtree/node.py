"""R-tree nodes."""

from __future__ import annotations

from typing import List, Optional

from repro.geometry.rect import Rect, mbb_of_rects
from repro.rtree.entry import Entry


class Node:
    """An R-tree node: a level and a list of entries.

    ``level`` 0 denotes a leaf; the root has the highest level.  ``lhv``
    (largest Hilbert value) is only used by the Hilbert R-tree and is
    ``None`` elsewhere.
    """

    __slots__ = ("node_id", "level", "entries", "lhv")

    def __init__(self, node_id: int, level: int, entries: Optional[List[Entry]] = None):
        self.node_id = node_id
        self.level = level
        self.entries: List[Entry] = entries if entries is not None else []
        self.lhv: Optional[int] = None

    @property
    def is_leaf(self) -> bool:
        """True for leaf nodes (level 0)."""
        return self.level == 0

    def mbb(self) -> Rect:
        """Minimum bounding box of the node's entries."""
        if not self.entries:
            raise ValueError(f"node {self.node_id} has no entries to bound")
        return mbb_of_rects([entry.rect for entry in self.entries])

    def child_rects(self) -> List[Rect]:
        """Rectangles of all entries (child MBBs or object rectangles)."""
        return [entry.rect for entry in self.entries]

    def find_child_entry(self, child_id: int) -> Optional[Entry]:
        """The directory entry pointing at ``child_id``, if present."""
        for entry in self.entries:
            if entry.is_node_pointer and entry.child == child_id:
                return entry
        return None

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:
        kind = "leaf" if self.is_leaf else f"dir(level={self.level})"
        return f"Node(id={self.node_id}, {kind}, entries={len(self.entries)})"
