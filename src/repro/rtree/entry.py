"""R-tree node entries."""

from __future__ import annotations

from typing import Union

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect


class Entry:
    """One slot of an R-tree node.

    In a directory node ``child`` is the integer id of the child node and
    ``rect`` that child's MBB; in a leaf node ``child`` is the indexed
    :class:`~repro.geometry.objects.SpatialObject` and ``rect`` its
    bounding rectangle.
    """

    __slots__ = ("rect", "child")

    def __init__(self, rect: Rect, child: Union[int, SpatialObject]):
        self.rect = rect
        self.child = child

    @property
    def is_node_pointer(self) -> bool:
        """True when this entry points at a child node rather than an object."""
        return isinstance(self.child, int)

    def __repr__(self) -> str:
        return f"Entry(rect={self.rect!r}, child={self.child!r})"
