"""The R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990)."""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.geometry.rect import Rect, mbb_of_rects
from repro.rtree.base import InsertResult, RTreeBase
from repro.rtree.entry import Entry
from repro.rtree.node import Node


class RStarTree(RTreeBase):
    """R*-tree: optimised ChooseSubtree, topological split, forced reinsertion.

    * ChooseSubtree minimises *overlap* enlargement when the children are
      leaves, area enlargement otherwise (ties by area enlargement / area).
    * On the first overflow of a level per insertion, the ``reinsert_fraction``
      entries farthest from the node centre are removed and re-inserted.
    * The split chooses the axis with the minimum margin sum over all
      distributions and the distribution with minimal overlap (ties by area).
    """

    variant_name = "rstar"

    #: fraction of entries removed on forced reinsertion (paper: 30 %)
    reinsert_fraction = 0.3

    def __init__(self, dims: int, max_entries: int = 50, min_entries=None):
        super().__init__(dims, max_entries, min_entries)
        self._reinserted_levels: Set[int] = set()

    def _begin_insert(self) -> None:
        self._reinserted_levels = set()

    # ------------------------------------------------------------------
    # ChooseSubtree
    # ------------------------------------------------------------------

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        if node.level == 1:
            return self._choose_least_overlap_enlargement(node, rect)
        return self._choose_least_area_enlargement(node, rect)

    @staticmethod
    def _choose_least_area_enlargement(node: Node, rect: Rect) -> int:
        best_index = 0
        best_key = (float("inf"), float("inf"))
        for i, entry in enumerate(node.entries):
            key = (entry.rect.enlargement(rect), entry.rect.volume())
            if key < best_key:
                best_key = key
                best_index = i
        return best_index

    def _choose_least_overlap_enlargement(self, node: Node, rect: Rect) -> int:
        best_index = 0
        best_key = (float("inf"), float("inf"), float("inf"))
        rects = [entry.rect for entry in node.entries]
        for i, entry in enumerate(node.entries):
            enlarged = entry.rect.union(rect)
            overlap_delta = 0.0
            for j, other in enumerate(rects):
                if i == j:
                    continue
                overlap_delta += enlarged.intersection_volume(other)
                overlap_delta -= entry.rect.intersection_volume(other)
            key = (overlap_delta, entry.rect.enlargement(rect), entry.rect.volume())
            if key < best_key:
                best_key = key
                best_index = i
        return best_index

    # ------------------------------------------------------------------
    # Overflow treatment: forced reinsertion, then split
    # ------------------------------------------------------------------

    def _handle_overflow(self, node: Node, ancestor_path: List[int], result: InsertResult) -> None:
        is_root = node.node_id == self._root_id
        if not is_root and node.level not in self._reinserted_levels:
            self._reinserted_levels.add(node.level)
            self._forced_reinsert(node, ancestor_path, result)
        else:
            self._split_node(node, ancestor_path, result)

    def _forced_reinsert(self, node: Node, ancestor_path: List[int], result: InsertResult) -> None:
        count = max(1, int(round(self.reinsert_fraction * len(node.entries))))
        center = node.mbb().center
        ordered = sorted(
            node.entries,
            key=lambda e: sum((c - p) ** 2 for c, p in zip(e.rect.center, center)),
        )
        keep, removed = ordered[:-count], ordered[-count:]
        node.entries = keep
        result.entry_removed_node_ids.add(node.node_id)
        result.reinserted_entries += len(removed)

        # Tighten the ancestors before re-inserting (close reinsert).
        self._refresh_path(ancestor_path + [node.node_id], result)
        removed.sort(
            key=lambda e: sum((c - p) ** 2 for c, p in zip(e.rect.center, center))
        )
        for entry in removed:
            self._insert_entry(entry, node.level, result)

    def _refresh_path(self, path: List[int], result: InsertResult) -> None:
        for depth in range(len(path) - 1, 0, -1):
            node = self._nodes.get(path[depth])
            parent = self._nodes.get(path[depth - 1])
            if node is None or parent is None:
                continue
            if self._refresh_parent_entry(parent, node):
                result.mbb_changed_node_ids.add(node.node_id)

    # ------------------------------------------------------------------
    # R*-split
    # ------------------------------------------------------------------

    def _split(self, node: Node) -> Tuple[List[Entry], List[Entry]]:
        entries = list(node.entries)
        axis = self._choose_split_axis(entries)
        return self._choose_split_index(entries, axis)

    def _distributions(self, ordered: List[Entry]):
        """All legal (group1, group2) prefix/suffix distributions."""
        total = len(ordered)
        for split_at in range(self.min_entries, total - self.min_entries + 1):
            yield ordered[:split_at], ordered[split_at:]

    def _choose_split_axis(self, entries: List[Entry]) -> int:
        best_axis = 0
        best_margin = float("inf")
        for axis in range(self.dims):
            margin_sum = 0.0
            for key in (
                lambda e: (e.rect.low[axis], e.rect.high[axis]),
                lambda e: (e.rect.high[axis], e.rect.low[axis]),
            ):
                ordered = sorted(entries, key=key)
                for group1, group2 in self._distributions(ordered):
                    margin_sum += mbb_of_rects([e.rect for e in group1]).margin()
                    margin_sum += mbb_of_rects([e.rect for e in group2]).margin()
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis
        return best_axis

    def _choose_split_index(
        self, entries: List[Entry], axis: int
    ) -> Tuple[List[Entry], List[Entry]]:
        best: Tuple[List[Entry], List[Entry]] = (entries[: self.min_entries], entries[self.min_entries :])
        best_key = (float("inf"), float("inf"))
        for key in (
            lambda e: (e.rect.low[axis], e.rect.high[axis]),
            lambda e: (e.rect.high[axis], e.rect.low[axis]),
        ):
            ordered = sorted(entries, key=key)
            for group1, group2 in self._distributions(ordered):
                mbb1 = mbb_of_rects([e.rect for e in group1])
                mbb2 = mbb_of_rects([e.rect for e in group2])
                candidate_key = (
                    mbb1.intersection_volume(mbb2),
                    mbb1.volume() + mbb2.volume(),
                )
                if candidate_key < best_key:
                    best_key = candidate_key
                    best = (list(group1), list(group2))
        return best
