"""Common R-tree machinery shared by every variant.

The base class owns the node table, insertion/deletion plumbing, the range
query with I/O accounting, and change tracking (which nodes split, whose
MBBs changed) — everything the clipped-R-tree plugin and the update-cost
experiment need.  Variants only customise ``_choose_subtree`` and
``_split`` (plus, for the R*-tree, the overflow policy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.storage.stats import IOStats


@dataclass
class InsertResult:
    """What one insertion changed, for the CBB update bookkeeping (§IV-D).

    ``added_rects`` maps node id to the rectangles of entries newly placed
    in that node (the inserted object, split siblings registered with a
    parent, forced-reinsertion targets, ...); these are the nodes whose
    clip points may have been invalidated even though their own MBB did
    not move.

    ``entry_removed_node_ids`` holds nodes that *lost* entries without
    being split (forced reinsertion evicting entries, a parent dropping
    an underfull child during condense-tree).  ``mbb_changed_node_ids``
    records the *child* whose parent entry rect was refreshed; together
    these sets let the incremental re-clipper
    (:mod:`repro.engine.incremental_clip`) find every node whose entry
    list changed.
    """

    leaf_id: Optional[int] = None
    split_node_ids: Set[int] = field(default_factory=set)
    new_node_ids: Set[int] = field(default_factory=set)
    mbb_changed_node_ids: Set[int] = field(default_factory=set)
    added_rects: Dict[int, List[Rect]] = field(default_factory=dict)
    entry_removed_node_ids: Set[int] = field(default_factory=set)
    reinserted_entries: int = 0

    def record_added(self, node_id: int, rect: Rect) -> None:
        """Remember that ``node_id`` received an entry bounded by ``rect``."""
        self.added_rects.setdefault(node_id, []).append(rect)


@dataclass
class DeleteResult:
    """What one deletion changed.

    Deleting can trigger re-insertion of orphaned entries (condense tree),
    so it carries the same ``added_rects`` bookkeeping as insertion —
    plus ``split_node_ids`` / ``new_node_ids`` for splits those
    re-insertions may cause, and ``entry_removed_node_ids`` for nodes
    that lost an entry in place (the leaf that held the object, parents
    that dropped an underfull child).
    """

    found: bool = False
    leaf_id: Optional[int] = None
    mbb_changed_node_ids: Set[int] = field(default_factory=set)
    removed_node_ids: Set[int] = field(default_factory=set)
    added_rects: Dict[int, List[Rect]] = field(default_factory=dict)
    split_node_ids: Set[int] = field(default_factory=set)
    new_node_ids: Set[int] = field(default_factory=set)
    entry_removed_node_ids: Set[int] = field(default_factory=set)


def resolve_min_entries(max_entries: int, min_entries: Optional[int] = None) -> int:
    """The effective node minimum fill for a given capacity.

    Defaults to the usual 40 % of capacity and clamps into
    ``[1, max_entries // 2]``.  Shared by every tree constructor *and* the
    array-native STR builder (:mod:`repro.engine.builder`), whose packing
    must stay decision-for-decision identical to the scalar trees'.
    """
    if min_entries is None:
        min_entries = max(2, int(round(0.4 * max_entries)))
    if not 1 <= min_entries <= max_entries // 2:
        min_entries = max(1, max_entries // 2)
    return min_entries


class RTreeBase:
    """Abstract R-tree; concrete variants provide subtree choice and split."""

    variant_name = "base"

    def __init__(self, dims: int, max_entries: int = 50, min_entries: Optional[int] = None):
        if dims < 1:
            raise ValueError("dims must be at least 1")
        if max_entries < 2:
            raise ValueError("max_entries must be at least 2")
        self.dims = dims
        self.max_entries = max_entries
        self.min_entries = resolve_min_entries(max_entries, min_entries)
        self._nodes: Dict[int, Node] = {}
        self._next_id = 0
        root = self._new_node(level=0)
        self._root_id = root.node_id
        self._size = 0
        self._version = 0

    # ------------------------------------------------------------------
    # structure access
    # ------------------------------------------------------------------

    @property
    def root_id(self) -> int:
        """Id of the root node."""
        return self._root_id

    @property
    def version(self) -> int:
        """Monotone counter bumped by every structural mutation.

        Columnar snapshots (:class:`repro.engine.columnar.ColumnarIndex`)
        record it at freeze time to detect staleness after inserts and
        deletes.
        """
        return self._version

    @property
    def root(self) -> Node:
        """The root node."""
        return self._nodes[self._root_id]

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is just a leaf)."""
        return self.root.level + 1

    def node(self, node_id: int) -> Node:
        """Look up a node by id."""
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        """True when ``node_id`` currently exists in the tree."""
        return node_id in self._nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over every node in the tree."""
        return iter(self._nodes.values())

    def leaves(self) -> Iterator[Node]:
        """Iterate over all leaf nodes."""
        return (n for n in self._nodes.values() if n.is_leaf)

    def internal_nodes(self) -> Iterator[Node]:
        """Iterate over all directory (non-leaf) nodes."""
        return (n for n in self._nodes.values() if not n.is_leaf)

    def node_count(self) -> int:
        """Total number of nodes."""
        return len(self._nodes)

    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return sum(1 for _ in self.leaves())

    def __len__(self) -> int:
        return self._size

    def objects(self) -> Iterator[SpatialObject]:
        """Iterate over every indexed object."""
        for leaf in self.leaves():
            for entry in leaf.entries:
                yield entry.child

    def _new_node(self, level: int) -> Node:
        node = Node(self._next_id, level)
        self._nodes[self._next_id] = node
        self._next_id += 1
        return node

    # ------------------------------------------------------------------
    # variant hooks
    # ------------------------------------------------------------------

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        """Index of the entry of ``node`` under which ``rect`` should go."""
        raise NotImplementedError

    def _split(self, node: Node) -> Tuple[List[Entry], List[Entry]]:
        """Partition the entries of an overflowing node into two groups."""
        raise NotImplementedError

    def _handle_overflow(self, node: Node, ancestor_path: List[int], result: InsertResult) -> None:
        """Default overflow policy: split.  The R*-tree overrides this."""
        self._split_node(node, ancestor_path, result)

    # ------------------------------------------------------------------
    # insertion
    # ------------------------------------------------------------------

    def insert(self, obj: SpatialObject) -> InsertResult:
        """Insert one object; returns the set of structural changes."""
        if obj.dims != self.dims:
            raise ValueError(f"object has {obj.dims} dims, tree expects {self.dims}")
        result = InsertResult()
        self._begin_insert()
        self._insert_entry(Entry(obj.rect, obj), level=0, result=result)
        self._size += 1
        self._version += 1
        return result

    def bulk_insert(self, objects: Iterable[SpatialObject]) -> None:
        """Insert many objects one by one (no special bulk loading)."""
        for obj in objects:
            self.insert(obj)

    def _begin_insert(self) -> None:
        """Reset per-insertion state (used by the R*-tree reinsertion flag)."""

    def _insert_entry(self, entry: Entry, level: int, result: InsertResult) -> None:
        path = self._choose_path(entry.rect, level)
        target = self._nodes[path[-1]]
        target.entries.append(entry)
        result.record_added(target.node_id, entry.rect)
        if level == 0 and result.leaf_id is None:
            result.leaf_id = target.node_id
        self._propagate_up(path, result)

    def _choose_path(self, rect: Rect, level: int) -> List[int]:
        """Node ids from the root down to the insertion target at ``level``."""
        node = self.root
        path = [node.node_id]
        while node.level > level:
            index = self._choose_subtree(node, rect)
            child_id = node.entries[index].child
            node = self._nodes[child_id]
            path.append(node.node_id)
        return path

    def _propagate_up(self, path: List[int], result: InsertResult) -> None:
        """Handle overflow and refresh parent rectangles from leaf to root."""
        for depth in range(len(path) - 1, -1, -1):
            node = self._nodes[path[depth]]
            if len(node.entries) > self.max_entries:
                self._handle_overflow(node, path[:depth], result)
            if depth > 0:
                parent = self._nodes[path[depth - 1]]
                if self._refresh_parent_entry(parent, node):
                    result.mbb_changed_node_ids.add(node.node_id)

    def _refresh_parent_entry(self, parent: Node, child: Node) -> bool:
        """Sync the parent's entry rect with the child's MBB; True if it changed."""
        entry = parent.find_child_entry(child.node_id)
        if entry is None:
            return False
        new_rect = child.mbb()
        if entry.rect != new_rect:
            entry.rect = new_rect
            return True
        return False

    def _split_node(self, node: Node, ancestor_path: List[int], result: InsertResult) -> None:
        group1, group2 = self._split(node)
        if not group1 or not group2:
            raise RuntimeError(f"{self.variant_name}: split produced an empty group")
        node.entries = group1
        sibling = self._new_node(node.level)
        sibling.entries = group2
        self._after_split(node, sibling)
        result.split_node_ids.add(node.node_id)
        result.new_node_ids.add(sibling.node_id)

        if ancestor_path:
            parent = self._nodes[ancestor_path[-1]]
            sibling_mbb = sibling.mbb()
            parent.entries.append(Entry(sibling_mbb, sibling.node_id))
            result.record_added(parent.node_id, sibling_mbb)
        else:
            new_root = self._new_node(node.level + 1)
            new_root.entries = [
                Entry(node.mbb(), node.node_id),
                Entry(sibling.mbb(), sibling.node_id),
            ]
            self._root_id = new_root.node_id
            result.new_node_ids.add(new_root.node_id)

    def _after_split(self, node: Node, sibling: Node) -> None:
        """Hook for variants that maintain extra per-node state (e.g. LHV)."""

    # ------------------------------------------------------------------
    # deletion
    # ------------------------------------------------------------------

    def delete(self, obj: SpatialObject) -> DeleteResult:
        """Remove one object (matched by id and rectangle)."""
        result = DeleteResult()
        path = self._find_leaf(obj)
        if path is None:
            return result
        result.found = True
        leaf = self._nodes[path[-1]]
        result.leaf_id = leaf.node_id
        for i, entry in enumerate(leaf.entries):
            if not entry.is_node_pointer and entry.child.oid == obj.oid and entry.rect == obj.rect:
                del leaf.entries[i]
                result.entry_removed_node_ids.add(leaf.node_id)
                break
        self._size -= 1
        self._version += 1
        self._condense_tree(path, result)
        self._shrink_root(result)
        return result

    def _find_leaf(self, obj: SpatialObject) -> Optional[List[int]]:
        """Root-to-leaf path of the leaf containing ``obj``, or None."""

        def descend(node_id: int, path: List[int]) -> Optional[List[int]]:
            node = self._nodes[node_id]
            path.append(node_id)
            if node.is_leaf:
                for entry in node.entries:
                    if (
                        not entry.is_node_pointer
                        and entry.child.oid == obj.oid
                        and entry.rect == obj.rect
                    ):
                        return path
            else:
                for entry in node.entries:
                    if entry.rect.contains(obj.rect):
                        found = descend(entry.child, list(path))
                        if found is not None:
                            return found
            return None

        return descend(self._root_id, [])

    def _condense_tree(self, path: List[int], result: DeleteResult) -> None:
        orphans: List[Tuple[int, List[Entry]]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = self._nodes[path[depth]]
            parent = self._nodes[path[depth - 1]]
            if len(node.entries) < self.min_entries:
                parent.entries = [
                    e for e in parent.entries if not (e.is_node_pointer and e.child == node.node_id)
                ]
                orphans.append((node.level, list(node.entries)))
                result.removed_node_ids.add(node.node_id)
                result.entry_removed_node_ids.add(parent.node_id)
                del self._nodes[node.node_id]
            else:
                if self._refresh_parent_entry(parent, node):
                    result.mbb_changed_node_ids.add(node.node_id)

        # Re-insert entries of eliminated nodes at their original levels.
        insert_result = InsertResult()
        for level, entries in orphans:
            for entry in entries:
                self._begin_insert()
                self._insert_entry(entry, level, insert_result)
        result.mbb_changed_node_ids.update(
            nid for nid in insert_result.mbb_changed_node_ids if nid in self._nodes
        )
        result.split_node_ids.update(
            nid for nid in insert_result.split_node_ids if nid in self._nodes
        )
        result.new_node_ids.update(
            nid for nid in insert_result.new_node_ids if nid in self._nodes
        )
        result.entry_removed_node_ids.update(
            nid for nid in insert_result.entry_removed_node_ids if nid in self._nodes
        )
        for node_id, rects in insert_result.added_rects.items():
            if node_id in self._nodes:
                result.added_rects.setdefault(node_id, []).extend(rects)

    def _shrink_root(self, result: DeleteResult) -> None:
        root = self.root
        while not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0].child
            result.removed_node_ids.add(root.node_id)
            del self._nodes[root.node_id]
            self._root_id = child_id
            root = self.root
        if not root.is_leaf and not root.entries:
            # Tree became empty: replace with a fresh leaf root.
            del self._nodes[root.node_id]
            new_root = self._new_node(level=0)
            self._root_id = new_root.node_id

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_query(
        self,
        rect: Rect,
        stats: Optional[IOStats] = None,
        child_filter: Optional[Callable[[int, Rect, Rect], bool]] = None,
        access_hook: Optional[Callable[[Node], None]] = None,
    ) -> List[SpatialObject]:
        """All objects whose rectangles intersect ``rect``.

        ``stats`` (when given) accumulates node accesses; the root is
        always visited and counted at its own level (internal, or leaf for
        a single-node tree).  ``child_filter(child_id, child_mbb, query)``
        can veto descending into a child whose MBB intersects the query —
        this is the hook the clipped R-tree uses.  ``access_hook`` is
        called with every visited node (the buffer-pool experiments use it
        to charge simulated disk reads).  The columnar batch engine
        (:mod:`repro.engine`) visits the same node set and reports
        identical counters.
        """
        results: List[SpatialObject] = []
        stack = [self._root_id]
        while stack:
            node = self._nodes[stack.pop()]
            if access_hook is not None:
                access_hook(node)
            if node.is_leaf:
                found_here = 0
                for entry in node.entries:
                    if entry.rect.intersects(rect):
                        results.append(entry.child)
                        found_here += 1
                if stats is not None:
                    stats.record_leaf(contributed=found_here > 0)
                continue
            if stats is not None:
                stats.record_internal()
            for entry in node.entries:
                if not entry.rect.intersects(rect):
                    continue
                if child_filter is not None and not child_filter(entry.child, entry.rect, rect):
                    continue
                stack.append(entry.child)
        return results

    def count_query(self, rect: Rect) -> int:
        """Number of objects intersecting ``rect`` (no I/O accounting)."""
        return len(self.range_query(rect))

    # ------------------------------------------------------------------
    # integrity checking (used heavily by the test-suite)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when any structural invariant is violated."""
        root = self.root
        seen_objects = 0
        for node_id, node in self._nodes.items():
            assert node.node_id == node_id, "node id mismatch in table"
            if node_id != self._root_id:
                assert (
                    self.min_entries <= len(node.entries) <= self.max_entries
                ), f"node {node_id} has {len(node.entries)} entries"
            else:
                assert len(node.entries) <= self.max_entries or self._size == 0
            for entry in node.entries:
                if node.is_leaf:
                    assert not entry.is_node_pointer, "leaf entry must hold an object"
                    seen_objects += 1
                else:
                    assert entry.is_node_pointer, "directory entry must point to a node"
                    child = self._nodes[entry.child]
                    assert child.level == node.level - 1, "child level mismatch"
                    assert entry.rect == child.mbb(), (
                        f"stale parent rect for child {entry.child}"
                    )
        assert seen_objects == self._size, (
            f"object count mismatch: {seen_objects} in leaves vs size {self._size}"
        )
        # Every non-root node must be reachable exactly once.
        reachable = self._reachable_ids()
        assert reachable == set(self._nodes), "unreachable or dangling nodes exist"
        assert root.level == max(n.level for n in self._nodes.values())

    def _reachable_ids(self) -> Set[int]:
        reachable: Set[int] = set()
        stack = [self._root_id]
        while stack:
            node_id = stack.pop()
            if node_id in reachable:
                continue
            reachable.add(node_id)
            node = self._nodes[node_id]
            if not node.is_leaf:
                stack.extend(entry.child for entry in node.entries)
        return reachable

    # ------------------------------------------------------------------
    # helpers for bulk loaders
    # ------------------------------------------------------------------

    def _adopt_structure(self, root_id: int, size: int) -> None:
        """Install a bulk-built structure (root id + object count)."""
        self._root_id = root_id
        self._size = size
        self._version += 1

    def _pack_level(self, children: Sequence[Node], level: int) -> Node:
        """Pack ``children`` into parents of ``level``; returns the root."""
        current = list(children)
        current_level = level
        while len(current) > 1:
            current_level += 1
            parents: List[Node] = []
            for start in range(0, len(current), self.max_entries):
                chunk = current[start : start + self.max_entries]
                parent = self._new_node(current_level)
                parent.entries = [Entry(child.mbb(), child.node_id) for child in chunk]
                parents.append(parent)
            # Avoid a final parent below minimum fill: rebalance with its
            # left sibling when possible.
            if len(parents) > 1 and len(parents[-1].entries) < self.min_entries:
                deficit = self.min_entries - len(parents[-1].entries)
                donor = parents[-2]
                moved = donor.entries[-deficit:]
                donor.entries = donor.entries[:-deficit]
                parents[-1].entries = moved + parents[-1].entries
            current = parents
        return current[0]
