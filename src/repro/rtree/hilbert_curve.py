"""d-dimensional Hilbert curve indexing.

Implements Skilling's transpose-based algorithm ("Programming the Hilbert
curve", AIP 2004), which works for any dimensionality and bit depth.  The
Hilbert R-tree only needs the forward mapping (coordinates -> curve
position); the inverse is provided for completeness and testing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.rect import Rect


def hilbert_index(coords: Sequence[int], bits: int) -> int:
    """Position of the integer point ``coords`` along the Hilbert curve.

    Every coordinate must lie in ``[0, 2**bits)``.  The result lies in
    ``[0, 2**(bits * d))`` and neighbouring curve positions are
    neighbouring grid cells.
    """
    dims = len(coords)
    x = _axes_to_transpose(list(coords), bits)
    return _interleave(x, bits, dims)


def hilbert_point(index: int, bits: int, dims: int) -> Tuple[int, ...]:
    """Inverse of :func:`hilbert_index`."""
    x = _deinterleave(index, bits, dims)
    return tuple(_transpose_to_axes(x, bits))


def _axes_to_transpose(x: List[int], bits: int) -> List[int]:
    dims = len(x)
    max_bit = 1 << (bits - 1)

    # Inverse undo of the excess work in TransposeToAxes.
    q = max_bit
    while q > 1:
        p = q - 1
        for i in range(dims):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1

    # Gray encode.
    for i in range(1, dims):
        x[i] ^= x[i - 1]
    t = 0
    q = max_bit
    while q > 1:
        if x[dims - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dims):
        x[i] ^= t
    return x


def _transpose_to_axes(x: List[int], bits: int) -> List[int]:
    dims = len(x)
    max_bit = 1 << (bits - 1)

    # Gray decode.
    t = x[dims - 1] >> 1
    for i in range(dims - 1, 0, -1):
        x[i] ^= x[i - 1]
    x[0] ^= t

    # Undo excess work.
    q = 2
    while q != max_bit << 1:
        p = q - 1
        for i in range(dims - 1, -1, -1):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q <<= 1
    return x


def _interleave(x: Sequence[int], bits: int, dims: int) -> int:
    value = 0
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            value = (value << 1) | ((x[i] >> bit) & 1)
    return value


def _deinterleave(value: int, bits: int, dims: int) -> List[int]:
    x = [0] * dims
    position = bits * dims - 1
    for bit in range(bits - 1, -1, -1):
        for i in range(dims):
            x[i] = (x[i] << 1) | ((value >> position) & 1)
            position -= 1
    return x


class HilbertMapper:
    """Maps continuous points inside a reference box to Hilbert positions.

    Points outside the reference box are clamped to it, so the mapper stays
    usable when objects are inserted after bulk loading.
    """

    def __init__(self, space: Rect, bits: int = 16):
        if bits < 1:
            raise ValueError("bits must be positive")
        self.space = space
        self.bits = bits
        self._cells = (1 << bits) - 1

    def grid_coords(self, point: Sequence[float]) -> Tuple[int, ...]:
        """Clamp + quantise a continuous point to the integer grid."""
        coords = []
        for value, low, high in zip(point, self.space.low, self.space.high):
            extent = high - low
            if extent <= 0:
                coords.append(0)
                continue
            ratio = (value - low) / extent
            ratio = min(1.0, max(0.0, ratio))
            coords.append(int(round(ratio * self._cells)))
        return tuple(coords)

    def index_of_point(self, point: Sequence[float]) -> int:
        """Hilbert position of a continuous point."""
        return hilbert_index(self.grid_coords(point), self.bits)

    def index_of_rect(self, rect: Rect) -> int:
        """Hilbert position of a rectangle (its centre, as in the HR-tree)."""
        return self.index_of_point(rect.center)
