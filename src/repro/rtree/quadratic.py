"""Guttman's original R-tree with the quadratic split algorithm (QR-tree)."""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry.rect import Rect
from repro.rtree.base import RTreeBase
from repro.rtree.entry import Entry
from repro.rtree.node import Node


class QuadraticRTree(RTreeBase):
    """The classic R-tree (Guttman, SIGMOD 1984), quadratic split variant.

    * ChooseLeaf descends into the child needing the least area enlargement
      (ties broken by smaller area).
    * Node splits use PickSeeds / PickNext with the usual minimum-fill
      safeguard.
    """

    variant_name = "quadratic"

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        best_index = 0
        best_enlargement = float("inf")
        best_area = float("inf")
        for i, entry in enumerate(node.entries):
            enlargement = entry.rect.enlargement(rect)
            area = entry.rect.volume()
            if enlargement < best_enlargement or (
                enlargement == best_enlargement and area < best_area
            ):
                best_index = i
                best_enlargement = enlargement
                best_area = area
        return best_index

    def _split(self, node: Node) -> Tuple[List[Entry], List[Entry]]:
        entries = list(node.entries)
        seed1, seed2 = self._pick_seeds(entries)
        group1 = [entries[seed1]]
        group2 = [entries[seed2]]
        rect1 = group1[0].rect
        rect2 = group2[0].rect
        remaining = [e for i, e in enumerate(entries) if i not in (seed1, seed2)]

        while remaining:
            # Minimum-fill safeguard: if one group must take everything left.
            if len(group1) + len(remaining) == self.min_entries:
                group1.extend(remaining)
                break
            if len(group2) + len(remaining) == self.min_entries:
                group2.extend(remaining)
                break

            index = self._pick_next(remaining, rect1, rect2)
            entry = remaining.pop(index)
            d1 = rect1.enlargement(entry.rect)
            d2 = rect2.enlargement(entry.rect)
            if d1 < d2 or (
                d1 == d2
                and (
                    rect1.volume() < rect2.volume()
                    or (rect1.volume() == rect2.volume() and len(group1) <= len(group2))
                )
            ):
                group1.append(entry)
                rect1 = rect1.union(entry.rect)
            else:
                group2.append(entry)
                rect2 = rect2.union(entry.rect)
        return group1, group2

    @staticmethod
    def _pick_seeds(entries: List[Entry]) -> Tuple[int, int]:
        """The pair of entries wasting the most area if grouped together."""
        worst_pair = (0, 1)
        worst_waste = float("-inf")
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                union = entries[i].rect.union(entries[j].rect)
                waste = union.volume() - entries[i].rect.volume() - entries[j].rect.volume()
                if waste > worst_waste:
                    worst_waste = waste
                    worst_pair = (i, j)
        return worst_pair

    @staticmethod
    def _pick_next(remaining: List[Entry], rect1: Rect, rect2: Rect) -> int:
        """The entry with the strongest preference for one of the groups."""
        best_index = 0
        best_difference = -1.0
        for i, entry in enumerate(remaining):
            d1 = rect1.enlargement(entry.rect)
            d2 = rect2.enlargement(entry.rect)
            difference = abs(d1 - d2)
            if difference > best_difference:
                best_difference = difference
                best_index = i
        return best_index
