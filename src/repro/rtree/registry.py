"""Build helpers: construct any R-tree variant by name."""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from repro.geometry.objects import SpatialObject
from repro.rtree.base import RTreeBase
from repro.rtree.hilbert import HilbertRTree
from repro.rtree.quadratic import QuadraticRTree
from repro.rtree.rrstar import RRStarTree
from repro.rtree.rstar import RStarTree
from repro.rtree.str_bulk import str_bulk_load
from repro.storage.page import DEFAULT_PAGE_LAYOUT, PageLayout

_ALIASES: Dict[str, str] = {
    "qr": "quadratic",
    "qrtree": "quadratic",
    "quadratic": "quadratic",
    "guttman": "quadratic",
    "hr": "hilbert",
    "hrtree": "hilbert",
    "hilbert": "hilbert",
    "r*": "rstar",
    "rstar": "rstar",
    "rr*": "rrstar",
    "rrstar": "rrstar",
    "str": "str",
}

_CLASSES: Dict[str, Type[RTreeBase]] = {
    "quadratic": QuadraticRTree,
    "hilbert": HilbertRTree,
    "rstar": RStarTree,
    "rrstar": RRStarTree,
}

#: Canonical variant names, in the order the paper lists them.
VARIANT_NAMES = ("quadratic", "hilbert", "rstar", "rrstar")

#: Display labels matching the paper's figures.
VARIANT_LABELS = {
    "quadratic": "QR-tree",
    "hilbert": "HR-tree",
    "rstar": "R*-tree",
    "rrstar": "RR*-tree",
}


def canonical_variant(name: str) -> str:
    """Resolve an alias (``"qr"``, ``"r*"``, ...) to its canonical name."""
    key = name.strip().lower().replace("-", "").replace("_", "")
    if key not in _ALIASES:
        raise ValueError(f"unknown R-tree variant {name!r}; known: {sorted(set(_ALIASES))}")
    return _ALIASES[key]


def rtree_class(name: str) -> Type[RTreeBase]:
    """The class implementing variant ``name`` (STR has no dedicated class)."""
    canonical = canonical_variant(name)
    if canonical == "str":
        return QuadraticRTree
    return _CLASSES[canonical]


def build_rtree(
    name: str,
    objects: Sequence[SpatialObject],
    max_entries: Optional[int] = None,
    min_entries: Optional[int] = None,
    page_layout: PageLayout = DEFAULT_PAGE_LAYOUT,
) -> RTreeBase:
    """Build an R-tree of variant ``name`` over ``objects``.

    ``max_entries`` defaults to the fan-out implied by ``page_layout`` for
    the objects' dimensionality, as the benchmark of [33] does.  The
    Hilbert and STR variants bulk load; the others insert one by one.
    """
    if not objects:
        raise ValueError("cannot build an index over an empty object collection")
    canonical = canonical_variant(name)
    dims = objects[0].dims
    if max_entries is None:
        max_entries = page_layout.max_entries(dims)

    if canonical == "hilbert":
        return HilbertRTree.bulk_load(
            list(objects), max_entries=max_entries, min_entries=min_entries
        )
    if canonical == "str":
        return str_bulk_load(list(objects), max_entries=max_entries, min_entries=min_entries)

    tree = _CLASSES[canonical](dims, max_entries=max_entries, min_entries=min_entries)
    for obj in objects:
        tree.insert(obj)
    return tree
