"""The clipped R-tree: any R-tree variant plus the CBB plugin (paper §IV).

``ClippedRTree`` does not modify the wrapped tree's pages at all — exactly
as in the paper, clip points live in an auxiliary :class:`ClipStore`
(Figure 4b), queries run the ordinary traversal with the extended
intersection test (Algorithm 2), and updates re-clip only the nodes whose
clip points can actually have changed (§IV-D).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.intersection import clipped_intersects, insertion_keeps_clips_valid
from repro.cbb.scoring import clipped_union_volume
from repro.cbb.store import ClipStore
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.rtree.base import DeleteResult, InsertResult, RTreeBase
from repro.rtree.node import Node
from repro.storage.page import DEFAULT_PAGE_LAYOUT, PageLayout
from repro.storage.stats import IOStats


class ReclipCause(enum.Enum):
    """Why a node's clip points were recomputed (Figure 12 categories)."""

    NODE_SPLIT = "node_split"
    MBB_CHANGE = "mbb_change"
    CBB_ONLY = "cbb_change"


@dataclass
class UpdateReport:
    """Re-clipping activity caused by one insert or delete."""

    reclips: List[Tuple[int, ReclipCause]] = field(default_factory=list)

    def count(self, cause: Optional[ReclipCause] = None) -> int:
        """Number of re-clips, optionally restricted to one cause."""
        if cause is None:
            return len(self.reclips)
        return sum(1 for _, c in self.reclips if c == cause)

    def counts_by_cause(self) -> Dict[ReclipCause, int]:
        """Re-clip counts per cause."""
        counts = {cause: 0 for cause in ReclipCause}
        for _, cause in self.reclips:
            counts[cause] += 1
        return counts


class ClippedRTree:
    """An R-tree variant augmented with clipped bounding boxes."""

    def __init__(self, tree: RTreeBase, config: ClippingConfig = ClippingConfig()):
        self.tree = tree
        self.config = config
        self.store = ClipStore()

    # ------------------------------------------------------------------
    # structure delegation (lets generic traversals — kNN search, the
    # columnar snapshot builder — treat a clipped tree like a plain one)
    # ------------------------------------------------------------------

    @property
    def dims(self) -> int:
        """Dimensionality of the wrapped tree."""
        return self.tree.dims

    @property
    def root_id(self) -> int:
        """Id of the wrapped tree's root node."""
        return self.tree.root_id

    def node(self, node_id: int):
        """Look up a node of the wrapped tree by id."""
        return self.tree.node(node_id)

    def leaf_count(self) -> int:
        """Number of leaf nodes of the wrapped tree."""
        return self.tree.leaf_count()

    def __len__(self) -> int:
        return len(self.tree)

    @property
    def version(self) -> Tuple[int, int]:
        """Combined (tree version, clip-store version) mutation counter.

        Bumped by inserts/deletes *and* by any re-clipping, so a columnar
        snapshot of a clipped tree goes stale whenever either the pages or
        the auxiliary clip table change.
        """
        return (self.tree.version, self.store.version)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    #: Engines understood by :meth:`clip_all`.
    CLIP_ENGINES = ("scalar", "vectorized")

    @classmethod
    def wrap(
        cls,
        tree: RTreeBase,
        method: str = "stairline",
        k: Optional[int] = None,
        tau: float = 0.025,
        engine: str = "scalar",
    ) -> "ClippedRTree":
        """Clip every node of an already-built tree and return the wrapper."""
        clipped = cls(tree, ClippingConfig(method=method, k=k, tau=tau))
        clipped.clip_all(engine=engine)
        return clipped

    def clip_all(self, engine: str = "scalar") -> int:
        """(Re)compute clip points for every node.

        Returns the number of nodes that ended up holding clip points —
        i.e. the resulting store length — identically for both engines
        (``tests/test_build_differential.py`` pins the agreement).

        ``engine`` selects the construction path:

        * ``"scalar"`` (default) — one ``compute_clip_points`` call per
          node, exactly Algorithm 1;
        * ``"vectorized"`` — the level-synchronous
          :func:`repro.engine.bulk_clip.bulk_clip`, which fills the store
          with identical clip points (values, ordering, scores) through
          batched NumPy kernels — much faster on large trees.
        """
        if engine not in self.CLIP_ENGINES:
            raise ValueError(
                f"unknown clip engine {engine!r}; known: {self.CLIP_ENGINES}"
            )
        if engine == "vectorized":
            # Imported lazily: the scalar path must not require NumPy.
            from repro.engine.bulk_clip import bulk_clip

            bulk_clip(self.tree, self.config, store=self.store)
        else:
            self.store.clear()
            for node in self.tree.nodes():
                self._clip_node(node)
        return len(self.store)

    def _clip_node(self, node: Node) -> bool:
        """Clip one node; returns True when any clip point was stored."""
        if not node.entries:
            self.store.remove(node.node_id)
            return False
        clips = compute_clip_points(node.mbb(), node.child_rects(), self.config)
        self.store.put(node.node_id, clips)
        return bool(clips)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_query(
        self,
        rect: Rect,
        stats: Optional[IOStats] = None,
        access_hook=None,
    ) -> List[SpatialObject]:
        """Range query using the clipped intersection test for child pruning."""

        def child_passes(child_id: int, child_mbb: Rect, query: Rect) -> bool:
            return clipped_intersects(child_mbb, self.store.get(child_id), query)

        return self.tree.range_query(
            rect, stats=stats, child_filter=child_passes, access_hook=access_hook
        )

    def count_query(self, rect: Rect) -> int:
        """Number of objects intersecting ``rect``."""
        return len(self.range_query(rect))

    def node_intersects(self, node_id: int, node_mbb: Rect, rect: Rect) -> bool:
        """Clipped intersection test for an arbitrary node (used by joins)."""
        return clipped_intersects(node_mbb, self.store.get(node_id), rect)

    # ------------------------------------------------------------------
    # updates (§IV-D)
    # ------------------------------------------------------------------

    def insert(self, obj: SpatialObject) -> UpdateReport:
        """Insert an object, re-clipping only where necessary."""
        result: InsertResult = self.tree.insert(obj)
        return self._apply_structural_changes(
            split_ids=result.split_node_ids | result.new_node_ids,
            changed_ids=result.mbb_changed_node_ids,
            added_rects=result.added_rects,
        )

    def delete(self, obj: SpatialObject) -> UpdateReport:
        """Delete an object.

        Pure deletions are handled lazily (§IV-D): a node whose MBB did not
        move keeps its clip points.  However, underflow handling re-inserts
        orphaned entries, and those re-insertions are treated eagerly just
        like ordinary inserts.
        """
        result: DeleteResult = self.tree.delete(obj)
        if not result.found:
            return UpdateReport()
        for node_id in result.removed_node_ids:
            self.store.remove(node_id)
        return self._apply_structural_changes(
            split_ids=result.split_node_ids | result.new_node_ids,
            changed_ids=result.mbb_changed_node_ids,
            added_rects=result.added_rects,
        )

    def _apply_structural_changes(
        self,
        split_ids: set,
        changed_ids: set,
        added_rects: Dict[int, List[Rect]],
    ) -> UpdateReport:
        """Re-clip (or validity-check) every node an update may have affected."""
        report = UpdateReport()
        reclipped = set()

        def reclip(node_id: int, cause: ReclipCause) -> None:
            if node_id in reclipped or not self.tree.has_node(node_id):
                return
            self._clip_node(self.tree.node(node_id))
            reclipped.add(node_id)
            report.reclips.append((node_id, cause))

        for node_id in sorted(split_ids):
            reclip(node_id, ReclipCause.NODE_SPLIT)
        for node_id in sorted(changed_ids):
            reclip(node_id, ReclipCause.MBB_CHANGE)

        # CBB-only candidates: nodes that received new entries, plus the
        # parents of every structurally-changed node (their clip points are
        # derived from the changed child rectangles).
        parents = self._parent_index()
        candidates: Dict[int, List[Rect]] = {}
        for node_id, rects in added_rects.items():
            if self.tree.has_node(node_id):
                candidates.setdefault(node_id, []).extend(rects)
        for node_id in split_ids | changed_ids:
            if not self.tree.has_node(node_id):
                continue
            parent_id = parents.get(node_id)
            if parent_id is None:
                continue
            candidates.setdefault(parent_id, []).append(self.tree.node(node_id).mbb())

        for node_id, new_rects in candidates.items():
            if node_id in reclipped:
                continue
            clips = self.store.get(node_id)
            if not clips:
                continue
            mbb = self.tree.node(node_id).mbb()
            if any(not insertion_keeps_clips_valid(mbb, clips, rect) for rect in new_rects):
                reclip(node_id, ReclipCause.CBB_ONLY)
        return report

    def reclip_nodes(self, node_ids: Iterable[int], engine: str = "scalar") -> int:
        """Recompute clip points for exactly ``node_ids`` (§IV-D, batched).

        Ids of nodes that no longer exist are dropped from the store; the
        surviving nodes get freshly computed clip points — identical to
        what a full :meth:`clip_all` would assign them.  Returns the
        number of live nodes re-clipped.  ``engine`` selects scalar
        per-node Algorithm 1 or the batched kernels of
        :func:`repro.engine.incremental_clip.reclip_nodes` (the
        compaction path of :class:`repro.engine.delta.SnapshotManager`).
        """
        if engine not in self.CLIP_ENGINES:
            raise ValueError(
                f"unknown clip engine {engine!r}; known: {self.CLIP_ENGINES}"
            )
        if engine == "vectorized":
            # Imported lazily: the scalar path must not require NumPy.
            from repro.engine.incremental_clip import reclip_nodes

            return reclip_nodes(self, node_ids, engine="vectorized")
        count = 0
        for node_id in sorted(set(node_ids)):
            if self.tree.has_node(node_id):
                self._clip_node(self.tree.node(node_id))
                count += 1
            else:
                self.store.remove(node_id)
        return count

    def _parent_index(self) -> Dict[int, int]:
        """Map of node id -> parent node id (rebuilt on demand)."""
        parents: Dict[int, int] = {}
        for node in self.tree.internal_nodes():
            for entry in node.entries:
                parents[entry.child] = node.node_id
        return parents

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def average_clip_points(self) -> float:
        """Average number of stored clip points per node (over all nodes)."""
        node_count = self.tree.node_count()
        if node_count == 0:
            return 0.0
        return self.store.total_clip_points() / node_count

    def clipped_volume_of(self, node: Node) -> float:
        """Exact volume clipped away from one node's MBB."""
        clips = self.store.get(node.node_id)
        if not clips or not node.entries:
            return 0.0
        return clipped_union_volume(clips, node.mbb())

    def storage_breakdown(self, layout: PageLayout = DEFAULT_PAGE_LAYOUT) -> Dict[str, int]:
        """Bytes used by directory nodes, leaf nodes, and clip points (Fig. 13)."""
        leaf_nodes = sum(1 for _ in self.tree.leaves())
        dir_nodes = self.tree.node_count() - leaf_nodes
        return {
            "leaf_nodes": leaf_nodes * layout.node_bytes(),
            "dir_nodes": dir_nodes * layout.node_bytes(),
            "clip_points": self.store.storage_bytes(),
        }

    def check_clip_invariants(self) -> None:
        """Assert that every stored clip point clips only dead space."""
        for node_id, clips in self.store.items():
            if not self.tree.has_node(node_id):
                raise AssertionError(f"clip store references missing node {node_id}")
            node = self.tree.node(node_id)
            mbb = node.mbb()
            for clip in clips:
                region = clip.region(mbb)
                for rect in node.child_rects():
                    overlap = region.intersection_volume(rect)
                    if overlap > 1e-9 * max(region.volume(), 1e-300):
                        raise AssertionError(
                            f"clip point {clip} of node {node_id} clips child {rect}"
                        )
