"""Hilbert R-tree (HR-tree): Hilbert-curve bulk loading plus ordered inserts.

The HR-tree of Kamel & Faloutsos sorts objects by the Hilbert value of
their centre and packs them into leaves in that order, which yields very
well-clustered nodes at build time.  For subsequent insertions each node
keeps its *largest Hilbert value* (LHV); an insert descends into the first
child whose LHV is at least the new object's Hilbert value and splits
nodes in Hilbert order.  (The published 2-to-3 sibling redistribution is
not implemented — overflowing nodes split in half — which only affects
space utilisation, not correctness; see DESIGN.md.)
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect, mbb_of_rects
from repro.rtree.base import RTreeBase
from repro.rtree.entry import Entry
from repro.rtree.hilbert_curve import HilbertMapper
from repro.rtree.node import Node


class HilbertRTree(RTreeBase):
    """Hilbert-sort bulk-loaded R-tree with Hilbert-ordered insertion."""

    variant_name = "hilbert"

    def __init__(
        self,
        dims: int,
        max_entries: int = 50,
        min_entries: Optional[int] = None,
        space: Optional[Rect] = None,
        bits: int = 16,
        leaf_fill: float = 1.0,
    ):
        super().__init__(dims, max_entries, min_entries)
        if not 0.0 < leaf_fill <= 1.0:
            raise ValueError("leaf_fill must be in (0, 1]")
        self.leaf_fill = leaf_fill
        self._bits = bits
        self._mapper = HilbertMapper(space, bits) if space is not None else None

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        objects: Sequence[SpatialObject],
        max_entries: int = 50,
        min_entries: Optional[int] = None,
        bits: int = 16,
        leaf_fill: float = 1.0,
    ) -> "HilbertRTree":
        """Build an HR-tree over ``objects`` by Hilbert-sort packing."""
        if not objects:
            raise ValueError("cannot bulk load an empty object collection")
        dims = objects[0].dims
        space = mbb_of_rects([obj.rect for obj in objects])
        tree = cls(
            dims,
            max_entries=max_entries,
            min_entries=min_entries,
            space=space,
            bits=bits,
            leaf_fill=leaf_fill,
        )
        tree._bulk_build(objects)
        return tree

    def _ensure_mapper(self, rect: Rect) -> HilbertMapper:
        if self._mapper is None:
            # Derive a reference space from the first rectangle seen; it
            # will be generous enough because coordinates are clamped.
            self._mapper = HilbertMapper(rect.scaled(4.0) if rect.volume() > 0 else rect, self._bits)
        return self._mapper

    def _bulk_build(self, objects: Sequence[SpatialObject]) -> None:
        mapper = self._mapper
        keyed = sorted(
            ((mapper.index_of_rect(obj.rect), obj) for obj in objects), key=lambda kv: kv[0]
        )
        capacity = max(self.min_entries, int(self.max_entries * self.leaf_fill))

        # Drop the fresh empty root created by the base constructor.
        del self._nodes[self._root_id]

        leaves: List[Node] = []
        for start in range(0, len(keyed), capacity):
            chunk = keyed[start : start + capacity]
            leaf = self._new_node(level=0)
            leaf.entries = [Entry(obj.rect, obj) for _, obj in chunk]
            leaf.lhv = chunk[-1][0]
            leaves.append(leaf)
        if len(leaves) > 1 and len(leaves[-1].entries) < self.min_entries:
            deficit = self.min_entries - len(leaves[-1].entries)
            donor = leaves[-2]
            moved = donor.entries[-deficit:]
            donor.entries = donor.entries[:-deficit]
            leaves[-1].entries = moved + leaves[-1].entries
            donor.lhv = mapper.index_of_rect(donor.entries[-1].rect)

        root = self._pack_level(leaves, level=0)
        self._refresh_lhv_subtree(root)
        self._adopt_structure(root.node_id, len(objects))

    def _refresh_lhv_subtree(self, node: Node) -> int:
        if node.is_leaf:
            if node.lhv is None:
                mapper = self._ensure_mapper(node.mbb())
                node.lhv = max(mapper.index_of_rect(e.rect) for e in node.entries)
            return node.lhv
        node.lhv = max(self._refresh_lhv_subtree(self._nodes[e.child]) for e in node.entries)
        return node.lhv

    # ------------------------------------------------------------------
    # dynamic inserts
    # ------------------------------------------------------------------

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        mapper = self._ensure_mapper(rect)
        h = mapper.index_of_rect(rect)
        # Keep the visited node's LHV an upper bound of everything routed
        # through it; this is cheaper than recomputing LHVs bottom-up and is
        # sufficient for the ordering heuristic.
        node.lhv = h if node.lhv is None else max(node.lhv, h)
        best_index: Optional[int] = None
        for i, entry in enumerate(node.entries):
            child = self._nodes[entry.child]
            child_lhv = child.lhv if child.lhv is not None else -1
            if child_lhv >= h:
                best_index = i
                break
        if best_index is None:
            best_index = len(node.entries) - 1
        return best_index

    def _insert_entry(self, entry: Entry, level: int, result) -> None:
        super()._insert_entry(entry, level, result)
        if self._mapper is not None and result.leaf_id is not None and level == 0:
            leaf = self._nodes.get(result.leaf_id)
            if leaf is not None:
                h = self._mapper.index_of_rect(entry.rect)
                leaf.lhv = h if leaf.lhv is None else max(leaf.lhv, h)

    def _split(self, node: Node) -> Tuple[List[Entry], List[Entry]]:
        mapper = self._ensure_mapper(node.entries[0].rect)
        if node.is_leaf:
            ordered = sorted(node.entries, key=lambda e: mapper.index_of_rect(e.rect))
        else:
            ordered = sorted(
                node.entries,
                key=lambda e: self._nodes[e.child].lhv
                if self._nodes[e.child].lhv is not None
                else mapper.index_of_rect(e.rect),
            )
        half = len(ordered) // 2
        half = max(self.min_entries, min(half, len(ordered) - self.min_entries))
        return ordered[:half], ordered[half:]

    def _after_split(self, node: Node, sibling: Node) -> None:
        mapper = self._mapper
        if mapper is None:
            return
        for n in (node, sibling):
            if n.is_leaf:
                n.lhv = max(mapper.index_of_rect(e.rect) for e in n.entries)
            else:
                n.lhv = max(
                    self._nodes[e.child].lhv or mapper.index_of_rect(e.rect) for e in n.entries
                )
