"""The revised R*-tree (RR*-tree; Beckmann & Seeger, SIGMOD 2009).

This is a faithful re-implementation of the *structure* of the published
algorithm rather than a port of the authors' C code:

* ChooseSubtree first prefers children that cover the new rectangle
  outright (picking the smallest such child); otherwise candidates are
  ordered by perimeter (margin) enlargement and the one whose insertion
  adds the least overlap — measured by margin when every candidate has
  zero-volume overlap, as the original does for degenerate boxes — wins.
* The split picks the axis by minimum margin sum (as the R*-tree does) and
  the distribution by minimal overlap, using a perimeter-based overlap
  measure when volumes degenerate, with a balance-favouring tie-break.
* There is no forced reinsertion.

These are the components the paper credits for the RR*-tree's strong query
performance; see DESIGN.md for the fidelity discussion.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.geometry.rect import Rect, mbb_of_rects
from repro.rtree.base import RTreeBase
from repro.rtree.entry import Entry
from repro.rtree.node import Node


def _overlap_margin(a: Rect, b: Rect) -> float:
    """Margin of the intersection of two rectangles (0 when disjoint)."""
    inter = a.intersection(b)
    return inter.margin() if inter is not None else 0.0


class RRStarTree(RTreeBase):
    """Revised R*-tree (see module docstring for fidelity notes)."""

    variant_name = "rrstar"

    # ------------------------------------------------------------------
    # ChooseSubtree
    # ------------------------------------------------------------------

    def _choose_subtree(self, node: Node, rect: Rect) -> int:
        covering = [
            (entry.rect.volume(), i)
            for i, entry in enumerate(node.entries)
            if entry.rect.contains(rect)
        ]
        if covering:
            return min(covering)[1]

        order = sorted(
            range(len(node.entries)),
            key=lambda i: (
                node.entries[i].rect.union(rect).margin() - node.entries[i].rect.margin(),
                node.entries[i].rect.enlargement(rect),
            ),
        )
        rects = [entry.rect for entry in node.entries]
        use_margin = all(r.volume() == 0.0 for r in rects)

        best_index = order[0]
        best_delta = float("inf")
        for i in order:
            enlarged = rects[i].union(rect)
            delta = 0.0
            for j, other in enumerate(rects):
                if i == j:
                    continue
                if use_margin:
                    delta += _overlap_margin(enlarged, other) - _overlap_margin(rects[i], other)
                else:
                    delta += enlarged.intersection_volume(other) - rects[i].intersection_volume(other)
            if delta < best_delta:
                best_delta = delta
                best_index = i
            if delta == 0.0:
                break
        return best_index

    # ------------------------------------------------------------------
    # Split
    # ------------------------------------------------------------------

    def _distributions(self, ordered: List[Entry]):
        total = len(ordered)
        for split_at in range(self.min_entries, total - self.min_entries + 1):
            yield split_at, ordered[:split_at], ordered[split_at:]

    def _split(self, node: Node) -> Tuple[List[Entry], List[Entry]]:
        entries = list(node.entries)
        axis = self._choose_split_axis(entries)
        return self._choose_split_index(entries, axis)

    def _choose_split_axis(self, entries: List[Entry]) -> int:
        best_axis = 0
        best_margin = float("inf")
        for axis in range(self.dims):
            margin_sum = 0.0
            ordered = sorted(entries, key=lambda e: (e.rect.low[axis], e.rect.high[axis]))
            for _, group1, group2 in self._distributions(ordered):
                margin_sum += mbb_of_rects([e.rect for e in group1]).margin()
                margin_sum += mbb_of_rects([e.rect for e in group2]).margin()
            if margin_sum < best_margin:
                best_margin = margin_sum
                best_axis = axis
        return best_axis

    def _choose_split_index(
        self, entries: List[Entry], axis: int
    ) -> Tuple[List[Entry], List[Entry]]:
        ordered = sorted(entries, key=lambda e: (e.rect.low[axis], e.rect.high[axis]))
        half = len(ordered) / 2.0

        best: Tuple[List[Entry], List[Entry]] = (
            ordered[: self.min_entries],
            ordered[self.min_entries :],
        )
        best_key = (float("inf"), float("inf"), float("inf"))
        for split_at, group1, group2 in self._distributions(ordered):
            mbb1 = mbb_of_rects([e.rect for e in group1])
            mbb2 = mbb_of_rects([e.rect for e in group2])
            overlap_volume = mbb1.intersection_volume(mbb2)
            overlap_perimeter = _overlap_margin(mbb1, mbb2)
            balance_penalty = abs(split_at - half)
            key = (overlap_volume, overlap_perimeter, balance_penalty)
            if key < best_key:
                best_key = key
                best = (list(group1), list(group2))
        return best
