"""Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE 1997).

Not one of the four variants evaluated in the paper, but a standard
packing strategy of the same benchmark family; exposed as an optional
builder (``build_rtree("str", ...)``) and used by some ablation benches.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.geometry.objects import SpatialObject
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.quadratic import QuadraticRTree


def _tile(objects: List[SpatialObject], dims: int, dim: int, capacity: int) -> List[List[SpatialObject]]:
    """Recursively sort-and-tile objects along ``dim`` and beyond."""
    if dim >= dims or len(objects) <= capacity:
        return [objects]
    remaining_dims = dims - dim
    leaf_pages = math.ceil(len(objects) / capacity)
    slab_count = math.ceil(leaf_pages ** (1.0 / remaining_dims))
    slab_size = math.ceil(len(objects) / slab_count)
    ordered = sorted(objects, key=lambda o: o.rect.center[dim])
    slabs: List[List[SpatialObject]] = []
    for start in range(0, len(ordered), slab_size):
        slabs.extend(_tile(ordered[start : start + slab_size], dims, dim + 1, capacity))
    return slabs


def str_bulk_load(
    objects: Sequence[SpatialObject],
    max_entries: int = 50,
    min_entries: Optional[int] = None,
    leaf_fill: float = 1.0,
) -> QuadraticRTree:
    """Build an R-tree over ``objects`` with STR packing.

    The resulting tree behaves like a quadratic R-tree for later updates
    (STR only prescribes the initial packing).
    """
    if not objects:
        raise ValueError("cannot bulk load an empty object collection")
    if not 0.0 < leaf_fill <= 1.0:
        raise ValueError("leaf_fill must be in (0, 1]")
    dims = objects[0].dims
    tree = QuadraticRTree(dims, max_entries=max_entries, min_entries=min_entries)
    capacity = max(tree.min_entries, int(max_entries * leaf_fill))

    slabs = _tile(list(objects), dims, 0, capacity)

    # Drop the fresh empty root created by the constructor.
    del tree._nodes[tree.root_id]

    leaves: List[Node] = []
    for slab in slabs:
        for start in range(0, len(slab), capacity):
            chunk = slab[start : start + capacity]
            leaf = tree._new_node(level=0)
            leaf.entries = [Entry(obj.rect, obj) for obj in chunk]
            leaves.append(leaf)
    if len(leaves) > 1 and len(leaves[-1].entries) < tree.min_entries:
        deficit = tree.min_entries - len(leaves[-1].entries)
        donor = leaves[-2]
        moved = donor.entries[-deficit:]
        donor.entries = donor.entries[:-deficit]
        leaves[-1].entries = moved + leaves[-1].entries

    root = tree._pack_level(leaves, level=0)
    tree._adopt_structure(root.node_id, len(objects))
    return tree
