"""R-tree variants and the clipped-R-tree plugin.

Four disk-based R-tree variants are provided, mirroring the paper's
experimental substrate:

* :class:`~repro.rtree.quadratic.QuadraticRTree` — Guttman's original
  R-tree with quadratic split (``"quadratic"`` / ``"qr"``).
* :class:`~repro.rtree.hilbert.HilbertRTree` — Hilbert-curve bulk-loaded
  R-tree (``"hilbert"`` / ``"hr"``).
* :class:`~repro.rtree.rstar.RStarTree` — the R*-tree (``"rstar"`` / ``"r*"``).
* :class:`~repro.rtree.rrstar.RRStarTree` — the revised R*-tree
  (``"rrstar"`` / ``"rr*"``).

:class:`~repro.rtree.clipped.ClippedRTree` wraps any of them with the
clipped-bounding-box plugin of the paper.
"""

from repro.rtree.base import DeleteResult, InsertResult, RTreeBase
from repro.rtree.clipped import ClippedRTree, ReclipCause, UpdateReport
from repro.rtree.entry import Entry
from repro.rtree.hilbert import HilbertRTree
from repro.rtree.node import Node
from repro.rtree.quadratic import QuadraticRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree, rtree_class
from repro.rtree.rrstar import RRStarTree
from repro.rtree.rstar import RStarTree
from repro.rtree.str_bulk import str_bulk_load

__all__ = [
    "Entry",
    "Node",
    "RTreeBase",
    "InsertResult",
    "DeleteResult",
    "QuadraticRTree",
    "HilbertRTree",
    "RStarTree",
    "RRStarTree",
    "ClippedRTree",
    "ReclipCause",
    "UpdateReport",
    "build_rtree",
    "rtree_class",
    "VARIANT_NAMES",
    "str_bulk_load",
]
