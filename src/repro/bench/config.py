"""Benchmark configuration.

The paper's datasets hold 1–12 million objects; re-running every
experiment at that scale in pure Python would take days, and all reported
quantities are ratios that stabilise at much smaller sizes (see
DESIGN.md §3).  ``BenchConfig`` therefore defaults to a few thousand
objects per dataset and can be scaled with the ``REPRO_BENCH_SCALE``
environment variable (e.g. ``REPRO_BENCH_SCALE=4`` quadruples every
dataset and query count).
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple


class ParameterError(ValueError):
    """An unknown parameter name or an unparsable parameter value."""


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


_DEFAULT_SIZES = {
    "par02": 3200,
    "par03": 2200,
    "rea02": 3200,
    "rea03": 3200,
    "axo03": 2200,
    "den03": 2200,
    "neu03": 2200,
    # uniform stand-ins for the d ∈ {2,...,8} scenario sweep
    "uniform02": 1600,
    "uniform03": 1600,
    "uniform04": 1600,
    "uniform06": 1600,
    "uniform08": 1600,
}


@dataclass
class BenchConfig:
    """Parameters shared by every experiment."""

    #: objects per dataset (already scaled by REPRO_BENCH_SCALE)
    dataset_sizes: Dict[str, int] = field(default_factory=dict)
    #: queries evaluated per (dataset, profile)
    queries_per_profile: int = 36
    #: node capacity used when building trees (kept moderate so that pure-
    #: Python insertion-built variants stay fast; the paper derives it from
    #: a 4 KiB page instead, see repro.storage.page)
    max_entries: int = 24
    #: maximum clip points per node: ``None`` means the paper's 2**(d+1)
    clip_k: int | None = None
    #: minimum clipped volume as a fraction of node volume (paper: 2.5 %)
    clip_tau: float = 0.025
    #: base RNG seed
    seed: int = 7
    #: query engine for the range-query experiments: "scalar" runs one
    #: Python traversal per query, "columnar" answers whole batches via
    #: the vectorized engine (identical I/O counts, much faster)
    engine: str = "scalar"
    #: construction engine for clipping whole trees: "scalar" runs
    #: Algorithm 1 one node at a time, "vectorized" the level-synchronous
    #: bulk_clip (identical clip points, much faster)
    build_engine: str = "scalar"
    #: join engine for the §V spatial-join experiment: "scalar" runs the
    #: reference INLJ/STT, "columnar" the vectorized batch joins over
    #: frozen snapshots (identical pairs and I/O counts, much faster)
    join_engine: str = "scalar"
    #: update engine for the incremental-updates experiment: "delta"
    #: absorbs writes in a SnapshotManager overlay and compacts with
    #: dirty-node-only re-clipping, "refreeze" rebuilds the snapshot on
    #: every write (identical query results, much slower)
    update_engine: str = "delta"
    #: worker processes for the columnar engines (1 = in-process serial;
    #: >1 shards batches/joins across a pool over a shared mmap snapshot,
    #: see repro.engine.parallel)
    workers: int = 1
    #: requests driven through the ``serve`` experiment's closed loop
    serve_requests: int = 400
    #: maximum in-flight requests in the ``serve`` experiment
    serve_concurrency: int = 32
    #: dataset size used by the Figure 15 scalability experiment
    scalability_size: int = 5000
    #: objects per side of the spatial-join experiment
    join_size: int = 1200
    #: the R-tree variants, in the paper's order
    variants: Tuple[str, ...] = ("quadratic", "hilbert", "rstar", "rrstar")

    def __post_init__(self):
        if not self.dataset_sizes:
            scale = _scale()
            self.dataset_sizes = {
                name: max(200, int(size * scale)) for name, size in _DEFAULT_SIZES.items()
            }

    def size_of(self, dataset: str) -> int:
        """Number of objects to generate for ``dataset``."""
        return self.dataset_sizes.get(dataset, 2000)

    @classmethod
    def tiny(cls) -> "BenchConfig":
        """A very small configuration used by the test-suite."""
        return cls(
            dataset_sizes={name: 400 for name in _DEFAULT_SIZES},
            queries_per_profile=10,
            max_entries=16,
            scalability_size=1200,
            join_size=400,
        )

    # ------------------------------------------------------------------
    # declarative parameter schema (used by ``repro bench run --set``)
    # ------------------------------------------------------------------

    def as_dict(self) -> Dict:
        """A JSON-serialisable snapshot of every parameter."""
        data = dataclasses.asdict(self)
        data["variants"] = list(self.variants)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "BenchConfig":
        """Rebuild a config from :meth:`as_dict` output (extra keys ignored).

        Used by ``repro bench compare`` to re-run an experiment under the
        exact configuration recorded in a baseline archive.
        """
        names = {fld.name for fld in dataclasses.fields(cls)}
        kwargs = {key: value for key, value in data.items() if key in names}
        if "variants" in kwargs:
            kwargs["variants"] = tuple(kwargs["variants"])
        if "dataset_sizes" in kwargs:
            kwargs["dataset_sizes"] = {
                str(name): int(size) for name, size in kwargs["dataset_sizes"].items()
            }
        return cls(**kwargs)

    @classmethod
    def param_schema(cls) -> Dict[str, str]:
        """Settable parameter names mapped to a human-readable type.

        Derived from the dataclass fields; ``size`` is a convenience
        pseudo-parameter that sets every entry of ``dataset_sizes`` at
        once (mirroring the CLI's ``--size``).
        """
        schema: Dict[str, str] = {}
        for fld in dataclasses.fields(cls):
            if fld.name == "dataset_sizes":
                continue
            if fld.name == "variants":
                schema[fld.name] = "comma-separated variant names"
            elif fld.name == "clip_k":
                schema[fld.name] = "int or 'none'"
            elif fld.type in ("int", int):
                schema[fld.name] = "int"
            elif fld.type in ("float", float):
                schema[fld.name] = "float"
            else:
                schema[fld.name] = "str"
        schema["size"] = "int (sets every dataset size)"
        return schema

    def apply_overrides(self, overrides: Mapping[str, str]) -> "BenchConfig":
        """Apply ``key=value`` overrides in place and return ``self``.

        Every key must appear in :meth:`param_schema`; unknown keys and
        unparsable values raise :class:`ParameterError` naming the
        offending key and the valid alternatives.
        """
        schema = self.param_schema()
        for key, raw in overrides.items():
            if key not in schema:
                raise ParameterError(
                    f"unknown parameter {key!r}; settable parameters: "
                    + ", ".join(sorted(schema))
                )
            try:
                if key == "size":
                    self.dataset_sizes = {
                        name: int(raw) for name in self.dataset_sizes
                    }
                elif key == "variants":
                    self.variants = tuple(
                        part.strip() for part in str(raw).split(",") if part.strip()
                    )
                elif key == "clip_k":
                    self.clip_k = None if str(raw).lower() == "none" else int(raw)
                else:
                    current = getattr(self, key)
                    if isinstance(current, bool):
                        self.__dict__[key] = str(raw).lower() in ("1", "true", "yes")
                    elif isinstance(current, int):
                        self.__dict__[key] = int(raw)
                    elif isinstance(current, float):
                        self.__dict__[key] = float(raw)
                    else:
                        self.__dict__[key] = type(current)(raw) if current is not None else raw
            except ParameterError:
                raise
            except (TypeError, ValueError) as exc:
                raise ParameterError(
                    f"cannot parse {key}={raw!r} as {schema[key]}: {exc}"
                ) from None
        return self
