"""Benchmark configuration.

The paper's datasets hold 1–12 million objects; re-running every
experiment at that scale in pure Python would take days, and all reported
quantities are ratios that stabilise at much smaller sizes (see
DESIGN.md §3).  ``BenchConfig`` therefore defaults to a few thousand
objects per dataset and can be scaled with the ``REPRO_BENCH_SCALE``
environment variable (e.g. ``REPRO_BENCH_SCALE=4`` quadruples every
dataset and query count).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Tuple


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


_DEFAULT_SIZES = {
    "par02": 3200,
    "par03": 2200,
    "rea02": 3200,
    "rea03": 3200,
    "axo03": 2200,
    "den03": 2200,
    "neu03": 2200,
}


@dataclass
class BenchConfig:
    """Parameters shared by every experiment."""

    #: objects per dataset (already scaled by REPRO_BENCH_SCALE)
    dataset_sizes: Dict[str, int] = field(default_factory=dict)
    #: queries evaluated per (dataset, profile)
    queries_per_profile: int = 36
    #: node capacity used when building trees (kept moderate so that pure-
    #: Python insertion-built variants stay fast; the paper derives it from
    #: a 4 KiB page instead, see repro.storage.page)
    max_entries: int = 24
    #: maximum clip points per node: ``None`` means the paper's 2**(d+1)
    clip_k: int | None = None
    #: minimum clipped volume as a fraction of node volume (paper: 2.5 %)
    clip_tau: float = 0.025
    #: base RNG seed
    seed: int = 7
    #: query engine for the range-query experiments: "scalar" runs one
    #: Python traversal per query, "columnar" answers whole batches via
    #: the vectorized engine (identical I/O counts, much faster)
    engine: str = "scalar"
    #: construction engine for clipping whole trees: "scalar" runs
    #: Algorithm 1 one node at a time, "vectorized" the level-synchronous
    #: bulk_clip (identical clip points, much faster)
    build_engine: str = "scalar"
    #: join engine for the §V spatial-join experiment: "scalar" runs the
    #: reference INLJ/STT, "columnar" the vectorized batch joins over
    #: frozen snapshots (identical pairs and I/O counts, much faster)
    join_engine: str = "scalar"
    #: update engine for the incremental-updates experiment: "delta"
    #: absorbs writes in a SnapshotManager overlay and compacts with
    #: dirty-node-only re-clipping, "refreeze" rebuilds the snapshot on
    #: every write (identical query results, much slower)
    update_engine: str = "delta"
    #: worker processes for the columnar engines (1 = in-process serial;
    #: >1 shards batches/joins across a pool over a shared mmap snapshot,
    #: see repro.engine.parallel)
    workers: int = 1
    #: dataset size used by the Figure 15 scalability experiment
    scalability_size: int = 5000
    #: objects per side of the spatial-join experiment
    join_size: int = 1200
    #: the R-tree variants, in the paper's order
    variants: Tuple[str, ...] = ("quadratic", "hilbert", "rstar", "rrstar")

    def __post_init__(self):
        if not self.dataset_sizes:
            scale = _scale()
            self.dataset_sizes = {
                name: max(200, int(size * scale)) for name, size in _DEFAULT_SIZES.items()
            }

    def size_of(self, dataset: str) -> int:
        """Number of objects to generate for ``dataset``."""
        return self.dataset_sizes.get(dataset, 2000)

    @classmethod
    def tiny(cls) -> "BenchConfig":
        """A very small configuration used by the test-suite."""
        return cls(
            dataset_sizes={name: 400 for name in _DEFAULT_SIZES},
            queries_per_profile=10,
            max_entries=16,
            scalability_size=1200,
            join_size=400,
        )
