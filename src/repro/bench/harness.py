"""Shared builders with caching so experiments reuse datasets and trees."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.config import BenchConfig
from repro.cbb.clipping import ClippingConfig
from repro.datasets import generate
from repro.engine import ColumnarIndex
from repro.geometry.objects import SpatialObject
from repro.query.workload import RangeQueryWorkload
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree


class DatasetCache:
    """Process-wide cache of generated datasets and calibrated workloads.

    Generating objects and calibrating workloads is deterministic in
    ``(dataset, size, seed)`` — so when the runner executes several
    experiments back to back (each with its own :class:`ExperimentContext`),
    every context shares this cache instead of regenerating identical
    datasets.  ``hits``/``misses`` make the sharing observable in tests.
    """

    def __init__(self):
        self.objects: Dict[Tuple[str, int, int], List[SpatialObject]] = {}
        self.workloads: Dict[Tuple[str, int, int, int], RangeQueryWorkload] = {}
        self.hits = 0
        self.misses = 0

    def get_objects(self, dataset: str, size: int, seed: int) -> List[SpatialObject]:
        key = (dataset, size, seed)
        if key in self.objects:
            self.hits += 1
        else:
            self.misses += 1
            self.objects[key] = generate(dataset, size, seed=seed)
        return self.objects[key]

    def get_workload(
        self, dataset: str, target_results: int, size: int, seed: int
    ) -> RangeQueryWorkload:
        key = (dataset, target_results, size, seed)
        if key in self.workloads:
            self.hits += 1
        else:
            self.misses += 1
            objects = self.get_objects(dataset, size, seed)
            self.workloads[key] = RangeQueryWorkload.from_objects(
                objects, target_results=target_results, seed=seed
            )
        return self.workloads[key]

    def clear(self) -> None:
        self.objects.clear()
        self.workloads.clear()
        self.hits = 0
        self.misses = 0


#: The default process-wide cache shared by every ExperimentContext.
GLOBAL_DATASET_CACHE = DatasetCache()


class ExperimentContext:
    """Builds and caches datasets, trees, clipped trees, and workloads.

    Building an insertion-based R-tree is by far the most expensive step of
    the benchmark suite, so every experiment shares one context (module
    scope in the pytest-benchmark suite) and looks objects/trees up here.
    Datasets and calibrated workloads additionally live in a process-wide
    :class:`DatasetCache` keyed by ``(dataset, size, seed)``, so even
    *separate* contexts (one per archived run) never regenerate an
    identical dataset.
    """

    def __init__(
        self,
        config: Optional[BenchConfig] = None,
        dataset_cache: Optional[DatasetCache] = None,
    ):
        self.config = config if config is not None else BenchConfig()
        self.datasets = dataset_cache if dataset_cache is not None else GLOBAL_DATASET_CACHE
        self._trees: Dict[Tuple[str, str, int, int], RTreeBase] = {}
        self._clipped: Dict[Tuple[int, str, Optional[int], float], ClippedRTree] = {}
        self._snapshots: Dict[Tuple[int, object], ColumnarIndex] = {}

    # ------------------------------------------------------------------

    def objects(self, dataset: str, size: Optional[int] = None, seed: Optional[int] = None) -> List[SpatialObject]:
        """Objects of ``dataset`` at the configured size (cached)."""
        size = self.config.size_of(dataset) if size is None else size
        seed = self.config.seed if seed is None else seed
        return self.datasets.get_objects(dataset, size, seed)

    def tree(
        self,
        dataset: str,
        variant: str,
        size: Optional[int] = None,
        max_entries: Optional[int] = None,
    ) -> RTreeBase:
        """An R-tree of ``variant`` over ``dataset`` (cached)."""
        size = self.config.size_of(dataset) if size is None else size
        max_entries = self.config.max_entries if max_entries is None else max_entries
        key = (dataset, variant, size, max_entries)
        if key not in self._trees:
            objects = self.objects(dataset, size)
            self._trees[key] = build_rtree(variant, objects, max_entries=max_entries)
        return self._trees[key]

    def clipped(
        self,
        dataset: str,
        variant: str,
        method: str = "stairline",
        k: Optional[int] = None,
        tau: Optional[float] = None,
        size: Optional[int] = None,
    ) -> ClippedRTree:
        """A clipped wrapper around the cached tree (cached per parameters)."""
        tree = self.tree(dataset, variant, size=size)
        k = self.config.clip_k if k is None else k
        tau = self.config.clip_tau if tau is None else tau
        key = (id(tree), method, k, tau)
        if key not in self._clipped:
            clipped = ClippedRTree(tree, ClippingConfig(method=method, k=k, tau=tau))
            clipped.clip_all(engine=self.config.build_engine)
            self._clipped[key] = clipped
        return self._clipped[key]

    def snapshot(self, index) -> ColumnarIndex:
        """A columnar snapshot of ``index`` (cached per structure version).

        The cache key includes the source's ``version`` counter, so a
        snapshot is rebuilt automatically after the underlying tree (or
        its clip store) mutates.
        """
        key = (id(index), index.version)
        if key not in self._snapshots:
            self._snapshots[key] = ColumnarIndex.from_tree(index)
        return self._snapshots[key]

    def query_index(self, index, engine: Optional[str] = None):
        """``index`` itself for the scalar engine, its snapshot for columnar."""
        engine = self.config.engine if engine is None else engine
        return self.snapshot(index) if engine == "columnar" else index

    def workload(self, dataset: str, target_results: int, size: Optional[int] = None) -> RangeQueryWorkload:
        """A calibrated range-query workload over ``dataset`` (cached).

        Cached process-wide by ``(dataset, target_results, size, seed)`` —
        the seed is part of the key, so contexts with different configured
        seeds never alias each other's calibrations.
        """
        size = self.config.size_of(dataset) if size is None else size
        return self.datasets.get_workload(dataset, target_results, size, self.config.seed)

    def queries(self, dataset: str, target_results: int, size: Optional[int] = None):
        """A materialised list of queries for the given profile."""
        workload = self.workload(dataset, target_results, size=size)
        return workload.query_list(self.config.queries_per_profile)
