"""Benchmark harness: configuration, shared builders, and per-figure experiments.

Every table and figure of the paper's evaluation has a module under
``repro.bench.experiments`` whose ``run(config)`` function returns the
rows the paper plots; the ``benchmarks/`` pytest-benchmark suite executes
them and prints the tables, and ``EXPERIMENTS.md`` records the comparison
against the published numbers.
"""

from repro.bench.config import BenchConfig
from repro.bench.harness import ExperimentContext
from repro.bench.reporting import format_table

__all__ = ["BenchConfig", "ExperimentContext", "format_table"]
