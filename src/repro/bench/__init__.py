"""Benchmark harness: configuration, shared builders, and archived experiments.

Every table and figure of the paper's evaluation — plus the scenario
matrix the paper never ran (``dims``, ``mixed``, ``hotspot``) — is a
registered experiment (:mod:`repro.bench.registry`) with a uniform
``build(context, **kwargs) -> tables`` contract.  The runner
(:mod:`repro.bench.runner`) executes registered experiments with
parameter overrides and writes timestamped archive folders
(:mod:`repro.bench.archive`); ``repro bench compare`` diffs a run
against a prior archive and exits non-zero on metric regressions.
"""

from repro.bench.config import BenchConfig, ParameterError
from repro.bench.harness import DatasetCache, ExperimentContext, GLOBAL_DATASET_CACHE
from repro.bench.reporting import format_table, to_markdown

__all__ = [
    "BenchConfig",
    "ParameterError",
    "DatasetCache",
    "ExperimentContext",
    "GLOBAL_DATASET_CACHE",
    "format_table",
    "to_markdown",
]
