"""Timestamped, parameter-stamped archives of experiment runs.

Every ``repro bench run`` lands in ``<archive-root>/<experiment>/<run-id>/``:

* ``config.json`` — the full :class:`~repro.bench.config.BenchConfig` plus
  any experiment-specific keyword overrides;
* ``meta.json``  — wall/CPU time, git revision, host info, RNG seed,
  harness version and timestamps;
* ``result.json`` — the experiment's tables (rows, exactly what the paper
  plots) and the scalar metrics derived from them;
* ``table.txt`` / ``table.md`` — the rendered tables, for humans and for
  pasting into reports.

The module also owns the *comparison* rules (`compare_metrics`): metric
deltas against a prior archive, with regression gating on deterministic
metrics (I/O counts, dead-space shares, pair counts) and informational
reporting for timing metrics, whose noise would make a CI gate flaky.

Finally, :func:`write_legacy_bench` is the one serializer behind the
historical ``benchmarks/BENCH_*.json`` files — byte-compatible with the
five hand-rolled writers it replaced, so existing CI floor tooling keeps
working unchanged.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.bench.reporting import format_table, to_markdown

#: Environment override for the archive root (CLI: ``--archive-root``).
ARCHIVE_ROOT_ENV = "REPRO_ARCHIVE_ROOT"

#: Bumped when the on-disk layout of a run folder changes.
ARCHIVE_FORMAT_VERSION = 1

_RUN_FILES = ("config.json", "meta.json", "result.json")


class ArchiveError(ValueError):
    """A missing, unreadable, or malformed archive folder."""


def default_archive_root() -> Path:
    """``$REPRO_ARCHIVE_ROOT`` or ``./archive``."""
    return Path(os.environ.get(ARCHIVE_ROOT_ENV, "archive"))


def new_run_id(parent: Optional[Path] = None) -> str:
    """A sortable timestamped run id, unique within ``parent``."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    if parent is None or not (parent / stamp).exists():
        return stamp
    counter = 2
    while (parent / f"{stamp}-{counter}").exists():
        counter += 1
    return f"{stamp}-{counter}"


def _git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def collect_meta(seed: Optional[int] = None) -> Dict:
    """Provenance recorded alongside every run (host, git rev, versions)."""
    return {
        "archive_format_version": ARCHIVE_FORMAT_VERSION,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_revision": _git_revision(),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "hostname": platform.node(),
        "cpu_count": os.cpu_count(),
        "seed": seed,
    }


@dataclass
class ArchivedRun:
    """One run folder, loaded back into memory."""

    path: Path
    experiment: str
    run_id: str
    config: Dict
    meta: Dict
    result: Dict

    @property
    def tables(self) -> Dict[str, List[Dict]]:
        return self.result.get("tables", {})

    @property
    def metrics(self) -> Dict[str, float]:
        return self.result.get("metrics", {})


def write_run(
    archive_root: Union[str, Path],
    experiment: str,
    tables: Mapping[str, List[Dict]],
    metrics: Mapping[str, float],
    config: Mapping,
    meta: Mapping,
    titles: Optional[Mapping[str, str]] = None,
) -> ArchivedRun:
    """Write one run folder and return it as an :class:`ArchivedRun`."""
    exp_dir = Path(archive_root) / experiment
    exp_dir.mkdir(parents=True, exist_ok=True)
    run_id = new_run_id(exp_dir)
    run_dir = exp_dir / run_id
    run_dir.mkdir()

    result = {"tables": {name: list(rows) for name, rows in tables.items()},
              "metrics": dict(metrics)}
    (run_dir / "config.json").write_text(json.dumps(dict(config), indent=2, sort_keys=True) + "\n")
    (run_dir / "meta.json").write_text(json.dumps(dict(meta), indent=2, sort_keys=True) + "\n")
    (run_dir / "result.json").write_text(json.dumps(result, indent=2) + "\n")

    titles = titles or {}
    text_parts, md_parts = [], []
    for name, rows in result["tables"].items():
        title = titles.get(name, f"{experiment} — {name}")
        text_parts.append(format_table(rows, title=title))
        md_parts.append(to_markdown(rows, title=title))
    if result["metrics"]:
        metric_rows = [
            {"metric": key, "value": value} for key, value in sorted(result["metrics"].items())
        ]
        text_parts.append(format_table(metric_rows, title="metrics"))
        md_parts.append(to_markdown(metric_rows, title="metrics"))
    (run_dir / "table.txt").write_text("\n\n".join(text_parts) + "\n")
    (run_dir / "table.md").write_text("\n\n".join(md_parts) + "\n")

    return ArchivedRun(
        path=run_dir, experiment=experiment, run_id=run_id,
        config=dict(config), meta=dict(meta), result=result,
    )


def load_run(path: Union[str, Path]) -> ArchivedRun:
    """Load one run folder (``archive/<exp>/<run-id>``)."""
    run_dir = Path(path)
    if not run_dir.is_dir():
        raise ArchiveError(f"{run_dir} is not an archived run directory")
    payload = {}
    for name in _RUN_FILES:
        file = run_dir / name
        if not file.is_file():
            raise ArchiveError(f"{run_dir} is missing {name}")
        try:
            payload[name] = json.loads(file.read_text())
        except json.JSONDecodeError as exc:
            raise ArchiveError(f"{file} is not valid JSON: {exc}") from None
    return ArchivedRun(
        path=run_dir,
        experiment=run_dir.parent.name,
        run_id=run_dir.name,
        config=payload["config.json"],
        meta=payload["meta.json"],
        result=payload["result.json"],
    )


def list_runs(archive_root: Union[str, Path], experiment: str) -> List[str]:
    """Run ids archived for ``experiment``, oldest first."""
    exp_dir = Path(archive_root) / experiment
    if not exp_dir.is_dir():
        return []
    return sorted(
        entry.name for entry in exp_dir.iterdir()
        if entry.is_dir() and (entry / "result.json").is_file()
    )


def resolve_run(
    archive_root: Union[str, Path], experiment: str, run_id: str = "latest"
) -> ArchivedRun:
    """Load ``run_id`` (or the newest run) of ``experiment``."""
    if run_id == "latest":
        runs = list_runs(archive_root, experiment)
        if not runs:
            raise ArchiveError(
                f"no archived runs for {experiment!r} under {archive_root}"
            )
        run_id = runs[-1]
    return load_run(Path(archive_root) / experiment / run_id)


# ----------------------------------------------------------------------
# metric comparison
# ----------------------------------------------------------------------

_TIMING_TOKENS = (
    "seconds", "_ms", "ms_per", "qps", "per_second", "speedup", "ops_per",
    "wall", "cpu",
)
_HIGHER_TOKENS = (
    "speedup", "qps", "per_second", "ops_per", "reduction", "optimality",
    "share", "hit_rate", "results",
)
_LOWER_TOKENS = (
    "leaf_acc", "accesses", "dead", "reclip", "remaining", "bytes",
    "points", "_ms", "seconds", "misses",
)


def classify_metric(name: str):
    """``(direction, gating)`` for a metric name.

    ``direction`` is ``"higher"`` (bigger is better), ``"lower"``, or
    ``"neutral"`` (any drift beyond the threshold is suspicious —
    deterministic counts should not move at all under a fixed config).
    Timing metrics are never *gating*: they are reported but cannot fail
    a compare, because wall-clock noise across machines would make the
    CI gate flaky.  Deterministic metrics (I/O counts, dead-space
    percentages, pair counts) gate.
    """
    lname = name.lower()
    gating = not any(token in lname for token in _TIMING_TOKENS)
    if any(token in lname for token in _HIGHER_TOKENS):
        direction = "higher"
    elif any(token in lname for token in _LOWER_TOKENS):
        direction = "lower"
    else:
        direction = "neutral"
    return direction, gating


@dataclass
class MetricDelta:
    """One metric compared between a baseline and a current run."""

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    delta_pct: Optional[float]
    direction: str
    gating: bool
    regressed: bool

    def as_row(self) -> Dict:
        status = "REGRESSION" if self.regressed else ("ok" if self.gating else "info")
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta_pct": self.delta_pct,
            "direction": self.direction,
            "status": status,
        }


@dataclass
class ComparisonReport:
    """Every metric delta of one ``repro bench compare`` invocation."""

    experiment: str
    baseline_run: str
    current_run: str
    threshold: float
    deltas: List[MetricDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        rows = [d.as_row() for d in self.deltas]
        title = (
            f"{self.experiment}: current {self.current_run} vs baseline "
            f"{self.baseline_run} (threshold {self.threshold * 100:.0f}%)"
        )
        verdict = (
            "OK — no regressions"
            if self.ok
            else f"FAIL — {len(self.regressions)} regressed metric(s)"
        )
        return format_table(rows, title=title) + f"\n{verdict}"


def compare_metrics(
    baseline: Mapping[str, float],
    current: Mapping[str, float],
    *,
    experiment: str = "",
    baseline_run: str = "baseline",
    current_run: str = "current",
    threshold: float = 0.2,
    include_timing: bool = False,
) -> ComparisonReport:
    """Diff two metric dicts; a gated drift beyond ``threshold`` regresses.

    ``include_timing=True`` additionally gates timing metrics — useful on
    a quiet dedicated box, too noisy for shared CI runners.
    """
    report = ComparisonReport(
        experiment=experiment, baseline_run=baseline_run,
        current_run=current_run, threshold=threshold,
    )
    for name in sorted(set(baseline) | set(current)):
        base, cur = baseline.get(name), current.get(name)
        direction, gating = classify_metric(name)
        if include_timing:
            gating = True
        if base is None or cur is None:
            # A gated metric that appears or disappears is a drift too.
            report.deltas.append(MetricDelta(name, base, cur, None, direction, gating, gating))
            continue
        if not isinstance(base, (int, float)) or not isinstance(cur, (int, float)):
            continue
        if base == 0:
            delta = 0.0 if cur == 0 else float("inf") * (1 if cur > 0 else -1)
        else:
            delta = (cur - base) / abs(base)
        regressed = False
        if gating:
            if direction == "higher":
                regressed = delta < -threshold
            elif direction == "lower":
                regressed = delta > threshold
            else:
                regressed = abs(delta) > threshold
        report.deltas.append(
            MetricDelta(
                name, float(base), float(cur),
                round(100.0 * delta, 2) if delta not in (float("inf"), float("-inf")) else None,
                direction, gating, regressed,
            )
        )
    return report


# ----------------------------------------------------------------------
# legacy BENCH_*.json records + floor checks
# ----------------------------------------------------------------------


def write_legacy_bench(record: Mapping, path: Union[str, Path]) -> None:
    """Write a ``BENCH_*.json`` record exactly as the historical scripts did.

    Byte-compatible with the five hand-rolled writers this replaced
    (``json.dumps(record, indent=2) + "\\n"``, insertion order preserved),
    so the existing CI artifact tooling and review diffs stay stable.
    """
    Path(path).write_text(json.dumps(dict(record), indent=2) + "\n")


@dataclass(frozen=True)
class Floor:
    """A minimum acceptable value for one (possibly nested) record key."""

    key: str  # dotted path into the record, e.g. "clip_uniform03_stairline.speedup"
    minimum: float
    enforce: bool = True
    label: Optional[str] = None


def check_floors(record: Mapping, floors: Sequence[Floor]) -> List[str]:
    """Failure messages for every *enforced* floor the record misses."""
    failures = []
    for floor in floors:
        if not floor.enforce:
            continue
        value: object = record
        for part in floor.key.split("."):
            if not isinstance(value, Mapping) or part not in value:
                failures.append(f"record has no key {floor.key!r}")
                value = None
                break
            value = value[part]
        if value is None:
            continue
        if float(value) < floor.minimum:
            name = floor.label or floor.key
            failures.append(
                f"{name} = {float(value):.2f} is below the floor {floor.minimum:g}"
            )
    return failures
