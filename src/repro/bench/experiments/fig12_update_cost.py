"""Figure 12: expected number of re-clipped CBBs per insertion."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import ExperimentContext
from repro.cbb.clipping import ClippingConfig
from repro.datasets.registry import DATASET_NAMES
from repro.rtree.clipped import ClippedRTree, ReclipCause
from repro.rtree.registry import VARIANT_LABELS, build_rtree


def run(
    context: ExperimentContext,
    datasets: Sequence[str] = DATASET_NAMES,
    method: str = "stairline",
    insert_fraction: float = 0.1,
) -> List[Dict]:
    """Build on 90 % of each dataset, insert the remaining 10 %, count re-clips."""
    config = context.config
    rows: List[Dict] = []
    for dataset in datasets:
        objects = context.objects(dataset)
        split_at = int(len(objects) * (1.0 - insert_fraction))
        initial, inserts = objects[:split_at], objects[split_at:]
        if not inserts:
            continue
        for variant in config.variants:
            tree = build_rtree(variant, initial, max_entries=config.max_entries)
            clipped = ClippedRTree(
                tree, ClippingConfig(method=method, k=config.clip_k, tau=config.clip_tau)
            )
            clipped.clip_all(engine=config.build_engine)
            cause_counts = {cause: 0 for cause in ReclipCause}
            for obj in inserts:
                report = clipped.insert(obj)
                for cause, count in report.counts_by_cause().items():
                    cause_counts[cause] += count
            denominator = len(inserts)
            rows.append(
                {
                    "dataset": dataset,
                    "variant": VARIANT_LABELS[variant],
                    "reclips_per_insert": round(
                        sum(cause_counts.values()) / denominator, 3
                    ),
                    "node_splits": round(cause_counts[ReclipCause.NODE_SPLIT] / denominator, 3),
                    "mbb_changes": round(cause_counts[ReclipCause.MBB_CHANGE] / denominator, 3),
                    "cbb_changes": round(cause_counts[ReclipCause.CBB_ONLY] / denominator, 3),
                }
            )
    return rows
