"""Dimensionality sweep (d ∈ {2, 4, 6, 8}): where clipping's win shrinks.

The paper evaluates clipped bounding boxes on 2-d and 3-d data only.  This
scenario sweeps uniform-box datasets through d = 2, 4, 6 and 8 and
measures, per dimensionality and clipping method, (a) how much of the
node dead space the clip points remove and (b) the range-query leaf
accesses of the clipped tree relative to its unclipped counterpart.

The expected shape — and the reason the paper stops at d = 3 — is that
both wins shrink as d grows: a node has 2^d corners, so the paper's
default budget of k = 2^(d+1) clip points buys an ever smaller share of
an exponentially growing corner population, while uniform high-d boxes
leave proportionally less *clippable* (corner-aligned) dead space.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentContext
from repro.bench.reporting import percent
from repro.cbb.clipping import ClippingConfig
from repro.metrics.dead_space import average_dead_space, clipped_dead_space_summary
from repro.query.range_query import execute_workload
from repro.rtree.clipped import ClippedRTree

#: The sweep's dimensionalities and their registered uniform datasets.
DIMS = (2, 4, 6, 8)


def dataset_for(dims: int) -> str:
    return f"uniform{dims:02d}"


def run(
    context: ExperimentContext,
    dims: Sequence[int] = DIMS,
    methods: Sequence[str] = ("skyline", "stairline"),
    variant: str = "str",
    target_results: int = 10,
    size: Optional[int] = None,
) -> List[Dict]:
    """Clipped dead space and relative query I/O per dimensionality."""
    config = context.config
    engine = config.engine
    workers = config.workers if engine == "columnar" else 1
    rows: List[Dict] = []
    for d in dims:
        dataset = dataset_for(d)
        tree = context.tree(dataset, variant, size=size)
        queries = context.queries(dataset, target_results, size=size)
        base = execute_workload(
            context.query_index(tree), queries, engine=engine, workers=workers
        )
        for method in methods:
            # Scalar corner enumeration is exponential in d, so the sweep
            # always clips with the vectorized engine — the clip points
            # (and therefore every metric below) are engine-invariant.
            clipped = ClippedRTree(
                tree,
                ClippingConfig(
                    method=method, k=config.clip_k, tau=config.clip_tau
                ),
            )
            clipped.clip_all(engine="vectorized")
            result = execute_workload(
                context.query_index(clipped), queries, engine=engine, workers=workers
            )
            summary = clipped_dead_space_summary(clipped)
            relative = (
                100.0 * result.avg_leaf_accesses / base.avg_leaf_accesses
                if base.avg_leaf_accesses > 0
                else 100.0
            )
            rows.append(
                {
                    "dims": d,
                    "method": "CSKY" if method == "skyline" else "CSTA",
                    "objects": len(context.objects(dataset, size=size)),
                    "dead_space_pct": percent(average_dead_space(tree)),
                    "clipped_share_pct": percent(summary.clipped_share_of_dead_space),
                    "avg_clip_points": round(clipped.store.average_clip_points(), 2),
                    "unclipped_leaf_acc": round(base.avg_leaf_accesses, 3),
                    "clipped_leaf_acc": round(result.avg_leaf_accesses, 3),
                    "relative_pct": round(relative, 1),
                    "io_reduction_pct": round(100.0 - relative, 1),
                }
            )
    return rows
