"""Incremental-update experiment: delta overlay vs refreeze-per-write.

The paper's §IV-D measures how many nodes an insertion re-clips; this
experiment measures what that costs end-to-end for a *served* columnar
snapshot.  Two :class:`~repro.engine.delta.SnapshotManager` instances
absorb the same mixed insert/delete stream over identical clipped trees:

* ``refreeze`` applies every write to the source synchronously (scalar
  insert/delete plus per-update re-clipping) and re-freezes the snapshot
  after each one — the naive baseline;
* ``delta`` buffers writes in the overlay and folds them in through
  periodic compactions with dirty-node-only re-clipping.

Both managers answer an identical query workload at the end and must
agree exactly — the speedup column is only meaningful because the two
engines serve the same results.  ``BenchConfig.update_engine`` (CLI:
``--update-engine``) selects which engine's manager backs the
differential check's reference side; it is reported per row so the flag
is observable in the output.
"""

from __future__ import annotations

import copy
import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import ExperimentContext
from repro.engine.delta import SnapshotManager
from repro.geometry.objects import SpatialObject
from repro.rtree.registry import VARIANT_LABELS


def _update_stream(
    context: ExperimentContext, dataset: str, update_fraction: float
) -> List[Tuple[str, SpatialObject]]:
    """A shuffled insert/delete stream: half fresh objects, half victims."""
    config = context.config
    objects = context.objects(dataset)
    updates = max(8, min(120, int(len(objects) * update_fraction)))
    rng = random.Random(config.seed + 17)
    victims = rng.sample(objects, min(updates // 2, len(objects)))
    fresh = context.objects(dataset, size=updates - len(victims), seed=config.seed + 101)
    ops = [("delete", obj) for obj in victims] + [("insert", obj) for obj in fresh]
    rng.shuffle(ops)
    return ops


def _apply(manager: SnapshotManager, ops: Sequence[Tuple[str, SpatialObject]]) -> float:
    """Apply every op (plus a final compaction) and return elapsed seconds."""
    start = time.perf_counter()
    for kind, obj in ops:
        if kind == "insert":
            manager.insert(obj)
        else:
            manager.delete(obj)
    # The final fold belongs to the amortized cost, so time it too.
    manager.compact()
    return time.perf_counter() - start


def _result_keys(batches: List[List[SpatialObject]]) -> List[List[Tuple]]:
    return [sorted((o.oid, o.rect.low, o.rect.high) for o in hits) for hits in batches]


def run(
    context: ExperimentContext,
    datasets: Sequence[str] = ("par02", "rea02", "axo03"),
    method: str = "stairline",
    update_fraction: float = 0.1,
    compact_every: int = 32,
) -> List[Dict]:
    """Amortized per-write cost of both update engines, with a differential check."""
    config = context.config
    rows: List[Dict] = []
    for dataset in datasets:
        ops = _update_stream(context, dataset, update_fraction)
        queries = context.queries(dataset, target_results=20)
        for variant in config.variants:
            # The context's clipped tree is cached and must never mutate;
            # each manager owns a deep copy it is free to write to.
            reference = context.clipped(dataset, variant, method=method)
            refreeze = SnapshotManager(
                copy.deepcopy(reference), update_engine="refreeze"
            )
            delta = SnapshotManager(
                copy.deepcopy(reference),
                update_engine="delta",
                compact_every=compact_every,
                clip_engine="vectorized" if config.build_engine == "vectorized" else "scalar",
            )
            refreeze_seconds = _apply(refreeze, ops)
            delta_seconds = _apply(delta, ops)

            # Both engines must serve identical live states, whichever one
            # the config designates as the serving side.
            serving, other = (
                (delta, refreeze) if config.update_engine == "delta" else (refreeze, delta)
            )
            served = _result_keys(serving.range_query_batch(queries))
            assert served == _result_keys(other.range_query_batch(queries))

            per_update = 1000.0 / len(ops)
            rows.append(
                {
                    "dataset": dataset,
                    "variant": VARIANT_LABELS[variant],
                    "updates": len(ops),
                    "refreeze_ms_per_update": round(refreeze_seconds * per_update, 3),
                    "delta_ms_per_update": round(delta_seconds * per_update, 3),
                    "speedup": round(refreeze_seconds / delta_seconds, 1)
                    if delta_seconds > 0
                    else float("inf"),
                    "compactions": delta.total_compactions,
                    "reclipped_nodes": delta.total_reclipped_nodes,
                    "serving_engine": config.update_engine,
                }
            )
    return rows
