"""Ablation studies for the design choices called out in DESIGN.md.

* ``run_tau_sweep`` — effect of the τ storage threshold (the paper fixes
  τ = 2.5 % and notes "we lack space to also vary τ").
* ``run_scoring_comparison`` — the paper's additive score approximation
  (Figure 5) versus the exact union volume of the selected clip points.
* ``run_k_sweep_io`` — query I/O as a function of k (Figure 10 varies k
  only for dead space; this measures its effect on leaf accesses).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import ExperimentContext
from repro.bench.reporting import percent
from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.scoring import clipped_union_volume
from repro.metrics.dead_space import clipped_dead_space_summary
from repro.query.range_query import execute_workload


def run_tau_sweep(
    context: ExperimentContext,
    dataset: str = "axo03",
    variant: str = "rrstar",
    taus: Sequence[float] = (0.0, 0.01, 0.025, 0.05, 0.1),
) -> List[Dict]:
    """Storage (clip points per node) and clipped dead space as τ varies."""
    rows: List[Dict] = []
    for tau in taus:
        clipped = context.clipped(dataset, variant, method="stairline", tau=tau)
        summary = clipped_dead_space_summary(clipped)
        rows.append(
            {
                "tau": tau,
                # averaged over *all* nodes (unclipped nodes count as zero),
                # so the value is monotone in tau
                "avg_clip_points": round(clipped.average_clip_points(), 2),
                "clipped_dead_space_pct": percent(summary.clipped),
                "remaining_dead_space_pct": percent(summary.remaining),
            }
        )
    return rows


def run_scoring_comparison(
    context: ExperimentContext, dataset: str = "par02", variant: str = "rstar"
) -> List[Dict]:
    """Additive score vs exact union volume of the selected clip points."""
    tree = context.tree(dataset, variant)
    config = ClippingConfig(method="stairline", k=context.config.clip_k, tau=context.config.clip_tau)
    rows: List[Dict] = []
    total_score = 0.0
    total_exact = 0.0
    nodes = 0
    for node in tree.nodes():
        if not node.entries:
            continue
        mbb = node.mbb()
        if mbb.volume() <= 0:
            continue
        clips = compute_clip_points(mbb, node.child_rects(), config)
        if not clips:
            continue
        score_sum = sum(c.score for c in clips)
        exact = clipped_union_volume(clips, mbb)
        total_score += score_sum
        total_exact += exact
        nodes += 1
    overcount = (total_score - total_exact) / total_exact if total_exact > 0 else 0.0
    rows.append(
        {
            "dataset": dataset,
            "variant": variant,
            "nodes": nodes,
            "additive_score_volume": round(total_score, 2),
            "exact_clipped_volume": round(total_exact, 2),
            "approximation_overcount_pct": percent(overcount),
        }
    )
    return rows


def run_k_sweep_io(
    context: ExperimentContext,
    dataset: str = "axo03",
    variant: str = "rstar",
    target_results: int = 10,
    k_values: Sequence[int] = (1, 2, 4, 8, 16),
) -> List[Dict]:
    """Relative query I/O as the number of clip points per node grows."""
    tree = context.tree(dataset, variant)
    queries = context.queries(dataset, target_results)
    base = execute_workload(tree, queries)
    rows: List[Dict] = []
    for k in k_values:
        clipped = context.clipped(dataset, variant, method="stairline", k=k)
        result = execute_workload(clipped, queries)
        relative = (
            100.0 * result.avg_leaf_accesses / base.avg_leaf_accesses
            if base.avg_leaf_accesses
            else 100.0
        )
        rows.append(
            {
                "k": k,
                "avg_leaf_acc": round(result.avg_leaf_accesses, 3),
                "relative_to_unclipped_pct": round(relative, 1),
            }
        )
    return rows
