"""One module per table/figure of the paper's evaluation.

Every module exposes ``run(context, ...) -> rows`` returning the data the
paper plots.  The mapping from experiment to module:

=========================  ==============================================
Figure 1 (a/b/c)           :mod:`repro.bench.experiments.fig01_motivation`
Figure 8                   :mod:`repro.bench.experiments.fig08_bounding_example`
Figure 9                   :mod:`repro.bench.experiments.fig09_bounding_comparison`
Figure 10                  :mod:`repro.bench.experiments.fig10_clipped_dead_space`
Figure 11 + Table I        :mod:`repro.bench.experiments.fig11_range_queries`
Figure 12                  :mod:`repro.bench.experiments.fig12_update_cost`
Figure 13                  :mod:`repro.bench.experiments.fig13_storage`
Figure 14                  :mod:`repro.bench.experiments.fig14_build_time`
Spatial joins (§V)         :mod:`repro.bench.experiments.joins`
Figure 15                  :mod:`repro.bench.experiments.fig15_scalability`
Incremental updates        :mod:`repro.bench.experiments.updates`
Ablations (k, τ, scoring)  :mod:`repro.bench.experiments.ablations`
=========================  ==============================================
"""
