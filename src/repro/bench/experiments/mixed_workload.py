"""Mixed read/write workload over :class:`~repro.engine.delta.SnapshotManager`.

The paper's update experiment (Figure 12) counts re-clips per insertion
in isolation; real serving interleaves queries with writes.  This
scenario replays one shuffled stream of range queries, inserts, and
deletes — at several write fractions — through both update engines:

* ``refreeze`` re-clips and re-freezes the snapshot on every write, so
  reads always hit a fresh snapshot but writes are brutally expensive;
* ``delta`` buffers writes in the overlay (queries merge base + delta)
  and folds them in through periodic compactions.

Both engines must answer every read in the stream identically — the
throughput comparison is only meaningful over equal answers.  Reported
per write fraction: end-to-end operations/second for both engines and
the delta engine's compaction counters.
"""

from __future__ import annotations

import copy
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import ExperimentContext
from repro.engine.delta import SnapshotManager
from repro.geometry.rect import Rect


def _build_stream(
    context: ExperimentContext,
    dataset: str,
    total_ops: int,
    write_fraction: float,
    target_results: int,
) -> List[Tuple[str, object]]:
    """A shuffled list of ``("query", rect)`` / ``("insert"|"delete", obj)`` ops."""
    config = context.config
    objects = context.objects(dataset)
    writes = int(round(total_ops * write_fraction))
    reads = total_ops - writes
    deletes = writes // 2
    inserts = writes - deletes
    rng = random.Random(config.seed + 31)
    victims = rng.sample(objects, min(deletes, len(objects)))
    fresh = context.objects(dataset, size=inserts, seed=config.seed + 101)
    workload = context.workload(dataset, target_results)
    queries = workload.query_list(reads, seed=config.seed + 5)
    ops: List[Tuple[str, object]] = (
        [("query", q) for q in queries]
        + [("delete", obj) for obj in victims]
        + [("insert", obj) for obj in fresh[:inserts]]
    )
    rng.shuffle(ops)
    return ops


def _replay(manager: SnapshotManager, ops: Sequence[Tuple[str, object]]):
    """Run the stream; returns (elapsed seconds, per-read result keys)."""
    answers: List[List[Tuple]] = []
    start = time.perf_counter()
    for kind, payload in ops:
        if kind == "query":
            hits = manager.range_query(payload)  # type: ignore[arg-type]
            answers.append(sorted((o.oid, o.rect.low, o.rect.high) for o in hits))
        elif kind == "insert":
            manager.insert(payload)
        else:
            manager.delete(payload)
    manager.compact()
    return time.perf_counter() - start, answers


def run(
    context: ExperimentContext,
    dataset: str = "par02",
    variant: str = "str",
    method: str = "stairline",
    write_fractions: Sequence[float] = (0.05, 0.2, 0.5),
    total_ops: Optional[int] = None,
    compact_every: int = 32,
    target_results: int = 10,
) -> List[Dict]:
    """Mixed-stream throughput of both update engines, with equal answers."""
    config = context.config
    if total_ops is None:
        total_ops = max(40, min(240, len(context.objects(dataset)) // 10))
    reference = context.clipped(dataset, variant, method=method)
    rows: List[Dict] = []
    for write_fraction in write_fractions:
        ops = _build_stream(context, dataset, total_ops, write_fraction, target_results)
        # The cached clipped tree must never mutate; each manager owns a copy.
        delta = SnapshotManager(
            copy.deepcopy(reference),
            update_engine="delta",
            compact_every=compact_every,
            clip_engine="vectorized" if config.build_engine == "vectorized" else "scalar",
        )
        refreeze = SnapshotManager(copy.deepcopy(reference), update_engine="refreeze")
        delta_seconds, delta_answers = _replay(delta, ops)
        refreeze_seconds, refreeze_answers = _replay(refreeze, ops)
        # Interleaved reads must agree op for op, whatever the engine.
        assert delta_answers == refreeze_answers
        reads = sum(1 for kind, _ in ops if kind == "query")
        rows.append(
            {
                "dataset": dataset,
                "write_pct": round(100.0 * write_fraction, 1),
                "ops": len(ops),
                "reads": reads,
                "writes": len(ops) - reads,
                "delta_ops_per_second": round(len(ops) / delta_seconds, 1)
                if delta_seconds > 0
                else None,
                "refreeze_ops_per_second": round(len(ops) / refreeze_seconds, 1)
                if refreeze_seconds > 0
                else None,
                "speedup": round(refreeze_seconds / delta_seconds, 2)
                if delta_seconds > 0
                else None,
                "compactions": delta.total_compactions,
                "reclipped_nodes": delta.total_reclipped_nodes,
            }
        )
    return rows
