"""Figure 8: the eight bounding methods on the paper's running example.

The paper's Figure 3a indexes seven objects into two leaves; Figure 8 then
draws, for each bounding method, the two leaf shapes and reports their
dead space.  We reconstruct a geometrically equivalent example (five
scattered objects with empty corners in one leaf, two elongated objects in
the other) and report the same per-leaf dead-space percentages.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bounding.base import SHAPE_NAMES, bounding_shape, dead_space_of_shape
from repro.bench.reporting import percent
from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.scoring import clipped_union_volume
from repro.geometry.rect import Rect, mbb_of_rects
from repro.geometry.union_volume import union_volume

#: Leaf 1 — the five objects of Figure 2 (scattered, corners mostly empty).
LEAF_ONE = (
    Rect((1.0, 6.5), (2.5, 8.0)),   # o1: upper-left blob
    Rect((0.5, 3.0), (1.5, 4.5)),   # o2: left blob
    Rect((3.0, 3.5), (4.5, 5.0)),   # o3: central blob
    Rect((5.5, 1.0), (7.5, 2.5)),   # o4: lower-right blob
    Rect((8.0, 2.0), (9.0, 3.0)),   # o5: right blob
)

#: Leaf 2 — two elongated objects (o6, o7 of Figure 3a).
LEAF_TWO = (
    Rect((10.5, 5.0), (14.5, 6.0)),  # o6: long horizontal object
    Rect((11.0, 7.0), (12.0, 9.5)),  # o7: tall vertical object
)


def _cbb_dead_space(rects: Sequence[Rect], method: str) -> Dict[str, float]:
    """Dead space and point count of a clipped bounding box over ``rects``."""
    mbb = mbb_of_rects(rects)
    config = ClippingConfig(method=method, k=None, tau=0.0)
    clips = compute_clip_points(mbb, list(rects), config)
    clipped_volume = clipped_union_volume(clips, mbb)
    shape_area = mbb.volume() - clipped_volume
    covered = union_volume(rects, within=mbb)
    dead = 0.0 if shape_area <= 0 else max(0.0, 1.0 - covered / shape_area)
    return {"dead_pct": percent(dead), "points": 2 + len(clips)}


def run(leaf_one: Sequence[Rect] = LEAF_ONE, leaf_two: Sequence[Rect] = LEAF_TWO) -> List[Dict]:
    """Dead space of each bounding method for both example leaves."""
    rows: List[Dict] = []
    for name in SHAPE_NAMES:
        row = {"method": name}
        for label, rects in (("leaf1", leaf_one), ("leaf2", leaf_two)):
            shape = bounding_shape(name, list(rects))
            row[f"{label}_dead_pct"] = percent(dead_space_of_shape(shape, list(rects)))
            row[f"{label}_points"] = shape.num_points()
        rows.append(row)
    for method, label in (("skyline", "CBBSKY"), ("stairline", "CBBSTA")):
        row = {"method": label}
        for leaf_label, rects in (("leaf1", leaf_one), ("leaf2", leaf_two)):
            summary = _cbb_dead_space(rects, method)
            row[f"{leaf_label}_dead_pct"] = summary["dead_pct"]
            row[f"{leaf_label}_points"] = summary["points"]
        rows.append(row)
    return rows
