"""Figure 10: how much dead space the clip points remove, varying k."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentContext
from repro.bench.reporting import percent
from repro.metrics.dead_space import clipped_dead_space_summary
from repro.rtree.registry import VARIANT_LABELS

DATASETS = ("par02", "par03", "rea02", "axo03")

#: k values of the figure: 1..2**(d+1) for 2d and 3d datasets.
K_VALUES_2D = (1, 2, 4, 6, 8)
K_VALUES_3D = (1, 4, 8, 12, 16)


def k_values_for(dataset: str) -> Sequence[int]:
    """The k sweep used by the figure for the given dataset."""
    return K_VALUES_3D if dataset.endswith("03") else K_VALUES_2D


def run(
    context: ExperimentContext,
    methods: Sequence[str] = ("skyline", "stairline"),
    datasets: Sequence[str] = DATASETS,
    k_values: Optional[Sequence[int]] = None,
) -> List[Dict]:
    """Dead space per node, split into clipped and remaining, for each k."""
    rows: List[Dict] = []
    for method in methods:
        for dataset in datasets:
            sweep = k_values if k_values is not None else k_values_for(dataset)
            for variant in context.config.variants:
                for k in sweep:
                    clipped = context.clipped(dataset, variant, method=method, k=k)
                    summary = clipped_dead_space_summary(clipped)
                    rows.append(
                        {
                            "method": method,
                            "dataset": dataset,
                            "variant": VARIANT_LABELS[variant],
                            "k": k,
                            "dead_space_pct": percent(summary.dead_space),
                            "clipped_pct": percent(summary.clipped),
                            "remaining_pct": percent(summary.remaining),
                            "clipped_share_pct": percent(summary.clipped_share_of_dead_space),
                        }
                    )
    return rows
