"""Figure 9: dead space vs representation cost of eight bounding methods.

For every node of an RR*-tree built over the 2d datasets (par02, rea02),
each bounding method replaces the node's MBB; the figure reports (a) the
average percentage of the shape's area that is empty and (b) the average
number of points needed to represent the shape.
"""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import ExperimentContext
from repro.bench.reporting import percent
from repro.bounding.base import SHAPE_NAMES, bounding_shape, dead_space_of_shape
from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.scoring import clipped_union_volume
from repro.geometry.union_volume import union_volume

DATASETS = ("par02", "rea02")
ALL_METHODS = SHAPE_NAMES + ("CBBSKY", "CBBSTA")


def _node_rows(node, config_by_method) -> Dict[str, Dict[str, float]]:
    rects = node.child_rects()
    mbb = node.mbb()
    results: Dict[str, Dict[str, float]] = {}
    for name in SHAPE_NAMES:
        shape = bounding_shape(name, rects)
        results[name] = {
            "dead": dead_space_of_shape(shape, rects),
            "points": float(shape.num_points()),
        }
    covered = union_volume(rects, within=mbb)
    for label, config in config_by_method.items():
        clips = compute_clip_points(mbb, rects, config)
        shape_area = mbb.volume() - clipped_union_volume(clips, mbb)
        dead = 0.0 if shape_area <= 0 else max(0.0, 1.0 - covered / shape_area)
        results[label] = {"dead": dead, "points": float(2 + len(clips))}
    return results


def run(context: ExperimentContext, leaves_only: bool = True) -> List[Dict]:
    """Average dead space and #points per bounding method and dataset."""
    config = context.config
    config_by_method = {
        "CBBSKY": ClippingConfig(method="skyline", k=config.clip_k, tau=config.clip_tau),
        "CBBSTA": ClippingConfig(method="stairline", k=config.clip_k, tau=config.clip_tau),
    }
    rows: List[Dict] = []
    for dataset in DATASETS:
        tree = context.tree(dataset, "rrstar")
        nodes = list(tree.leaves()) if leaves_only else list(tree.nodes())
        sums = {name: {"dead": 0.0, "points": 0.0} for name in ALL_METHODS}
        count = 0
        for node in nodes:
            if not node.entries:
                continue
            per_node = _node_rows(node, config_by_method)
            for name in ALL_METHODS:
                sums[name]["dead"] += per_node[name]["dead"]
                sums[name]["points"] += per_node[name]["points"]
            count += 1
        for name in ALL_METHODS:
            rows.append(
                {
                    "dataset": dataset,
                    "method": name,
                    "avg_dead_space_pct": percent(sums[name]["dead"] / count) if count else 0.0,
                    "avg_points": round(sums[name]["points"] / count, 2) if count else 0.0,
                }
            )
    return rows
