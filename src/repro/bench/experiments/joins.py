"""Spatial-join experiment (§V): INLJ and STT with and without clipping.

The paper joins ``axo03`` with ``den03``.  Our generators place axons and
dendrites in a shared, denser brain sub-volume for this experiment so that
the join produces a meaningful number of result pairs (the real datasets
occupy the same brain model).

``BenchConfig.join_engine`` (CLI: ``--join-engine``) selects the
execution path: the scalar reference joins or the columnar batch joins —
the reported pair counts and leaf accesses are identical either way.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import ExperimentContext
from repro.cbb.clipping import ClippingConfig
from repro.datasets.neurites import NeuriteGenerator
from repro.join import execute_join
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_LABELS, build_rtree


def _join_inputs(context: ExperimentContext):
    """Axon and dendrite segment boxes sharing a dense sub-volume."""
    size = context.config.join_size
    extent = 400.0
    axons = NeuriteGenerator(kind="axon", extent=extent).generate(size, seed=context.config.seed)
    dendrites = NeuriteGenerator(kind="dendrite", extent=extent).generate(
        size, seed=context.config.seed + 1
    )
    return axons, dendrites


def run(
    context: ExperimentContext,
    variants: Sequence[str] = None,
    method: str = "stairline",
) -> List[Dict]:
    """Leaf accesses of INLJ and STT joins, clipped vs unclipped."""
    config = context.config
    variants = config.variants if variants is None else variants
    axons, dendrites = _join_inputs(context)
    rows: List[Dict] = []
    for variant in variants:
        indexed_axons = build_rtree(variant, axons, max_entries=config.max_entries)
        indexed_dendrites = build_rtree(variant, dendrites, max_entries=config.max_entries)
        clip_config = ClippingConfig(method=method, k=config.clip_k, tau=config.clip_tau)
        clipped_axons = ClippedRTree(indexed_axons, clip_config)
        clipped_axons.clip_all(engine=config.build_engine)
        clipped_dendrites = ClippedRTree(indexed_dendrites, clip_config)
        clipped_dendrites.clip_all(engine=config.build_engine)

        engine = config.join_engine
        workers = config.workers if engine == "columnar" else 1
        if engine == "columnar":
            # Freeze each index once (cached per structure version by the
            # harness); execute_join passes snapshots straight through.
            indexed_axons = context.snapshot(indexed_axons)
            indexed_dendrites = context.snapshot(indexed_dendrites)
            clipped_axons = context.snapshot(clipped_axons)
            clipped_dendrites = context.snapshot(clipped_dendrites)
        inlj_plain = execute_join(
            dendrites, indexed_axons, algorithm="inlj", engine=engine,
            collect_pairs=False, workers=workers,
        )
        inlj_clip = execute_join(
            dendrites, clipped_axons, algorithm="inlj", engine=engine,
            collect_pairs=False, workers=workers,
        )
        stt_plain = execute_join(
            indexed_axons, indexed_dendrites, algorithm="stt", engine=engine,
            collect_pairs=False, workers=workers,
        )
        stt_clip = execute_join(
            clipped_axons, clipped_dendrites, algorithm="stt", engine=engine,
            collect_pairs=False, workers=workers,
        )
        # Every strategy enumerates the same join, whatever the engine.
        assert (
            inlj_plain.pair_count == inlj_clip.pair_count
            == stt_plain.pair_count == stt_clip.pair_count
        )

        def reduction(plain: int, clipped: int) -> float:
            return round(100.0 * (plain - clipped) / plain, 1) if plain > 0 else 0.0

        rows.append(
            {
                "variant": VARIANT_LABELS[variant],
                "pairs": inlj_plain.pair_count,
                "inlj_leaf_acc": inlj_plain.inner_stats.leaf_accesses,
                "inlj_clipped_leaf_acc": inlj_clip.inner_stats.leaf_accesses,
                "inlj_reduction_pct": reduction(
                    inlj_plain.inner_stats.leaf_accesses, inlj_clip.inner_stats.leaf_accesses
                ),
                "stt_leaf_acc": stt_plain.total_leaf_accesses,
                "stt_clipped_leaf_acc": stt_clip.total_leaf_accesses,
                "stt_reduction_pct": reduction(
                    stt_plain.total_leaf_accesses, stt_clip.total_leaf_accesses
                ),
            }
        )
    return rows
