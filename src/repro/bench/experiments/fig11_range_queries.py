"""Figure 11 and Table I: range-query I/O of clipped vs unclipped R-trees.

Figure 11 reports, per dataset / variant / query profile, the number of
leaf accesses of the stairline-clipped tree relative to its unclipped
counterpart (100 %).  Table I averages the I/O *reduction* over datasets
for both clipping methods.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import ExperimentContext
from repro.datasets.registry import DATASET_NAMES
from repro.query.range_query import execute_workload
from repro.query.workload import STANDARD_PROFILES
from repro.rtree.registry import VARIANT_LABELS


def run(
    context: ExperimentContext,
    datasets: Sequence[str] = DATASET_NAMES,
    methods: Sequence[str] = ("skyline", "stairline"),
) -> List[Dict]:
    """Average leaf accesses per query for unclipped and clipped trees.

    Runs through the engine selected by ``context.config.engine`` — the
    columnar engine reports the same leaf-access counts as the scalar
    traversal, so the reproduced figure is identical either way.
    ``context.config.workers`` > 1 additionally shards each batch across
    a process pool over a shared mmap snapshot (columnar engine only),
    again with identical counts.
    """
    engine = context.config.engine
    workers = context.config.workers if engine == "columnar" else 1
    rows: List[Dict] = []
    for dataset in datasets:
        for profile in STANDARD_PROFILES:
            queries = context.queries(dataset, profile.target_results)
            for variant in context.config.variants:
                tree = context.tree(dataset, variant)
                base = execute_workload(
                    context.query_index(tree), queries, engine=engine, workers=workers
                )
                row = {
                    "dataset": dataset,
                    "profile": profile.name,
                    "variant": VARIANT_LABELS[variant],
                    "unclipped_leaf_acc": round(base.avg_leaf_accesses, 3),
                    "avg_results": round(base.avg_results, 2),
                }
                for method in methods:
                    clipped = context.clipped(dataset, variant, method=method)
                    result = execute_workload(
                        context.query_index(clipped), queries, engine=engine, workers=workers
                    )
                    relative = (
                        100.0 * result.avg_leaf_accesses / base.avg_leaf_accesses
                        if base.avg_leaf_accesses > 0
                        else 100.0
                    )
                    key = "csky" if method == "skyline" else "csta"
                    row[f"{key}_leaf_acc"] = round(result.avg_leaf_accesses, 3)
                    row[f"{key}_relative_pct"] = round(relative, 1)
                rows.append(row)
    return rows


def table1(rows: List[Dict]) -> List[Dict]:
    """Aggregate Figure 11 rows into the paper's Table I.

    Each cell is the average % I/O reduction (``100 - relative``) for the
    skyline / stairline clipping, per R-tree variant and query profile,
    plus ``Total`` rows/columns averaging across profiles and variants.
    """
    profiles = [p.name for p in STANDARD_PROFILES]
    variants = sorted({row["variant"] for row in rows}, key=lambda v: list(VARIANT_LABELS.values()).index(v))

    def cell(variant: str, profile: str) -> str:
        selected = [
            row
            for row in rows
            if row["variant"] == variant and (profile == "Total" or row["profile"] == profile)
        ]
        if not selected:
            return "-"
        sky = sum(100.0 - r.get("csky_relative_pct", 100.0) for r in selected) / len(selected)
        sta = sum(100.0 - r.get("csta_relative_pct", 100.0) for r in selected) / len(selected)
        return f"{sky:.0f}/{sta:.0f}"

    table: List[Dict] = []
    for variant in variants:
        entry = {"variant": variant}
        for profile in profiles + ["Total"]:
            entry[profile] = cell(variant, profile)
        table.append(entry)

    totals = {"variant": "Total"}
    for profile in profiles + ["Total"]:
        selected = [r for r in rows if profile == "Total" or r["profile"] == profile]
        sky = sum(100.0 - r.get("csky_relative_pct", 100.0) for r in selected) / len(selected)
        sta = sum(100.0 - r.get("csta_relative_pct", 100.0) for r in selected) / len(selected)
        totals[profile] = f"{sky:.0f}/{sta:.0f}"
    table.append(totals)
    return table
