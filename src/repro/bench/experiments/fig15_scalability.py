"""Figure 15: querying large datasets from a cold (simulated) disk.

The paper scales par02/par03 to one billion objects so the index no longer
fits in memory and measures wall-clock query time on a cold 7200 RPM disk.
We reproduce the *shape* of that experiment at a configurable smaller
scale: all nodes live on a simulated disk, a small LRU buffer pool fronts
it, and query cost is the accumulated simulated read latency (see
``repro.storage.disk.DiskModel``).  The quantities compared — HR-tree and
RR*-tree, unclipped vs CSKY vs CSTA — match the figure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import ExperimentContext
from repro.cbb.clipping import ClippingConfig
from repro.engine import ColumnarIndex, range_query_batch
from repro.query.workload import RangeQueryWorkload, STANDARD_PROFILES
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IOStats

DATASETS = ("par02", "par03")
VARIANTS = ("hilbert", "rrstar")


def _replay_scalar_order(snapshot: ColumnarIndex, queries, pool: BufferPool) -> None:
    """Charge ``pool`` with exactly the scalar traversal's access sequence.

    The batch executor reports which nodes each query visits; this walks
    that visited subtree per query with the same stack discipline as
    ``RTreeBase.range_query`` (children pushed in entry order, popped
    LIFO), so the buffer pool and simulated disk see the identical page
    sequence — fig15 numbers match the scalar engine byte for byte.
    """
    visit_queries: List[np.ndarray] = []
    visit_nodes: List[np.ndarray] = []

    def record(query_indices: np.ndarray, node_ids: np.ndarray) -> None:
        visit_queries.append(query_indices)
        visit_nodes.append(node_ids)

    range_query_batch(snapshot, queries, access_hook=record)
    if not visit_nodes:
        return
    slot_of = {nid: slot for slot, nid in enumerate(snapshot.node_ids.tolist())}
    all_q = np.concatenate(visit_queries)
    all_slots = np.fromiter(
        (slot_of[nid] for nid in np.concatenate(visit_nodes).tolist()),
        dtype=np.int64,
        count=len(all_q),
    )
    order = np.argsort(all_q, kind="stable")
    sorted_q = all_q[order]
    sorted_slots = all_slots[order]
    boundaries = np.nonzero(np.diff(sorted_q))[0] + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [len(sorted_q)]))
    node_ids = snapshot.node_ids.tolist()
    for seg_start, seg_end in zip(starts.tolist(), ends.tolist()):
        visited = set(sorted_slots[seg_start:seg_end].tolist())
        stack = [ColumnarIndex.ROOT_SLOT]
        while stack:
            slot = stack.pop()
            pool.access(node_ids[slot])
            if not snapshot.is_leaf[slot]:
                entry_start = int(snapshot.entry_start[slot])
                entry_end = entry_start + int(snapshot.entry_count[slot])
                for child in snapshot.entry_child[entry_start:entry_end].tolist():
                    if child in visited:
                        stack.append(child)


def _simulated_query_time_ms(
    index,
    tree: RTreeBase,
    queries,
    buffer_fraction: float,
    snapshot: Optional[ColumnarIndex] = None,
) -> float:
    """Average simulated query latency in milliseconds.

    When ``snapshot`` is given (columnar engine), the node visits are
    computed by the batch executor and replayed into the buffer pool in
    scalar traversal order, so both engines charge the simulated disk
    identically and the reproduced figure is engine-independent.
    """
    disk = SimulatedDisk()
    for node in tree.nodes():
        disk.register_page(node.node_id)
    capacity = max(1, int(tree.node_count() * buffer_fraction))
    pool = BufferPool(capacity, disk=disk, stats=IOStats())

    if snapshot is not None:
        _replay_scalar_order(snapshot, queries, pool)
    else:
        def charge(node) -> None:
            pool.access(node.node_id)

        for query in queries:
            index.range_query(query, access_hook=charge)
    return disk.elapsed_ms / len(queries) if queries else 0.0


def run(
    context: ExperimentContext,
    datasets: Sequence[str] = DATASETS,
    size: Optional[int] = None,
    buffer_fraction: float = 0.05,
    queries_per_profile: Optional[int] = None,
) -> List[Dict]:
    """Average simulated query time for HR-/RR*-trees, unclipped and clipped."""
    config = context.config
    size = config.scalability_size if size is None else size
    queries_per_profile = (
        config.queries_per_profile if queries_per_profile is None else queries_per_profile
    )
    rows: List[Dict] = []
    for dataset in datasets:
        objects = context.objects(dataset, size=size)
        for variant in VARIANTS:
            tree = build_rtree(variant, objects, max_entries=config.max_entries)
            indexes = {"unclipped": tree}
            for method, label in (("skyline", "CSKY"), ("stairline", "CSTA")):
                clipped = ClippedRTree(
                    tree, ClippingConfig(method=method, k=config.clip_k, tau=config.clip_tau)
                )
                clipped.clip_all(engine=config.build_engine)
                indexes[label] = clipped
            # Freeze each index once, not once per profile.
            snapshots = (
                {label: ColumnarIndex.from_tree(idx) for label, idx in indexes.items()}
                if config.engine == "columnar"
                else {}
            )
            for profile in STANDARD_PROFILES:
                workload = RangeQueryWorkload.from_objects(
                    objects, target_results=profile.target_results, seed=config.seed
                )
                queries = workload.query_list(queries_per_profile)
                row = {
                    "dataset": dataset,
                    "variant": "HR-tree" if variant == "hilbert" else "RR*-tree",
                    "profile": profile.name,
                }
                for label, index in indexes.items():
                    row[f"{label}_ms"] = round(
                        _simulated_query_time_ms(
                            index, tree, queries, buffer_fraction,
                            snapshot=snapshots.get(label),
                        ),
                        3,
                    )
                rows.append(row)
    return rows
