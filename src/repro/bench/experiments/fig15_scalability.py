"""Figure 15: querying large datasets from a cold (simulated) disk.

The paper scales par02/par03 to one billion objects so the index no longer
fits in memory and measures wall-clock query time on a cold 7200 RPM disk.
We reproduce the *shape* of that experiment at a configurable smaller
scale: all nodes live on a simulated disk, a small LRU buffer pool fronts
it, and query cost is the accumulated simulated read latency (see
``repro.storage.disk.DiskModel``).  The quantities compared — HR-tree and
RR*-tree, unclipped vs CSKY vs CSTA — match the figure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentContext
from repro.cbb.clipping import ClippingConfig
from repro.query.workload import RangeQueryWorkload, STANDARD_PROFILES
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IOStats

DATASETS = ("par02", "par03")
VARIANTS = ("hilbert", "rrstar")


def _simulated_query_time_ms(
    index, tree: RTreeBase, queries, buffer_fraction: float
) -> float:
    """Average simulated query latency in milliseconds."""
    disk = SimulatedDisk()
    for node in tree.nodes():
        disk.register_page(node.node_id)
    capacity = max(1, int(tree.node_count() * buffer_fraction))
    pool = BufferPool(capacity, disk=disk, stats=IOStats())

    def charge(node) -> None:
        pool.access(node.node_id)

    for query in queries:
        index.range_query(query, access_hook=charge)
    return disk.elapsed_ms / len(queries) if queries else 0.0


def run(
    context: ExperimentContext,
    datasets: Sequence[str] = DATASETS,
    size: Optional[int] = None,
    buffer_fraction: float = 0.05,
    queries_per_profile: Optional[int] = None,
) -> List[Dict]:
    """Average simulated query time for HR-/RR*-trees, unclipped and clipped."""
    config = context.config
    size = config.scalability_size if size is None else size
    queries_per_profile = (
        config.queries_per_profile if queries_per_profile is None else queries_per_profile
    )
    rows: List[Dict] = []
    for dataset in datasets:
        objects = context.objects(dataset, size=size)
        for variant in VARIANTS:
            tree = build_rtree(variant, objects, max_entries=config.max_entries)
            indexes = {"unclipped": tree}
            for method, label in (("skyline", "CSKY"), ("stairline", "CSTA")):
                clipped = ClippedRTree(
                    tree, ClippingConfig(method=method, k=config.clip_k, tau=config.clip_tau)
                )
                clipped.clip_all()
                indexes[label] = clipped
            for profile in STANDARD_PROFILES:
                workload = RangeQueryWorkload.from_objects(
                    objects, target_results=profile.target_results, seed=config.seed
                )
                queries = workload.query_list(queries_per_profile)
                row = {
                    "dataset": dataset,
                    "variant": "HR-tree" if variant == "hilbert" else "RR*-tree",
                    "profile": profile.name,
                }
                for label, index in indexes.items():
                    row[f"{label}_ms"] = round(
                        _simulated_query_time_ms(index, tree, queries, buffer_fraction), 3
                    )
                rows.append(row)
    return rows
