"""The ``serve`` experiment: online serving under seeded chaos.

Runs the shared :func:`~repro.serve.bench.run_serve_scenario` — a
closed-loop hotspot-skewed request stream through a
:class:`~repro.serve.server.CoalescingServer` with admission control and
a seeded fault plan — over a clipped tree built from the configured
dataset, and reports one row of counters.

Every count column is deterministic under the seed (see the determinism
contract in :mod:`repro.serve.bench`), so ``repro bench compare serve``
gates them exactly; p50/p99/QPS are wall-clock and never gated.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional

from repro.bench.harness import ExperimentContext
from repro.engine.delta import SnapshotManager
from repro.serve.bench import report_row, run_serve_scenario


def run(
    context: ExperimentContext,
    dataset: str = "par02",
    variant: str = "rstar",
    method: str = "stairline",
    requests: Optional[int] = None,
    concurrency: Optional[int] = None,
    admission_rate: float = 80.0,
    admission_burst: int = 24,
    pace: float = 0.01,
    breaker_threshold: int = 3,
    chaos_seed: int = 11,
) -> List[Dict]:
    """One chaos-serving run; returns a single-row ``serve`` table."""
    config = context.config
    if requests is None:
        requests = config.serve_requests
    if concurrency is None:
        concurrency = config.serve_concurrency
    reference = context.clipped(dataset, variant, method=method)
    # The cached clipped tree must never mutate; the manager owns a copy.
    manager = SnapshotManager(copy.deepcopy(reference), update_engine="delta")
    report, responses = run_serve_scenario(
        manager,
        n_requests=requests,
        seed=chaos_seed,
        concurrency=concurrency,
        pace=pace,
        admission_rate=admission_rate,
        admission_burst=admission_burst,
        breaker_threshold=breaker_threshold,
    )
    # Every admitted request must resolve explicitly — ok, shed, or a
    # stamped degraded answer; silence would be a serving-layer bug.
    assert len(responses) == report["offered"]
    assert all(r.status in ("ok", "shed") for r in responses)
    return [report_row(report, dataset=dataset)]
