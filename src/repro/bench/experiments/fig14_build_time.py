"""Figure 14: index-building time and the share spent computing CBBs.

All trees are built memory-resident and timed with ``perf_counter``; the
figure normalises everything against the unclipped RR*-tree (100 %).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from repro.bench.harness import ExperimentContext
from repro.cbb.clipping import ClippingConfig
from repro.datasets.registry import DATASET_NAMES
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree


def _timed_build(variant: str, objects, max_entries: int) -> float:
    start = time.perf_counter()
    build_rtree(variant, objects, max_entries=max_entries)
    return time.perf_counter() - start


def run(context: ExperimentContext, datasets: Sequence[str] = DATASET_NAMES) -> List[Dict]:
    """Build times relative to the unclipped RR*-tree, plus the CBB share."""
    config = context.config
    rows: List[Dict] = []
    for dataset in datasets:
        objects = context.objects(dataset)
        start = time.perf_counter()
        rrstar_tree = build_rtree("rrstar", objects, max_entries=config.max_entries)
        rrstar_time = time.perf_counter() - start
        hr_time = _timed_build("hilbert", objects, config.max_entries)
        rstar_time = _timed_build("rstar", objects, config.max_entries)

        # Clipping reads the tree but never mutates it, so both methods
        # can time their clip pass against the one RR*-tree built above.
        clip_times = {}
        for method in ("skyline", "stairline"):
            start = time.perf_counter()
            clipped = ClippedRTree(
                rrstar_tree,
                ClippingConfig(method=method, k=config.clip_k, tau=config.clip_tau),
            )
            clipped.clip_all(engine=config.build_engine)
            clip_times[method] = time.perf_counter() - start

        def relative(value: float) -> float:
            return round(100.0 * value / rrstar_time, 1) if rrstar_time > 0 else 0.0

        rows.append(
            {
                "dataset": dataset,
                "hr_tree_pct": relative(hr_time),
                "rstar_pct": relative(rstar_time),
                "rrstar_pct": 100.0,
                "csky_rrstar_pct": relative(rrstar_time + clip_times["skyline"]),
                "csky_clip_share_pct": relative(clip_times["skyline"]),
                "csta_rrstar_pct": relative(rrstar_time + clip_times["stairline"]),
                "csta_clip_share_pct": relative(clip_times["stairline"]),
            }
        )
    return rows
