"""Figure 13: storage overhead of clipped RR*-trees."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench.harness import ExperimentContext
from repro.datasets.registry import DATASET_NAMES
from repro.metrics.storage_breakdown import storage_breakdown_percent


def run(
    context: ExperimentContext,
    datasets: Sequence[str] = DATASET_NAMES,
    variant: str = "rrstar",
) -> List[Dict]:
    """Byte share of directory nodes / leaf nodes / clip points per dataset."""
    rows: List[Dict] = []
    for dataset in datasets:
        for method, label in (("skyline", "CSKY"), ("stairline", "CSTA")):
            clipped = context.clipped(dataset, variant, method=method)
            breakdown = storage_breakdown_percent(clipped)
            rows.append(
                {
                    "dataset": dataset,
                    "method": label,
                    "dir_nodes_pct": round(breakdown["dir_nodes"], 2),
                    "leaf_nodes_pct": round(breakdown["leaf_nodes"], 2),
                    "clip_points_pct": round(breakdown["clip_points"], 2),
                    "avg_clip_points": round(breakdown["avg_clip_points"], 2),
                }
            )
    return rows
