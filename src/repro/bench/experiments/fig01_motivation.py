"""Figure 1: why MBBs need help — overlap, dead space, and I/O optimality."""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import ExperimentContext
from repro.bench.reporting import percent
from repro.metrics.dead_space import average_dead_space
from repro.metrics.io_optimality import io_optimality
from repro.metrics.overlap import average_overlap
from repro.query.workload import STANDARD_PROFILES
from repro.rtree.registry import VARIANT_LABELS

#: the two datasets of Figure 1
DATASETS = ("rea02", "axo03")


def run_overlap(context: ExperimentContext) -> List[Dict]:
    """Figure 1a: average % of a directory node's area covered by >= 2 children."""
    rows = []
    for dataset in DATASETS:
        for variant in context.config.variants:
            tree = context.tree(dataset, variant)
            rows.append(
                {
                    "dataset": dataset,
                    "variant": VARIANT_LABELS[variant],
                    "overlap_pct": percent(average_overlap(tree)),
                }
            )
    return rows


def run_dead_space(context: ExperimentContext) -> List[Dict]:
    """Figure 1b: average % of a node's volume that is dead space."""
    rows = []
    for dataset in DATASETS:
        for variant in context.config.variants:
            tree = context.tree(dataset, variant)
            rows.append(
                {
                    "dataset": dataset,
                    "variant": VARIANT_LABELS[variant],
                    "dead_space_pct": percent(average_dead_space(tree)),
                }
            )
    return rows


def run_io_optimality(context: ExperimentContext) -> List[Dict]:
    """Figure 1c: fraction of RR*-tree leaf accesses that contribute results."""
    rows = []
    for dataset in DATASETS:
        tree = context.tree(dataset, "rrstar")
        for profile in STANDARD_PROFILES:
            queries = context.queries(dataset, profile.target_results)
            rows.append(
                {
                    "dataset": dataset,
                    "profile": profile.name,
                    "selectivity": {"QR0": "high", "QR1": "medium", "QR2": "low"}[profile.name],
                    "optimal_leaf_access_pct": percent(io_optimality(tree, queries)),
                }
            )
    return rows


def run(context: ExperimentContext) -> Dict[str, List[Dict]]:
    """All three panels of Figure 1."""
    return {
        "fig1a_overlap": run_overlap(context),
        "fig1b_dead_space": run_dead_space(context),
        "fig1c_io_optimality": run_io_optimality(context),
    }
