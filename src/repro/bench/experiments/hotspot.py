"""Skewed-hotspot query profile: clipping and caching under concentration.

The paper's workloads query dithered object centres chosen uniformly, so
every region is visited in proportion to its density.  Real serving
traffic concentrates: a few hot regions absorb most queries.  This
scenario compares the paper's uniform profile against a hotspot profile
where ``skew`` of the queries cluster around a handful of hot centres,
and reports, per profile:

* range-query leaf accesses of the unclipped vs stairline-clipped tree
  (clipping keeps helping under skew — the reduction is per query);
* the hit rate of a small LRU buffer pool replaying the scalar
  traversal's page accesses — hotspot traffic re-reads the same subtree
  and caches dramatically better, which is what makes a hot shard cheap
  to serve.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import ExperimentContext
from repro.bench.reporting import percent
from repro.geometry.rect import Rect
from repro.query.range_query import execute_workload
from repro.storage.buffer_pool import BufferPool


def hotspot_queries(
    context: ExperimentContext,
    dataset: str,
    count: int,
    target_results: int = 10,
    hotspot_count: int = 4,
    skew: float = 0.9,
    size: Optional[int] = None,
) -> List[Rect]:
    """``count`` calibrated queries, ``skew`` of them around hot centres."""
    config = context.config
    objects = context.objects(dataset, size=size)
    workload = context.workload(dataset, target_results, size=size)
    rng = random.Random(config.seed + 23)
    hotspots = [rng.choice(objects).rect.center for _ in range(hotspot_count)]
    queries: List[Rect] = []
    for _ in range(count):
        if rng.random() < skew:
            base = rng.choice(hotspots)
        else:
            base = rng.choice(objects).rect.center
        center = [c + rng.uniform(-workload.dither, workload.dither) for c in base]
        queries.append(workload.query_at(center))
    return queries


def _buffer_hit_rate(tree, queries, buffer_fraction: float) -> float:
    """Hit rate of an LRU pool replaying the scalar traversal's accesses.

    The pool holds ``buffer_fraction`` of the tree's nodes but never fewer
    than 8 pages — below that even the root and the top internal level
    thrash, and every profile degenerates to a 0 % hit rate.
    """
    pool = BufferPool(max(8, int(tree.node_count() * buffer_fraction)))

    def charge(node) -> None:
        pool.access(node.node_id)

    for query in queries:
        tree.range_query(query, access_hook=charge)
    stats = pool.stats
    total = stats.buffer_hits + stats.buffer_misses
    return stats.buffer_hits / total if total else 0.0


def run(
    context: ExperimentContext,
    dataset: str = "par02",
    variant: str = "str",
    method: str = "stairline",
    hotspot_count: int = 4,
    skew: float = 0.9,
    target_results: int = 10,
    buffer_fraction: float = 0.2,
) -> List[Dict]:
    """Leaf accesses and buffer hit rate, uniform vs hotspot profile."""
    config = context.config
    count = config.queries_per_profile
    tree = context.tree(dataset, variant)
    clipped = context.clipped(dataset, variant, method=method)
    profiles = {
        "uniform": context.queries(dataset, target_results),
        "hotspot": hotspot_queries(
            context, dataset, count, target_results=target_results,
            hotspot_count=hotspot_count, skew=skew,
        ),
    }
    rows: List[Dict] = []
    for profile, queries in profiles.items():
        base = execute_workload(tree, queries, engine="scalar")
        clip = execute_workload(clipped, queries, engine="scalar")
        relative = (
            100.0 * clip.avg_leaf_accesses / base.avg_leaf_accesses
            if base.avg_leaf_accesses > 0
            else 100.0
        )
        rows.append(
            {
                "dataset": dataset,
                "profile": profile,
                "queries": len(queries),
                "unclipped_leaf_acc": round(base.avg_leaf_accesses, 3),
                "clipped_leaf_acc": round(clip.avg_leaf_accesses, 3),
                "io_reduction_pct": round(100.0 - relative, 1),
                "buffer_hit_rate_pct": percent(
                    _buffer_hit_rate(tree, queries, buffer_fraction)
                ),
                "avg_results": round(base.avg_results, 2),
            }
        )
    return rows
