"""Declarative registry of every experiment in the reproduction.

Each entry wraps one module from :mod:`repro.bench.experiments` behind a
uniform contract: ``build(context, **kwargs) -> {table name: rows}``.
The CLI's ``list-experiments``, ``run``, and the whole
``repro bench run/compare/archive`` harness dispatch through this
registry, and the parameter schema every experiment accepts via
``--set key=value`` is the :class:`~repro.bench.config.BenchConfig`
field schema (see :meth:`BenchConfig.param_schema`).

``smoke_kwargs`` are the per-experiment keyword overrides used by
``repro bench run --smoke`` — small enough that *every* registered
experiment finishes in seconds on the tiny config, which is what the
tier-1 tests and the CI smoke step execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Tuple

from repro.bench.experiments import (
    ablations,
    dims_sweep,
    fig01_motivation,
    fig08_bounding_example,
    fig09_bounding_comparison,
    fig10_clipped_dead_space,
    fig11_range_queries,
    fig12_update_cost,
    fig13_storage,
    fig14_build_time,
    fig15_scalability,
    hotspot,
    joins,
    mixed_workload,
    serving,
    updates,
)
from repro.bench.harness import ExperimentContext

Tables = Dict[str, List[Dict]]


class UnknownExperimentError(ValueError):
    """An experiment id that is not in the registry."""


@dataclass(frozen=True)
class Experiment:
    """One registered experiment: id, docs, and its run contract."""

    id: str
    description: str
    build: Callable[..., Tables]
    titles: Mapping[str, str] = field(default_factory=dict)
    smoke_kwargs: Mapping[str, object] = field(default_factory=dict)


REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    REGISTRY[experiment.id] = experiment
    return experiment


def experiment_ids() -> Tuple[str, ...]:
    return tuple(REGISTRY)


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(REGISTRY)}"
        ) from None


def derive_metrics(tables: Tables) -> Dict[str, float]:
    """Scalar metrics from tables: per-column means plus row counts.

    Every numeric column of every table becomes ``<table>.<column>``
    (its mean over non-null rows) and every table contributes
    ``<table>.rows``; these are what ``repro bench compare`` diffs.
    """
    metrics: Dict[str, float] = {}
    for name, rows in tables.items():
        metrics[f"{name}.rows"] = float(len(rows))
        if not rows:
            continue
        columns: Dict[str, List[float]] = {}
        for row in rows:
            for column, value in row.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                columns.setdefault(column, []).append(float(value))
        for column, values in columns.items():
            metrics[f"{name}.{column}"] = round(sum(values) / len(values), 6)
    return metrics


# ----------------------------------------------------------------------
# registrations — one per table/figure of the paper, plus the scenarios
# ----------------------------------------------------------------------


def _build_fig01(context: ExperimentContext, **kwargs) -> Tables:
    return fig01_motivation.run(context, **kwargs)


def _build_fig11(context: ExperimentContext, **kwargs) -> Tables:
    rows = fig11_range_queries.run(context, **kwargs)
    return {"fig11": rows, "table1": fig11_range_queries.table1(rows)}


def _build_ablations(context: ExperimentContext, taus=None, k_values=None, **kwargs) -> Tables:
    tau_kwargs = dict(kwargs)
    if taus is not None:
        tau_kwargs["taus"] = taus
    k_kwargs = dict(kwargs)
    if k_values is not None:
        k_kwargs["k_values"] = k_values
    return {
        "tau_sweep": ablations.run_tau_sweep(context, **tau_kwargs),
        "scoring": ablations.run_scoring_comparison(context, **kwargs),
        "k_sweep": ablations.run_k_sweep_io(context, **k_kwargs),
    }


def _single_table(name: str, run: Callable[..., List[Dict]], needs_context: bool = True):
    if needs_context:
        return lambda context, **kwargs: {name: run(context, **kwargs)}
    return lambda context, **kwargs: {name: run(**kwargs)}


register(Experiment(
    id="fig01",
    description="overlap, dead space, and I/O optimality of unclipped R-trees",
    build=_build_fig01,
    titles={
        "fig1a_overlap": "Figure 1a — overlap (%)",
        "fig1b_dead_space": "Figure 1b — dead space (%)",
        "fig1c_io_optimality": "Figure 1c — I/O optimality (%)",
    },
))
register(Experiment(
    id="fig08",
    description="bounding methods on the paper's running example",
    build=_single_table("fig08", fig08_bounding_example.run, needs_context=False),
    titles={"fig08": "Figure 8"},
))
register(Experiment(
    id="fig09",
    description="dead space vs representation cost of 8 bounding methods",
    build=_single_table("fig09", fig09_bounding_comparison.run),
    titles={"fig09": "Figure 9"},
))
register(Experiment(
    id="fig10",
    description="dead space clipped away as k varies (CSKY and CSTA)",
    build=_single_table("fig10", fig10_clipped_dead_space.run),
    titles={"fig10": "Figure 10"},
    smoke_kwargs={"methods": ("stairline",), "datasets": ("par02",), "k_values": (1, 4)},
))
register(Experiment(
    id="fig11",
    description="range-query I/O of clipped vs unclipped trees + Table I",
    build=_build_fig11,
    titles={
        "fig11": "Figure 11 — relative leaf accesses (%)",
        "table1": "Table I — avg. % I/O reduction (skyline/stairline)",
    },
    smoke_kwargs={"datasets": ("par02",)},
))
register(Experiment(
    id="fig12",
    description="expected re-clips per insertion",
    build=_single_table("fig12", fig12_update_cost.run),
    titles={"fig12": "Figure 12"},
    smoke_kwargs={"datasets": ("par02",)},
))
register(Experiment(
    id="fig13",
    description="storage overhead of clip points",
    build=_single_table("fig13", fig13_storage.run),
    titles={"fig13": "Figure 13"},
    smoke_kwargs={"datasets": ("par02", "axo03")},
))
register(Experiment(
    id="fig14",
    description="build-time overhead of clipping",
    build=_single_table("fig14", fig14_build_time.run),
    titles={"fig14": "Figure 14"},
    smoke_kwargs={"datasets": ("par02",)},
))
register(Experiment(
    id="joins",
    description="INLJ and STT spatial joins with and without clipping",
    build=_single_table("joins", joins.run),
    titles={"joins": "Spatial joins (§V)"},
    smoke_kwargs={"variants": ("quadratic",)},
))
register(Experiment(
    id="fig15",
    description="cold-disk scalability experiment",
    build=_single_table("fig15", fig15_scalability.run),
    titles={"fig15": "Figure 15"},
    smoke_kwargs={"datasets": ("par02",), "size": 600, "queries_per_profile": 5},
))
register(Experiment(
    id="updates",
    description="amortised write cost of delta overlay vs refreeze-per-write",
    build=_single_table("updates", updates.run),
    titles={"updates": "Incremental updates (delta vs refreeze)"},
    smoke_kwargs={"datasets": ("par02",)},
))
register(Experiment(
    id="ablations",
    description="τ sweep, scoring approximation error, k sweep",
    build=_build_ablations,
    titles={
        "tau_sweep": "τ sweep",
        "scoring": "scoring approximation",
        "k_sweep": "k sweep (query I/O)",
    },
    smoke_kwargs={"taus": (0.0, 0.1), "k_values": (1, 4)},
))

# -- scenarios the paper never ran ------------------------------------

register(Experiment(
    id="dims",
    description="d ∈ {2,4,6,8} sweep: clipping's win as dimensionality grows",
    build=_single_table("dims", dims_sweep.run),
    titles={"dims": "Dimensionality sweep — clipped win vs d"},
    smoke_kwargs={"dims": (2, 4, 6, 8)},
))
register(Experiment(
    id="mixed",
    description="mixed read/write stream over SnapshotManager (delta vs refreeze)",
    build=_single_table("mixed", mixed_workload.run),
    titles={"mixed": "Mixed read/write workload — ops/s by write fraction"},
    smoke_kwargs={"write_fractions": (0.2,), "total_ops": 40},
))
register(Experiment(
    id="serve",
    description="online serving under seeded chaos: shed/retry/breaker counters",
    build=_single_table("serve", serving.run),
    titles={"serve": "Online serving under chaos (deterministic counters)"},
    smoke_kwargs={"requests": 120},
))
register(Experiment(
    id="hotspot",
    description="skewed hotspot query profile: I/O reduction and cache hit rate",
    build=_single_table("hotspot", hotspot.run),
    titles={"hotspot": "Skewed hotspot profile — clipping and caching under skew"},
))
