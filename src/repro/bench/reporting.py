"""Plain-text and markdown table formatting for benchmark reports."""

from __future__ import annotations

import unicodedata
from typing import Dict, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]

#: What a missing / ``None`` cell renders as.
NONE_CELL = "-"


def _format_cell(value: Cell) -> str:
    if value is None:
        return NONE_CELL
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def display_width(text: str) -> int:
    """Terminal column width of ``text``.

    East-Asian wide and fullwidth characters occupy two terminal columns;
    combining marks occupy none.  Plain ``len`` would mis-align any table
    containing such cells (dataset labels, unicode minus signs, CJK notes).
    """
    width = 0
    for char in text:
        if unicodedata.combining(char):
            continue
        width += 2 if unicodedata.east_asian_width(char) in ("W", "F") else 1
    return width


def _pad(text: str, width: int) -> str:
    """Left-justify ``text`` to ``width`` terminal columns."""
    return text + " " * max(0, width - display_width(text))


def _grid(rows: Sequence[Dict[str, Cell]], columns: Optional[Sequence[str]]) -> List[List[str]]:
    if columns is None:
        columns = list(rows[0].keys())
    grid = [[str(c) for c in columns]]
    for row in rows:
        grid.append([_format_cell(row.get(c)) for c in columns])
    return grid


def format_table(
    rows: Sequence[Dict[str, Cell]], columns: Optional[Sequence[str]] = None, title: str = ""
) -> str:
    """Render ``rows`` (dicts) as an aligned text table.

    ``None`` (and missing) cells render as ``-``; column widths use
    terminal display width, so wide/fullwidth characters stay aligned.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    grid = _grid(rows, columns)
    widths = [max(display_width(line[i]) for line in grid) for i in range(len(grid[0]))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(_pad(cell, width) for cell, width in zip(grid[0], widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for line in grid[1:]:
        lines.append(" | ".join(_pad(cell, width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def to_markdown(
    rows: Sequence[Dict[str, Cell]], columns: Optional[Sequence[str]] = None, title: str = ""
) -> str:
    """Render ``rows`` as a GitHub-flavoured markdown table.

    Used for the ``table.md`` rendered into every archived run; pipe
    characters inside cells are escaped so they cannot break the table.
    """
    heading = f"### {title}\n\n" if title else ""
    if not rows:
        return f"{heading}(no rows)"
    grid = _grid(rows, columns)
    escaped = [[cell.replace("|", "\\|") for cell in line] for line in grid]
    widths = [max(display_width(line[i]) for line in escaped) for i in range(len(escaped[0]))]
    lines = ["| " + " | ".join(_pad(c, w) for c, w in zip(escaped[0], widths)) + " |"]
    lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    for line in escaped[1:]:
        lines.append("| " + " | ".join(_pad(c, w) for c, w in zip(line, widths)) + " |")
    return heading + "\n".join(lines)


def percent(value: float) -> float:
    """Convert a fraction to a percentage rounded to one decimal."""
    return round(100.0 * value, 1)
