"""Plain-text table formatting for benchmark reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _format_cell(value: Cell) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Cell]], columns: Sequence[str] = None, title: str = "") -> str:
    """Render ``rows`` (dicts) as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        table.append([_format_cell(row.get(c, "")) for c in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(cell.ljust(width) for cell, width in zip(table[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in table[1:]:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def percent(value: float) -> float:
    """Convert a fraction to a percentage rounded to one decimal."""
    return round(100.0 * value, 1)
