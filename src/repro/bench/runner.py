"""Execution layer of the archived-experiment harness.

``run_experiment`` executes one registered experiment through an
:class:`~repro.bench.harness.ExperimentContext`, captures wall/CPU time
and provenance, and writes a timestamped archive folder.
``compare_experiment`` re-runs an experiment under a baseline archive's
exact configuration (or loads a second archive) and diffs the metrics,
returning a report whose regressions drive the CI gate's exit code.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.bench.archive import (
    ArchivedRun,
    ComparisonReport,
    collect_meta,
    compare_metrics,
    default_archive_root,
    load_run,
    resolve_run,
    write_run,
)
from repro.bench.config import BenchConfig, ParameterError
from repro.bench.harness import ExperimentContext
from repro.bench.registry import Experiment, derive_metrics, get_experiment
from repro.bench.reporting import format_table


def parse_set_overrides(pairs: Sequence[str]) -> Dict[str, str]:
    """``["key=value", ...]`` → dict, rejecting malformed items."""
    overrides: Dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ParameterError(
                f"malformed --set {pair!r}; expected key=value"
            )
        overrides[key.strip()] = value.strip()
    return overrides


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def render_tables(experiment: Experiment, tables: Mapping) -> str:
    """The experiment's tables as aligned text, using its display titles."""
    parts = [
        format_table(rows, title=experiment.titles.get(name, f"{experiment.id} — {name}"))
        for name, rows in tables.items()
    ]
    return "\n\n".join(parts)


def run_experiment(
    experiment_id: str,
    overrides: Optional[Mapping[str, str]] = None,
    *,
    smoke: bool = False,
    workers: Optional[int] = None,
    archive_root: Optional[Union[str, Path]] = None,
    config: Optional[BenchConfig] = None,
    run_kwargs: Optional[Mapping] = None,
) -> ArchivedRun:
    """Run one registered experiment and archive the result.

    ``--smoke`` runs use :meth:`BenchConfig.tiny` plus the experiment's
    ``smoke_kwargs`` so every experiment finishes in seconds.  ``config``
    and ``run_kwargs`` override that resolution entirely — that is how
    ``compare`` replays a baseline's recorded configuration.
    """
    experiment = get_experiment(experiment_id)
    if config is None:
        config = BenchConfig.tiny() if smoke else BenchConfig()
    if workers is not None:
        config.workers = workers
    config.apply_overrides(dict(overrides or {}))
    if run_kwargs is None:
        run_kwargs = dict(experiment.smoke_kwargs) if smoke else {}
    else:
        run_kwargs = dict(run_kwargs)
    # JSON round-trips list-ify tuples; experiment kwargs accept sequences.
    context = ExperimentContext(config)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    tables = experiment.build(context, **run_kwargs)
    wall_seconds = time.perf_counter() - wall_start
    cpu_seconds = time.process_time() - cpu_start

    metrics = derive_metrics(tables)
    metrics["wall_seconds"] = round(wall_seconds, 4)
    metrics["cpu_seconds"] = round(cpu_seconds, 4)
    meta = collect_meta(seed=config.seed)
    meta.update(
        {
            "experiment": experiment_id,
            "smoke": smoke,
            "run_kwargs": _jsonable(run_kwargs),
            "overrides": dict(overrides or {}),
            "wall_seconds": round(wall_seconds, 4),
            "cpu_seconds": round(cpu_seconds, 4),
            "dataset_cache": {
                "hits": context.datasets.hits,
                "misses": context.datasets.misses,
            },
        }
    )
    return write_run(
        archive_root if archive_root is not None else default_archive_root(),
        experiment_id,
        tables,
        metrics,
        config.as_dict(),
        meta,
        titles=experiment.titles,
    )


def compare_experiment(
    experiment_id: str,
    against: str = "latest",
    *,
    archive_root: Optional[Union[str, Path]] = None,
    threshold: float = 0.2,
    include_timing: bool = False,
    current: Optional[Union[str, Path, ArchivedRun]] = None,
) -> Tuple[ComparisonReport, ArchivedRun]:
    """Diff a current run against an archived baseline.

    Without ``current``, the experiment is *re-run* under the baseline's
    recorded config and run kwargs (and the fresh run is archived too) —
    one command gives CI a self-contained regression gate.  With
    ``current`` (a run folder or an :class:`ArchivedRun`), two archives
    are diffed without executing anything.
    """
    root = archive_root if archive_root is not None else default_archive_root()
    baseline = resolve_run(root, experiment_id, against)
    if current is None:
        config = BenchConfig.from_dict(baseline.config)
        run_kwargs = baseline.meta.get("run_kwargs") or {}
        current_run = run_experiment(
            experiment_id,
            archive_root=root,
            config=config,
            run_kwargs=run_kwargs,
            smoke=bool(baseline.meta.get("smoke")),
        )
    elif isinstance(current, ArchivedRun):
        current_run = current
    else:
        current_run = load_run(current)
    report = compare_metrics(
        baseline.metrics,
        current_run.metrics,
        experiment=experiment_id,
        baseline_run=baseline.run_id,
        current_run=current_run.run_id,
        threshold=threshold,
        include_timing=include_timing,
    )
    return report, current_run
