"""Range-query execution helpers with I/O accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Protocol, Sequence

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.storage.stats import IOStats

#: Engines understood by :func:`execute_workload`.
ENGINES = ("scalar", "columnar")


class SupportsRangeQuery(Protocol):
    """Anything with a ``range_query(rect, stats=...)`` method."""

    def range_query(self, rect: Rect, stats: IOStats = ...) -> List[SpatialObject]:
        ...  # pragma: no cover - protocol


@dataclass
class WorkloadResult:
    """Aggregate result of running a batch of range queries.

    The scalar and columnar engines produce identical instances on
    identical workloads: both visit the same node set per query, so
    ``stats.leaf_accesses`` and ``stats.contributing_leaf_accesses`` — and
    therefore :attr:`io_optimality` — agree exactly (pinned by
    ``tests/test_engine_differential.py``).
    """

    queries: int
    total_results: int
    stats: IOStats

    @property
    def avg_results(self) -> float:
        """Average number of result objects per query."""
        return self.total_results / self.queries if self.queries else 0.0

    @property
    def avg_leaf_accesses(self) -> float:
        """Average leaf accesses per query — the paper's I/O metric."""
        return self.stats.leaf_accesses / self.queries if self.queries else 0.0

    @property
    def io_optimality(self) -> float:
        """Fraction of leaf accesses that contributed at least one result."""
        if self.stats.leaf_accesses == 0:
            return 1.0
        return self.stats.contributing_leaf_accesses / self.stats.leaf_accesses


def execute_workload(
    index: SupportsRangeQuery,
    queries: Iterable[Rect],
    engine: str = "scalar",
    stale: str = "refresh",
    workers: int = 1,
    snapshot_dir=None,
) -> WorkloadResult:
    """Run every query against ``index`` and accumulate I/O statistics.

    ``engine`` selects the execution path:

    * ``"scalar"`` (default) — one Python traversal per query, exactly as
      before;
    * ``"columnar"`` — freeze ``index`` into a
      :class:`~repro.engine.columnar.ColumnarIndex` snapshot (or reuse
      ``index`` directly if it already is one) and answer the whole batch
      through the vectorized executor.  Result counts and I/O statistics
      are identical to the scalar path; only wall-clock time differs.

    ``workers`` > 1 additionally shards the batch by query partition
    across a process pool (:class:`~repro.engine.parallel.
    ParallelExecutor`): the snapshot is persisted once (into
    ``snapshot_dir``, or a temp directory) and every worker opens it as a
    read-only mmap, so results and I/O statistics still match the serial
    engines exactly.  Parallel execution implies the columnar engine; it
    is a ``ValueError`` to combine ``workers > 1`` with
    ``engine="scalar"`` or with a
    :class:`~repro.engine.delta.SnapshotManager` (whose mutable overlay
    lives only in the serving process).

    Passing an already-frozen ``ColumnarIndex`` selects the columnar
    engine automatically — a snapshot has no scalar traversal to fall
    back on.  A pre-frozen snapshot whose source tree has mutated is
    handled per ``stale``: ``"refresh"`` (default) re-freezes first,
    ``"raise"`` raises
    :class:`~repro.engine.columnar.StaleSnapshotError`, ``"serve"``
    knowingly answers from the frozen state.  A
    :class:`~repro.engine.delta.SnapshotManager` is served through its
    base + delta merge regardless of ``engine``.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; known: {ENGINES}")
    workers = int(workers)
    if workers > 1 and engine == "scalar" and hasattr(index, "range_query"):
        raise ValueError(
            "workers > 1 requires the columnar engine (pass engine='columnar')"
        )
    if (
        engine == "columnar"
        or workers > 1
        or not hasattr(index, "range_query")
        or getattr(index, "is_snapshot_manager", False)
    ):
        # Imported lazily: the engine pulls in NumPy-heavy modules that the
        # scalar path never needs.  An already-frozen ColumnarIndex has no
        # scalar traversal, so it always runs columnar regardless of the
        # ``engine`` default.
        from repro.engine import ColumnarIndex, range_query_batch, resolve_stale

        stats = IOStats()
        queries = list(queries)
        if getattr(index, "is_snapshot_manager", False):
            if workers > 1:
                raise ValueError(
                    "workers > 1 cannot serve a SnapshotManager; compact it "
                    "and pass the frozen snapshot instead"
                )
            results = index.range_query_batch(queries, stats=stats)
        else:
            if isinstance(index, ColumnarIndex):
                snapshot = resolve_stale(index, stale)
            else:
                snapshot = ColumnarIndex.from_tree(index)
            if workers > 1:
                from repro.engine.parallel import ParallelExecutor

                with ParallelExecutor(
                    snapshot, workers=workers, snapshot_dir=snapshot_dir
                ) as executor:
                    results = executor.range_query_batch(queries, stats=stats)
            else:
                results = range_query_batch(snapshot, queries, stats=stats)
        total_results = sum(len(r) for r in results)
        return WorkloadResult(queries=len(queries), total_results=total_results, stats=stats)

    stats = IOStats()
    total_results = 0
    count = 0
    for query in queries:
        results = index.range_query(query, stats=stats)
        total_results += len(results)
        count += 1
    return WorkloadResult(queries=count, total_results=total_results, stats=stats)


def brute_force_range(objects: Sequence[SpatialObject], rect: Rect) -> List[SpatialObject]:
    """Reference implementation used by tests: linear scan."""
    return [obj for obj in objects if obj.rect.intersects(rect)]
