"""Range-query execution helpers with I/O accounting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Protocol, Sequence

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.storage.stats import IOStats


class SupportsRangeQuery(Protocol):
    """Anything with a ``range_query(rect, stats=...)`` method."""

    def range_query(self, rect: Rect, stats: IOStats = ...) -> List[SpatialObject]:
        ...  # pragma: no cover - protocol


@dataclass
class WorkloadResult:
    """Aggregate result of running a batch of range queries."""

    queries: int
    total_results: int
    stats: IOStats

    @property
    def avg_results(self) -> float:
        """Average number of result objects per query."""
        return self.total_results / self.queries if self.queries else 0.0

    @property
    def avg_leaf_accesses(self) -> float:
        """Average leaf accesses per query — the paper's I/O metric."""
        return self.stats.leaf_accesses / self.queries if self.queries else 0.0

    @property
    def io_optimality(self) -> float:
        """Fraction of leaf accesses that contributed at least one result."""
        if self.stats.leaf_accesses == 0:
            return 1.0
        return self.stats.contributing_leaf_accesses / self.stats.leaf_accesses


def execute_workload(index: SupportsRangeQuery, queries: Iterable[Rect]) -> WorkloadResult:
    """Run every query against ``index`` and accumulate I/O statistics."""
    stats = IOStats()
    total_results = 0
    count = 0
    for query in queries:
        results = index.range_query(query, stats=stats)
        total_results += len(results)
        count += 1
    return WorkloadResult(queries=count, total_results=total_results, stats=stats)


def brute_force_range(objects: Sequence[SpatialObject], rect: Rect) -> List[SpatialObject]:
    """Reference implementation used by tests: linear scan."""
    return [obj for obj in objects if obj.rect.intersects(rect)]
