"""k-nearest-neighbour search over any R-tree variant.

Not part of the paper's evaluation, but a standard capability of the
substrate (best-first traversal with MinDist pruning); provided so the
library is usable as a general spatial index.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Sequence, Tuple, Union

from repro.geometry.objects import SpatialObject
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree
from repro.storage.stats import IOStats


def knn_query(
    tree: Union[RTreeBase, ClippedRTree],
    point: Sequence[float],
    k: int,
    stats: Optional[IOStats] = None,
) -> List[Tuple[float, SpatialObject]]:
    """The ``k`` objects nearest to ``point`` (squared distance, object) pairs.

    Uses the classic best-first search: a priority queue ordered by MinDist
    holding both nodes and objects; an object popped from the queue is
    guaranteed to be the next nearest.

    Accepts a :class:`ClippedRTree` as well: clip points never affect kNN
    results (MinDist to the MBB is already a valid lower bound), so the
    search simply traverses the wrapped tree.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    counter = itertools.count()
    heap: List[Tuple[float, int, object, bool]] = []
    heapq.heappush(heap, (0.0, next(counter), tree.root_id, True))
    results: List[Tuple[float, SpatialObject]] = []

    while heap and len(results) < k:
        dist, _, item, is_node = heapq.heappop(heap)
        if not is_node:
            results.append((dist, item))
            continue
        node = tree.node(item)
        if stats is not None:
            if node.is_leaf:
                stats.record_leaf()
            else:
                stats.record_internal()
        for entry in node.entries:
            entry_dist = entry.rect.min_distance_sq(point)
            if node.is_leaf:
                heapq.heappush(heap, (entry_dist, next(counter), entry.child, False))
            else:
                heapq.heappush(heap, (entry_dist, next(counter), entry.child, True))
    return results
