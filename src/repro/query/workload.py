"""Range-query workload generator (paper §V-B).

Queries originate from the *dithered centres of data objects* — object
centres are chosen uniformly at random, so dense regions are queried most
— and their extent is calibrated so that a query returns approximately a
target number of objects.  The three standard profiles, ``QR0``/``QR1``/
``QR2``, target roughly 1, 10 and 100 result objects respectively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect, mbb_of_rects


@dataclass(frozen=True)
class QueryProfile:
    """A named selectivity profile."""

    name: str
    target_results: int


#: The paper's three query profiles.
STANDARD_PROFILES = (
    QueryProfile("QR0", 1),
    QueryProfile("QR1", 10),
    QueryProfile("QR2", 100),
)


class RangeQueryWorkload:
    """Generates square range queries with a calibrated selectivity.

    The query side length is calibrated once (against the supplied objects,
    via vectorised counting over a sample of candidate centres) so that the
    expected number of results matches ``target_results``; individual
    queries then vary only through the choice of the (dithered) centre.
    """

    def __init__(
        self,
        objects: Sequence[SpatialObject],
        side_lengths: Sequence[float],
        dither: float,
        seed: int = 0,
    ):
        if not objects:
            raise ValueError("a workload needs a non-empty object collection")
        self._objects = list(objects)
        self.dims = self._objects[0].dims
        if len(side_lengths) != self.dims:
            raise ValueError("side_lengths must have one value per dimension")
        self.side_lengths = tuple(float(s) for s in side_lengths)
        self.dither = float(dither)
        self.seed = seed
        self.space = mbb_of_rects([obj.rect for obj in self._objects])

    # ------------------------------------------------------------------
    # calibration
    # ------------------------------------------------------------------

    @classmethod
    def from_objects(
        cls,
        objects: Sequence[SpatialObject],
        target_results: int,
        seed: int = 0,
        calibration_samples: int = 48,
        calibration_iterations: int = 14,
    ) -> "RangeQueryWorkload":
        """Calibrate a workload so queries return ~``target_results`` objects."""
        if target_results < 1:
            raise ValueError("target_results must be at least 1")
        objects = list(objects)
        if not objects:
            raise ValueError("a workload needs a non-empty object collection")
        dims = objects[0].dims
        space = mbb_of_rects([obj.rect for obj in objects])
        extents = [max(space.side(i), 1e-12) for i in range(dims)]

        lows = np.array([obj.rect.low for obj in objects])
        highs = np.array([obj.rect.high for obj in objects])
        rng = random.Random(seed)
        sample_centers = np.array(
            [rng.choice(objects).rect.center for _ in range(calibration_samples)]
        )

        def average_results(fraction: float) -> float:
            sides = np.array([fraction * e for e in extents])
            q_low = sample_centers - sides / 2.0
            q_high = sample_centers + sides / 2.0
            # intersects: obj.low <= q.high and q.low <= obj.high, per dim
            counts = []
            for i in range(sample_centers.shape[0]):
                mask = np.all((lows <= q_high[i]) & (q_low[i] <= highs), axis=1)
                counts.append(int(mask.sum()))
            return float(np.mean(counts))

        lo_frac, hi_frac = 1e-6, 1.0
        # Grow the upper bound until it returns enough results.
        while average_results(hi_frac) < target_results and hi_frac < 8.0:
            hi_frac *= 2.0
        for _ in range(calibration_iterations):
            mid = (lo_frac + hi_frac) / 2.0
            if average_results(mid) < target_results:
                lo_frac = mid
            else:
                hi_frac = mid
        fraction = (lo_frac + hi_frac) / 2.0
        side_lengths = [fraction * e for e in extents]
        dither = 0.5 * min(side_lengths)
        return cls(objects, side_lengths, dither, seed=seed)

    # ------------------------------------------------------------------
    # query generation
    # ------------------------------------------------------------------

    def query_at(self, center: Sequence[float]) -> Rect:
        """The workload's query box centred at ``center``."""
        low = [c - s / 2.0 for c, s in zip(center, self.side_lengths)]
        high = [c + s / 2.0 for c, s in zip(center, self.side_lengths)]
        return Rect(low, high)

    def queries(self, count: int, seed: Optional[int] = None) -> Iterator[Rect]:
        """Yield ``count`` queries at dithered object centres."""
        rng = random.Random(self.seed if seed is None else seed)
        for _ in range(count):
            obj = rng.choice(self._objects)
            center = [
                c + rng.uniform(-self.dither, self.dither) for c in obj.rect.center
            ]
            yield self.query_at(center)

    def query_list(self, count: int, seed: Optional[int] = None) -> List[Rect]:
        """Materialised version of :meth:`queries`."""
        return list(self.queries(count, seed=seed))
