"""Query workloads and execution helpers."""

from repro.query.knn import knn_query
from repro.query.range_query import brute_force_range, execute_workload, WorkloadResult
from repro.query.workload import QueryProfile, RangeQueryWorkload, STANDARD_PROFILES

__all__ = [
    "RangeQueryWorkload",
    "QueryProfile",
    "STANDARD_PROFILES",
    "execute_workload",
    "WorkloadResult",
    "brute_force_range",
    "knn_query",
]
