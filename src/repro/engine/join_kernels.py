"""Vectorized NumPy kernels specific to the columnar join executor.

The join executor works on *pairs* of nodes, one from each snapshot, so
its indexing helpers are two-sided analogues of
:func:`repro.engine.kernels.expand_segments`:

* :func:`expand_cross` flattens the cross product of two entry segments
  per pair — the leaf×leaf candidate enumeration of the synchronized
  traversal;
* :func:`segment_counts` aggregates per-row hits back into per-pair
  counts (the emitted-pair bookkeeping the contribution metric needs).

All geometric predicates reuse the existing scalar-exact kernels
(:func:`~repro.engine.kernels.intersect_mask`,
:func:`~repro.engine.kernels.clip_prune_mask`), so the join decides every
candidate identically to the scalar algorithms in :mod:`repro.join`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def expand_cross(
    a_start: np.ndarray,
    a_count: np.ndarray,
    b_start: np.ndarray,
    b_count: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten per-pair segment cross products.

    For each pair ``p``, enumerates every combination of one index from
    the segment ``a_start[p] : a_start[p] + a_count[p]`` with one from
    ``b_start[p] : b_start[p] + b_count[p]``, in row-major (``a`` outer,
    ``b`` inner) order — the nesting order of the scalar leaf×leaf loop.
    Returns ``(owners, a_idx, b_idx)`` where ``owners[j]`` is the pair
    that produced row ``j``.  Pairs where either segment is empty
    contribute nothing.
    """
    a_start = np.asarray(a_start, dtype=np.int64)
    a_count = np.asarray(a_count, dtype=np.int64)
    b_start = np.asarray(b_start, dtype=np.int64)
    b_count = np.asarray(b_count, dtype=np.int64)
    sizes = a_count * b_count
    total = int(sizes.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    owners = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    offsets = np.cumsum(sizes) - sizes
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, sizes)
    nb = b_count[owners]
    a_idx = a_start[owners] + within // nb
    b_idx = b_start[owners] + within % nb
    return owners, a_idx, b_idx


def segment_counts(flags: np.ndarray, owners: np.ndarray, n_segments: int) -> np.ndarray:
    """Per-segment count of set ``flags`` grouped by ``owners``.

    The counting sibling of :func:`repro.engine.kernels.segment_any`:
    empty segments count zero.
    """
    if len(flags) == 0:
        return np.zeros(n_segments, dtype=np.int64)
    return np.bincount(
        owners[flags], minlength=n_segments
    ).astype(np.int64, copy=False)
