"""Vectorized NumPy kernels used by the batch query executor.

Each kernel is the array analogue of one scalar geometric predicate:

=============================  ==============================================
:func:`intersect_mask`         :meth:`repro.geometry.rect.Rect.intersects`
:func:`min_dist_sq`            :meth:`repro.geometry.rect.Rect.min_distance_sq`
:func:`clip_prune_mask`        :func:`repro.cbb.intersection.clipped_intersects`
                               (the per-clip-point dominance probe)
=============================  ==============================================

All comparisons run in float64 on the exact coordinate values held by the
scalar :class:`~repro.geometry.rect.Rect` objects, so every kernel decides
each predicate *identically* to its scalar counterpart — the differential
test-suite (``tests/test_engine_differential.py``) pins this down.

:func:`expand_segments` is the shared indexing helper that turns per-node
``(start, count)`` slices into a flat gather index plus an owner map, the
core trick that lets one NumPy call test every entry of every frontier
node at once.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def expand_segments(starts: np.ndarray, counts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Expand ``(start, count)`` segments into flat indices plus owners.

    Given ``starts[i]`` and ``counts[i]`` describing contiguous slices of
    some flat array, returns ``(flat, owners)`` where ``flat`` lists every
    index covered by the segments (in segment order) and ``owners[j]`` is
    the segment that produced ``flat[j]``.  Zero-length segments simply
    contribute nothing.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    owners = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + within, owners


def intersect_mask(
    lows: np.ndarray,
    highs: np.ndarray,
    q_lows: np.ndarray,
    q_highs: np.ndarray,
) -> np.ndarray:
    """Closed-rectangle intersection test, vectorized over rows.

    ``lows``/``highs`` are ``(n, d)`` rectangle bounds; ``q_lows``/
    ``q_highs`` are either a single ``(d,)`` query or per-row ``(n, d)``
    queries.  Returns an ``(n,)`` boolean mask matching
    ``Rect.intersects`` for every row: ``low <= q_high and q_low <= high``
    in every dimension.
    """
    return np.logical_and(lows <= q_highs, q_lows <= highs).all(axis=-1)


def min_dist_sq(lows: np.ndarray, highs: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Squared MinDist from ``point`` to each rectangle row.

    The array analogue of ``Rect.min_distance_sq``: per dimension the
    distance is ``low - p`` when the point lies below the rectangle,
    ``p - high`` when above, and zero inside the slab.
    """
    point = np.asarray(point, dtype=np.float64)
    below = np.maximum(lows - point, 0.0)
    above = np.maximum(point - highs, 0.0)
    delta = np.maximum(below, above)
    squared = np.square(delta)
    # Accumulate dimension by dimension, in dimension order: ``np.sum`` may
    # associate differently, and the scalar path's sequential accumulation
    # must be matched bit for bit so heap orderings downstream agree.
    total = squared[..., 0].copy()
    for dim in range(1, squared.shape[-1]):
        total += squared[..., dim]
    return total


def clip_prune_mask(
    q_lows: np.ndarray,
    q_highs: np.ndarray,
    clip_coords: np.ndarray,
    clip_is_high: np.ndarray,
) -> np.ndarray:
    """Per-clip-point pruning verdicts (paper, Algorithm 2 with the query selector).

    Row ``j`` pairs one clip point (``clip_coords[j]``, ``clip_is_high[j]``
    — the boolean per-dimension expansion of the corner bitmask) with the
    query rectangle ``(q_lows[j], q_highs[j])`` probing it.  The scalar
    test probes the query corner *opposite* the clip corner and prunes
    when that corner lies strictly inside the clipped region; expanded per
    dimension that is ``q_low > coord`` on set mask bits and ``q_high <
    coord`` on cleared ones.  Returns True for rows whose clip point
    proves the query intersects only dead space.

    Strictness mirrors ``strictly_inside_corner_region``: boundary contact
    never prunes, so an object touching a clipped region's face is never
    lost.
    """
    cond = np.where(clip_is_high, q_lows > clip_coords, q_highs < clip_coords)
    return cond.all(axis=-1)


def masks_to_bool(masks: np.ndarray, dims: int) -> np.ndarray:
    """Expand integer corner bitmasks into an ``(n, dims)`` boolean matrix.

    Bit ``i`` of a mask selects the max-extent corner in dimension ``i``
    (see ``repro.geometry.bitmask.corner_of``); the boolean expansion is
    what :func:`clip_prune_mask` consumes.
    """
    masks = np.asarray(masks, dtype=np.int64).reshape(-1, 1)
    bits = np.arange(dims, dtype=np.int64)
    return (masks >> bits) & 1 > 0


def segment_any(flags: np.ndarray, owners: np.ndarray, n_segments: int) -> np.ndarray:
    """Per-segment logical OR of ``flags`` grouped by ``owners``.

    Safe for empty segments (they aggregate to False), unlike
    ``np.logical_or.reduceat``.
    """
    if len(flags) == 0:
        return np.zeros(n_segments, dtype=bool)
    return np.bincount(owners, weights=flags.astype(np.float64), minlength=n_segments) > 0.0
