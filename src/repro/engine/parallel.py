"""Multi-process sharded batch execution over shared mmap snapshots.

:class:`ParallelExecutor` fans the batch kernels out across a
``ProcessPoolExecutor``: range/kNN batches are sharded by query
partition, INLJ by outer-object partition, and STT by partitioning the
pair frontier once it is wide enough.  Workers never receive an index —
they open the snapshot *by path* (:func:`repro.engine.snapshot_io.
load_snapshot` with ``mmap=True``) and cache it per process, so the only
things crossing the process boundary are small query arrays going out
and flat hit-index arrays coming back; the snapshot itself is shared
copy-free through the page cache.

Merging is deterministic and worker-count independent:

* shards are contiguous partitions, merged back in shard order and then
  stably grouped by global query (or shipped-pair) index, so result
  lists are *identical* — element for element — whatever the worker
  count or shard size;
* ``IOStats`` are per-query (per-subtree, for STT) sums, so the merged
  counters equal the single-process engine's exactly.  For STT, workers
  report per-shipped-pair emission totals which the coordinator feeds
  back into its own pair ledger, settling contributing-leaf accounting
  exactly as a single-process run would.

``tests/test_parallel_exec.py`` pins parallel ≡ columnar ≡ scalar across
workers ∈ {1, 2, 4}.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.columnar import ColumnarIndex
from repro.engine.executor import (
    _query_arrays,
    gather_range_hits,
    knn_single_indices,
    materialize_range_hits,
)
from repro.engine.join_exec import (
    _PairLedger,
    _stt_rounds,
    materialize_stt_pairs,
    stt_root_frontier,
    stt_shard,
)
from repro.engine.snapshot_io import load_snapshot, save_snapshot
from repro.geometry.objects import SpatialObject
from repro.join.result import JoinResult
from repro.storage.stats import IOStats

#: STT ships its frontier to the pool once it holds this many pairs.  A
#: fixed constant (never derived from the worker count) so the shipped
#: frontier — and therefore merged ordering and accounting — is identical
#: for every pool size.
STT_SHIP_THRESHOLD = 64

#: Fault-injection site consulted once per shard submission when a
#: ``fault_plan`` is attached (a literal, not an import: the engine never
#: depends on :mod:`repro.serve`; any object with ``fires(site)`` works).
WORKER_KILL_SITE = "parallel.worker_kill"

_StatsTriple = Tuple[int, int, int]

#: Per-process cache of snapshots opened by path (populated in workers).
_WORKER_SNAPSHOTS = {}


def _open_worker_snapshot(path: str) -> ColumnarIndex:
    snapshot = _WORKER_SNAPSHOTS.get(path)
    if snapshot is None:
        snapshot = load_snapshot(path, mmap=True)
        _WORKER_SNAPSHOTS[path] = snapshot
    return snapshot


def _stats_triple(stats: IOStats) -> _StatsTriple:
    return (
        stats.leaf_accesses,
        stats.internal_accesses,
        stats.contributing_leaf_accesses,
    )


def _add_stats_triple(stats: Optional[IOStats], triple: _StatsTriple) -> None:
    if stats is not None:
        stats.leaf_accesses += triple[0]
        stats.internal_accesses += triple[1]
        stats.contributing_leaf_accesses += triple[2]


def _range_task(
    path: str, q_lows: np.ndarray, q_highs: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, _StatsTriple]:
    """One range shard: shard-local query rows against the whole snapshot."""
    snapshot = _open_worker_snapshot(path)
    stats = IOStats()
    hit_q, hit_obj = gather_range_hits(snapshot, q_lows, q_highs, stats=stats)
    return hit_q, hit_obj, _stats_triple(stats)


def _knn_task(
    path: str, points: np.ndarray, k: int
) -> Tuple[List[List[Tuple[float, int]]], _StatsTriple]:
    """One kNN shard: best-first search per point, objects as indices."""
    snapshot = _open_worker_snapshot(path)
    stats = IOStats()
    results = [knn_single_indices(snapshot, point, k, stats) for point in points]
    return results, _stats_triple(stats)


def _stt_task(
    left_path: str,
    right_path: str,
    nodes_a: np.ndarray,
    nodes_b: np.ndarray,
    collect_pairs: bool,
):
    """One STT shard: finish the join under the shipped frontier pairs."""
    left = _open_worker_snapshot(left_path)
    right = _open_worker_snapshot(right_path)
    return stt_shard(left, right, nodes_a, nodes_b, collect_pairs)


def _kill_worker_task() -> None:  # pragma: no cover - dies by design
    """Chaos task: hard-kill the worker process mid-batch.

    ``os._exit`` (not ``sys.exit``) so no cleanup runs — exactly what a
    SIGKILLed or OOM-killed worker looks like to the coordinator: the
    pool breaks with :class:`BrokenProcessPool`.
    """
    os._exit(17)


def default_workers() -> int:
    """Usable CPU count (affinity-aware where the platform reports it)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


class ParallelExecutor:
    """Shard batch queries and joins across a pool of snapshot workers.

    ``snapshot`` is either an in-RAM :class:`ColumnarIndex` — saved once
    into ``snapshot_dir`` (a temp directory by default, removed on
    :meth:`close`) so workers can mmap it — or the path of a directory
    produced by :func:`~repro.engine.snapshot_io.save_snapshot`, opened
    zero-copy in the coordinator too.

    The pool is lazy (created on first use), forked where the platform
    allows so workers inherit the loaded interpreter state, and every
    task wait is bounded by ``task_timeout`` seconds — a hung worker
    surfaces as a ``TimeoutError`` instead of a stalled job.  Use as a
    context manager, or call :meth:`close` when done.

    Self-healing: a worker death (OOM kill, segfault, chaos injection)
    surfaces as :class:`BrokenProcessPool`; the executor discards the
    broken pool, rebuilds it up to ``pool_rebuild_retries`` times, and
    re-runs *only the unfinished shards* — shards that completed before
    the break keep their results, so the merged output stays bit-identical
    to a serial run.  When rebuilds are exhausted the pending shards run
    serially in the coordinator (same task functions, same snapshot
    path), degrading throughput but never correctness.
    ``pool_rebuilds``/``serial_fallbacks`` count the recoveries.

    ``fault_plan`` (chaos testing) is any object with a
    ``fires(site) -> Optional[spec]`` method; it is consulted once per
    shard submission at :data:`WORKER_KILL_SITE`, and a firing spec
    replaces that shard's task with a worker-killing one.
    """

    def __init__(
        self,
        snapshot: Union[ColumnarIndex, str, Path],
        workers: Optional[int] = None,
        snapshot_dir: Optional[Union[str, Path]] = None,
        chunks_per_worker: int = 4,
        task_timeout: Optional[float] = 600.0,
        pool_rebuild_retries: int = 2,
        fault_plan=None,
    ):
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.chunks_per_worker = max(1, int(chunks_per_worker))
        self.task_timeout = task_timeout
        self.pool_rebuild_retries = max(0, int(pool_rebuild_retries))
        self.fault_plan = fault_plan
        self.pool_rebuilds = 0
        self.serial_fallbacks = 0
        self._owned_dirs: List[Path] = []
        self._pool: Optional[ProcessPoolExecutor] = None
        self.snapshot, self.path = self._resolve(snapshot, snapshot_dir)

    def _resolve(
        self,
        snapshot: Union[ColumnarIndex, str, Path],
        snapshot_dir: Optional[Union[str, Path]],
    ) -> Tuple[ColumnarIndex, Path]:
        if isinstance(snapshot, ColumnarIndex):
            if snapshot_dir is None:
                directory = Path(tempfile.mkdtemp(prefix="repro-snapshot-"))
                self._owned_dirs.append(directory)
            else:
                directory = Path(snapshot_dir)
            save_snapshot(snapshot, directory)
            return snapshot, directory
        directory = Path(snapshot)
        return load_snapshot(directory, mmap=True), directory

    # ------------------------------------------------------------------
    # pool plumbing
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return self._pool

    def _chunk_bounds(self, n_items: int) -> List[Tuple[int, int]]:
        """Contiguous ``(start, end)`` shards covering ``range(n_items)``.

        More chunks than workers (``chunks_per_worker``) so an expensive
        shard does not leave the rest of the pool idle.
        """
        n_chunks = min(n_items, self.workers * self.chunks_per_worker)
        if n_chunks <= 0:
            return []
        edges = np.linspace(0, n_items, n_chunks + 1, dtype=np.int64)
        return [
            (int(edges[i]), int(edges[i + 1]))
            for i in range(n_chunks)
            if edges[i] < edges[i + 1]
        ]

    def _discard_pool(self) -> None:
        """Drop a (presumed broken) pool without waiting on its corpses."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _submit(self, pool: ProcessPoolExecutor, fn, args):
        plan = self.fault_plan
        if plan is not None and plan.fires(WORKER_KILL_SITE) is not None:
            return pool.submit(_kill_worker_task)
        return pool.submit(fn, *args)

    def _run_shards(self, fn, args_per_shard) -> List:
        """Run one task per shard; results in shard order, self-healing.

        On :class:`BrokenProcessPool` the broken pool is discarded and
        only the shards without a result are resubmitted (results
        completed before the break are kept — recovery output is
        bit-identical to an undisturbed run).  After
        ``pool_rebuild_retries`` rebuilds, the remaining shards run
        serially in this process via the same task functions.
        """
        shard_args = list(args_per_shard)
        results: List = [None] * len(shard_args)
        done = [False] * len(shard_args)
        pending = list(range(len(shard_args)))
        rebuilds_left = self.pool_rebuild_retries
        while pending:
            futures: List[Tuple[int, object]] = []
            broken = False
            try:
                pool = self._ensure_pool()
                for index in pending:
                    futures.append((index, self._submit(pool, fn, shard_args[index])))
            except BrokenProcessPool:
                broken = True
            for index, future in futures:
                try:
                    results[index] = future.result(timeout=self.task_timeout)
                    done[index] = True
                except BrokenProcessPool:
                    broken = True
            pending = [index for index in pending if not done[index]]
            if not pending:
                break
            if not broken:  # pragma: no cover - future.result raised non-pool error
                raise RuntimeError("shards pending without a broken pool")
            self._discard_pool()
            if rebuilds_left > 0:
                rebuilds_left -= 1
                self.pool_rebuilds += 1
                continue
            # Rebuild budget exhausted: finish the unfinished shards
            # in-process.  The task functions only need the snapshot
            # path, which the coordinator can open like any worker.
            self.serial_fallbacks += 1
            for index in pending:
                results[index] = fn(*shard_args[index])
                done[index] = True
            pending = []
        return results

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_query_batch(
        self, rects: Sequence, stats: Optional[IOStats] = None
    ) -> List[List[SpatialObject]]:
        """Sharded :func:`repro.engine.executor.range_query_batch`.

        Identical result lists and ``IOStats`` to the single-process
        engine, for any worker count.
        """
        rects = list(rects)
        if not rects:
            return []
        q_lows, q_highs = _query_arrays(self.snapshot, rects)
        all_q, all_obj = self._sharded_range_hits(q_lows, q_highs, stats)
        return materialize_range_hits(self.snapshot, len(rects), all_q, all_obj)

    def _sharded_range_hits(
        self, q_lows: np.ndarray, q_highs: np.ndarray, stats: Optional[IOStats]
    ) -> Tuple[np.ndarray, np.ndarray]:
        bounds = self._chunk_bounds(len(q_lows))
        path = str(self.path)
        q_parts: List[np.ndarray] = []
        obj_parts: List[np.ndarray] = []
        shard_args = [(path, q_lows[s:e], q_highs[s:e]) for s, e in bounds]
        for (start, _), (hit_q, hit_obj, triple) in zip(
            bounds, self._run_shards(_range_task, shard_args)
        ):
            q_parts.append(hit_q + start)
            obj_parts.append(hit_obj)
            _add_stats_triple(stats, triple)
        if not q_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(q_parts), np.concatenate(obj_parts)

    def knn_batch(
        self, points: Sequence, k: int, stats: Optional[IOStats] = None
    ) -> List[List[Tuple[float, SpatialObject]]]:
        """Sharded :func:`repro.engine.executor.knn_batch` (same contract)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        points = np.asarray(list(points), dtype=np.float64)
        if len(points) == 0:
            return []
        if points.ndim != 2 or points.shape[1] != self.snapshot.dims:
            raise ValueError(
                f"points have shape {points.shape}, snapshot expects "
                f"(n, {self.snapshot.dims})"
            )
        bounds = self._chunk_bounds(len(points))
        path = str(self.path)
        shard_args = [(path, points[s:e], k) for s, e in bounds]
        objects = self.snapshot.objects
        results: List[List[Tuple[float, SpatialObject]]] = []
        for shard_results, triple in self._run_shards(_knn_task, shard_args):
            _add_stats_triple(stats, triple)
            for single in shard_results:
                results.append([(dist, objects[idx]) for dist, idx in single])
        return results

    # ------------------------------------------------------------------
    # joins
    # ------------------------------------------------------------------

    def inlj_batch(self, outer_objects, collect_pairs: bool = True) -> JoinResult:
        """Sharded :func:`repro.engine.join_exec.inlj_batch` over this snapshot.

        The outer side is partitioned; every worker probes the whole
        frozen inner snapshot.  Pairs, ``pair_count`` and ``inner_stats``
        match the single-process batch join exactly.
        """
        outer_objects = list(outer_objects)
        result = JoinResult()
        if not outer_objects:
            result.set_pair_count(0, collected=collect_pairs)
            return result
        q_lows = np.array([o.rect.low for o in outer_objects], dtype=np.float64)
        q_highs = np.array([o.rect.high for o in outer_objects], dtype=np.float64)
        if q_lows.shape[1] != self.snapshot.dims:
            raise ValueError(
                f"outer objects have {q_lows.shape[1]} dims, snapshot expects "
                f"{self.snapshot.dims}"
            )
        all_q, all_obj = self._sharded_range_hits(q_lows, q_highs, result.inner_stats)
        if collect_pairs and len(all_q):
            order = np.argsort(all_q, kind="stable")
            get = self.snapshot.objects.__getitem__
            result.pairs.extend(
                (outer_objects[q], get(o))
                for q, o in zip(all_q[order].tolist(), all_obj[order].tolist())
            )
        result.set_pair_count(int(len(all_q)), collected=collect_pairs)
        return result

    def stt_batch(
        self,
        other: Union["ParallelExecutor", ColumnarIndex, str, Path],
        collect_pairs: bool = True,
    ) -> JoinResult:
        """Sharded :func:`repro.engine.join_exec.stt_batch` against ``other``.

        The coordinator runs the first rounds itself until the pair
        frontier holds :data:`STT_SHIP_THRESHOLD` pairs, then partitions
        the frontier across the pool; each worker finishes the join under
        its shipped pairs and reports hits (tagged by shipped pair),
        per-pair emission totals, and access counts.  Emissions are fed
        back into the coordinator's ledger, so ``pair_count`` and both
        sides' ``IOStats`` equal the single-process join; result pairs
        are merged shipped-pair-major (deterministic and worker-count
        independent, though ordered differently from the single-process
        round-major stream — compare as multisets against it).
        """
        if isinstance(other, ParallelExecutor):
            right, right_path = other.snapshot, other.path
        elif isinstance(other, ColumnarIndex):
            directory = Path(tempfile.mkdtemp(prefix="repro-snapshot-"))
            self._owned_dirs.append(directory)
            save_snapshot(other, directory)
            right, right_path = other, directory
        else:
            right_path = Path(other)
            right = load_snapshot(right_path, mmap=True)

        left = self.snapshot
        result = JoinResult()
        ledger = _PairLedger()
        frontier = stt_root_frontier(left, right, ledger)
        if frontier is None:
            result.set_pair_count(0, collected=collect_pairs)
            return result

        collected: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        frontier = _stt_rounds(
            left,
            right,
            frontier,
            ledger,
            collected,
            collect_pairs,
            stop_len=STT_SHIP_THRESHOLD,
        )

        shipped_pairs: Optional[Tuple[np.ndarray, np.ndarray]] = None
        if len(frontier):
            bounds = self._chunk_bounds(len(frontier))
            shard_args = [
                (
                    str(self.path),
                    str(right_path),
                    frontier.a[s:e],
                    frontier.b[s:e],
                    collect_pairs,
                )
                for s, e in bounds
            ]
            emissions = np.zeros(len(frontier), dtype=np.int64)
            pos_parts: List[np.ndarray] = []
            ha_parts: List[np.ndarray] = []
            hb_parts: List[np.ndarray] = []
            for (start, end), shard in zip(
                bounds, self._run_shards(_stt_task, shard_args)
            ):
                hits_a, hits_b, hit_roots, root_emissions, outer_t, inner_t = shard
                emissions[start:end] = root_emissions
                _add_stats_triple(result.outer_stats, outer_t)
                _add_stats_triple(result.inner_stats, inner_t)
                if len(hits_a):
                    pos_parts.append(hit_roots + start)
                    ha_parts.append(hits_a)
                    hb_parts.append(hits_b)
            ledger.record_emissions(frontier.pid, emissions)
            if pos_parts:
                pos = np.concatenate(pos_parts)
                order = np.argsort(pos, kind="stable")
                shipped_pairs = (
                    np.concatenate(ha_parts)[order],
                    np.concatenate(hb_parts)[order],
                )

        emitted = ledger.settle(result)
        pair_count = int(emitted[0]) if len(emitted) else 0
        if collect_pairs:
            chunks = [(a, b) for a, b, _ in collected]
            if shipped_pairs is not None:
                chunks.append(shipped_pairs)
            materialize_stt_pairs(result, left, right, chunks)
        result.set_pair_count(pair_count, collected=collect_pairs)
        return result

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down and remove any temp snapshot directories.

        Idempotent, and safe on a half-constructed executor (``__init__``
        may raise before ``_pool``/``_owned_dirs`` exist) and during
        interpreter shutdown (module globals such as :mod:`shutil` may
        already be ``None``'d by the time ``__del__`` runs).
        """
        pool = getattr(self, "_pool", None)
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        dirs = getattr(self, "_owned_dirs", None) or []
        self._owned_dirs = []
        rmtree = getattr(shutil, "rmtree", None) if shutil is not None else None
        if rmtree is not None:
            for directory in dirs:
                rmtree(directory, ignore_errors=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        # BaseException: at interpreter shutdown, arbitrarily torn-down
        # state can surface as anything (including SystemExit-ish
        # errors); a destructor must never propagate.
        try:
            self.close()
        except BaseException:
            pass

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers}, path={str(self.path)!r}, "
            f"objects={len(self.snapshot.objects)})"
        )
