"""Level-synchronous, batched clip-point construction (Algorithm 1 for
whole tree levels at once).

:func:`bulk_clip` computes clip points for *every* node of a tree with a
handful of NumPy calls per (level, fan-out, corner) group instead of one
Python loop nest per node per corner.  The result is a
:class:`~repro.cbb.store.ClipStore` whose entries are *identical* to
running the scalar :func:`~repro.cbb.clipping.compute_clip_points` over
each node — same coordinate values, same scores, same per-node ordering,
same byte accounting (``tests/test_build_differential.py`` pins this
across tree variants, datasets, and both clipping methods).

The batching strategy mirrors the query engine's frontier trick: nodes
of one level are grouped by fan-out so their children's corners form a
dense ``(nodes, fanout, dims)`` array, dominance/splice/validity run as
broadcast comparisons (:mod:`repro.engine.clip_kernels`), and per-node
selection — score > tau·volume, stable score-descending order, top-k —
collapses into a single lexsort over flat candidate arrays.  Groups are
chunked so no intermediate broadcast exceeds a fixed element budget.

Exactness notes (why the store matches the scalar path bit for bit):

* all dominance / validity / dedup decisions are exact float64
  comparisons on the same coordinate values the scalar path reads;
* volumes and overlaps multiply dimension by dimension in dimension
  order (:func:`~repro.engine.clip_kernels.sequential_prod`), matching
  the scalar accumulation;
* the scalar path sorts each corner's candidates by descending score
  (stable), filters by threshold, concatenates corners in mask order,
  stable-sorts again, and truncates to ``k`` — which orders clips by
  ``(-score, mask, stage, rank)`` with stage/rank the candidate's
  generation position; one lexsort reproduces exactly that.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cbb.clip_point import ClipPoint
from repro.cbb.clipping import ClippingConfig
from repro.cbb.store import ClipStore
from repro.engine.clip_kernels import (
    clip_volumes,
    equals_any_point,
    first_occurrence_mask,
    overlap_volumes,
    segment_first_argmax,
    sequential_prod,
    skyline_mask_batch,
    splice_candidates,
    stair_invalid_mask,
)
from repro.engine.kernels import masks_to_bool
from repro.rtree.base import RTreeBase
from repro.rtree.node import Node

#: Ceiling on the element count of any broadcast intermediate; groups are
#: split into chunks of nodes that stay below it.
_CHUNK_BUDGET = 4_000_000


def bulk_clip(
    tree: RTreeBase,
    config: ClippingConfig = ClippingConfig(),
    store: Optional[ClipStore] = None,
) -> ClipStore:
    """Compute clip points for every node of ``tree``, level-synchronously.

    Returns a :class:`ClipStore` holding, for each node that earned at
    least one clip point, the same score-ordered :class:`ClipPoint` list
    the scalar ``compute_clip_points`` would produce.  When ``store`` is
    given it is cleared and refilled in place (the wrapper's own store,
    for :meth:`repro.rtree.clipped.ClippedRTree.clip_all`).
    """
    if store is None:
        store = ClipStore()
    else:
        store.clear()
    results = clip_nodes_batch(list(tree.nodes()), tree.dims, config)
    # Fill the store in tree.nodes() order — the scalar clip_all insertion
    # order — so store iteration (and thus persisted bytes) is identical.
    for node in tree.nodes():
        clips = results.get(node.node_id)
        if clips:
            store.put(node.node_id, clips)
    return store


def clip_nodes_batch(
    nodes: List[Node], dims: int, config: ClippingConfig = ClippingConfig()
) -> Dict[int, List[ClipPoint]]:
    """Clip points for an arbitrary set of nodes, batched by (level, fan-out).

    The shared core of :func:`bulk_clip` (every node of a tree) and the
    incremental dirty-node re-clipper
    (:func:`repro.engine.incremental_clip.reclip_nodes`, a handful of
    nodes after a compaction).  Returns ``{node_id: [ClipPoint, ...]}``
    containing only nodes that earned at least one clip point; each list
    is value-for-value what the scalar ``compute_clip_points`` produces
    for that node.
    """
    k = config.max_clip_points(dims)
    results: Dict[int, List[ClipPoint]] = {}
    if k == 0:
        return results
    groups: Dict[Tuple[int, int], List[Node]] = defaultdict(list)
    for node in nodes:
        if node.entries:
            groups[(node.level, len(node.entries))].append(node)
    for (_, count), group_nodes in sorted(groups.items()):
        _clip_group(group_nodes, count, dims, k, config, results)
    return results


def _clip_group(
    nodes: List[Node],
    count: int,
    dims: int,
    k: int,
    config: ClippingConfig,
    results: Dict[int, List[ClipPoint]],
) -> None:
    """Clip one (level, fan-out) group of nodes in a few array passes."""
    lows = np.empty((len(nodes), count, dims), dtype=np.float64)
    highs = np.empty((len(nodes), count, dims), dtype=np.float64)
    for gi, node in enumerate(nodes):
        lows[gi] = [entry.rect.low for entry in node.entries]
        highs[gi] = [entry.rect.high for entry in node.entries]

    node_low = lows.min(axis=1)
    node_high = highs.max(axis=1)
    volume = sequential_prod(node_high - node_low)

    # Zero-volume nodes cannot be clipped meaningfully (scalar: empty list).
    active = volume > 0.0
    if not active.any():
        return
    if not active.all():
        nodes = [node for node, keep in zip(nodes, active) if keep]
        lows, highs = lows[active], highs[active]
        node_low, node_high = node_low[active], node_high[active]
        volume = volume[active]
    g = len(nodes)
    threshold = config.tau * volume
    stairline = config.method == "stairline"

    # Per-candidate accumulators across all corners, flat over the group.
    acc_pts: List[np.ndarray] = []
    acc_owner: List[np.ndarray] = []
    acc_mask: List[np.ndarray] = []
    acc_stage: List[np.ndarray] = []
    acc_rank: List[np.ndarray] = []
    acc_score: List[np.ndarray] = []

    for mask in range(1 << dims):
        is_high = masks_to_bool(np.array([mask]), dims)[0]
        corners = np.where(is_high, highs, lows)
        node_corner = np.where(is_high, node_high, node_low)

        sky_mask = _chunked_skyline(corners, is_high, count, dims)
        sky_owner = np.nonzero(sky_mask)[0]
        sky_pts = corners[sky_mask]
        sky_counts = sky_mask.sum(axis=1)

        if stairline:
            stair_pts, stair_owner, stair_rank = _stair_candidates(
                corners, sky_mask, sky_counts, is_high, dims
            )
        else:
            stair_pts = np.empty((0, dims), dtype=np.float64)
            stair_owner = np.empty(0, dtype=np.int64)
            stair_rank = np.empty(0, dtype=np.int64)

        # Assemble the per-node candidate lists: skyline first (in child
        # order), then valid stairline points (in pair order).
        pts = np.concatenate([sky_pts, stair_pts])
        owner = np.concatenate([sky_owner, stair_owner])
        stage = np.concatenate(
            [np.zeros(len(sky_pts), np.int64), np.ones(len(stair_pts), np.int64)]
        )
        rank = np.concatenate([_ranks_within(sky_owner), stair_rank])
        order = np.lexsort((rank, stage, owner))
        pts, owner, stage, rank = pts[order], owner[order], stage[order], rank[order]

        counts = sky_counts + np.bincount(stair_owner, minlength=g)
        starts = np.cumsum(counts) - counts

        vols = clip_volumes(pts, node_corner[owner])
        best_rows = segment_first_argmax(vols, starts, counts)[owner]
        is_best = np.arange(len(pts)) == best_rows
        scores = np.where(
            is_best,
            vols,
            vols - overlap_volumes(pts, pts[best_rows], node_corner[owner]),
        )

        passing = scores > threshold[owner]
        acc_pts.append(pts[passing])
        acc_owner.append(owner[passing])
        acc_mask.append(np.full(int(passing.sum()), mask, dtype=np.int64))
        acc_stage.append(stage[passing])
        acc_rank.append(rank[passing])
        acc_score.append(scores[passing])

    pts = np.concatenate(acc_pts)
    owner = np.concatenate(acc_owner)
    cmask = np.concatenate(acc_mask)
    stage = np.concatenate(acc_stage)
    rank = np.concatenate(acc_rank)
    score = np.concatenate(acc_score)

    # Final per-node order: descending score, ties by (mask, stage, rank) —
    # exactly the scalar stable sort over mask-major sorted candidates.
    order = np.lexsort((rank, stage, cmask, -score, owner))
    owner = owner[order]
    keep = _ranks_within(owner) < k
    owner = owner[keep]
    pts = pts[order][keep]
    cmask = cmask[order][keep]
    score = score[order][keep]

    clips: Dict[int, List[ClipPoint]] = defaultdict(list)
    for oi, coord, mask_val, score_val in zip(
        owner.tolist(), pts.tolist(), cmask.tolist(), score.tolist()
    ):
        clips[oi].append(ClipPoint(tuple(coord), mask_val, score_val))
    for oi, points in clips.items():
        results[nodes[oi].node_id] = points


def _chunked_skyline(
    corners: np.ndarray, is_high: np.ndarray, count: int, dims: int
) -> np.ndarray:
    """Skyline masks for all nodes, chunked to bound the (g,c,c,d) blow-up."""
    step = max(1, _CHUNK_BUDGET // (count * count * dims))
    parts = [
        skyline_mask_batch(corners[start : start + step], is_high)
        for start in range(0, len(corners), step)
    ]
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def _stair_candidates(
    corners: np.ndarray,
    sky_mask: np.ndarray,
    sky_counts: np.ndarray,
    is_high: np.ndarray,
    dims: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Valid, deduplicated stairline points for every node of the group.

    Nodes are regrouped by skyline size so each subgroup forms a dense
    ``(nodes, s, d)`` array; candidates come back flat with their owner
    (group-node index) and rank (position among the node's *kept*
    stairline points, in pair order) — what the final ordering needs.
    """
    pts_parts: List[np.ndarray] = []
    owner_parts: List[np.ndarray] = []
    rank_parts: List[np.ndarray] = []
    for s in np.unique(sky_counts):
        s = int(s)
        if s < 2:
            continue
        node_sel = np.nonzero(sky_counts == s)[0]
        skylines = corners[node_sel][sky_mask[node_sel]].reshape(len(node_sel), s, dims)
        pairs = s * (s - 1) // 2
        step = max(1, _CHUNK_BUDGET // (pairs * s * dims))
        for start in range(0, len(node_sel), step):
            chunk = skylines[start : start + step]
            cands, _, _ = splice_candidates(chunk, is_high)
            bad = stair_invalid_mask(chunk, cands, is_high) | equals_any_point(
                cands, chunk
            )
            flat = cands.reshape(-1, dims)
            local_owner = np.repeat(np.arange(len(chunk), dtype=np.int64), pairs)
            keep = first_occurrence_mask(flat, local_owner) & ~bad.reshape(-1)
            kept_owner = local_owner[keep]
            pts_parts.append(flat[keep])
            owner_parts.append(node_sel[start : start + step][kept_owner])
            rank_parts.append(_ranks_within(kept_owner))
    if not pts_parts:
        return (
            np.empty((0, dims), dtype=np.float64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    return (
        np.concatenate(pts_parts),
        np.concatenate(owner_parts),
        np.concatenate(rank_parts),
    )


def _ranks_within(owners: np.ndarray) -> np.ndarray:
    """Position of each element within its run of equal consecutive owners."""
    n = len(owners)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    new_run = np.r_[True, owners[1:] != owners[:-1]]
    run_starts = np.nonzero(new_run)[0]
    run_id = np.cumsum(new_run) - 1
    return np.arange(n, dtype=np.int64) - run_starts[run_id]
