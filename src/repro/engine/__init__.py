"""Columnar batch query engine.

Freezes any R-tree variant (plain or clipped) into contiguous NumPy
arrays and answers whole query batches through vectorized kernels — the
fast path behind ``execute_workload(..., engine="columnar")``, the
``--engine columnar`` CLI flag, and the fig11/fig15 experiments.

See :mod:`repro.engine.columnar` for the snapshot layout and its
invalidation semantics, :mod:`repro.engine.kernels` for the scalar↔array
predicate correspondence, and ``tests/test_engine_differential.py`` for
the harness that pins batch ≡ scalar ≡ brute force.
"""

from repro.engine.columnar import ColumnarIndex
from repro.engine.executor import knn_batch, range_query_batch

__all__ = ["ColumnarIndex", "knn_batch", "range_query_batch"]
