"""Columnar batch engine: vectorized querying *and* construction.

Querying (PR 1): freeze any R-tree variant (plain or clipped) into
contiguous NumPy arrays and answer whole query batches through
vectorized kernels — the fast path behind
``execute_workload(..., engine="columnar")``, the ``--engine columnar``
CLI flag, and the fig11/fig15 experiments.

Construction (the build-side twin): :func:`build_columnar_str` STR-packs
objects straight into a :class:`ColumnarIndex` with no intermediate
Python nodes, and :func:`bulk_clip` computes the paper's Algorithm 1 for
whole tree levels at once — the path behind
``ClippedRTree.clip_all(engine="vectorized")``, the ``--build-engine``
CLI flag, and ``BenchConfig.build_engine``.

Updates (the write-side twin): :class:`SnapshotManager` +
:class:`DeltaOverlay` absorb inserts/deletes on top of a frozen snapshot
and fold them in via compaction with dirty-node-only re-clipping
(:func:`reclip_nodes`) — the path behind
``BenchConfig.update_engine``, the ``--update-engine`` CLI flag, and the
``updates`` experiment.

Joins (the §V twin): :func:`inlj_batch` and :func:`stt_batch` run both
spatial-join strategies over snapshots with scalar-identical pairs and
I/O accounting — the path behind
``execute_join(..., engine="columnar")``, the ``--join-engine`` CLI
flag, and ``BenchConfig.join_engine``.

Persistence + parallelism (the scale-out twin):
:func:`save_snapshot`/:func:`load_snapshot` persist a snapshot as
memory-mappable ``.npy`` files (near-instant zero-copy loads shared
across processes) and :class:`ParallelExecutor` shards batch queries
and joins across a worker pool over such a shared snapshot — the path
behind ``execute_workload(..., workers=N)`` /
``execute_join(..., workers=N)``, the ``--workers`` CLI flag, and the
``repro snapshot save/load`` subcommands.

See :mod:`repro.engine.columnar` for the snapshot layout,
:mod:`repro.engine.kernels` / :mod:`repro.engine.clip_kernels` for the
scalar↔array predicate correspondences, and
``tests/test_engine_differential.py`` / ``tests/test_build_differential.py``
for the harnesses pinning batch ≡ scalar.
"""

from repro.engine.builder import build_columnar_str
from repro.engine.bulk_clip import bulk_clip, clip_nodes_batch
from repro.engine.columnar import (
    STALE_POLICIES,
    ColumnarIndex,
    StaleSnapshotError,
    resolve_stale,
)
from repro.engine.delta import (
    CompactionInProgressError,
    DeltaOverlay,
    SnapshotManager,
    overlay_join,
)
from repro.engine.executor import knn_batch, range_query_batch
from repro.engine.incremental_clip import reclip_nodes, reclip_nodes_for_results
from repro.engine.join_exec import inlj_batch, stt_batch
from repro.engine.parallel import ParallelExecutor, default_workers
from repro.engine.snapshot_io import (
    FORMAT_VERSION,
    SnapshotFormatError,
    load_snapshot,
    save_snapshot,
    set_load_fault_hook,
)

__all__ = [
    "FORMAT_VERSION",
    "STALE_POLICIES",
    "ColumnarIndex",
    "CompactionInProgressError",
    "DeltaOverlay",
    "ParallelExecutor",
    "SnapshotManager",
    "SnapshotFormatError",
    "StaleSnapshotError",
    "build_columnar_str",
    "bulk_clip",
    "clip_nodes_batch",
    "default_workers",
    "inlj_batch",
    "knn_batch",
    "load_snapshot",
    "overlay_join",
    "range_query_batch",
    "reclip_nodes",
    "reclip_nodes_for_results",
    "resolve_stale",
    "save_snapshot",
    "set_load_fault_hook",
    "stt_batch",
]
