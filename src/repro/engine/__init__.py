"""Columnar batch engine: vectorized querying *and* construction.

Querying (PR 1): freeze any R-tree variant (plain or clipped) into
contiguous NumPy arrays and answer whole query batches through
vectorized kernels — the fast path behind
``execute_workload(..., engine="columnar")``, the ``--engine columnar``
CLI flag, and the fig11/fig15 experiments.

Construction (the build-side twin): :func:`build_columnar_str` STR-packs
objects straight into a :class:`ColumnarIndex` with no intermediate
Python nodes, and :func:`bulk_clip` computes the paper's Algorithm 1 for
whole tree levels at once — the path behind
``ClippedRTree.clip_all(engine="vectorized")``, the ``--build-engine``
CLI flag, and ``BenchConfig.build_engine``.

Joins (the §V twin): :func:`inlj_batch` and :func:`stt_batch` run both
spatial-join strategies over snapshots with scalar-identical pairs and
I/O accounting — the path behind
``execute_join(..., engine="columnar")``, the ``--join-engine`` CLI
flag, and ``BenchConfig.join_engine``.

See :mod:`repro.engine.columnar` for the snapshot layout,
:mod:`repro.engine.kernels` / :mod:`repro.engine.clip_kernels` for the
scalar↔array predicate correspondences, and
``tests/test_engine_differential.py`` / ``tests/test_build_differential.py``
for the harnesses pinning batch ≡ scalar.
"""

from repro.engine.builder import build_columnar_str
from repro.engine.bulk_clip import bulk_clip
from repro.engine.columnar import ColumnarIndex
from repro.engine.executor import knn_batch, range_query_batch
from repro.engine.join_exec import inlj_batch, stt_batch

__all__ = [
    "ColumnarIndex",
    "build_columnar_str",
    "bulk_clip",
    "inlj_batch",
    "knn_batch",
    "range_query_batch",
    "stt_batch",
]
