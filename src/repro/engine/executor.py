"""Batch query execution over a :class:`~repro.engine.columnar.ColumnarIndex`.

:func:`range_query_batch` runs *all* queries simultaneously with a
level-synchronous frontier: each iteration expands every pending
``(query, node)`` pair of one tree level through the vectorized kernels —
one intersection test over every entry of every frontier node, one clip
pruning pass over every candidate child — so the per-level Python
overhead is a handful of NumPy calls regardless of how many queries or
nodes are in flight.

:func:`knn_batch` keeps the scalar best-first control flow (a heap per
query — best-first order is inherently sequential) but replaces the
per-entry MinDist loop with one kernel call per visited node.

Both report :class:`~repro.storage.stats.IOStats` identically to the
scalar traversals in :mod:`repro.rtree.base` and :mod:`repro.query.knn`:
the same nodes are visited (in a different order), so ``leaf_accesses``,
``contributing_leaf_accesses`` and ``internal_accesses`` match count for
count.  ``tests/test_engine_differential.py`` asserts this for every
variant.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine.columnar import ColumnarIndex
from repro.engine.kernels import (
    clip_prune_mask,
    expand_segments,
    intersect_mask,
    min_dist_sq,
    segment_any,
)
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.storage.stats import IOStats

#: ``access_hook(query_indices, node_ids)`` — one call per frontier round
#: with the queries and the original tree node ids they are visiting.
AccessHook = Callable[[np.ndarray, np.ndarray], None]


def _query_arrays(index: ColumnarIndex, rects: Sequence[Rect]) -> Tuple[np.ndarray, np.ndarray]:
    lows = np.array([r.low for r in rects], dtype=np.float64)
    highs = np.array([r.high for r in rects], dtype=np.float64)
    if lows.shape[1] != index.dims:
        raise ValueError(
            f"queries have {lows.shape[1]} dims, snapshot expects {index.dims}"
        )
    return lows, highs


def gather_range_hits(
    index: ColumnarIndex,
    q_lows: np.ndarray,
    q_highs: np.ndarray,
    stats: Optional[IOStats] = None,
    access_hook: Optional[AccessHook] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run the level-synchronous frontier for a batch of query rectangles.

    Returns ``(hit_queries, hit_objects)``: parallel arrays pairing each
    matched object index with the query (row of ``q_lows``/``q_highs``)
    that matched it, in frontier-discovery (BFS) order.  This is the
    shared core of :func:`range_query_batch` and the columnar INLJ
    (:func:`repro.engine.join_exec.inlj_batch`), which only differ in how
    they materialise the hits; ``IOStats`` accounting is identical to the
    scalar traversal either way.
    """
    n_queries = len(q_lows)
    frontier_q = np.arange(n_queries, dtype=np.int64)
    frontier_n = np.full(n_queries, ColumnarIndex.ROOT_SLOT, dtype=np.int64)
    hit_queries_rounds: List[np.ndarray] = []
    hit_objects_rounds: List[np.ndarray] = []

    while len(frontier_n):
        if access_hook is not None:
            access_hook(frontier_q, index.node_ids[frontier_n])
        leaf_sel = index.is_leaf[frontier_n]

        # --- leaf visits: match entries, record hits --------------------
        leaf_q = frontier_q[leaf_sel]
        leaf_n = frontier_n[leaf_sel]
        if len(leaf_n):
            flat, owners = expand_segments(
                index.entry_start[leaf_n], index.entry_count[leaf_n]
            )
            hit = intersect_mask(
                index.entry_lows[flat],
                index.entry_highs[flat],
                q_lows[leaf_q[owners]],
                q_highs[leaf_q[owners]],
            )
            if stats is not None:
                contributed = segment_any(hit, owners, len(leaf_n))
                stats.leaf_accesses += int(len(leaf_n))
                stats.contributing_leaf_accesses += int(contributed.sum())
            hit_rows = np.nonzero(hit)[0]
            if len(hit_rows):
                hit_queries_rounds.append(leaf_q[owners[hit_rows]])
                hit_objects_rounds.append(index.entry_child[flat[hit_rows]])

        # --- internal visits: filter children into the next frontier ----
        int_q = frontier_q[~leaf_sel]
        int_n = frontier_n[~leaf_sel]
        if stats is not None:
            stats.internal_accesses += int(len(int_n))
        if not len(int_n):
            break
        flat, owners = expand_segments(index.entry_start[int_n], index.entry_count[int_n])
        isect = intersect_mask(
            index.entry_lows[flat],
            index.entry_highs[flat],
            q_lows[int_q[owners]],
            q_highs[int_q[owners]],
        )
        cand = flat[isect]
        cand_q = int_q[owners[isect]]

        if index.has_clips and len(cand):
            cflat, cowners = expand_segments(
                index.clip_start[cand], index.clip_count[cand]
            )
            if len(cflat):
                prune_rows = clip_prune_mask(
                    q_lows[cand_q[cowners]],
                    q_highs[cand_q[cowners]],
                    index.clip_coords[cflat],
                    index.clip_is_high[cflat],
                )
                keep = ~segment_any(prune_rows, cowners, len(cand))
                cand = cand[keep]
                cand_q = cand_q[keep]

        frontier_q = cand_q
        frontier_n = index.entry_child[cand]

    if hit_queries_rounds:
        return np.concatenate(hit_queries_rounds), np.concatenate(hit_objects_rounds)
    empty = np.empty(0, dtype=np.int64)
    return empty, empty


def range_query_batch(
    index: ColumnarIndex,
    rects: Sequence[Rect],
    stats: Optional[IOStats] = None,
    access_hook: Optional[AccessHook] = None,
) -> List[List[SpatialObject]]:
    """All objects intersecting each query rectangle, per query.

    The vectorized equivalent of calling ``range_query(rect, stats=...)``
    once per rectangle: result *sets* and every ``IOStats`` counter are
    identical to the scalar path (results arrive in BFS rather than DFS
    order).  ``access_hook``, when given, is invoked once per frontier
    round with the visiting query indices and visited node ids — the
    cold-disk experiment uses it to charge a buffer pool.
    """
    rects = list(rects)
    if not rects:
        return []
    q_lows, q_highs = _query_arrays(index, rects)
    all_q, all_obj = gather_range_hits(
        index, q_lows, q_highs, stats=stats, access_hook=access_hook
    )
    return materialize_range_hits(index, len(rects), all_q, all_obj)


def materialize_range_hits(
    index: ColumnarIndex, n_queries: int, all_q: np.ndarray, all_obj: np.ndarray
) -> List[List[SpatialObject]]:
    """Group flat ``(query, object)`` hit arrays into per-query result lists.

    One grouped pass: a stable sort by query keeps the discovery order
    within each query, and objects are resolved per contiguous slice
    rather than per hit.  Shared by :func:`range_query_batch` and the
    multi-process executor (:mod:`repro.engine.parallel`), whose merged
    shard hits materialise identically.
    """
    results: List[List[SpatialObject]] = [[] for _ in range(n_queries)]
    if len(all_q):
        order = np.argsort(all_q, kind="stable")
        sorted_q = all_q[order]
        sorted_obj = all_obj[order]
        boundaries = np.nonzero(np.diff(sorted_q))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_q)]))
        get = index.objects.__getitem__
        for q, start, end in zip(sorted_q[starts].tolist(), starts.tolist(), ends.tolist()):
            results[q] = [get(i) for i in sorted_obj[start:end].tolist()]
    return results


def knn_batch(
    index: ColumnarIndex,
    points: Sequence[Sequence[float]],
    k: int,
    stats: Optional[IOStats] = None,
) -> List[List[Tuple[float, SpatialObject]]]:
    """The ``k`` nearest objects per query point (squared distance, object).

    Result lists and ``IOStats`` counters match
    :func:`repro.query.knn.knn_query` run on the source tree; clip points
    are not consulted (MinDist to the MBB is already a valid lower bound,
    so clipping could only tighten — never change — the result set).
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    return [_knn_single(index, point, k, stats) for point in points]


def _knn_single(
    index: ColumnarIndex,
    point: Sequence[float],
    k: int,
    stats: Optional[IOStats],
) -> List[Tuple[float, SpatialObject]]:
    return [
        (dist, index.objects[obj_idx])
        for dist, obj_idx in knn_single_indices(index, point, k, stats)
    ]


def knn_single_indices(
    index: ColumnarIndex,
    point: Sequence[float],
    k: int,
    stats: Optional[IOStats],
) -> List[Tuple[float, int]]:
    """Best-first kNN returning ``(squared distance, object index)`` pairs.

    The index-level core of :func:`knn_batch`; the multi-process executor
    runs this in workers and materialises objects in the coordinator.
    """
    point = np.asarray(point, dtype=np.float64)
    if point.shape != (index.dims,):
        raise ValueError(f"point has shape {point.shape}, snapshot expects ({index.dims},)")
    counter = itertools.count()
    heap: List[Tuple[float, int, int, bool]] = [
        (0.0, next(counter), ColumnarIndex.ROOT_SLOT, True)
    ]
    results: List[Tuple[float, int]] = []

    while heap and len(results) < k:
        dist, _, item, is_node = heapq.heappop(heap)
        if not is_node:
            results.append((dist, item))
            continue
        slot = item
        leaf = bool(index.is_leaf[slot])
        if stats is not None:
            if leaf:
                stats.record_leaf()
            else:
                stats.record_internal()
        start = int(index.entry_start[slot])
        count = int(index.entry_count[slot])
        if not count:
            continue
        dists = min_dist_sq(
            index.entry_lows[start : start + count],
            index.entry_highs[start : start + count],
            point,
        )
        children = index.entry_child[start : start + count]
        for d, child in zip(dists.tolist(), children.tolist()):
            heapq.heappush(heap, (d, next(counter), child, not leaf))
    return results
