"""Incremental updates without refreeze: an LSM-flavored delta overlay.

The columnar snapshots of :mod:`repro.engine.columnar` are immutable —
before this module, every insert or delete forced a full re-freeze (and,
for clipped trees, ran the §IV-D per-update re-clipping synchronously).
Here writes are absorbed by a small mutable in-memory R-tree
(:class:`DeltaOverlay`) sitting on top of the frozen snapshot, queries
merge both layers, and a *compaction* folds the buffered batch into the
source tree, re-clips only the dirty nodes
(:func:`repro.engine.incremental_clip.reclip_nodes_for_results`), and
atomically swaps in one fresh snapshot — the naive → amortized ladder of
the treebuffers line of work, applied to clipped R-trees.

Layering, from the reader's point of view:

* *base*: the frozen :class:`~repro.engine.columnar.ColumnarIndex`;
* *delta inserts*: a :class:`~repro.rtree.quadratic.QuadraticRTree`
  holding objects inserted since the freeze;
* *delta deletes*: per-object tombstone counts against the base (an
  object is identified by ``(oid, rect)``; duplicates are tracked by
  count, so deleting one of two identical objects removes exactly one).

Query merging: base hits are filtered through the tombstones, overlay
hits are unioned in, and I/O statistics accumulate into the same
:class:`~repro.storage.stats.IOStats` (base accesses through the batch
executor, overlay accesses through the scalar traversal of the small
delta tree).  While a delta is pending the *results* equal a scalar
``ClippedRTree`` maintained with the same operations
(``tests/test_delta_overlay.py`` pins this property); after
:meth:`SnapshotManager.compact` the served snapshot is bit-identical to
a fresh freeze, so access counts match the scalar engine exactly again.

Consistency: :class:`SnapshotManager` publishes ``(snapshot, overlay)``
as one tuple replaced by a single attribute assignment — readers grab
the pair once per query batch and never observe a half-applied
compaction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.engine.builder import build_columnar_str
from repro.engine.columnar import ColumnarIndex
from repro.engine.incremental_clip import reclip_nodes_for_results
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.join.result import JoinResult
from repro.query.knn import knn_query
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree
from repro.rtree.quadratic import QuadraticRTree
from repro.storage.stats import IOStats

#: ``(oid, low corner, high corner)`` — how the overlay identifies one
#: object across the base/delta boundary.  Rect corners are tuples, so
#: keys are hashable; equal duplicates share a key and are counted.
ObjectKey = Tuple[int, Tuple[float, ...], Tuple[float, ...]]


def object_key(obj: SpatialObject) -> ObjectKey:
    """The overlay's identity key for ``obj`` (id + exact rectangle)."""
    return (obj.oid, obj.rect.low, obj.rect.high)


class CompactionInProgressError(RuntimeError):
    """A write raced a running :meth:`SnapshotManager.compact`.

    Raised for operations that cannot be staged safely (``delete``, a
    reentrant ``compact``) — the caller should retry after the swap.
    Concurrent *inserts* are never refused: they are staged and replayed
    into the fresh overlay when the compaction commits (or back into the
    current overlay when it fails), so a write accepted by the manager is
    never silently dropped.
    """


class DeltaOverlay:
    """Buffers inserts and deletes against one frozen snapshot.

    Inserts go into a small mutable R-tree; deletes of *base* objects
    become tombstone counts (and remember the object so compaction can
    replay the delete against the source tree); deleting an object that
    only lives in the delta tree simply removes it there.
    """

    def __init__(self, base: ColumnarIndex, max_entries: int = 16):
        self.base = base
        self.dims = base.dims
        self.tree = QuadraticRTree(base.dims, max_entries=max_entries)
        #: tombstones: key -> number of base copies deleted
        self.deleted: Dict[ObjectKey, int] = {}
        self._deleted_objects: List[SpatialObject] = []
        self._base_counts: Optional[Dict[ObjectKey, int]] = None
        self.ops = 0

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def insert(self, obj: SpatialObject) -> None:
        """Buffer one insertion."""
        if obj.dims != self.dims:
            raise ValueError(f"object has {obj.dims} dims, overlay expects {self.dims}")
        self.tree.insert(obj)
        self.ops += 1

    def delete(self, obj: SpatialObject) -> bool:
        """Buffer one deletion; False when no live copy of ``obj`` exists."""
        if self.tree.delete(obj).found:
            self.ops += 1
            return True
        key = object_key(obj)
        if self.base_count(key) - self.deleted.get(key, 0) <= 0:
            return False
        self.deleted[key] = self.deleted.get(key, 0) + 1
        self._deleted_objects.append(obj)
        self.ops += 1
        return True

    def base_count(self, key: ObjectKey) -> int:
        """Number of copies of ``key`` in the base snapshot."""
        if self._base_counts is None:
            counts: Dict[ObjectKey, int] = {}
            for obj in self.base.objects:
                k = object_key(obj)
                counts[k] = counts.get(k, 0) + 1
            self._base_counts = counts
        return self._base_counts.get(key, 0)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True when no write has been buffered since the last freeze."""
        return len(self.tree) == 0 and not self.deleted

    @property
    def has_deletes(self) -> bool:
        """True when any base tombstone is pending."""
        return bool(self.deleted)

    @property
    def deleted_count(self) -> int:
        """Total pending base tombstones (counting duplicates)."""
        return len(self._deleted_objects)

    def live_count(self) -> int:
        """Objects visible through base + delta."""
        return len(self.base.objects) - self.deleted_count + len(self.tree)

    def deleted_objects(self) -> List[SpatialObject]:
        """The buffered base deletions, in arrival order (for compaction)."""
        return list(self._deleted_objects)

    # ------------------------------------------------------------------
    # read-side merging
    # ------------------------------------------------------------------

    def filter_base_hits(self, hits: Iterable[SpatialObject]) -> List[SpatialObject]:
        """Drop tombstoned base hits (one hit per pending tombstone count)."""
        if not self.deleted:
            return list(hits)
        remaining = dict(self.deleted)
        out: List[SpatialObject] = []
        for obj in hits:
            key = object_key(obj)
            pending = remaining.get(key, 0)
            if pending:
                remaining[key] = pending - 1
            else:
                out.append(obj)
        return out

    def filter_base_knn(
        self, hits: Iterable[Tuple[float, SpatialObject]]
    ) -> List[Tuple[float, SpatialObject]]:
        """Tombstone filtering for ``(distance, object)`` kNN hit lists."""
        if not self.deleted:
            return list(hits)
        remaining = dict(self.deleted)
        out: List[Tuple[float, SpatialObject]] = []
        for dist, obj in hits:
            key = object_key(obj)
            pending = remaining.get(key, 0)
            if pending:
                remaining[key] = pending - 1
            else:
                out.append((dist, obj))
        return out


@dataclass
class CompactionStats:
    """What one :meth:`SnapshotManager.compact` call did."""

    applied_inserts: int = 0
    applied_deletes: int = 0
    reclipped_nodes: int = 0
    seconds: float = 0.0


class SnapshotManager:
    """Serves a frozen snapshot while absorbing writes, LSM-style.

    ``update_engine``:

    * ``"refreeze"`` — the baseline: every write is applied to the source
      synchronously (running §IV-D per-update re-clipping for clipped
      sources) and the snapshot is re-frozen immediately;
    * ``"delta"`` — writes buffer in a :class:`DeltaOverlay`; queries
      merge base and delta; :meth:`compact` (or ``compact_every``) folds
      the batch into the source with one dirty-node re-clip pass and one
      freeze, then atomically swaps the published state.

    Sources may be a :class:`~repro.rtree.clipped.ClippedRTree`, a plain
    :class:`~repro.rtree.base.RTreeBase`, or a
    :class:`~repro.engine.columnar.ColumnarIndex` (tree-backed snapshots
    unwrap to their source; source-free STR snapshots compact by
    rebuilding through :func:`repro.engine.builder.build_columnar_str`).

    Concurrency contract (what a background-compacting server relies
    on): writes and :meth:`compact` may race from different threads.
    While a compaction is running, an ``insert`` is *staged* and
    replayed — atomically with the snapshot swap — into the overlay that
    ends up current (the fresh one on success, the old one on failure),
    so it either lands in the new overlay or survives the crash; it is
    never silently dropped.  A concurrent ``delete`` or a reentrant
    ``compact`` raises :class:`CompactionInProgressError` instead (a
    delete staged against a base being rebuilt could target either the
    old or new snapshot, so the manager refuses rather than guess).
    ``compaction_fault_hook`` (chaos testing) is an optional callable
    invoked once after a compaction has started but *before* the source
    is mutated; raising from it models a background-rebuild crash —
    the published view is untouched and staged inserts are recovered.
    Readers are lock-free throughout: they grab the published
    ``(snapshot, overlay)`` tuple once per batch.
    """

    UPDATE_ENGINES = ("refreeze", "delta")

    #: duck-typing marker checked by ``execute_workload``/``execute_join``
    is_snapshot_manager = True

    def __init__(
        self,
        source: Union[RTreeBase, ClippedRTree, ColumnarIndex],
        update_engine: str = "delta",
        compact_every: Optional[int] = None,
        clip_engine: str = "vectorized",
        overlay_max_entries: int = 16,
        rebuild_max_entries: Optional[int] = None,
    ):
        if update_engine not in self.UPDATE_ENGINES:
            raise ValueError(
                f"unknown update engine {update_engine!r}; known: {self.UPDATE_ENGINES}"
            )
        if compact_every is not None and compact_every < 1:
            raise ValueError("compact_every must be at least 1")
        if isinstance(source, ColumnarIndex):
            self._source = source.source
            snapshot = source
        else:
            self._source = source
            snapshot = ColumnarIndex.from_tree(source)
        self.update_engine = update_engine
        self.compact_every = compact_every
        self.clip_engine = clip_engine
        self.overlay_max_entries = overlay_max_entries
        if rebuild_max_entries is None and self._source is None:
            counts = snapshot.entry_count
            rebuild_max_entries = max(2, int(counts.max())) if len(counts) else 16
        self.rebuild_max_entries = rebuild_max_entries
        self.epoch = 0
        self.total_compactions = 0
        self.total_reclipped_nodes = 0
        #: chaos hook: called once per compaction, pre-mutation (see class doc).
        self.compaction_fault_hook = None
        self._write_lock = threading.Lock()
        self._compacting = False
        self._staged_inserts: List[SpatialObject] = []
        self._view: Tuple[ColumnarIndex, DeltaOverlay] = (
            snapshot,
            DeltaOverlay(snapshot, max_entries=overlay_max_entries),
        )

    # ------------------------------------------------------------------
    # published state
    # ------------------------------------------------------------------

    @property
    def view(self) -> Tuple[ColumnarIndex, DeltaOverlay]:
        """The current ``(snapshot, overlay)`` pair (one consistent read)."""
        return self._view

    @property
    def snapshot(self) -> ColumnarIndex:
        """The currently served frozen snapshot."""
        return self._view[0]

    @property
    def overlay(self) -> DeltaOverlay:
        """The overlay buffering writes since the last freeze."""
        return self._view[1]

    @property
    def pending_ops(self) -> int:
        """Writes buffered since the last compaction (0 for refreeze)."""
        return self.overlay.ops

    def __len__(self) -> int:
        return self.overlay.live_count()

    def live_objects(self) -> List[SpatialObject]:
        """Every object currently visible (base minus tombstones, plus delta)."""
        snapshot, overlay = self._view
        live = overlay.filter_base_hits(snapshot.objects)
        live.extend(overlay.tree.objects())
        return live

    def _install(self, snapshot: ColumnarIndex) -> None:
        """Atomically publish a fresh snapshot with an empty overlay."""
        self._view = (snapshot, DeltaOverlay(snapshot, max_entries=self.overlay_max_entries))
        self.epoch += 1

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------

    def insert(self, obj: SpatialObject) -> None:
        """Insert one object through the configured update engine.

        Safe against a concurrent :meth:`compact`: mid-compaction
        inserts are staged and replayed into whichever overlay is
        current when the compaction finishes (see the class doc).
        """
        if self.update_engine == "refreeze":
            with self._write_lock:
                if self._compacting:
                    raise CompactionInProgressError(
                        "refreeze write raced a compaction; retry after the swap"
                    )
                self._refreeze_write(obj, delete=False)
            return
        with self._write_lock:
            if self._compacting:
                if obj.dims != self._view[0].dims:
                    raise ValueError(
                        f"object has {obj.dims} dims, manager expects "
                        f"{self._view[0].dims}"
                    )
                self._staged_inserts.append(obj)
                return
            self.overlay.insert(obj)
        self._maybe_compact()

    def delete(self, obj: SpatialObject) -> bool:
        """Delete one object; False when it is not (visibly) indexed.

        Raises :class:`CompactionInProgressError` while a compaction is
        running — a delete cannot be staged without knowing which base
        snapshot it will apply to.
        """
        if self.update_engine == "refreeze":
            with self._write_lock:
                if self._compacting:
                    raise CompactionInProgressError(
                        "refreeze write raced a compaction; retry after the swap"
                    )
                return self._refreeze_write(obj, delete=True)
        with self._write_lock:
            if self._compacting:
                raise CompactionInProgressError(
                    "delete during compaction; retry after the swap"
                )
            found = self.overlay.delete(obj)
        if found:
            self._maybe_compact()
        return found

    def _maybe_compact(self) -> None:
        if self.compact_every is not None and self.overlay.ops >= self.compact_every:
            self.compact()

    def _refreeze_write(self, obj: SpatialObject, delete: bool) -> bool:
        source = self._source
        if source is None:
            objects = list(self.snapshot.objects)
            if delete:
                key = object_key(obj)
                for i, existing in enumerate(objects):
                    if object_key(existing) == key:
                        del objects[i]
                        break
                else:
                    return False
            else:
                objects.append(obj)
            self._install(self._rebuild_source_free(objects))
            return True
        if delete:
            if isinstance(source, ClippedRTree):
                before = len(source)
                source.delete(obj)
                found = len(source) < before
            else:
                found = source.delete(obj).found
            if not found:
                return False
        else:
            source.insert(obj)
        self._install(ColumnarIndex.from_tree(source))
        return True

    def _rebuild_source_free(self, objects: Sequence[SpatialObject]) -> ColumnarIndex:
        if objects:
            return build_columnar_str(objects, max_entries=self.rebuild_max_entries)
        # ``build_columnar_str`` needs at least one object; freeze an empty
        # scalar tree and strip the source so the snapshot stays read-only.
        empty = ColumnarIndex.from_tree(QuadraticRTree(self.snapshot.dims))
        empty.source = None
        empty.source_version = None
        return empty

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------

    def compact(self) -> CompactionStats:
        """Fold the pending delta into the source and swap in a new freeze.

        Tree-backed sources apply the buffered deletes then inserts
        *without* per-update re-clipping, re-clip the dirtied nodes once
        (:func:`~repro.engine.incremental_clip.reclip_nodes_for_results`),
        and freeze.  Source-free snapshots STR-rebuild from the live
        object set.  A no-op (returning zeroed stats) when nothing is
        pending.

        Thread-safe against concurrent writes: inserts accepted while
        this runs are staged and replayed — under the write lock, so
        atomically with the swap — into the overlay that is current when
        it finishes; a raced ``delete`` or reentrant ``compact`` raises
        :class:`CompactionInProgressError`.  If the rebuild crashes
        (e.g. ``compaction_fault_hook``), the published view is
        unchanged and the staged inserts land back in the old overlay.
        """
        with self._write_lock:
            if self._compacting:
                raise CompactionInProgressError(
                    "compact() is already running; concurrent inserts are staged"
                )
            self._compacting = True
            snapshot, overlay = self._view
        stats = CompactionStats()
        fresh: Optional[ColumnarIndex] = None
        try:
            if not overlay.is_empty:
                start = time.perf_counter()
                hook = self.compaction_fault_hook
                if hook is not None:
                    # Pre-mutation crash point: failing here leaves the
                    # source tree untouched, so a retry re-applies the
                    # full (still-buffered) delta exactly once.
                    hook()
                deletes = overlay.deleted_objects()
                inserts = list(overlay.tree.objects())
                source = self._source
                if source is None:
                    live = overlay.filter_base_hits(snapshot.objects)
                    live.extend(inserts)
                    fresh = self._rebuild_source_free(live)
                else:
                    clipped = source if isinstance(source, ClippedRTree) else None
                    tree = clipped.tree if clipped is not None else source
                    results = []
                    for obj in deletes:
                        results.append(tree.delete(obj))
                    for obj in inserts:
                        results.append(tree.insert(obj))
                    if clipped is not None:
                        stats.reclipped_nodes = reclip_nodes_for_results(
                            clipped, results, engine=self.clip_engine
                        )
                    fresh = ColumnarIndex.from_tree(source)
                stats.applied_inserts = len(inserts)
                stats.applied_deletes = len(deletes)
                stats.seconds = time.perf_counter() - start
        finally:
            with self._write_lock:
                if fresh is not None:
                    self.total_compactions += 1
                    self.total_reclipped_nodes += stats.reclipped_nodes
                    self._install(fresh)
                staged, self._staged_inserts = self._staged_inserts, []
                current_overlay = self._view[1]
                for obj in staged:
                    current_overlay.insert(obj)
                self._compacting = False
        return stats

    # ------------------------------------------------------------------
    # queries (base ∪ delta, tombstones filtered)
    # ------------------------------------------------------------------

    def range_query_batch(
        self, rects: Sequence[Rect], stats: Optional[IOStats] = None
    ) -> List[List[SpatialObject]]:
        """Per-query result lists over base + delta (deletes filtered)."""
        snapshot, overlay = self._view
        rects = list(rects)
        results = snapshot.range_query_batch(rects, stats=stats)
        if overlay.has_deletes:
            results = [overlay.filter_base_hits(hits) for hits in results]
        if len(overlay.tree):
            for i, rect in enumerate(rects):
                results[i] = results[i] + overlay.tree.range_query(rect, stats=stats)
        return results

    def range_query(
        self, rect: Rect, stats: Optional[IOStats] = None
    ) -> List[SpatialObject]:
        """Single-query convenience wrapper over :meth:`range_query_batch`."""
        return self.range_query_batch([rect], stats=stats)[0]

    def knn_batch(
        self,
        points: Sequence[Sequence[float]],
        k: int,
        stats: Optional[IOStats] = None,
    ) -> List[List[Tuple[float, SpatialObject]]]:
        """Per-point ``(squared distance, object)`` lists over base + delta.

        The base is probed for ``k`` plus the number of pending
        tombstones (any query's k nearest live base objects are within
        that prefix), filtered, merged with the overlay tree's own kNN,
        and truncated to ``k``.
        """
        snapshot, overlay = self._view
        points = list(points)
        base_k = k + overlay.deleted_count
        base_hits = (
            snapshot.knn_batch(points, base_k, stats=stats)
            if len(snapshot.objects)
            else [[] for _ in points]
        )
        merged: List[List[Tuple[float, SpatialObject]]] = []
        for point, hits in zip(points, base_hits):
            live = overlay.filter_base_knn(hits)
            if len(overlay.tree):
                live = live + knn_query(overlay.tree, point, k, stats=stats)
                live.sort(key=lambda pair: pair[0])
            merged.append(live[:k])
        return merged


# ----------------------------------------------------------------------
# joins over managed (base + delta) inputs
# ----------------------------------------------------------------------


def _join_side(index) -> Tuple[ColumnarIndex, Optional[DeltaOverlay]]:
    if isinstance(index, SnapshotManager):
        snapshot, overlay = index.view
        return snapshot, overlay
    if isinstance(index, ColumnarIndex):
        return index, None
    return ColumnarIndex.from_tree(index), None


def _filter_pairs_side(
    pairs: List[Tuple[SpatialObject, SpatialObject]],
    overlay: Optional[DeltaOverlay],
    side: int,
) -> List[Tuple[SpatialObject, SpatialObject]]:
    """Drop pairs whose ``side`` member is tombstoned, duplicate-exactly.

    A base object with ``b`` identical copies and ``d`` tombstones pairs
    with each distinct partner instance ``b`` times; keeping the first
    ``b - d`` occurrences per ``(key, partner instance)`` removes exactly
    the deleted copies' pairs.  Only valid when the *other* side carries
    no tombstones (see :func:`_filter_pairs_two_sided` otherwise).
    """
    if overlay is None or not overlay.has_deletes:
        return pairs
    deleted = overlay.deleted
    out: List[Tuple[SpatialObject, SpatialObject]] = []
    quota: Dict[Tuple[ObjectKey, int], int] = {}
    for pair in pairs:
        key = object_key(pair[side])
        tombstones = deleted.get(key, 0)
        if not tombstones:
            out.append(pair)
            continue
        quota_key = (key, id(pair[1 - side]))
        remaining = quota.get(quota_key)
        if remaining is None:
            remaining = overlay.base_count(key) - tombstones
        if remaining > 0:
            out.append(pair)
            quota[quota_key] = remaining - 1
        else:
            quota[quota_key] = 0
    return out


def _filter_pairs_two_sided(
    pairs: List[Tuple[SpatialObject, SpatialObject]],
    l_overlay: Optional[DeltaOverlay],
    r_overlay: Optional[DeltaOverlay],
) -> List[Tuple[SpatialObject, SpatialObject]]:
    """Tombstone-filter base×base STT pairs on both sides at once.

    Pairs tombstoned on exactly one side use the per-partner-instance
    quota of :func:`_filter_pairs_side`.  Pairs tombstoned on *both*
    sides are all value-identical within their ``(keyL, keyR)`` group
    (both members are exact duplicates), so the group keeps exactly
    ``(bL - dL) * (bR - dR)`` of its ``bL * bR`` pairs — the multiset a
    join over the live copies would produce.
    """
    l_deleted = l_overlay.deleted if l_overlay is not None else {}
    r_deleted = r_overlay.deleted if r_overlay is not None else {}
    if not l_deleted and not r_deleted:
        return pairs
    out: List[Tuple[SpatialObject, SpatialObject]] = []
    side_quota: Dict[Tuple[int, ObjectKey, int], int] = {}
    group_quota: Dict[Tuple[ObjectKey, ObjectKey], int] = {}
    for pair in pairs:
        key_l = object_key(pair[0])
        key_r = object_key(pair[1])
        tomb_l = l_deleted.get(key_l, 0)
        tomb_r = r_deleted.get(key_r, 0)
        if not tomb_l and not tomb_r:
            out.append(pair)
            continue
        if tomb_l and tomb_r:
            group_key = (key_l, key_r)
            remaining = group_quota.get(group_key)
            if remaining is None:
                remaining = (l_overlay.base_count(key_l) - tomb_l) * (
                    r_overlay.base_count(key_r) - tomb_r
                )
        else:
            side = 0 if tomb_l else 1
            overlay = l_overlay if tomb_l else r_overlay
            key = key_l if tomb_l else key_r
            group_key = None
            quota_key = (side, key, id(pair[1 - side]))
            remaining = side_quota.get(quota_key)
            if remaining is None:
                remaining = overlay.base_count(key) - (tomb_l or tomb_r)
        if remaining > 0:
            out.append(pair)
            remaining -= 1
        else:
            remaining = 0
        if group_key is not None:
            group_quota[group_key] = remaining
        else:
            side_quota[quota_key] = remaining
    return out


def _probe_pairs(
    probes: Sequence[SpatialObject],
    snapshot: ColumnarIndex,
    overlay: Optional[DeltaOverlay],
    stats: IOStats,
    collect_into: List[Tuple[SpatialObject, SpatialObject]],
    swap: bool = False,
    include_delta: bool = True,
) -> None:
    """INLJ ``probes`` against one managed side, appending to ``collect_into``.

    Base hits are tombstone-filtered through ``overlay``; with
    ``include_delta`` the probes also join the overlay's pending delta
    tree (callers covering delta×delta elsewhere pass False).  ``swap``
    flips the emitted pair orientation (probe second).
    """
    from repro.engine.join_exec import inlj_batch

    if len(probes) and len(snapshot.objects):
        sub = inlj_batch(probes, snapshot, collect_pairs=True)
        stats.merge(sub.inner_stats)
        pairs = _filter_pairs_side(sub.pairs, overlay, side=1)
        collect_into.extend((r, l) if swap else (l, r) for l, r in pairs)
    if include_delta and overlay is not None and len(overlay.tree):
        for probe in probes:
            for hit in overlay.tree.range_query(probe.rect, stats=stats):
                collect_into.append((hit, probe) if swap else (probe, hit))


def overlay_join(
    left,
    right,
    algorithm: str = "stt",
    collect_pairs: bool = True,
) -> JoinResult:
    """Spatial join where either side may be a :class:`SnapshotManager`.

    The base×base portion runs through the columnar batch joins; pairs
    involving tombstoned objects are filtered out, and the pending delta
    trees are joined against the opposite side's live view.  Pair sets
    equal a scalar join over both sides' live objects; ``outer_stats`` /
    ``inner_stats`` accumulate the accesses charged to the left and
    right inputs respectively (base probes through the batch executor,
    delta probes through the small overlay trees).
    """
    from repro.engine.join_exec import inlj_batch, stt_batch

    if algorithm == "inlj":
        if isinstance(left, SnapshotManager):
            probes: Sequence[SpatialObject] = left.live_objects()
        else:
            probes = list(left)
        r_snap, r_overlay = _join_side(right)
        result = JoinResult()
        pairs: List[Tuple[SpatialObject, SpatialObject]] = []
        _probe_pairs(probes, r_snap, r_overlay, result.inner_stats, pairs)
        result.pairs = pairs if collect_pairs else []
        result.set_pair_count(len(pairs), collected=collect_pairs)
        return result

    l_snap, l_overlay = _join_side(left)
    r_snap, r_overlay = _join_side(right)
    base = stt_batch(l_snap, r_snap, collect_pairs=True)
    pairs = _filter_pairs_two_sided(base.pairs, l_overlay, r_overlay)
    result = JoinResult(outer_stats=base.outer_stats, inner_stats=base.inner_stats)

    # deltaL × (baseR live + deltaR): probe the full right view.
    if l_overlay is not None and len(l_overlay.tree):
        _probe_pairs(
            list(l_overlay.tree.objects()), r_snap, r_overlay, result.inner_stats, pairs
        )
    # deltaR × baseL live only — deltaL × deltaR was covered just above.
    if r_overlay is not None and len(r_overlay.tree):
        _probe_pairs(
            list(r_overlay.tree.objects()),
            l_snap,
            l_overlay,
            result.outer_stats,
            pairs,
            swap=True,
            include_delta=False,
        )
    result.pairs = pairs if collect_pairs else []
    result.set_pair_count(len(pairs), collected=collect_pairs)
    return result
