"""Zero-copy persistence for :class:`~repro.engine.columnar.ColumnarIndex`.

:func:`save_snapshot` writes every snapshot array — including the lazily
derived ``node_bounds``/``node_levels`` caches, precomputed at save time
so no reader ever re-derives them — as an individual ``.npy`` file next
to a JSON manifest recording the format version, dimensionality, per-
array dtypes/shapes, and a content fingerprint.  :func:`load_snapshot`
reads the directory back; with ``mmap=True`` (the default) every array
is an ``mmap_mode="r"`` view of its file, so loading a multi-hundred-
megabyte index costs milliseconds, touches no heap, and any number of
processes opening the same directory share one page-cache copy of the
data — the transport underneath
:class:`~repro.engine.parallel.ParallelExecutor`'s worker pool.

A loaded snapshot is *differentially identical* to the in-RAM original:
``range_query_batch``/``knn_batch``/``inlj_batch``/``stt_batch`` return
the same results with the same ``IOStats`` (``tests/test_snapshot_io.py``
pins this per variant × dims).  Two deliberate deviations from a
round-tripped Python object:

* ``source`` is ``None`` — a loaded snapshot has no tree to re-freeze,
  so it is never stale (like ``build_columnar_str`` output);
* object payloads are dropped — only ``(oid, rect)`` is persisted, and
  :class:`SpatialObject` equality is defined on exactly that pair.
  Objects are materialised lazily on first access, so a worker that
  only counts hits never builds a single Python object.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, Union

import numpy as np

from repro.engine.columnar import ColumnarIndex
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect

#: On-disk format version; bump on any incompatible layout change.
FORMAT_VERSION = 1

#: Manifest file name inside a snapshot directory.
MANIFEST_NAME = "manifest.json"

#: Snapshot arrays persisted verbatim: file stem → ColumnarIndex attribute.
_CORE_ARRAYS = {
    "is_leaf": "is_leaf",
    "entry_start": "entry_start",
    "entry_count": "entry_count",
    "node_ids": "node_ids",
    "entry_lows": "entry_lows",
    "entry_highs": "entry_highs",
    "entry_child": "entry_child",
    "clip_start": "clip_start",
    "clip_count": "clip_count",
    "clip_coords": "clip_coords",
    "clip_is_high": "clip_is_high",
    "node_clip_start": "node_clip_start",
    "node_clip_count": "node_clip_count",
}

#: Derived caches and object columns, produced at save time.
_EXTRA_ARRAYS = (
    "node_lows",
    "node_highs",
    "node_levels",
    "object_oids",
    "object_lows",
    "object_highs",
)


class SnapshotFormatError(RuntimeError):
    """A snapshot directory is missing, corrupt, or of an unknown format."""


class LazyObjectList:
    """A read-only sequence materialising :class:`SpatialObject` on demand.

    Backed by the ``object_oids``/``object_lows``/``object_highs`` columns
    (typically mmap views); an object is built — and cached — only when
    indexed, so result-materialising code pays for exactly the objects it
    returns.  Payloads are not persisted and come back as ``None``.
    """

    __slots__ = ("oids", "lows", "highs", "_cache")

    def __init__(self, oids: np.ndarray, lows: np.ndarray, highs: np.ndarray):
        self.oids = oids
        self.lows = lows
        self.highs = highs
        self._cache: Dict[int, SpatialObject] = {}

    def __len__(self) -> int:
        return len(self.oids)

    def __getitem__(self, index: int) -> SpatialObject:
        index = int(index)
        if index < 0:
            index += len(self.oids)
        if not 0 <= index < len(self.oids):
            raise IndexError(index)
        obj = self._cache.get(index)
        if obj is None:
            obj = SpatialObject(
                int(self.oids[index]),
                Rect(self.lows[index].tolist(), self.highs[index].tolist()),
            )
            self._cache[index] = obj
        return obj

    def __iter__(self) -> Iterator[SpatialObject]:
        for i in range(len(self.oids)):
            yield self[i]

    def __repr__(self) -> str:
        return f"LazyObjectList(n={len(self.oids)})"


def _fingerprint(arrays: Dict[str, np.ndarray]) -> str:
    """A sha256 over every array's bytes, in fixed name order."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = arrays[name]
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def save_snapshot(index: ColumnarIndex, directory: Union[str, Path]) -> Path:
    """Persist ``index`` into ``directory`` (created if needed).

    Every array lands in its own ``.npy`` file; ``manifest.json`` records
    the format version, dims, per-array dtype/shape, and a content
    fingerprint.  The derived ``node_bounds``/``node_levels`` caches are
    forced first (:meth:`ColumnarIndex.precompute_derived`) so loaded
    snapshots — and every worker process that opens one — never recompute
    them.  Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    index.precompute_derived()
    node_lows, node_highs = index.node_bounds()
    objects = index.objects
    if isinstance(objects, LazyObjectList):
        object_oids = np.ascontiguousarray(objects.oids, dtype=np.int64)
        object_lows = np.ascontiguousarray(objects.lows, dtype=np.float64)
        object_highs = np.ascontiguousarray(objects.highs, dtype=np.float64)
    else:
        object_oids = np.array([obj.oid for obj in objects], dtype=np.int64)
        object_lows = np.array(
            [obj.rect.low for obj in objects], dtype=np.float64
        ).reshape(len(objects), index.dims)
        object_highs = np.array(
            [obj.rect.high for obj in objects], dtype=np.float64
        ).reshape(len(objects), index.dims)

    arrays: Dict[str, np.ndarray] = {
        name: getattr(index, attr) for name, attr in _CORE_ARRAYS.items()
    }
    arrays["node_lows"] = node_lows
    arrays["node_highs"] = node_highs
    arrays["node_levels"] = index.node_levels()
    arrays["object_oids"] = object_oids
    arrays["object_lows"] = object_lows
    arrays["object_highs"] = object_highs

    for name, array in arrays.items():
        np.save(directory / f"{name}.npy", array, allow_pickle=False)

    manifest = {
        "format_version": FORMAT_VERSION,
        "dims": index.dims,
        "counts": {
            "nodes": int(len(index.is_leaf)),
            "entries": int(len(index.entry_child)),
            "clip_points": int(len(index.clip_coords)),
            "objects": int(len(object_oids)),
        },
        "arrays": {
            name: {"dtype": str(array.dtype), "shape": list(array.shape)}
            for name, array in arrays.items()
        },
        "source": {
            "type": type(index.source).__name__ if index.source is not None else None,
            "version": index.source_version,
        },
        "fingerprint": _fingerprint(arrays),
    }
    # Write-then-rename so a crash mid-save leaves no half-valid manifest:
    # a directory is a snapshot exactly when its manifest parses.
    tmp_path = directory / (MANIFEST_NAME + ".tmp")
    tmp_path.write_text(json.dumps(manifest, indent=2) + "\n")
    os.replace(tmp_path, directory / MANIFEST_NAME)
    return directory


def read_manifest(directory: Union[str, Path]) -> dict:
    """Parse and version-check a snapshot directory's manifest."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotFormatError(f"no snapshot manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(f"unreadable snapshot manifest {manifest_path}: {exc}")
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise SnapshotFormatError(
            f"snapshot format version {version!r} at {directory} is not supported "
            f"(this build reads version {FORMAT_VERSION})"
        )
    for key in ("dims", "arrays"):
        if key not in manifest:
            raise SnapshotFormatError(f"snapshot manifest {manifest_path} lacks {key!r}")
    return manifest


def _load_array(
    directory: Path, name: str, spec: dict, mmap: bool
) -> np.ndarray:
    path = directory / f"{name}.npy"
    if not path.is_file():
        raise SnapshotFormatError(f"snapshot array file missing: {path}")
    try:
        array = np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(f"unreadable snapshot array {path}: {exc}")
    if str(array.dtype) != spec.get("dtype") or list(array.shape) != spec.get("shape"):
        raise SnapshotFormatError(
            f"snapshot array {path} is {array.dtype}{array.shape}, manifest "
            f"says {spec.get('dtype')}{tuple(spec.get('shape', ()))}"
        )
    return array


def load_snapshot(directory: Union[str, Path], mmap: bool = True) -> ColumnarIndex:
    """Open the snapshot saved in ``directory``.

    ``mmap=True`` maps every array read-only straight off disk — loading
    is O(metadata), the OS pages data in on first touch, and concurrent
    processes share one physical copy.  ``mmap=False`` reads the arrays
    into RAM (useful when the snapshot directory is about to disappear,
    e.g. tests using temp dirs that outlive the view).

    Raises :class:`SnapshotFormatError` on a missing/corrupt manifest, a
    format-version mismatch, or any array whose dtype/shape disagrees
    with the manifest.
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    specs = manifest["arrays"]
    expected = set(_CORE_ARRAYS) | set(_EXTRA_ARRAYS)
    missing = expected - set(specs)
    if missing:
        raise SnapshotFormatError(
            f"snapshot manifest {directory / MANIFEST_NAME} lacks arrays: "
            f"{sorted(missing)}"
        )
    arrays = {
        name: _load_array(directory, name, specs[name], mmap) for name in sorted(expected)
    }

    snapshot = ColumnarIndex(
        source=None,
        dims=int(manifest["dims"]),
        is_leaf=arrays["is_leaf"],
        entry_start=arrays["entry_start"],
        entry_count=arrays["entry_count"],
        node_ids=arrays["node_ids"],
        entry_lows=arrays["entry_lows"],
        entry_highs=arrays["entry_highs"],
        entry_child=arrays["entry_child"],
        clip_start=arrays["clip_start"],
        clip_count=arrays["clip_count"],
        clip_coords=arrays["clip_coords"],
        clip_is_high=arrays["clip_is_high"],
        objects=LazyObjectList(
            arrays["object_oids"], arrays["object_lows"], arrays["object_highs"]
        ),
        source_version=None,
        node_clip_start=arrays["node_clip_start"],
        node_clip_count=arrays["node_clip_count"],
    )
    snapshot.seed_derived(
        arrays["node_lows"], arrays["node_highs"], arrays["node_levels"]
    )
    return snapshot
