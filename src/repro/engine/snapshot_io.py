"""Zero-copy persistence for :class:`~repro.engine.columnar.ColumnarIndex`.

:func:`save_snapshot` writes every snapshot array — including the lazily
derived ``node_bounds``/``node_levels`` caches, precomputed at save time
so no reader ever re-derives them — as an individual ``.npy`` file next
to a JSON manifest recording the format version, dimensionality, per-
array dtypes/shapes, and a content fingerprint.  :func:`load_snapshot`
reads the directory back; with ``mmap=True`` (the default) every array
is an ``mmap_mode="r"`` view of its file, so loading a multi-hundred-
megabyte index costs milliseconds, touches no heap, and any number of
processes opening the same directory share one page-cache copy of the
data — the transport underneath
:class:`~repro.engine.parallel.ParallelExecutor`'s worker pool.

A loaded snapshot is *differentially identical* to the in-RAM original:
``range_query_batch``/``knn_batch``/``inlj_batch``/``stt_batch`` return
the same results with the same ``IOStats`` (``tests/test_snapshot_io.py``
pins this per variant × dims).  Two deliberate deviations from a
round-tripped Python object:

* ``source`` is ``None`` — a loaded snapshot has no tree to re-freeze,
  so it is never stale (like ``build_columnar_str`` output);
* object payloads are dropped — only ``(oid, rect)`` is persisted, and
  :class:`SpatialObject` equality is defined on exactly that pair.
  Objects are materialised lazily on first access, so a worker that
  only counts hits never builds a single Python object.

Durability (format version 2): a save is *crash-atomic at every byte*.
Array files land in a content-addressed generation directory
(``g<fingerprint[:12]>/``) so an in-flight save never touches the bytes
a committed manifest points at; every array file, the manifest, and the
enclosing directories are fsynced; and the ``os.replace`` of the
manifest is the single commit point — a process killed at any offset of
the write sequence leaves the directory loading either the old snapshot
or the new one, never garbage (``tests/test_snapshot_durability.py``
kills a simulated save at every byte offset to prove it).  Superseded
generations are garbage-collected strictly *after* the commit.  Version
1 directories (arrays at the top level, no fsync guarantees) still load.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import shutil
from pathlib import Path
from typing import Callable, Dict, Iterator, Optional, Union

import numpy as np

from repro.engine.columnar import ColumnarIndex
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect

#: On-disk format version; bump on any incompatible layout change.
FORMAT_VERSION = 2

#: Format versions :func:`load_snapshot` can read.
_COMPAT_VERSIONS = (1, 2)

#: Manifest file name inside a snapshot directory.
MANIFEST_NAME = "manifest.json"

#: Generation-directory names this module owns (and may GC).
_GENERATION_RE = re.compile(r"^g[0-9a-f]{12}$")

#: Snapshot arrays persisted verbatim: file stem → ColumnarIndex attribute.
_CORE_ARRAYS = {
    "is_leaf": "is_leaf",
    "entry_start": "entry_start",
    "entry_count": "entry_count",
    "node_ids": "node_ids",
    "entry_lows": "entry_lows",
    "entry_highs": "entry_highs",
    "entry_child": "entry_child",
    "clip_start": "clip_start",
    "clip_count": "clip_count",
    "clip_coords": "clip_coords",
    "clip_is_high": "clip_is_high",
    "node_clip_start": "node_clip_start",
    "node_clip_count": "node_clip_count",
}

#: Derived caches and object columns, produced at save time.
_EXTRA_ARRAYS = (
    "node_lows",
    "node_highs",
    "node_levels",
    "object_oids",
    "object_lows",
    "object_highs",
)


class SnapshotFormatError(RuntimeError):
    """A snapshot directory is missing, corrupt, or of an unknown format."""


class LazyObjectList:
    """A read-only sequence materialising :class:`SpatialObject` on demand.

    Backed by the ``object_oids``/``object_lows``/``object_highs`` columns
    (typically mmap views); an object is built — and cached — only when
    indexed, so result-materialising code pays for exactly the objects it
    returns.  Payloads are not persisted and come back as ``None``.
    """

    __slots__ = ("oids", "lows", "highs", "_cache")

    def __init__(self, oids: np.ndarray, lows: np.ndarray, highs: np.ndarray):
        self.oids = oids
        self.lows = lows
        self.highs = highs
        self._cache: Dict[int, SpatialObject] = {}

    def __len__(self) -> int:
        return len(self.oids)

    def __getitem__(self, index: int) -> SpatialObject:
        index = int(index)
        if index < 0:
            index += len(self.oids)
        if not 0 <= index < len(self.oids):
            raise IndexError(index)
        obj = self._cache.get(index)
        if obj is None:
            obj = SpatialObject(
                int(self.oids[index]),
                Rect(self.lows[index].tolist(), self.highs[index].tolist()),
            )
            self._cache[index] = obj
        return obj

    def __iter__(self) -> Iterator[SpatialObject]:
        for i in range(len(self.oids)):
            yield self[i]

    def __repr__(self) -> str:
        return f"LazyObjectList(n={len(self.oids)})"


def _fingerprint(arrays: Dict[str, np.ndarray]) -> str:
    """A sha256 over every array's bytes, in fixed name order."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = arrays[name]
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(repr(array.shape).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _fsync_path(path: Union[str, Path]) -> None:
    """fsync one file (or directory) so its bytes survive a crash."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _committed_manifest(directory: Path) -> Optional[dict]:
    """The directory's committed manifest, or None when absent/corrupt."""
    path = directory / MANIFEST_NAME
    if not path.is_file():
        return None
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return manifest if isinstance(manifest, dict) else None


def _gc_stale_generations(directory: Path, keep: str, array_names) -> None:
    """Remove superseded generation dirs and stale v1 top-level arrays.

    Only called after the new manifest is committed, so nothing a
    loadable manifest references is ever deleted.
    """
    for child in directory.iterdir():
        if child.is_dir() and _GENERATION_RE.match(child.name) and child.name != keep:
            shutil.rmtree(child, ignore_errors=True)
        elif (
            child.is_file()
            and child.suffix == ".npy"
            and child.stem in array_names
        ):
            try:
                child.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass


def save_snapshot(index: ColumnarIndex, directory: Union[str, Path]) -> Path:
    """Persist ``index`` into ``directory`` (created if needed).

    Every array lands in its own ``.npy`` file inside a content-addressed
    generation subdirectory; ``manifest.json`` records the format
    version, dims, per-array dtype/shape, the generation (``data_dir``),
    and a content fingerprint.  The derived ``node_bounds``/
    ``node_levels`` caches are forced first
    (:meth:`ColumnarIndex.precompute_derived`) so loaded snapshots — and
    every worker process that opens one — never recompute them.

    The save is crash-atomic: array files are written into a fresh
    generation directory (never the one a committed manifest points at)
    and fsynced, the manifest is fsynced and ``os.replace``\\ d into
    place as the single commit point, and the parent directory is
    fsynced so the rename itself is durable.  A kill at any byte offset
    of this sequence leaves the directory loading the previous snapshot;
    after the rename it loads the new one.  Old generations are removed
    only after the commit.  Re-saving a snapshot whose fingerprint
    already matches the committed manifest is a no-op (the bytes on disk
    are already the requested state).  Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    index.precompute_derived()
    node_lows, node_highs = index.node_bounds()
    objects = index.objects
    if isinstance(objects, LazyObjectList):
        object_oids = np.ascontiguousarray(objects.oids, dtype=np.int64)
        object_lows = np.ascontiguousarray(objects.lows, dtype=np.float64)
        object_highs = np.ascontiguousarray(objects.highs, dtype=np.float64)
    else:
        object_oids = np.array([obj.oid for obj in objects], dtype=np.int64)
        object_lows = np.array(
            [obj.rect.low for obj in objects], dtype=np.float64
        ).reshape(len(objects), index.dims)
        object_highs = np.array(
            [obj.rect.high for obj in objects], dtype=np.float64
        ).reshape(len(objects), index.dims)

    arrays: Dict[str, np.ndarray] = {
        name: getattr(index, attr) for name, attr in _CORE_ARRAYS.items()
    }
    arrays["node_lows"] = node_lows
    arrays["node_highs"] = node_highs
    arrays["node_levels"] = index.node_levels()
    arrays["object_oids"] = object_oids
    arrays["object_lows"] = object_lows
    arrays["object_highs"] = object_highs

    fingerprint = _fingerprint(arrays)
    generation = f"g{fingerprint[:12]}"

    # Idempotent re-save: when the committed manifest already records this
    # exact content (and its generation files exist), writing again would
    # overwrite the very bytes a committed manifest points at — skip.
    committed = _committed_manifest(directory)
    if (
        committed is not None
        and committed.get("fingerprint") == fingerprint
        and committed.get("format_version") == FORMAT_VERSION
        and committed.get("data_dir") == generation
        and all(
            (directory / generation / f"{name}.npy").is_file() for name in arrays
        )
    ):
        return directory

    data_path = directory / generation
    data_path.mkdir(exist_ok=True)
    for name, array in arrays.items():
        target = data_path / f"{name}.npy"
        np.save(target, array, allow_pickle=False)
        _fsync_path(target)
    _fsync_path(data_path)

    manifest = {
        "format_version": FORMAT_VERSION,
        "dims": index.dims,
        "counts": {
            "nodes": int(len(index.is_leaf)),
            "entries": int(len(index.entry_child)),
            "clip_points": int(len(index.clip_coords)),
            "objects": int(len(object_oids)),
        },
        "arrays": {
            name: {"dtype": str(array.dtype), "shape": list(array.shape)}
            for name, array in arrays.items()
        },
        "source": {
            "type": type(index.source).__name__ if index.source is not None else None,
            "version": index.source_version,
        },
        "data_dir": generation,
        "fingerprint": fingerprint,
    }
    # fsync-then-rename: the manifest replace is the commit point — a
    # directory serves a snapshot exactly when its manifest parses, and
    # the manifest only ever points at a fully written, fsynced
    # generation.
    tmp_path = directory / (MANIFEST_NAME + ".tmp")
    with open(tmp_path, "w") as handle:
        handle.write(json.dumps(manifest, indent=2) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, directory / MANIFEST_NAME)
    _fsync_path(directory)
    _gc_stale_generations(directory, generation, set(arrays))
    return directory


def read_manifest(directory: Union[str, Path]) -> dict:
    """Parse and version-check a snapshot directory's manifest."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise SnapshotFormatError(f"no snapshot manifest at {manifest_path}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(f"unreadable snapshot manifest {manifest_path}: {exc}")
    version = manifest.get("format_version")
    if version not in _COMPAT_VERSIONS:
        raise SnapshotFormatError(
            f"snapshot format version {version!r} at {directory} is not supported "
            f"(this build reads versions {_COMPAT_VERSIONS})"
        )
    for key in ("dims", "arrays"):
        if key not in manifest:
            raise SnapshotFormatError(f"snapshot manifest {manifest_path} lacks {key!r}")
    return manifest


#: Test/chaos hook consulted at the top of :func:`load_snapshot` — a
#: callable receiving the directory path; raising simulates a load-time
#: I/O failure.  Installed via :func:`set_load_fault_hook` (e.g. by
#: ``repro.serve.faults.FaultPlan.install``); this module never imports
#: the serving layer.
_LOAD_FAULT_HOOK: Optional[Callable[[str], None]] = None


def set_load_fault_hook(
    hook: Optional[Callable[[str], None]],
) -> Optional[Callable[[str], None]]:
    """Install (or clear, with None) the load fault hook; returns the old one."""
    global _LOAD_FAULT_HOOK
    previous = _LOAD_FAULT_HOOK
    _LOAD_FAULT_HOOK = hook
    return previous


def _load_array(
    directory: Path, name: str, spec: dict, mmap: bool
) -> np.ndarray:
    path = directory / f"{name}.npy"
    if not path.is_file():
        raise SnapshotFormatError(f"snapshot array file missing: {path}")
    try:
        array = np.load(path, mmap_mode="r" if mmap else None, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SnapshotFormatError(f"unreadable snapshot array {path}: {exc}")
    if str(array.dtype) != spec.get("dtype") or list(array.shape) != spec.get("shape"):
        raise SnapshotFormatError(
            f"snapshot array {path} is {array.dtype}{array.shape}, manifest "
            f"says {spec.get('dtype')}{tuple(spec.get('shape', ()))}"
        )
    return array


def load_snapshot(directory: Union[str, Path], mmap: bool = True) -> ColumnarIndex:
    """Open the snapshot saved in ``directory``.

    ``mmap=True`` maps every array read-only straight off disk — loading
    is O(metadata), the OS pages data in on first touch, and concurrent
    processes share one physical copy.  ``mmap=False`` reads the arrays
    into RAM (useful when the snapshot directory is about to disappear,
    e.g. tests using temp dirs that outlive the view).

    Raises :class:`SnapshotFormatError` on a missing/corrupt manifest, a
    format-version mismatch, or any array whose dtype/shape disagrees
    with the manifest.
    """
    directory = Path(directory)
    hook = _LOAD_FAULT_HOOK
    if hook is not None:
        hook(str(directory))
    manifest = read_manifest(directory)
    specs = manifest["arrays"]
    expected = set(_CORE_ARRAYS) | set(_EXTRA_ARRAYS)
    missing = expected - set(specs)
    if missing:
        raise SnapshotFormatError(
            f"snapshot manifest {directory / MANIFEST_NAME} lacks arrays: "
            f"{sorted(missing)}"
        )
    # Version 2 manifests point at a generation subdirectory; version 1
    # kept arrays at the top level (data_dir absent → the directory).
    data_path = directory / manifest.get("data_dir", "")
    arrays = {
        name: _load_array(data_path, name, specs[name], mmap) for name in sorted(expected)
    }

    snapshot = ColumnarIndex(
        source=None,
        dims=int(manifest["dims"]),
        is_leaf=arrays["is_leaf"],
        entry_start=arrays["entry_start"],
        entry_count=arrays["entry_count"],
        node_ids=arrays["node_ids"],
        entry_lows=arrays["entry_lows"],
        entry_highs=arrays["entry_highs"],
        entry_child=arrays["entry_child"],
        clip_start=arrays["clip_start"],
        clip_count=arrays["clip_count"],
        clip_coords=arrays["clip_coords"],
        clip_is_high=arrays["clip_is_high"],
        objects=LazyObjectList(
            arrays["object_oids"], arrays["object_lows"], arrays["object_highs"]
        ),
        source_version=None,
        node_clip_start=arrays["node_clip_start"],
        node_clip_count=arrays["node_clip_count"],
    )
    snapshot.seed_derived(
        arrays["node_lows"], arrays["node_highs"], arrays["node_levels"]
    )
    return snapshot
