"""Columnar snapshots of R-trees (the batch engine's data layout).

A :class:`ColumnarIndex` freezes any :class:`~repro.rtree.base.RTreeBase`
variant — optionally wrapped in a
:class:`~repro.rtree.clipped.ClippedRTree` — into contiguous NumPy
arrays:

* per-node: leaf flag and the ``(start, count)`` slice of its entries;
* per-entry: rectangle lows/highs, the child (a node slot for directory
  entries, an object index for leaf entries), and the ``(start, count)``
  slice of the child's clip points;
* per-clip-point: coordinates and the boolean expansion of the corner
  bitmask;
* per-node (for the join executor): the ``(start, count)`` clip slice of
  the node *itself* — the same slices as the per-entry view, plus the
  root's clip points, which no entry references.

Nodes are laid out in BFS order from the root (slot 0), so a frontier of
node slots can be expanded level by level with pure array operations; the
executor in :mod:`repro.engine.executor` never touches a Python ``Rect``
on its hot path.

**Snapshot semantics / invalidation.**  A snapshot is an immutable copy:
it shares the indexed :class:`SpatialObject` instances with the source
tree but none of its structure.  Any ``insert``/``delete`` on the source
tree — and, for clipped trees, any re-clipping — leaves the snapshot
answering queries against the *old* state.  The source's
``version`` counter is recorded at freeze time; check :attr:`is_stale`
(or rebuild via :meth:`refresh`) after mutating the source.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.engine.kernels import masks_to_bool
from repro.geometry.objects import SpatialObject
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree

#: Stale-snapshot policies accepted by :func:`resolve_stale` (and by the
#: ``stale=`` parameter of ``execute_workload`` / ``execute_join``).
STALE_POLICIES = ("refresh", "raise", "serve")


class StaleSnapshotError(RuntimeError):
    """A columnar snapshot was queried after its source tree mutated.

    Raised by :func:`resolve_stale` under the ``"raise"`` policy; the
    default policy transparently re-freezes instead.
    """


def resolve_stale(snapshot: "ColumnarIndex", policy: str = "refresh") -> "ColumnarIndex":
    """Apply a staleness policy to ``snapshot`` before serving queries.

    * ``"refresh"`` (default) — re-freeze from the mutated source and
      return the fresh snapshot (a no-op when not stale);
    * ``"raise"`` — raise :class:`StaleSnapshotError` when stale;
    * ``"serve"`` — knowingly serve the frozen state (the pre-guard
      behaviour, for callers that batch-amortise refreezes themselves).
    """
    if policy not in STALE_POLICIES:
        raise ValueError(f"unknown stale policy {policy!r}; known: {STALE_POLICIES}")
    if not snapshot.is_stale:
        return snapshot
    if policy == "refresh":
        return snapshot.refresh()
    if policy == "raise":
        raise StaleSnapshotError(
            f"snapshot of {type(snapshot.source).__name__} is stale "
            f"(source version {snapshot._version_of(snapshot.source)!r} != "
            f"frozen {snapshot.source_version!r}); refresh() it or pass "
            "stale='refresh'"
        )
    return snapshot


def _pinned(array: np.ndarray, dtype: np.dtype) -> np.ndarray:
    """``array`` as a C-contiguous array of exactly ``dtype``.

    Snapshot arrays have one canonical layout — ``int64``/``float64``/
    ``bool_``, C order — so that on-disk round trips
    (:mod:`repro.engine.snapshot_io`) are bit-exact across platforms.  An
    array that already complies (in particular a read-only ``np.memmap``
    view of a snapshot file) passes through untouched; anything else is
    copied into shape here, never silently downstream.
    """
    return np.ascontiguousarray(array, dtype=dtype)


class ColumnarIndex:
    """An immutable, array-backed snapshot of one R-tree (+ clip points).

    Build with :meth:`from_tree`; query through
    :func:`repro.engine.executor.range_query_batch` /
    :func:`repro.engine.executor.knn_batch` or the convenience methods
    here.  The snapshot keeps a reference to its source only to implement
    :attr:`is_stale` and :meth:`refresh`.
    """

    ROOT_SLOT = 0

    def __init__(
        self,
        source: Union[RTreeBase, ClippedRTree, None],
        dims: int,
        is_leaf: np.ndarray,
        entry_start: np.ndarray,
        entry_count: np.ndarray,
        node_ids: np.ndarray,
        entry_lows: np.ndarray,
        entry_highs: np.ndarray,
        entry_child: np.ndarray,
        clip_start: np.ndarray,
        clip_count: np.ndarray,
        clip_coords: np.ndarray,
        clip_is_high: np.ndarray,
        objects: List[SpatialObject],
        source_version: object,
        node_clip_start: Optional[np.ndarray] = None,
        node_clip_count: Optional[np.ndarray] = None,
    ):
        self.source = source
        self.dims = dims
        self.is_leaf = _pinned(is_leaf, np.bool_)
        self.entry_start = _pinned(entry_start, np.int64)
        self.entry_count = _pinned(entry_count, np.int64)
        self.node_ids = _pinned(node_ids, np.int64)
        self.entry_lows = _pinned(entry_lows, np.float64)
        self.entry_highs = _pinned(entry_highs, np.float64)
        self.entry_child = _pinned(entry_child, np.int64)
        self.clip_start = _pinned(clip_start, np.int64)
        self.clip_count = _pinned(clip_count, np.int64)
        self.clip_coords = _pinned(clip_coords, np.float64)
        self.clip_is_high = _pinned(clip_is_high, np.bool_)
        self.objects = objects
        self.source_version = source_version
        n_nodes = len(is_leaf)
        if node_clip_start is None:
            node_clip_start = np.zeros(n_nodes, dtype=np.int64)
        if node_clip_count is None:
            node_clip_count = np.zeros(n_nodes, dtype=np.int64)
        self.node_clip_start = _pinned(node_clip_start, np.int64)
        self.node_clip_count = _pinned(node_clip_count, np.int64)
        # Lazily derived per-slot geometry (cached; the snapshot is immutable).
        self._node_lows: Optional[np.ndarray] = None
        self._node_highs: Optional[np.ndarray] = None
        self._node_levels: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_tree(cls, index: Union[RTreeBase, ClippedRTree]) -> "ColumnarIndex":
        """Freeze ``index`` (a plain or clipped R-tree) into arrays.

        Clip points are taken from the :class:`ClipStore` when ``index``
        is a :class:`ClippedRTree`; a plain tree snapshots with empty clip
        arrays and the executor skips the pruning kernel entirely.
        """
        if isinstance(index, ClippedRTree):
            tree: RTreeBase = index.tree
            store = index.store
        else:
            tree = index
            store = None

        # Pass 1: assign BFS slots (parents before children).
        order: List[int] = []
        slot_of = {}
        queue = deque([tree.root_id])
        while queue:
            node_id = queue.popleft()
            slot_of[node_id] = len(order)
            order.append(node_id)
            node = tree.node(node_id)
            if not node.is_leaf:
                queue.extend(entry.child for entry in node.entries)

        n_nodes = len(order)
        dims = tree.dims
        is_leaf = np.zeros(n_nodes, dtype=bool)
        entry_start = np.zeros(n_nodes, dtype=np.int64)
        entry_count = np.zeros(n_nodes, dtype=np.int64)
        node_ids = np.array(order, dtype=np.int64)

        total_entries = sum(len(tree.node(nid).entries) for nid in order)
        entry_lows = np.empty((total_entries, dims), dtype=np.float64)
        entry_highs = np.empty((total_entries, dims), dtype=np.float64)
        entry_child = np.empty(total_entries, dtype=np.int64)
        clip_start = np.zeros(total_entries, dtype=np.int64)
        clip_count = np.zeros(total_entries, dtype=np.int64)
        node_clip_start = np.zeros(n_nodes, dtype=np.int64)
        node_clip_count = np.zeros(n_nodes, dtype=np.int64)

        objects: List[SpatialObject] = []
        coords: List[tuple] = []
        masks: List[int] = []

        # Pass 2: fill the flat arrays in slot order.
        cursor = 0
        for slot, node_id in enumerate(order):
            node = tree.node(node_id)
            is_leaf[slot] = node.is_leaf
            entry_start[slot] = cursor
            entry_count[slot] = len(node.entries)
            for entry in node.entries:
                entry_lows[cursor] = entry.rect.low
                entry_highs[cursor] = entry.rect.high
                if node.is_leaf:
                    entry_child[cursor] = len(objects)
                    objects.append(entry.child)
                else:
                    entry_child[cursor] = slot_of[entry.child]
                    if store is not None:
                        clips = store.get(entry.child)
                        if clips:
                            clip_start[cursor] = len(coords)
                            clip_count[cursor] = len(clips)
                            node_clip_start[slot_of[entry.child]] = len(coords)
                            node_clip_count[slot_of[entry.child]] = len(clips)
                            for clip in clips:
                                coords.append(clip.coord)
                                masks.append(clip.mask)
                cursor += 1

        # The root is referenced by no entry, but joins probe its clip
        # points too (the scalar STT consults the ClipStore for any node
        # pair); append them after the entry-ordered points.
        if store is not None:
            root_clips = store.get(tree.root_id)
            if root_clips:
                root_slot = slot_of[tree.root_id]
                node_clip_start[root_slot] = len(coords)
                node_clip_count[root_slot] = len(root_clips)
                for clip in root_clips:
                    coords.append(clip.coord)
                    masks.append(clip.mask)

        clip_coords = (
            np.array(coords, dtype=np.float64)
            if coords
            else np.empty((0, dims), dtype=np.float64)
        )
        clip_is_high = (
            masks_to_bool(np.array(masks, dtype=np.int64), dims)
            if masks
            else np.empty((0, dims), dtype=bool)
        )
        return cls(
            source=index,
            dims=dims,
            is_leaf=is_leaf,
            entry_start=entry_start,
            entry_count=entry_count,
            node_ids=node_ids,
            entry_lows=entry_lows,
            entry_highs=entry_highs,
            entry_child=entry_child,
            clip_start=clip_start,
            clip_count=clip_count,
            clip_coords=clip_coords,
            clip_is_high=clip_is_high,
            objects=objects,
            source_version=cls._version_of(index),
            node_clip_start=node_clip_start,
            node_clip_count=node_clip_count,
        )

    @staticmethod
    def _version_of(index: Union[RTreeBase, ClippedRTree, None]) -> object:
        return None if index is None else index.version

    # ------------------------------------------------------------------
    # staleness
    # ------------------------------------------------------------------

    @property
    def is_stale(self) -> bool:
        """True when the source tree has mutated since this freeze.

        Inserts and deletes on the source (and re-clipping, for clipped
        sources) bump its ``version``; a stale snapshot still answers
        queries, but against the state at freeze time.  Snapshots built
        without a source tree (``repro.engine.builder``) are never stale.
        """
        if self.source is None:
            return False
        return self._version_of(self.source) != self.source_version

    def refresh(self) -> "ColumnarIndex":
        """A fresh snapshot of the (possibly mutated) source tree.

        A source-free snapshot (array-native bulk load) has nothing to
        re-freeze and returns itself.
        """
        if self.source is None:
            return self
        return ColumnarIndex.from_tree(self.source)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def has_clips(self) -> bool:
        """True when the snapshot carries any clip points."""
        return len(self.clip_coords) > 0

    def node_bounds(self) -> tuple:
        """Per-slot node MBBs as ``(lows, highs)`` arrays (cached).

        Each slot's bounds are the min/max over its own entries — exactly
        ``Node.mbb()`` of the source node, bit for bit.  An entry-less
        slot (the root of an empty tree) gets a degenerate all-zero box;
        callers must not rely on it (the join executor bails out of empty
        trees before looking).
        """
        if self._node_lows is None:
            n_nodes = len(self.is_leaf)
            if len(self.entry_lows) == 0:
                self._node_lows = np.zeros((n_nodes, self.dims), dtype=np.float64)
                self._node_highs = np.zeros((n_nodes, self.dims), dtype=np.float64)
            else:
                self._node_lows = np.minimum.reduceat(self.entry_lows, self.entry_start)
                self._node_highs = np.maximum.reduceat(self.entry_highs, self.entry_start)
        return self._node_lows, self._node_highs

    def node_levels(self) -> np.ndarray:
        """Per-slot tree levels (0 = leaf), cached.

        Parents precede children in the BFS slot layout, so one reverse
        sweep suffices: a directory slot sits one level above its first
        child.  The join executor uses levels to replicate the scalar
        STT's descend-the-deeper-tree rule.
        """
        if self._node_levels is None:
            levels = np.zeros(len(self.is_leaf), dtype=np.int64)
            entry_start = self.entry_start
            entry_child = self.entry_child
            for slot in range(len(levels) - 1, -1, -1):
                if not self.is_leaf[slot]:
                    levels[slot] = levels[entry_child[entry_start[slot]]] + 1
            self._node_levels = levels
        return self._node_levels

    def precompute_derived(self) -> None:
        """Force the lazy :meth:`node_bounds` / :meth:`node_levels` caches.

        The caches are per-snapshot-object: a worker process that opens
        its own view of the snapshot would otherwise re-derive them on
        first use (``node_levels`` is a Python sweep over every slot).
        Call this once before fanning out — ``snapshot_io.save_snapshot``
        does, persisting the caches so loaded snapshots never recompute.
        """
        self.node_bounds()
        self.node_levels()

    def seed_derived(
        self, node_lows: np.ndarray, node_highs: np.ndarray, node_levels: np.ndarray
    ) -> None:
        """Install precomputed :meth:`node_bounds` / :meth:`node_levels` caches.

        Used by :func:`repro.engine.snapshot_io.load_snapshot` to hand a
        loaded snapshot the caches persisted at save time (as mmap views,
        zero-copy).
        """
        self._node_lows = _pinned(node_lows, np.float64)
        self._node_highs = _pinned(node_highs, np.float64)
        self._node_levels = _pinned(node_levels, np.int64)

    def node_count(self) -> int:
        """Number of snapshot node slots."""
        return len(self.is_leaf)

    def __len__(self) -> int:
        return len(self.objects)

    # ------------------------------------------------------------------
    # convenience query wrappers
    # ------------------------------------------------------------------

    def range_query_batch(self, rects: Sequence, stats=None, access_hook=None):
        """See :func:`repro.engine.executor.range_query_batch`."""
        from repro.engine.executor import range_query_batch

        return range_query_batch(self, rects, stats=stats, access_hook=access_hook)

    def knn_batch(self, points: Sequence, k: int, stats=None):
        """See :func:`repro.engine.executor.knn_batch`."""
        from repro.engine.executor import knn_batch

        return knn_batch(self, points, k, stats=stats)

    def __repr__(self) -> str:
        return (
            f"ColumnarIndex(nodes={self.node_count()}, objects={len(self.objects)}, "
            f"clips={len(self.clip_coords)}, dims={self.dims})"
        )
