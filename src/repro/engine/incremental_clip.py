"""Dirty-node re-clipping: Algorithm 1 restricted to the nodes an update
batch actually touched.

The write path of the delta engine (:mod:`repro.engine.delta`) applies a
buffered batch of inserts/deletes to the source tree *without* the
per-update re-clipping of :meth:`repro.rtree.clipped.ClippedRTree.insert`
— change tracking (:class:`~repro.rtree.base.InsertResult` /
:class:`~repro.rtree.base.DeleteResult`) accumulates the set of nodes
whose entry lists changed, and :func:`reclip_nodes` recomputes exactly
those nodes' clip points in one batched pass through
:func:`repro.engine.bulk_clip.clip_nodes_batch`.

Because a node's clip points are a pure function of its own entry
rectangles, re-clipping the dirty set leaves the store identical to a
full :meth:`~repro.rtree.clipped.ClippedRTree.clip_all` recompute —
``tests/test_incremental_clip.py`` pins that equivalence across variants
and update interleavings.
"""

from __future__ import annotations

from typing import Iterable, Set, Union

from repro.engine.bulk_clip import clip_nodes_batch
from repro.rtree.base import DeleteResult, InsertResult
from repro.rtree.clipped import ClippedRTree


def dirty_node_ids(
    results: Iterable[Union[InsertResult, DeleteResult]],
) -> Set[int]:
    """Every node id whose entry list one of ``results`` may have changed.

    Union of: the target leaf, split nodes and their new siblings, nodes
    that received entries (``added_rects``), nodes that lost entries in
    place, and nodes whose MBB moved.  A moved MBB also means the node's
    *parent* entry rect was rewritten, so callers re-clipping against the
    current tree must add each changed node's present parent — see
    :func:`reclip_nodes_for_results`.
    """
    dirty: Set[int] = set()
    for result in results:
        if result.leaf_id is not None:
            dirty.add(result.leaf_id)
        dirty |= result.split_node_ids
        dirty |= result.new_node_ids
        dirty |= result.mbb_changed_node_ids
        dirty |= result.entry_removed_node_ids
        dirty.update(result.added_rects)
    return dirty


def reclip_nodes_for_results(
    clipped: ClippedRTree,
    results: Iterable[Union[InsertResult, DeleteResult]],
    engine: str = "vectorized",
) -> int:
    """Re-clip everything a batch of tracked updates dirtied.

    Adds the current parent of every MBB-changed node (its entry rect
    for that child was refreshed), drops clip entries of removed nodes,
    then delegates to :func:`reclip_nodes`.  Returns the number of live
    nodes re-clipped.
    """
    results = list(results)
    dirty = dirty_node_ids(results)
    mbb_changed: Set[int] = set()
    for result in results:
        mbb_changed |= result.mbb_changed_node_ids
        removed = getattr(result, "removed_node_ids", None)
        if removed:
            for node_id in removed:
                clipped.store.remove(node_id)
            dirty -= removed
    if mbb_changed:
        parents = clipped._parent_index()
        for node_id in mbb_changed:
            parent_id = parents.get(node_id)
            if parent_id is not None:
                dirty.add(parent_id)
    return reclip_nodes(clipped, dirty, engine=engine)


def reclip_nodes(
    clipped: ClippedRTree, node_ids: Iterable[int], engine: str = "vectorized"
) -> int:
    """Recompute clip points for exactly ``node_ids`` of ``clipped``.

    Ids of nodes that no longer exist are dropped from the store; each
    surviving node gets the same clip points a full ``clip_all`` would
    assign it (vectorized and scalar engines agree value for value).
    Returns the number of live nodes re-clipped.
    """
    if engine not in ClippedRTree.CLIP_ENGINES:
        raise ValueError(
            f"unknown clip engine {engine!r}; known: {ClippedRTree.CLIP_ENGINES}"
        )
    tree = clipped.tree
    ids = set(node_ids)
    live = sorted(nid for nid in ids if tree.has_node(nid))
    for node_id in ids.difference(live):
        clipped.store.remove(node_id)
    if engine == "scalar":
        for node_id in live:
            clipped._clip_node(tree.node(node_id))
        return len(live)
    results = clip_nodes_batch([tree.node(nid) for nid in live], tree.dims, clipped.config)
    for node_id in live:
        clips = results.get(node_id)
        if clips:
            clipped.store.put(node_id, clips)
        else:
            clipped.store.remove(node_id)
    return len(live)
