"""Vectorized NumPy kernels for batched clip-point construction.

Each kernel is the array analogue of one scalar building block of the
paper's Algorithm 1, batched over a leading *group* axis (one row per
node of a tree level):

==============================  =============================================
:func:`skyline_mask_batch`      :func:`repro.skyline.skyline.oriented_skyline_indices`
:func:`splice_candidates`       :func:`repro.skyline.stairline.splice_point`
                                over all skyline pairs
:func:`stair_invalid_mask`      the validity probe of
                                :func:`repro.skyline.stairline.stairline_points`
                                (``strictly_inside_corner_region``)
:func:`clip_volumes`            :func:`repro.cbb.scoring.clip_volume`
:func:`overlap_volumes`         ``repro.cbb.scoring._same_corner_overlap``
:func:`segment_first_argmax`    ``max(range(n), key=volumes.__getitem__)``
==============================  =============================================

Corner bitmasks arrive pre-expanded as an ``is_high`` boolean vector (bit
``i`` set -> max extent in dimension ``i``, see
:func:`repro.engine.kernels.masks_to_bool`).  All comparisons are exact
float64 comparisons and all volume products accumulate dimension by
dimension in dimension order, so every kernel computes *bit for bit* what
its scalar counterpart does — ``tests/test_clip_kernels.py`` pins each
correspondence and ``tests/test_build_differential.py`` pins the composed
pipeline.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def sequential_prod(values: np.ndarray) -> np.ndarray:
    """Product over the last axis, accumulated in dimension order.

    ``np.prod`` is free to re-associate the reduction; the scalar scoring
    code multiplies dimension by dimension, and matching it bit for bit
    requires the same association order.
    """
    out = values[..., 0].copy()
    for dim in range(1, values.shape[-1]):
        out *= values[..., dim]
    return out


def orient(points: np.ndarray, is_high: np.ndarray) -> np.ndarray:
    """Flip max-extent dimensions so smaller always means closer to the corner.

    Negation is exact in IEEE-754 and order-reversing, so every oriented
    comparison decides exactly what the mask-dispatched scalar comparison
    decides — it just lets the batched kernels run one uniform ``<``/``<=``
    instead of a per-dimension ``np.where`` over quadratic intermediates.
    """
    return np.where(is_high, -points, points)


def skyline_mask_batch(points: np.ndarray, is_high: np.ndarray) -> np.ndarray:
    """Oriented-skyline membership for a batch of equal-size point sets.

    ``points`` is ``(g, c, d)`` — ``g`` nodes with ``c`` corner points
    each; ``is_high`` is the ``(d,)`` boolean expansion of the corner
    bitmask.  Returns a ``(g, c)`` boolean mask that is True exactly for
    the indices :func:`~repro.skyline.skyline.oriented_skyline_indices`
    would return: points not dominated by any other point of their group
    and not duplicating an earlier point.

    Mirrors the scalar dispatch: 2-d runs a batched sort-based sweep,
    higher dimensions the batched pairwise filter.
    """
    if points.shape[-1] == 2:
        return _skyline_mask_2d(points, is_high)
    return _skyline_mask_pairwise(points, is_high)


def _skyline_mask_2d(points: np.ndarray, is_high: np.ndarray) -> np.ndarray:
    """Batched 2-d skyline sweep: one lexsort + one per-row running minimum.

    The group-wide form of ``_skyline_2d_indices``: order each node's
    oriented points by ``(key0, key1, position)`` and keep exactly those
    that strictly improve the running minimum of ``key1``.
    """
    g, c, _ = points.shape
    oriented = orient(points, is_high)
    key0 = oriented[:, :, 0].reshape(-1)
    key1 = oriented[:, :, 1].reshape(-1)
    owner = np.repeat(np.arange(g, dtype=np.int64), c)
    position = np.tile(np.arange(c, dtype=np.int64), g)
    order = np.lexsort((position, key1, key0, owner))
    key1_sorted = key1[order].reshape(g, c)
    running_min = np.minimum.accumulate(key1_sorted, axis=1)
    improves = np.empty((g, c), dtype=bool)
    improves[:, 0] = True
    improves[:, 1:] = key1_sorted[:, 1:] < running_min[:, :-1]
    mask = np.zeros(g * c, dtype=bool)
    mask[order[improves.reshape(-1)]] = True
    return mask.reshape(g, c)


def _skyline_mask_pairwise(points: np.ndarray, is_high: np.ndarray) -> np.ndarray:
    """Batched pairwise dominance filter (any dimensionality).

    Works on oriented coordinates, one ``(g, c, c)`` comparison per
    dimension: ``closer[j, i]`` holds when point ``j`` is at least as
    close to the corner as point ``i`` in every dimension.  ``j``
    eliminates ``i`` when it is closer and not coordinate-equal
    (dominance) or equal but earlier (the first-occurrence dedup).
    """
    oriented = orient(points, is_high)
    closer = None
    for dim in range(points.shape[-1]):
        le = oriented[:, :, None, dim] <= oriented[:, None, :, dim]
        closer = le if closer is None else closer & le
    equal = closer & closer.swapaxes(1, 2)
    c = points.shape[1]
    earlier = np.triu(np.ones((c, c), dtype=bool), k=1)  # earlier[j, i]: j < i
    eliminated = (closer & (~equal | earlier)).any(axis=1)
    return ~eliminated


def splice_candidates(
    skylines: np.ndarray, is_high: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All pairwise splice points of equal-size skylines (Definition 6).

    ``skylines`` is ``(g, s, d)``.  Splicing uses the corner *opposite*
    ``is_high`` — max on cleared bits, min on set bits — exactly as the
    scalar ``splice_point(p, q, flip_mask(mask))``.  Returns
    ``(candidates, i_idx, j_idx)`` where ``candidates`` is ``(g, p, d)``
    with pairs enumerated in the scalar double-loop order (``i < j``,
    row-major) and ``i_idx``/``j_idx`` name each pair's sources.
    """
    s = skylines.shape[1]
    i_idx, j_idx = np.triu_indices(s, k=1)
    a = skylines[:, i_idx, :]
    b = skylines[:, j_idx, :]
    candidates = np.where(is_high, np.minimum(a, b), np.maximum(a, b))
    return candidates, i_idx, j_idx


def stair_invalid_mask(
    skylines: np.ndarray, candidates: np.ndarray, is_high: np.ndarray
) -> np.ndarray:
    """True where a splice candidate's clip region swallows a skyline point.

    ``skylines`` is ``(g, s, d)``, ``candidates`` ``(g, p, d)``.  A
    candidate is invalid when any skyline point lies *strictly* inside
    the region between the candidate and the ``is_high`` corner
    (``strictly_inside_corner_region``); boundary contact never
    invalidates.  Returns ``(g, p)``.
    """
    o_sky = orient(skylines, is_high)
    o_cand = orient(candidates, is_high)
    inside = None
    for dim in range(skylines.shape[-1]):
        lt = o_sky[:, None, :, dim] < o_cand[:, :, None, dim]
        inside = lt if inside is None else inside & lt
    return inside.any(axis=-1)


def equals_any_point(candidates: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Rows of ``candidates`` exactly equal to some row of ``points``.

    ``candidates`` is ``(g, p, d)``, ``points`` ``(g, s, d)``; returns a
    ``(g, p)`` boolean mask.  The scalar stairline enumeration seeds its
    dedup set with the skyline points; this is that membership test.
    """
    eq = None
    for dim in range(candidates.shape[-1]):
        e = candidates[:, :, None, dim] == points[:, None, :, dim]
        eq = e if eq is None else eq & e
    return eq.any(axis=-1)


def first_occurrence_mask(rows: np.ndarray, owners: np.ndarray) -> np.ndarray:
    """True for rows that first introduce their coordinates within an owner.

    ``rows`` is ``(n, d)`` and ``owners`` ``(n,)``; a row is kept when no
    earlier row (smaller index) of the *same owner* has identical
    coordinates — the vectorized form of the scalar ``seen``-set dedup,
    evaluated in original row order via a stable lexsort.
    """
    n = len(rows)
    if n == 0:
        return np.zeros(0, dtype=bool)
    keys = [np.arange(n)]
    for dim in range(rows.shape[1] - 1, -1, -1):
        keys.append(rows[:, dim])
    keys.append(owners)
    order = np.lexsort(tuple(keys))
    sorted_rows = rows[order]
    same_as_prev = (sorted_rows[1:] == sorted_rows[:-1]).all(axis=1) & (
        owners[order][1:] == owners[order][:-1]
    )
    first = np.ones(n, dtype=bool)
    first[order[1:]] = ~same_as_prev
    return first


def clip_volumes(points: np.ndarray, corner: np.ndarray) -> np.ndarray:
    """Volume clipped between each point and the node corner.

    The array analogue of ``clip_volume``: the product over dimensions of
    ``abs(corner - point)``, accumulated in dimension order.  ``corner``
    broadcasts against ``points`` over the leading axes.
    """
    return sequential_prod(np.abs(corner - points))


def overlap_volumes(
    points: np.ndarray, best: np.ndarray, corner: np.ndarray
) -> np.ndarray:
    """Overlap of each candidate's clip region with the best candidate's.

    The array analogue of ``_same_corner_overlap``: per dimension the
    overlap extent is the smaller of the two corner distances.
    """
    return sequential_prod(
        np.minimum(np.abs(corner - points), np.abs(corner - best))
    )


def segment_first_argmax(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Flat index of the *first* maximum inside each contiguous segment.

    Segments must be non-empty, in ascending order, and tile ``values``
    completely (``starts[i+1] == starts[i] + counts[i]``) — the layout
    the bulk-clip orchestrator produces.  Matches the scalar
    ``max(range(n), key=volumes.__getitem__)`` tie-breaking (lowest index
    wins).
    """
    seg_max = np.maximum.reduceat(values, starts)
    owners = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
    position = np.arange(len(values), dtype=np.int64)
    at_max = values == seg_max[owners]
    return np.minimum.reduceat(np.where(at_max, position, len(values)), starts)
