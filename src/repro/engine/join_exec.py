"""Columnar spatial-join execution over :class:`ColumnarIndex` snapshots.

The two §V join strategies, vectorized:

* :func:`inlj_batch` — Index Nested Loop Join: every outer rectangle
  probes the frozen inner index at once through the level-synchronous
  range frontier (:func:`repro.engine.executor.gather_range_hits`), one
  kernel sweep per tree level instead of one Python traversal per probe.
* :func:`stt_batch` — Synchronised Tree Traversal: the frontier holds
  *pairs* of node slots, one from each snapshot.  Each round splits the
  frontier into leaf×leaf pairs (joined immediately via a flattened
  cross-product kernel) and descending pairs, expands the deeper side's
  entries, and filters the candidate child pairs with the MBB
  intersection kernel plus the paper's clipped dominance pruning — the
  candidate child's clip points probed with the partner's MBB and the
  partner's clip points probed with the candidate's rectangle, exactly
  the two ``node_intersects`` tests of the scalar ``_pair_passes``.

Both reproduce the scalar joins (:mod:`repro.join`) exactly: the same
result pairs, the same ``pair_count``, and the same ``IOStats`` — one
access per node pairing, recorded on the side that descended, with a leaf
access *contributing* only when the subtree pairing entered at it emitted
at least one result pair.  The scalar STT learns a leaf's contribution
when its recursion returns; the frontier cannot wait, so every access is
tagged with the pair it created and emissions are propagated up the pair
tree (child pairs always have larger ids than their parents, so one
reverse sweep over the creation rounds settles every count).
``tests/test_join_differential.py`` pins the equivalence per variant ×
dataset × clipped/plain.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.engine.columnar import ColumnarIndex
from repro.engine.executor import gather_range_hits
from repro.engine.join_kernels import expand_cross, segment_counts
from repro.engine.kernels import (
    clip_prune_mask,
    expand_segments,
    intersect_mask,
    segment_any,
)
from repro.geometry.objects import SpatialObject
from repro.join.result import JoinResult


def inlj_batch(
    outer_objects: Iterable[SpatialObject],
    inner: ColumnarIndex,
    collect_pairs: bool = True,
) -> JoinResult:
    """Index Nested Loop Join of ``outer_objects`` against a snapshot.

    Equivalent to :func:`repro.join.inlj.index_nested_loop_join` run
    against the snapshot's source index: identical pairs, ``pair_count``
    and ``inner_stats`` (pairs are emitted in per-probe BFS rather than
    DFS order).
    """
    outer_objects = list(outer_objects)
    result = JoinResult()
    if not outer_objects:
        result.set_pair_count(0, collected=collect_pairs)
        return result
    q_lows = np.array([o.rect.low for o in outer_objects], dtype=np.float64)
    q_highs = np.array([o.rect.high for o in outer_objects], dtype=np.float64)
    if q_lows.shape[1] != inner.dims:
        raise ValueError(
            f"outer objects have {q_lows.shape[1]} dims, snapshot expects {inner.dims}"
        )
    all_q, all_obj = gather_range_hits(
        inner, q_lows, q_highs, stats=result.inner_stats
    )
    if collect_pairs and len(all_q):
        # Stable sort groups the hits per outer object, preserving the
        # BFS discovery order within each probe.
        order = np.argsort(all_q, kind="stable")
        get = inner.objects.__getitem__
        result.pairs.extend(
            (outer_objects[q], get(o))
            for q, o in zip(all_q[order].tolist(), all_obj[order].tolist())
        )
    result.set_pair_count(int(len(all_q)), collected=collect_pairs)
    return result


class _PairLedger:
    """Bookkeeping of the pair tree the synchronized traversal explores.

    Every explored node pair gets a sequential id; ``parents`` remembers
    which frontier pair spawned it and ``events`` which side's node was
    accessed when it was created.  Emissions recorded against leaf×leaf
    pairs are pushed up the parent chain in :meth:`settle`, which is what
    turns per-pair emission counts into the contributing-leaf metric.
    """

    def __init__(self) -> None:
        self.parent_rounds: List[np.ndarray] = []
        self.events: List[Tuple[bool, np.ndarray, np.ndarray]] = []
        self.emissions: List[Tuple[np.ndarray, np.ndarray]] = []
        self.next_id = 0

    def add_pairs(self, parents: np.ndarray) -> np.ndarray:
        """Register newly created pairs; returns their ids."""
        ids = np.arange(self.next_id, self.next_id + len(parents), dtype=np.int64)
        self.next_id += len(parents)
        self.parent_rounds.append(parents)
        return ids

    def record_accesses(
        self, outer_side: bool, pair_ids: np.ndarray, leaf_flags: np.ndarray
    ) -> None:
        self.events.append((outer_side, pair_ids, leaf_flags))

    def record_emissions(self, pair_ids: np.ndarray, counts: np.ndarray) -> None:
        self.emissions.append((pair_ids, counts))

    def settle(self, result: JoinResult) -> np.ndarray:
        """Propagate emissions up the pair tree and fill ``IOStats``.

        Returns the per-pair settled emission counts; entry 0 (the root
        pair, when pairs exist) is the total number of result pairs, and
        the leading entries of a sharded run (:func:`stt_shard`) are the
        per-shipped-pair subtree totals its parent folds back in.
        """
        emitted = np.zeros(self.next_id, dtype=np.int64)
        for pair_ids, counts in self.emissions:
            np.add.at(emitted, pair_ids, counts)
        # Reverse creation order: each block's parents were created in
        # strictly earlier blocks, and its own descendants (later blocks)
        # have already been folded in.
        id_end = self.next_id
        for parents in reversed(self.parent_rounds):
            ids = np.arange(id_end - len(parents), id_end, dtype=np.int64)
            live = parents >= 0
            if live.any():
                np.add.at(emitted, parents[live], emitted[ids[live]])
            id_end -= len(parents)
        for outer_side, pair_ids, leaf_flags in self.events:
            stats = result.outer_stats if outer_side else result.inner_stats
            n_leaves = int(leaf_flags.sum())
            stats.leaf_accesses += n_leaves
            stats.internal_accesses += len(pair_ids) - n_leaves
            stats.contributing_leaf_accesses += int(
                (leaf_flags & (emitted[pair_ids] > 0)).sum()
            )
        return emitted


def _clips_veto_pair(
    owner: ColumnarIndex,
    clip_start: np.ndarray,
    clip_count: np.ndarray,
    probe_lows: np.ndarray,
    probe_highs: np.ndarray,
) -> np.ndarray:
    """Rows whose clip points prove the probe rectangle hits dead space only.

    ``clip_start``/``clip_count`` select one clip-point run of ``owner``
    per row; ``probe_lows``/``probe_highs`` is the partner rectangle of
    that row — the vectorized ``node_intersects`` of the scalar join.
    """
    n_rows = len(clip_start)
    flat, owners = expand_segments(clip_start, clip_count)
    if not len(flat):
        return np.zeros(n_rows, dtype=bool)
    pruned = clip_prune_mask(
        probe_lows[owners],
        probe_highs[owners],
        owner.clip_coords[flat],
        owner.clip_is_high[flat],
    )
    return segment_any(pruned, owners, n_rows)


def _stt_roots_pass(left: ColumnarIndex, right: ColumnarIndex) -> bool:
    """The scalar ``_pair_passes`` test applied to the two root nodes."""
    root = ColumnarIndex.ROOT_SLOT
    root_arr = np.array([root], dtype=np.int64)
    l_lows, l_highs = left.node_bounds()
    r_lows, r_highs = right.node_bounds()
    roots_pass = bool(
        intersect_mask(l_lows[root_arr], l_highs[root_arr], r_lows[root], r_highs[root])[0]
    )
    if roots_pass and left.has_clips:
        roots_pass = not bool(
            _clips_veto_pair(
                left,
                left.node_clip_start[root_arr],
                left.node_clip_count[root_arr],
                r_lows[root_arr],
                r_highs[root_arr],
            )[0]
        )
    if roots_pass and right.has_clips:
        roots_pass = not bool(
            _clips_veto_pair(
                right,
                right.node_clip_start[root_arr],
                right.node_clip_count[root_arr],
                l_lows[root_arr],
                l_highs[root_arr],
            )[0]
        )
    return roots_pass


class _SttFrontier:
    """One round's pending node pairs: slots, ledger ids, shard-root tags.

    ``roots`` carries, for every pending pair, the index of the starting
    pair it descends from — always 0 for a whole-join run, the shipped
    pair's position for a sharded run (:func:`stt_shard`), where the
    parent process uses it to merge per-shard hits deterministically.
    """

    __slots__ = ("a", "b", "pid", "root")

    def __init__(self, a: np.ndarray, b: np.ndarray, pid: np.ndarray, root: np.ndarray):
        self.a = a
        self.b = b
        self.pid = pid
        self.root = root

    def __len__(self) -> int:
        return len(self.a)


def _stt_descend(
    ledger: _PairLedger,
    desc: ColumnarIndex,
    other: ColumnarIndex,
    nodes: np.ndarray,
    partners: np.ndarray,
    pids: np.ndarray,
    roots: np.ndarray,
    other_lows: np.ndarray,
    other_highs: np.ndarray,
    outer_side: bool,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Expand one side's entries against the partner nodes of the other."""
    flat, owners = expand_segments(desc.entry_start[nodes], desc.entry_count[nodes])
    partner = partners[owners]
    parent = pids[owners]
    root = roots[owners]
    keep = intersect_mask(
        desc.entry_lows[flat],
        desc.entry_highs[flat],
        other_lows[partner],
        other_highs[partner],
    )
    flat, partner, parent, root = flat[keep], partner[keep], parent[keep], root[keep]
    if desc.has_clips and len(flat):
        # Candidate child's own clip points vs the partner's MBB.
        veto = _clips_veto_pair(
            desc,
            desc.clip_start[flat],
            desc.clip_count[flat],
            other_lows[partner],
            other_highs[partner],
        )
        keep = ~veto
        flat, partner, parent, root = flat[keep], partner[keep], parent[keep], root[keep]
    if other.has_clips and len(flat):
        # Partner node's clip points vs the candidate child's rectangle.
        veto = _clips_veto_pair(
            other,
            other.node_clip_start[partner],
            other.node_clip_count[partner],
            desc.entry_lows[flat],
            desc.entry_highs[flat],
        )
        keep = ~veto
        flat, partner, parent, root = flat[keep], partner[keep], parent[keep], root[keep]
    children = desc.entry_child[flat]
    new_pids = ledger.add_pairs(parent)
    ledger.record_accesses(outer_side, new_pids, desc.is_leaf[children])
    return children, partner, new_pids, root


def _stt_rounds(
    left: ColumnarIndex,
    right: ColumnarIndex,
    frontier: _SttFrontier,
    ledger: _PairLedger,
    collected: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    collect_pairs: bool,
    stop_len: Optional[int] = None,
) -> _SttFrontier:
    """Run the level-synchronous pair rounds until done (or big enough).

    Each iteration joins the frontier's leaf×leaf pairs and descends the
    deeper side of the rest, exactly as before the sharding refactor.
    With ``stop_len``, the loop instead returns as soon as the frontier
    holds at least that many pairs — the parent process ships the
    returned frontier to the worker pool.  ``collected`` receives
    ``(left_obj_idx, right_obj_idx, root_tag)`` triples per round.
    """
    l_lows, l_highs = left.node_bounds()
    r_lows, r_highs = right.node_bounds()
    l_levels = left.node_levels()
    r_levels = right.node_levels()

    while len(frontier.a):
        if stop_len is not None and len(frontier.a) >= stop_len:
            break
        frontier_a, frontier_b = frontier.a, frontier.b
        frontier_pid, frontier_root = frontier.pid, frontier.root
        a_leaf = left.is_leaf[frontier_a]
        b_leaf = right.is_leaf[frontier_b]

        both = a_leaf & b_leaf
        if both.any():
            leaf_a = frontier_a[both]
            leaf_b = frontier_b[both]
            owners, ai, bi = expand_cross(
                left.entry_start[leaf_a],
                left.entry_count[leaf_a],
                right.entry_start[leaf_b],
                right.entry_count[leaf_b],
            )
            hit = intersect_mask(
                left.entry_lows[ai],
                left.entry_highs[ai],
                right.entry_lows[bi],
                right.entry_highs[bi],
            )
            ledger.record_emissions(
                frontier_pid[both], segment_counts(hit, owners, len(leaf_a))
            )
            if collect_pairs and hit.any():
                rows = np.nonzero(hit)[0]
                collected.append(
                    (
                        left.entry_child[ai[rows]],
                        right.entry_child[bi[rows]],
                        frontier_root[both][owners[rows]],
                    )
                )

        rest = ~both
        rest_a = frontier_a[rest]
        rest_b = frontier_b[rest]
        rest_pid = frontier_pid[rest]
        rest_root = frontier_root[rest]
        if not len(rest_a):
            return _SttFrontier(*(np.empty(0, dtype=np.int64) for _ in range(4)))
        go_left = ~left.is_leaf[rest_a] & (
            right.is_leaf[rest_b] | (l_levels[rest_a] >= r_levels[rest_b])
        )

        next_a: List[np.ndarray] = []
        next_b: List[np.ndarray] = []
        next_pid: List[np.ndarray] = []
        next_root: List[np.ndarray] = []
        if go_left.any():
            children, partner, pids, roots = _stt_descend(
                ledger,
                left,
                right,
                rest_a[go_left],
                rest_b[go_left],
                rest_pid[go_left],
                rest_root[go_left],
                r_lows,
                r_highs,
                outer_side=True,
            )
            next_a.append(children)
            next_b.append(partner)
            next_pid.append(pids)
            next_root.append(roots)
        go_right = ~go_left
        if go_right.any():
            children, partner, pids, roots = _stt_descend(
                ledger,
                right,
                left,
                rest_b[go_right],
                rest_a[go_right],
                rest_pid[go_right],
                rest_root[go_right],
                l_lows,
                l_highs,
                outer_side=False,
            )
            next_a.append(partner)
            next_b.append(children)
            next_pid.append(pids)
            next_root.append(roots)

        frontier = _SttFrontier(
            np.concatenate(next_a) if next_a else np.empty(0, dtype=np.int64),
            np.concatenate(next_b) if next_b else np.empty(0, dtype=np.int64),
            np.concatenate(next_pid) if next_pid else np.empty(0, dtype=np.int64),
            np.concatenate(next_root) if next_root else np.empty(0, dtype=np.int64),
        )
    return frontier


def stt_root_frontier(
    left: ColumnarIndex, right: ColumnarIndex, ledger: _PairLedger
) -> Optional[_SttFrontier]:
    """The root-pair frontier, with its accesses recorded — or ``None``.

    ``None`` means the join is empty before it starts: one side has no
    entries, or the root pair fails the (clipped) intersection test, in
    which case — matching the scalar STT — nothing is accessed at all.
    """
    if left.dims != right.dims:
        raise ValueError(f"snapshot dims differ: {left.dims} vs {right.dims}")
    root = ColumnarIndex.ROOT_SLOT
    if left.entry_count[root] == 0 or right.entry_count[root] == 0:
        return None
    if not _stt_roots_pass(left, right):
        return None
    root_arr = np.array([root], dtype=np.int64)
    root_pair = ledger.add_pairs(np.array([-1], dtype=np.int64))
    ledger.record_accesses(True, root_pair, left.is_leaf[root_arr])
    ledger.record_accesses(False, root_pair, right.is_leaf[root_arr])
    return _SttFrontier(
        root_arr, root_arr.copy(), root_pair, np.zeros(1, dtype=np.int64)
    )


def materialize_stt_pairs(
    result: JoinResult,
    left: ColumnarIndex,
    right: ColumnarIndex,
    collected: Iterable[Tuple[np.ndarray, np.ndarray]],
) -> None:
    """Resolve collected ``(left_idx, right_idx)`` arrays into result pairs."""
    get_l = left.objects.__getitem__
    get_r = right.objects.__getitem__
    for a_idx, b_idx in collected:
        result.pairs.extend(
            (get_l(i), get_r(j)) for i, j in zip(a_idx.tolist(), b_idx.tolist())
        )


def stt_batch(
    left: ColumnarIndex, right: ColumnarIndex, collect_pairs: bool = True
) -> JoinResult:
    """Synchronised Tree Traversal join of two snapshots.

    Equivalent to :func:`repro.join.stt.synchronized_tree_traversal_join`
    run on the snapshots' sources: identical pairs, ``pair_count``,
    ``outer_stats`` and ``inner_stats``.
    """
    result = JoinResult()
    ledger = _PairLedger()
    frontier = stt_root_frontier(left, right, ledger)
    if frontier is None:
        result.set_pair_count(0, collected=collect_pairs)
        return result
    collected: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    _stt_rounds(left, right, frontier, ledger, collected, collect_pairs)
    emitted = ledger.settle(result)
    pair_count = int(emitted[0]) if len(emitted) else 0
    if collect_pairs:
        materialize_stt_pairs(result, left, right, ((a, b) for a, b, _ in collected))
    result.set_pair_count(pair_count, collected=collect_pairs)
    return result


def stt_shard(
    left: ColumnarIndex,
    right: ColumnarIndex,
    nodes_a: np.ndarray,
    nodes_b: np.ndarray,
    collect_pairs: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Tuple[int, int, int], Tuple[int, int, int]]:
    """Finish the traversal for one shard of shipped frontier pairs.

    ``nodes_a[i]``/``nodes_b[i]`` is one pending node pair whose creation
    (and access accounting) already happened in the coordinating process;
    this runs its subtree join to completion.  Returns

    ``(hits_a, hits_b, hit_roots, root_emissions, outer_stats, inner_stats)``

    where ``hits_a``/``hits_b`` are object-index arrays of the result
    pairs found (empty when ``collect_pairs`` is false), ``hit_roots``
    tags each hit with the shipped pair (position in ``nodes_a``) whose
    subtree emitted it, ``root_emissions`` counts emissions per shipped
    pair — the coordinator feeds them back into its own ledger so
    contributing-leaf accounting settles exactly as in a single-process
    run — and the stats triples are ``(leaf, internal, contributing)``
    access counts for pairs created inside the shard.
    """
    n = len(nodes_a)
    ledger = _PairLedger()
    # The shipped pairs are this shard's roots: already accounted for by
    # the coordinator, so registered without access events.
    root_pids = ledger.add_pairs(np.full(n, -1, dtype=np.int64))
    frontier = _SttFrontier(
        np.asarray(nodes_a, dtype=np.int64),
        np.asarray(nodes_b, dtype=np.int64),
        root_pids,
        np.arange(n, dtype=np.int64),
    )
    collected: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    _stt_rounds(left, right, frontier, ledger, collected, collect_pairs)
    scratch = JoinResult()
    emitted = ledger.settle(scratch)
    root_emissions = emitted[:n] if len(emitted) else np.zeros(n, dtype=np.int64)
    if collected:
        hits_a = np.concatenate([a for a, _, _ in collected])
        hits_b = np.concatenate([b for _, b, _ in collected])
        hit_roots = np.concatenate([r for _, _, r in collected])
    else:
        hits_a = hits_b = hit_roots = np.empty(0, dtype=np.int64)
    outer = scratch.outer_stats
    inner = scratch.inner_stats
    return (
        hits_a,
        hits_b,
        hit_roots,
        root_emissions,
        (outer.leaf_accesses, outer.internal_accesses, outer.contributing_leaf_accesses),
        (inner.leaf_accesses, inner.internal_accesses, inner.contributing_leaf_accesses),
    )
