"""Columnar spatial-join execution over :class:`ColumnarIndex` snapshots.

The two §V join strategies, vectorized:

* :func:`inlj_batch` — Index Nested Loop Join: every outer rectangle
  probes the frozen inner index at once through the level-synchronous
  range frontier (:func:`repro.engine.executor.gather_range_hits`), one
  kernel sweep per tree level instead of one Python traversal per probe.
* :func:`stt_batch` — Synchronised Tree Traversal: the frontier holds
  *pairs* of node slots, one from each snapshot.  Each round splits the
  frontier into leaf×leaf pairs (joined immediately via a flattened
  cross-product kernel) and descending pairs, expands the deeper side's
  entries, and filters the candidate child pairs with the MBB
  intersection kernel plus the paper's clipped dominance pruning — the
  candidate child's clip points probed with the partner's MBB and the
  partner's clip points probed with the candidate's rectangle, exactly
  the two ``node_intersects`` tests of the scalar ``_pair_passes``.

Both reproduce the scalar joins (:mod:`repro.join`) exactly: the same
result pairs, the same ``pair_count``, and the same ``IOStats`` — one
access per node pairing, recorded on the side that descended, with a leaf
access *contributing* only when the subtree pairing entered at it emitted
at least one result pair.  The scalar STT learns a leaf's contribution
when its recursion returns; the frontier cannot wait, so every access is
tagged with the pair it created and emissions are propagated up the pair
tree (child pairs always have larger ids than their parents, so one
reverse sweep over the creation rounds settles every count).
``tests/test_join_differential.py`` pins the equivalence per variant ×
dataset × clipped/plain.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.engine.columnar import ColumnarIndex
from repro.engine.executor import gather_range_hits
from repro.engine.join_kernels import expand_cross, segment_counts
from repro.engine.kernels import (
    clip_prune_mask,
    expand_segments,
    intersect_mask,
    segment_any,
)
from repro.geometry.objects import SpatialObject
from repro.join.result import JoinResult


def inlj_batch(
    outer_objects: Iterable[SpatialObject],
    inner: ColumnarIndex,
    collect_pairs: bool = True,
) -> JoinResult:
    """Index Nested Loop Join of ``outer_objects`` against a snapshot.

    Equivalent to :func:`repro.join.inlj.index_nested_loop_join` run
    against the snapshot's source index: identical pairs, ``pair_count``
    and ``inner_stats`` (pairs are emitted in per-probe BFS rather than
    DFS order).
    """
    outer_objects = list(outer_objects)
    result = JoinResult()
    if not outer_objects:
        result.set_pair_count(0, collected=collect_pairs)
        return result
    q_lows = np.array([o.rect.low for o in outer_objects], dtype=np.float64)
    q_highs = np.array([o.rect.high for o in outer_objects], dtype=np.float64)
    if q_lows.shape[1] != inner.dims:
        raise ValueError(
            f"outer objects have {q_lows.shape[1]} dims, snapshot expects {inner.dims}"
        )
    all_q, all_obj = gather_range_hits(
        inner, q_lows, q_highs, stats=result.inner_stats
    )
    if collect_pairs and len(all_q):
        # Stable sort groups the hits per outer object, preserving the
        # BFS discovery order within each probe.
        order = np.argsort(all_q, kind="stable")
        get = inner.objects.__getitem__
        result.pairs.extend(
            (outer_objects[q], get(o))
            for q, o in zip(all_q[order].tolist(), all_obj[order].tolist())
        )
    result.set_pair_count(int(len(all_q)), collected=collect_pairs)
    return result


class _PairLedger:
    """Bookkeeping of the pair tree the synchronized traversal explores.

    Every explored node pair gets a sequential id; ``parents`` remembers
    which frontier pair spawned it and ``events`` which side's node was
    accessed when it was created.  Emissions recorded against leaf×leaf
    pairs are pushed up the parent chain in :meth:`settle`, which is what
    turns per-pair emission counts into the contributing-leaf metric.
    """

    def __init__(self) -> None:
        self.parent_rounds: List[np.ndarray] = []
        self.events: List[Tuple[bool, np.ndarray, np.ndarray]] = []
        self.emissions: List[Tuple[np.ndarray, np.ndarray]] = []
        self.next_id = 0

    def add_pairs(self, parents: np.ndarray) -> np.ndarray:
        """Register newly created pairs; returns their ids."""
        ids = np.arange(self.next_id, self.next_id + len(parents), dtype=np.int64)
        self.next_id += len(parents)
        self.parent_rounds.append(parents)
        return ids

    def record_accesses(
        self, outer_side: bool, pair_ids: np.ndarray, leaf_flags: np.ndarray
    ) -> None:
        self.events.append((outer_side, pair_ids, leaf_flags))

    def record_emissions(self, pair_ids: np.ndarray, counts: np.ndarray) -> None:
        self.emissions.append((pair_ids, counts))

    def settle(self, result: JoinResult) -> int:
        """Propagate emissions up the pair tree and fill ``IOStats``.

        Returns the total number of result pairs (the root pair's settled
        emission count).
        """
        emitted = np.zeros(self.next_id, dtype=np.int64)
        for pair_ids, counts in self.emissions:
            np.add.at(emitted, pair_ids, counts)
        # Reverse creation order: each block's parents were created in
        # strictly earlier blocks, and its own descendants (later blocks)
        # have already been folded in.
        id_end = self.next_id
        for parents in reversed(self.parent_rounds):
            ids = np.arange(id_end - len(parents), id_end, dtype=np.int64)
            live = parents >= 0
            if live.any():
                np.add.at(emitted, parents[live], emitted[ids[live]])
            id_end -= len(parents)
        for outer_side, pair_ids, leaf_flags in self.events:
            stats = result.outer_stats if outer_side else result.inner_stats
            n_leaves = int(leaf_flags.sum())
            stats.leaf_accesses += n_leaves
            stats.internal_accesses += len(pair_ids) - n_leaves
            stats.contributing_leaf_accesses += int(
                (leaf_flags & (emitted[pair_ids] > 0)).sum()
            )
        return int(emitted[0]) if self.next_id else 0


def _clips_veto_pair(
    owner: ColumnarIndex,
    clip_start: np.ndarray,
    clip_count: np.ndarray,
    probe_lows: np.ndarray,
    probe_highs: np.ndarray,
) -> np.ndarray:
    """Rows whose clip points prove the probe rectangle hits dead space only.

    ``clip_start``/``clip_count`` select one clip-point run of ``owner``
    per row; ``probe_lows``/``probe_highs`` is the partner rectangle of
    that row — the vectorized ``node_intersects`` of the scalar join.
    """
    n_rows = len(clip_start)
    flat, owners = expand_segments(clip_start, clip_count)
    if not len(flat):
        return np.zeros(n_rows, dtype=bool)
    pruned = clip_prune_mask(
        probe_lows[owners],
        probe_highs[owners],
        owner.clip_coords[flat],
        owner.clip_is_high[flat],
    )
    return segment_any(pruned, owners, n_rows)


def stt_batch(
    left: ColumnarIndex, right: ColumnarIndex, collect_pairs: bool = True
) -> JoinResult:
    """Synchronised Tree Traversal join of two snapshots.

    Equivalent to :func:`repro.join.stt.synchronized_tree_traversal_join`
    run on the snapshots' sources: identical pairs, ``pair_count``,
    ``outer_stats`` and ``inner_stats``.
    """
    if left.dims != right.dims:
        raise ValueError(f"snapshot dims differ: {left.dims} vs {right.dims}")
    result = JoinResult()
    root = ColumnarIndex.ROOT_SLOT
    if left.entry_count[root] == 0 or right.entry_count[root] == 0:
        result.set_pair_count(0, collected=collect_pairs)
        return result

    l_lows, l_highs = left.node_bounds()
    r_lows, r_highs = right.node_bounds()
    l_levels = left.node_levels()
    r_levels = right.node_levels()

    root_arr = np.array([root], dtype=np.int64)
    roots_pass = bool(
        intersect_mask(l_lows[root_arr], l_highs[root_arr], r_lows[root], r_highs[root])[0]
    )
    if roots_pass and left.has_clips:
        roots_pass = not bool(
            _clips_veto_pair(
                left,
                left.node_clip_start[root_arr],
                left.node_clip_count[root_arr],
                r_lows[root_arr],
                r_highs[root_arr],
            )[0]
        )
    if roots_pass and right.has_clips:
        roots_pass = not bool(
            _clips_veto_pair(
                right,
                right.node_clip_start[root_arr],
                right.node_clip_count[root_arr],
                l_lows[root_arr],
                l_highs[root_arr],
            )[0]
        )
    if not roots_pass:
        result.set_pair_count(0, collected=collect_pairs)
        return result

    ledger = _PairLedger()
    root_pair = ledger.add_pairs(np.array([-1], dtype=np.int64))
    ledger.record_accesses(True, root_pair, left.is_leaf[root_arr])
    ledger.record_accesses(False, root_pair, right.is_leaf[root_arr])

    frontier_a = root_arr
    frontier_b = root_arr.copy()
    frontier_pid = root_pair
    collected: List[Tuple[np.ndarray, np.ndarray]] = []

    def descend(
        desc: ColumnarIndex,
        other: ColumnarIndex,
        nodes: np.ndarray,
        partners: np.ndarray,
        pids: np.ndarray,
        other_lows: np.ndarray,
        other_highs: np.ndarray,
        outer_side: bool,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand one side's entries against the partner nodes of the other."""
        flat, owners = expand_segments(desc.entry_start[nodes], desc.entry_count[nodes])
        partner = partners[owners]
        parent = pids[owners]
        keep = intersect_mask(
            desc.entry_lows[flat],
            desc.entry_highs[flat],
            other_lows[partner],
            other_highs[partner],
        )
        flat, partner, parent = flat[keep], partner[keep], parent[keep]
        if desc.has_clips and len(flat):
            # Candidate child's own clip points vs the partner's MBB.
            veto = _clips_veto_pair(
                desc,
                desc.clip_start[flat],
                desc.clip_count[flat],
                other_lows[partner],
                other_highs[partner],
            )
            flat, partner, parent = flat[~veto], partner[~veto], parent[~veto]
        if other.has_clips and len(flat):
            # Partner node's clip points vs the candidate child's rectangle.
            veto = _clips_veto_pair(
                other,
                other.node_clip_start[partner],
                other.node_clip_count[partner],
                desc.entry_lows[flat],
                desc.entry_highs[flat],
            )
            flat, partner, parent = flat[~veto], partner[~veto], parent[~veto]
        children = desc.entry_child[flat]
        new_pids = ledger.add_pairs(parent)
        ledger.record_accesses(outer_side, new_pids, desc.is_leaf[children])
        return children, partner, new_pids

    while len(frontier_a):
        a_leaf = left.is_leaf[frontier_a]
        b_leaf = right.is_leaf[frontier_b]

        both = a_leaf & b_leaf
        if both.any():
            leaf_a = frontier_a[both]
            leaf_b = frontier_b[both]
            owners, ai, bi = expand_cross(
                left.entry_start[leaf_a],
                left.entry_count[leaf_a],
                right.entry_start[leaf_b],
                right.entry_count[leaf_b],
            )
            hit = intersect_mask(
                left.entry_lows[ai],
                left.entry_highs[ai],
                right.entry_lows[bi],
                right.entry_highs[bi],
            )
            ledger.record_emissions(
                frontier_pid[both], segment_counts(hit, owners, len(leaf_a))
            )
            if collect_pairs and hit.any():
                rows = np.nonzero(hit)[0]
                collected.append(
                    (left.entry_child[ai[rows]], right.entry_child[bi[rows]])
                )

        rest = ~both
        rest_a = frontier_a[rest]
        rest_b = frontier_b[rest]
        rest_pid = frontier_pid[rest]
        if not len(rest_a):
            break
        go_left = ~left.is_leaf[rest_a] & (
            right.is_leaf[rest_b] | (l_levels[rest_a] >= r_levels[rest_b])
        )

        next_a: List[np.ndarray] = []
        next_b: List[np.ndarray] = []
        next_pid: List[np.ndarray] = []
        if go_left.any():
            children, partner, pids = descend(
                left,
                right,
                rest_a[go_left],
                rest_b[go_left],
                rest_pid[go_left],
                r_lows,
                r_highs,
                outer_side=True,
            )
            next_a.append(children)
            next_b.append(partner)
            next_pid.append(pids)
        go_right = ~go_left
        if go_right.any():
            children, partner, pids = descend(
                right,
                left,
                rest_b[go_right],
                rest_a[go_right],
                rest_pid[go_right],
                l_lows,
                l_highs,
                outer_side=False,
            )
            next_a.append(partner)
            next_b.append(children)
            next_pid.append(pids)

        frontier_a = np.concatenate(next_a) if next_a else np.empty(0, dtype=np.int64)
        frontier_b = np.concatenate(next_b) if next_b else np.empty(0, dtype=np.int64)
        frontier_pid = (
            np.concatenate(next_pid) if next_pid else np.empty(0, dtype=np.int64)
        )

    pair_count = ledger.settle(result)
    if collect_pairs:
        get_l = left.objects.__getitem__
        get_r = right.objects.__getitem__
        for a_idx, b_idx in collected:
            result.pairs.extend(
                (get_l(i), get_r(j)) for i, j in zip(a_idx.tolist(), b_idx.tolist())
            )
    result.set_pair_count(pair_count, collected=collect_pairs)
    return result
