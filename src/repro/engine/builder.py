"""Array-native STR bulk loading straight into a columnar snapshot.

:func:`build_columnar_str` packs objects with Sort-Tile-Recursive and
emits a ready-to-query :class:`~repro.engine.columnar.ColumnarIndex`
level by level — node MBBs, entry slices, and BFS slots are produced as
NumPy arrays from the start, with no per-node ``Node``/``Entry`` Python
objects in between.  Sorting runs through ``np.argsort`` on index
arrays and level MBBs through segmented ``reduceat`` reductions, so the
build cost is dominated by O(n log n) C-level sorts instead of Python
comparisons.

The packing replicates :func:`repro.rtree.str_bulk.str_bulk_load`
decision for decision — same slab recursion, same capacity and
minimum-fill arithmetic, same last-node rebalancing — so the resulting
snapshot is array-for-array identical to freezing the scalar builder's
tree (``ColumnarIndex.from_tree(str_bulk_load(objects, ...))``),
including the synthesized node ids.  ``tests/test_build_differential.py``
pins that equality.

The one observable difference: a snapshot built here has no source tree
(``source`` is ``None``), so it is never stale and cannot be refreshed —
it is a pure read-only index.  Updates require a real tree.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.engine.columnar import ColumnarIndex
from repro.geometry.objects import SpatialObject
from repro.rtree.base import resolve_min_entries


def build_columnar_str(
    objects: Sequence[SpatialObject],
    max_entries: int = 50,
    min_entries: Optional[int] = None,
    leaf_fill: float = 1.0,
) -> ColumnarIndex:
    """STR-pack ``objects`` directly into a :class:`ColumnarIndex`.

    Parameters and packing semantics match
    :func:`~repro.rtree.str_bulk.str_bulk_load`; the output matches
    ``ColumnarIndex.from_tree`` of that tree array for array.
    """
    if not objects:
        raise ValueError("cannot bulk load an empty object collection")
    if not 0.0 < leaf_fill <= 1.0:
        raise ValueError("leaf_fill must be in (0, 1]")
    if max_entries < 2:
        raise ValueError("max_entries must be at least 2")
    dims = objects[0].dims
    min_entries = resolve_min_entries(max_entries, min_entries)
    capacity = max(min_entries, int(max_entries * leaf_fill))

    lows = np.array([obj.rect.low for obj in objects], dtype=np.float64)
    highs = np.array([obj.rect.high for obj in objects], dtype=np.float64)
    centers = (lows + highs) / 2.0

    def tile(idx: np.ndarray, dim: int) -> List[np.ndarray]:
        if dim >= dims or len(idx) <= capacity:
            return [idx]
        remaining_dims = dims - dim
        leaf_pages = math.ceil(len(idx) / capacity)
        slab_count = math.ceil(leaf_pages ** (1.0 / remaining_dims))
        slab_size = math.ceil(len(idx) / slab_count)
        ordered = idx[np.argsort(centers[idx, dim], kind="stable")]
        slabs: List[np.ndarray] = []
        for start in range(0, len(ordered), slab_size):
            slabs.extend(tile(ordered[start : start + slab_size], dim + 1))
        return slabs

    slabs = tile(np.arange(len(objects), dtype=np.int64), 0)
    perm = np.concatenate(slabs)

    # Leaf sizes: each slab split into capacity-sized chunks, then the
    # final leaf rebalanced up to minimum fill from its left neighbour
    # (moves entries, never reorders them).
    leaf_counts: List[int] = []
    for slab in slabs:
        full, rem = divmod(len(slab), capacity)
        leaf_counts.extend([capacity] * full)
        if rem:
            leaf_counts.append(rem)
    _rebalance_last(leaf_counts, min_entries)

    # Upper levels: chunks of max_entries children, same rebalancing.
    level_counts = [np.asarray(leaf_counts, dtype=np.int64)]
    while len(level_counts[-1]) > 1:
        n_children = len(level_counts[-1])
        full, rem = divmod(n_children, max_entries)
        counts = [max_entries] * full + ([rem] if rem else [])
        _rebalance_last(counts, min_entries)
        level_counts.append(np.asarray(counts, dtype=np.int64))

    # MBBs bottom-up: segmented min/max over the children of each level.
    entry_lows_lvl = [lows[perm]]
    entry_highs_lvl = [highs[perm]]
    node_lows_lvl: List[np.ndarray] = []
    node_highs_lvl: List[np.ndarray] = []
    for counts in level_counts:
        starts = np.cumsum(counts) - counts
        node_lows_lvl.append(np.minimum.reduceat(entry_lows_lvl[-1], starts))
        node_highs_lvl.append(np.maximum.reduceat(entry_highs_lvl[-1], starts))
        entry_lows_lvl.append(node_lows_lvl[-1])
        entry_highs_lvl.append(node_highs_lvl[-1])

    # Node ids as the scalar builder would number them: the constructor's
    # empty root takes id 0 and is dropped, leaves take 1..L in order,
    # then each packed level continues the sequence.
    next_id = 1
    node_ids_lvl: List[np.ndarray] = []
    for counts in level_counts:
        node_ids_lvl.append(np.arange(next_id, next_id + len(counts), dtype=np.int64))
        next_id += len(counts)

    # Assemble in BFS slot order: levels top-down, left-to-right (exactly
    # the order ``ColumnarIndex.from_tree`` discovers nodes in).
    n_levels = len(level_counts)
    total_nodes = sum(len(counts) for counts in level_counts)
    total_entries = int(sum(int(counts.sum()) for counts in level_counts))

    is_leaf = np.zeros(total_nodes, dtype=bool)
    entry_count = np.empty(total_nodes, dtype=np.int64)
    node_ids = np.empty(total_nodes, dtype=np.int64)
    entry_lows = np.empty((total_entries, dims), dtype=np.float64)
    entry_highs = np.empty((total_entries, dims), dtype=np.float64)
    entry_child = np.empty(total_entries, dtype=np.int64)

    node_cursor = 0
    entry_cursor = 0
    child_slot_offset = 0
    for level_index in range(n_levels - 1, -1, -1):
        counts = level_counts[level_index]
        n_nodes = len(counts)
        n_entries = int(counts.sum())
        node_slice = slice(node_cursor, node_cursor + n_nodes)
        entry_slice = slice(entry_cursor, entry_cursor + n_entries)
        is_leaf[node_slice] = level_index == 0
        entry_count[node_slice] = counts
        node_ids[node_slice] = node_ids_lvl[level_index]
        entry_lows[entry_slice] = entry_lows_lvl[level_index]
        entry_highs[entry_slice] = entry_highs_lvl[level_index]
        if level_index == 0:
            entry_child[entry_slice] = np.arange(n_entries, dtype=np.int64)
        else:
            # Children occupy the next level's slots, in order.
            child_slot_offset += n_nodes
            entry_child[entry_slice] = child_slot_offset + np.arange(
                n_entries, dtype=np.int64
            )
        node_cursor += n_nodes
        entry_cursor += n_entries

    entry_start = np.concatenate(([0], np.cumsum(entry_count)[:-1]))

    return ColumnarIndex(
        source=None,
        dims=dims,
        is_leaf=is_leaf,
        entry_start=entry_start,
        entry_count=entry_count,
        node_ids=node_ids,
        entry_lows=entry_lows,
        entry_highs=entry_highs,
        entry_child=entry_child,
        clip_start=np.zeros(total_entries, dtype=np.int64),
        clip_count=np.zeros(total_entries, dtype=np.int64),
        clip_coords=np.empty((0, dims), dtype=np.float64),
        clip_is_high=np.empty((0, dims), dtype=bool),
        objects=[objects[i] for i in perm.tolist()],
        source_version=None,
    )


def _rebalance_last(counts: List[int], min_entries: int) -> None:
    """Top the final node up to minimum fill from its left neighbour."""
    if len(counts) > 1 and counts[-1] < min_entries:
        deficit = min_entries - counts[-1]
        counts[-2] -= deficit
        counts[-1] += deficit
