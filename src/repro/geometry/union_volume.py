"""Volume of a union of axis-aligned boxes.

Used for measuring *dead space*: the dead space of a node is the volume of
its MBB minus the volume of the union of its children's rectangles
(Definition 1).  The computation uses coordinate compression: the union of
``n`` boxes induces at most ``(2n - 1)**d`` grid cells, each of which is
either fully covered or fully empty, so summing covered cell volumes is
exact.  For the node sizes that occur in R-trees (tens of children, d <= 3)
this is fast enough in numpy.

The grid is exponential in ``d``, however — a 16-child node in d = 6
already induces ~9e8 cells — so above :data:`MAX_GRID_CELLS` the function
falls back to a *deterministic* Monte-Carlo estimate (fixed-seed uniform
samples over the domain).  The dimensionality-sweep scenario (d up to 8)
relies on this; with the fixed seed the estimate is reproducible, so
archived metrics stay comparable across runs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.geometry.rect import Rect

#: Grid-cell budget above which ``union_volume`` switches to sampling.
MAX_GRID_CELLS = 2_000_000
#: Uniform samples drawn by the Monte-Carlo fallback.
SAMPLE_COUNT = 8192
_SAMPLE_SEED = 0x5EED


def _sampled_union_volume(
    lows: np.ndarray, highs: np.ndarray, domain: Rect
) -> float:
    """Fixed-seed Monte-Carlo estimate of ``volume(union ∩ domain)``."""
    d_low = np.asarray(domain.low, dtype=float)
    d_high = np.asarray(domain.high, dtype=float)
    d_volume = float(np.prod(d_high - d_low))
    if d_volume <= 0.0:
        return 0.0
    rng = np.random.default_rng(_SAMPLE_SEED)
    points = rng.uniform(d_low, d_high, (SAMPLE_COUNT, lows.shape[1]))
    covered = np.zeros(SAMPLE_COUNT, dtype=bool)
    for low, high in zip(lows, highs):
        covered |= np.all((points >= low) & (points <= high), axis=1)
    return d_volume * float(covered.mean())


def union_volume(rects: Iterable[Rect], within: Optional[Rect] = None) -> float:
    """Volume of the union of ``rects`` (exact, or sampled for huge grids).

    When ``within`` is given, every rectangle is first clipped to it so the
    result is the volume of ``union(rects) ∩ within``.
    """
    clipped: List[Rect] = []
    for rect in rects:
        if within is not None:
            inter = within.intersection(rect)
            if inter is None:
                continue
            clipped.append(inter)
        else:
            clipped.append(rect)
    if not clipped:
        return 0.0

    dims = clipped[0].dims
    lows = np.array([r.low for r in clipped], dtype=float)
    highs = np.array([r.high for r in clipped], dtype=float)

    # Per-dimension sorted unique breakpoints.
    cuts = [np.unique(np.concatenate([lows[:, i], highs[:, i]])) for i in range(dims)]
    cell_sizes = [np.diff(c) for c in cuts]
    if any(cs.size == 0 for cs in cell_sizes):
        return 0.0

    shape = tuple(cs.size for cs in cell_sizes)
    if float(np.prod([float(s) for s in shape])) > MAX_GRID_CELLS:
        if within is not None:
            domain = within
        else:
            domain = Rect(lows.min(axis=0).tolist(), highs.max(axis=0).tolist())
        return _sampled_union_volume(lows, highs, domain)
    covered = np.zeros(shape, dtype=bool)

    for low, high in zip(lows, highs):
        slices = []
        degenerate = False
        for i in range(dims):
            start = int(np.searchsorted(cuts[i], low[i]))
            stop = int(np.searchsorted(cuts[i], high[i]))
            if stop <= start:
                degenerate = True
                break
            slices.append(slice(start, stop))
        if degenerate:
            continue
        covered[tuple(slices)] = True

    volume_grid = cell_sizes[0]
    for i in range(1, dims):
        volume_grid = np.multiply.outer(volume_grid, cell_sizes[i])
    return float((volume_grid * covered).sum())


def dead_space_fraction(bounding: Rect, children: Iterable[Rect]) -> float:
    """Fraction of ``bounding``'s volume not covered by any child.

    Returns a value in ``[0, 1]``.  A bounding rectangle with zero volume
    (all children are points lying on a line/plane) is treated as entirely
    dead, matching the paper's remark about the point-only ``rea03``
    dataset at the leaf level.
    """
    total = bounding.volume()
    if total <= 0.0:
        return 1.0
    covered = union_volume(children, within=bounding)
    fraction = 1.0 - covered / total
    return min(1.0, max(0.0, fraction))
