"""Exact volume of a union of axis-aligned boxes.

Used for measuring *dead space*: the dead space of a node is the volume of
its MBB minus the volume of the union of its children's rectangles
(Definition 1).  The computation uses coordinate compression: the union of
``n`` boxes induces at most ``(2n - 1)**d`` grid cells, each of which is
either fully covered or fully empty, so summing covered cell volumes is
exact.  For the node sizes that occur in R-trees (tens of children, d <= 3)
this is fast enough in numpy.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.geometry.rect import Rect


def union_volume(rects: Iterable[Rect], within: Optional[Rect] = None) -> float:
    """Exact volume of the union of ``rects``.

    When ``within`` is given, every rectangle is first clipped to it so the
    result is the volume of ``union(rects) ∩ within``.
    """
    clipped: List[Rect] = []
    for rect in rects:
        if within is not None:
            inter = within.intersection(rect)
            if inter is None:
                continue
            clipped.append(inter)
        else:
            clipped.append(rect)
    if not clipped:
        return 0.0

    dims = clipped[0].dims
    lows = np.array([r.low for r in clipped], dtype=float)
    highs = np.array([r.high for r in clipped], dtype=float)

    # Per-dimension sorted unique breakpoints.
    cuts = [np.unique(np.concatenate([lows[:, i], highs[:, i]])) for i in range(dims)]
    cell_sizes = [np.diff(c) for c in cuts]
    if any(cs.size == 0 for cs in cell_sizes):
        return 0.0

    shape = tuple(cs.size for cs in cell_sizes)
    covered = np.zeros(shape, dtype=bool)

    for low, high in zip(lows, highs):
        slices = []
        degenerate = False
        for i in range(dims):
            start = int(np.searchsorted(cuts[i], low[i]))
            stop = int(np.searchsorted(cuts[i], high[i]))
            if stop <= start:
                degenerate = True
                break
            slices.append(slice(start, stop))
        if degenerate:
            continue
        covered[tuple(slices)] = True

    volume_grid = cell_sizes[0]
    for i in range(1, dims):
        volume_grid = np.multiply.outer(volume_grid, cell_sizes[i])
    return float((volume_grid * covered).sum())


def dead_space_fraction(bounding: Rect, children: Iterable[Rect]) -> float:
    """Fraction of ``bounding``'s volume not covered by any child.

    Returns a value in ``[0, 1]``.  A bounding rectangle with zero volume
    (all children are points lying on a line/plane) is treated as entirely
    dead, matching the paper's remark about the point-only ``rea03``
    dataset at the leaf level.
    """
    total = bounding.volume()
    if total <= 0.0:
        return 1.0
    covered = union_volume(children, within=bounding)
    fraction = 1.0 - covered / total
    return min(1.0, max(0.0, fraction))
