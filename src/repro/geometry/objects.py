"""Spatial objects: a bounding rectangle plus an identifier."""

from __future__ import annotations

from typing import Any, Optional

from repro.geometry.rect import Rect


class SpatialObject:
    """A data object stored in a spatial index.

    The index only ever sees the object's minimum bounding rectangle; the
    ``payload`` is carried through untouched so applications can attach
    whatever they need (geometry, row id, ...).
    """

    __slots__ = ("oid", "rect", "payload")

    def __init__(self, oid: int, rect: Rect, payload: Optional[Any] = None):
        self.oid = int(oid)
        self.rect = rect
        self.payload = payload

    @property
    def dims(self) -> int:
        """Dimensionality of the object's bounding rectangle."""
        return self.rect.dims

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SpatialObject)
            and self.oid == other.oid
            and self.rect == other.rect
        )

    def __hash__(self) -> int:
        return hash((self.oid, self.rect))

    def __repr__(self) -> str:
        return f"SpatialObject(oid={self.oid}, rect={self.rect!r})"
