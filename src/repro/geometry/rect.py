"""Axis-aligned d-dimensional hyperrectangles."""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple

from repro.geometry.bitmask import corner_of


class Rect:
    """An axis-aligned hyperrectangle ``<low, high>``.

    ``low`` and ``high`` are tuples of floats with ``low[i] <= high[i]`` in
    every dimension.  A point is represented as a degenerate rectangle with
    ``low == high``.  Instances are immutable and hashable.
    """

    __slots__ = ("low", "high")

    def __init__(self, low: Sequence[float], high: Sequence[float]):
        low = tuple(float(x) for x in low)
        high = tuple(float(x) for x in high)
        if len(low) != len(high):
            raise ValueError(
                f"low and high must have the same dimensionality "
                f"({len(low)} != {len(high)})"
            )
        if not low:
            raise ValueError("a rectangle needs at least one dimension")
        for lo, hi in zip(low, high):
            if lo > hi:
                raise ValueError(f"low {low} exceeds high {high}")
        object.__setattr__(self, "low", low)
        object.__setattr__(self, "high", high)

    def __setattr__(self, name, value):  # pragma: no cover - immutability guard
        raise AttributeError("Rect is immutable")

    # Immutable, so copies may share the instance (deepcopy would otherwise
    # trip over the __setattr__ guard while reconstructing the slots).
    def __copy__(self) -> "Rect":
        return self

    def __deepcopy__(self, memo) -> "Rect":
        return self

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: Sequence[float]) -> "Rect":
        """Build a degenerate (zero-extent) rectangle around ``point``."""
        return cls(point, point)

    @classmethod
    def from_center(cls, center: Sequence[float], extents: Sequence[float]) -> "Rect":
        """Build a rectangle from its center and per-dimension half-widths."""
        low = tuple(c - e for c, e in zip(center, extents))
        high = tuple(c + e for c, e in zip(center, extents))
        return cls(low, high)

    # -- basic properties --------------------------------------------------

    @property
    def dims(self) -> int:
        """Number of dimensions."""
        return len(self.low)

    @property
    def center(self) -> Tuple[float, ...]:
        """Geometric center of the rectangle."""
        return tuple((lo + hi) / 2.0 for lo, hi in zip(self.low, self.high))

    def side(self, dim: int) -> float:
        """Extent of the rectangle along dimension ``dim``."""
        return self.high[dim] - self.low[dim]

    def volume(self) -> float:
        """Product of side lengths (area in 2d, volume in 3d, ...)."""
        vol = 1.0
        for lo, hi in zip(self.low, self.high):
            vol *= hi - lo
        return vol

    def margin(self) -> float:
        """Sum of side lengths (half-perimeter in 2d, as used by the R*-tree)."""
        return sum(hi - lo for lo, hi in zip(self.low, self.high))

    def is_point(self) -> bool:
        """True when the rectangle has zero extent in every dimension."""
        return all(lo == hi for lo, hi in zip(self.low, self.high))

    def corner(self, mask: int) -> Tuple[float, ...]:
        """Corner selected by bitmask ``mask`` (bit set -> max extent)."""
        return corner_of(self.low, self.high, mask)

    # -- relations ---------------------------------------------------------

    def intersects(self, other: "Rect") -> bool:
        """True when the two closed rectangles share at least one point."""
        return all(
            lo <= o_hi and o_lo <= hi
            for lo, hi, o_lo, o_hi in zip(self.low, self.high, other.low, other.high)
        )

    def contains(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return all(
            lo <= o_lo and o_hi <= hi
            for lo, hi, o_lo, o_hi in zip(self.low, self.high, other.low, other.high)
        )

    def contains_point(self, point: Sequence[float]) -> bool:
        """True when ``point`` lies inside this closed rectangle."""
        return all(lo <= p <= hi for lo, hi, p in zip(self.low, self.high, point))

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` if the two are disjoint."""
        low = tuple(max(a, b) for a, b in zip(self.low, other.low))
        high = tuple(min(a, b) for a, b in zip(self.high, other.high))
        if any(lo > hi for lo, hi in zip(low, high)):
            return None
        return Rect(low, high)

    def intersection_volume(self, other: "Rect") -> float:
        """Volume of the overlap region (0.0 when disjoint)."""
        vol = 1.0
        for lo, hi, o_lo, o_hi in zip(self.low, self.high, other.low, other.high):
            span = min(hi, o_hi) - max(lo, o_lo)
            if span <= 0:
                return 0.0
            vol *= span
        return vol

    def union(self, other: "Rect") -> "Rect":
        """The minimum bounding box of the two rectangles."""
        low = tuple(min(a, b) for a, b in zip(self.low, other.low))
        high = tuple(max(a, b) for a, b in zip(self.high, other.high))
        return Rect(low, high)

    def enlargement(self, other: "Rect") -> float:
        """Volume increase needed for this rectangle to also cover ``other``."""
        return self.union(other).volume() - self.volume()

    def min_distance_sq(self, point: Sequence[float]) -> float:
        """Squared minimum distance from ``point`` to this rectangle.

        Uses plain multiplication rather than ``** 2``: ``pow`` may be a
        ULP off the correctly-rounded product, and the batch engine's
        MinDist kernel (an IEEE multiply) must match this bit for bit.
        """
        dist = 0.0
        for lo, hi, p in zip(self.low, self.high, point):
            if p < lo:
                delta = lo - p
                dist += delta * delta
            elif p > hi:
                delta = p - hi
                dist += delta * delta
        return dist

    def center_distance_sq(self, other: "Rect") -> float:
        """Squared distance between the centers of the two rectangles."""
        return sum((a - b) ** 2 for a, b in zip(self.center, other.center))

    def translate(self, offset: Sequence[float]) -> "Rect":
        """Return a copy shifted by ``offset``."""
        low = tuple(lo + o for lo, o in zip(self.low, offset))
        high = tuple(hi + o for hi, o in zip(self.high, offset))
        return Rect(low, high)

    def scaled(self, factor: float) -> "Rect":
        """Return a copy scaled by ``factor`` about its center."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        center = self.center
        low = tuple(c - (c - lo) * factor for c, lo in zip(center, self.low))
        high = tuple(c + (hi - c) * factor for c, hi in zip(center, self.high))
        return Rect(low, high)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Rect)
            and self.low == other.low
            and self.high == other.high
        )

    def __hash__(self) -> int:
        return hash((self.low, self.high))

    def __repr__(self) -> str:
        return f"Rect(low={self.low}, high={self.high})"


def mbb_of_points(points: Iterable[Sequence[float]]) -> Rect:
    """Minimum bounding box of a non-empty collection of points."""
    points = list(points)
    if not points:
        raise ValueError("cannot bound an empty point set")
    dims = len(points[0])
    low = [math.inf] * dims
    high = [-math.inf] * dims
    for point in points:
        for i, coord in enumerate(point):
            if coord < low[i]:
                low[i] = coord
            if coord > high[i]:
                high[i] = coord
    return Rect(low, high)


def mbb_of_rects(rects: Iterable[Rect]) -> Rect:
    """Minimum bounding box of a non-empty collection of rectangles."""
    rects = list(rects)
    if not rects:
        raise ValueError("cannot bound an empty rectangle set")
    dims = rects[0].dims
    low = [math.inf] * dims
    high = [-math.inf] * dims
    for rect in rects:
        for i in range(dims):
            if rect.low[i] < low[i]:
                low[i] = rect.low[i]
            if rect.high[i] > high[i]:
                high[i] = rect.high[i]
    return Rect(low, high)
