"""Oriented dominance between points (paper, Definition 4).

A point ``p`` *dominates* a distinct point ``q`` with respect to corner
bitmask ``b`` when ``p`` is at least as close to the corner ``R^b`` as
``q`` in every dimension independently.  Since the corner maximises the
dimensions whose bit is set in ``b`` and minimises the others, "closer to
the corner" means "greater coordinate" on set bits and "smaller
coordinate" on cleared bits.
"""

from __future__ import annotations

from typing import Sequence


def dominates(p: Sequence[float], q: Sequence[float], mask: int) -> bool:
    """True when ``p`` dominates ``q`` with respect to corner ``mask``.

    Dominance requires ``p`` to be at least as close to the corner in every
    dimension and strictly closer in at least one (so a point never
    dominates itself or an identical point).
    """
    strictly_better = False
    for i, (pi, qi) in enumerate(zip(p, q)):
        if (mask >> i) & 1:
            if pi < qi:
                return False
            if pi > qi:
                strictly_better = True
        else:
            if pi > qi:
                return False
            if pi < qi:
                strictly_better = True
    return strictly_better


def strictly_inside_corner_region(
    p: Sequence[float], anchor: Sequence[float], mask: int
) -> bool:
    """True when ``p`` lies strictly inside the open region clipped by ``anchor``.

    The region clipped by the pair ``<anchor, mask>`` of a bounding box is
    the box spanned by ``anchor`` and the corner ``R^mask``.  ``p`` is
    strictly inside it when, in every dimension, ``p`` is strictly closer
    to the corner than ``anchor`` is.  Boundary contact (a shared face or
    edge) carries zero volume and therefore does not invalidate a clip.
    """
    for i, (pi, ai) in enumerate(zip(p, anchor)):
        if (mask >> i) & 1:
            if pi <= ai:
                return False
        else:
            if pi >= ai:
                return False
    return True
