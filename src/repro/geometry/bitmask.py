"""Corner bitmasks.

A corner of a d-dimensional hyperrectangle is identified by a d-bit mask
``b``: bit ``i`` set means the corner takes the *maximum* extent in
dimension ``i``, cleared means the *minimum* extent (paper, §III-A).

Masks are plain Python integers; bit ``i`` corresponds to dimension ``i``.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple


def mask_bits(mask: int, dims: int) -> Tuple[int, ...]:
    """Return the per-dimension bits of ``mask`` as a tuple of 0/1 ints.

    >>> mask_bits(0b101, 3)
    (1, 0, 1)
    """
    return tuple((mask >> i) & 1 for i in range(dims))


def mask_from_bits(bits: Sequence[int]) -> int:
    """Inverse of :func:`mask_bits`.

    >>> mask_from_bits((1, 0, 1))
    5
    """
    mask = 0
    for i, bit in enumerate(bits):
        if bit:
            mask |= 1 << i
    return mask


def flip_mask(mask: int, dims: int) -> int:
    """Return ``~mask`` restricted to ``dims`` bits (the opposite corner)."""
    return (~mask) & ((1 << dims) - 1)


def all_corner_masks(dims: int) -> Iterator[int]:
    """Iterate over all ``2**dims`` corner masks."""
    return iter(range(1 << dims))


def corner_of(low: Sequence[float], high: Sequence[float], mask: int) -> Tuple[float, ...]:
    """Return the corner of the box ``[low, high]`` selected by ``mask``."""
    return tuple(
        high[i] if (mask >> i) & 1 else low[i] for i in range(len(low))
    )
