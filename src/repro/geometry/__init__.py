"""Geometric primitives: d-dimensional rectangles, corners, dominance.

The whole library works on axis-aligned hyperrectangles (``Rect``).  A
spatial *object* is itself represented by its minimum bounding box plus an
opaque identifier (``SpatialObject``), which is how the paper's benchmark
datasets are distributed as well.
"""

from repro.geometry.bitmask import (
    all_corner_masks,
    corner_of,
    flip_mask,
    mask_bits,
    mask_from_bits,
)
from repro.geometry.dominance import dominates, strictly_inside_corner_region
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect, mbb_of_points, mbb_of_rects
from repro.geometry.union_volume import union_volume

__all__ = [
    "Rect",
    "SpatialObject",
    "mbb_of_points",
    "mbb_of_rects",
    "union_volume",
    "dominates",
    "strictly_inside_corner_region",
    "corner_of",
    "flip_mask",
    "all_corner_masks",
    "mask_bits",
    "mask_from_bits",
]
