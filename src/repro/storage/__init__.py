"""Disk/page model and I/O accounting.

The paper's experiments measure *logical I/O*: the number of leaf-level
node accesses during queries (internal nodes are assumed memory-resident),
plus, for the scalability experiment, cold reads through a buffer pool.
This package provides the counters and a small simulated disk so those
measurements are explicit and reproducible.
"""

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.page import PageLayout
from repro.storage.stats import IOStats

# Index persistence (save_tree / load_tree) lives in
# ``repro.storage.persistence``; it is not re-exported here because it
# depends on the rtree package, which would create an import cycle.
__all__ = ["IOStats", "PageLayout", "DiskModel", "SimulatedDisk", "BufferPool"]
