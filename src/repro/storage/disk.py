"""A simulated disk with a simple latency cost model.

Used by the scalability experiment (Figure 15), where the paper measures
wall-clock time on a cold 7200 RPM disk.  We cannot (and need not)
reproduce the hardware; instead page reads are charged a seek + transfer
cost so that "query time" is a deterministic function of the access
pattern, which is the quantity the figure is really about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set


@dataclass(frozen=True)
class DiskModel:
    """Latency model of a spinning disk.

    Defaults approximate a 7200 RPM SATA drive: ~8 ms average seek +
    rotational delay for a random page, ~100 MB/s sequential transfer.
    """

    seek_ms: float = 8.0
    transfer_mb_per_s: float = 100.0
    page_size: int = 4096

    def random_read_ms(self) -> float:
        """Cost of one random page read in milliseconds."""
        transfer_ms = self.page_size / (self.transfer_mb_per_s * 1e6) * 1e3
        return self.seek_ms + transfer_ms

    def sequential_read_ms(self) -> float:
        """Cost of one page read that follows the previous page."""
        return self.page_size / (self.transfer_mb_per_s * 1e6) * 1e3


class SimulatedDisk:
    """Tracks page residency and accumulates simulated read latency."""

    def __init__(self, model: DiskModel = DiskModel()):
        self.model = model
        self.reads = 0
        self.sequential_reads = 0
        self.elapsed_ms = 0.0
        self._last_page: int | None = None
        self._pages: Set[int] = set()

    def register_page(self, page_id: int) -> None:
        """Declare that ``page_id`` exists on this disk."""
        self._pages.add(page_id)

    def read(self, page_id: int) -> None:
        """Charge the cost of reading ``page_id``."""
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} is not on this disk")
        self.reads += 1
        if self._last_page is not None and page_id == self._last_page + 1:
            self.sequential_reads += 1
            self.elapsed_ms += self.model.sequential_read_ms()
        else:
            self.elapsed_ms += self.model.random_read_ms()
        self._last_page = page_id

    def reset_counters(self) -> None:
        """Zero the read counters without forgetting page registrations."""
        self.reads = 0
        self.sequential_reads = 0
        self.elapsed_ms = 0.0
        self._last_page = None

    @property
    def page_count(self) -> int:
        """Number of registered pages."""
        return len(self._pages)
