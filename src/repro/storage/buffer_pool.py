"""An LRU buffer pool over a simulated disk."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.storage.disk import SimulatedDisk
from repro.storage.stats import IOStats


class BufferPool:
    """Least-recently-used page cache.

    ``capacity`` is the number of pages held in memory.  A ``capacity`` of
    0 disables caching (every access is a miss), ``None`` caches
    everything (every access after the first is a hit).
    """

    def __init__(
        self,
        capacity: Optional[int],
        disk: Optional[SimulatedDisk] = None,
        stats: Optional[IOStats] = None,
    ):
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative or None")
        self.capacity = capacity
        self.disk = disk
        self.stats = stats if stats is not None else IOStats()
        self._lru: "OrderedDict[int, None]" = OrderedDict()

    def access(self, page_id: int) -> bool:
        """Access ``page_id``; returns True on a buffer hit.

        Misses are charged to the simulated disk (when one is attached) and
        counted in ``stats``.
        """
        if page_id in self._lru:
            self._lru.move_to_end(page_id)
            self.stats.buffer_hits += 1
            return True

        self.stats.buffer_misses += 1
        if self.disk is not None:
            self.disk.read(page_id)
        if self.capacity != 0:
            self._lru[page_id] = None
            if self.capacity is not None:
                while len(self._lru) > self.capacity:
                    self._lru.popitem(last=False)
        return False

    def contains(self, page_id: int) -> bool:
        """True when the page is currently cached (does not touch LRU order)."""
        return page_id in self._lru

    def clear(self) -> None:
        """Drop every cached page (simulates a cold restart)."""
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)
