"""I/O statistics counters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IOStats:
    """Counts node accesses by category.

    ``leaf_accesses`` is the paper's primary I/O metric; the remaining
    counters support the buffer-pool and storage experiments.
    """

    leaf_accesses: int = 0
    internal_accesses: int = 0
    node_writes: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    #: leaf accesses that produced at least one query result
    contributing_leaf_accesses: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    @property
    def total_accesses(self) -> int:
        """All node reads, regardless of level."""
        return self.leaf_accesses + self.internal_accesses

    def record_leaf(self, contributed: bool = False) -> None:
        """Record one leaf-node access (``contributed``: it held a result)."""
        self.leaf_accesses += 1
        if contributed:
            self.contributing_leaf_accesses += 1

    def record_internal(self) -> None:
        """Record one directory-node access."""
        self.internal_accesses += 1

    def record_write(self) -> None:
        """Record one node write."""
        self.node_writes += 1

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a free-form counter under ``extra``."""
        self.extra[key] = self.extra.get(key, 0) + amount

    def merge(self, other: "IOStats") -> "IOStats":
        """Add ``other``'s counters into this instance and return ``self``."""
        self.leaf_accesses += other.leaf_accesses
        self.internal_accesses += other.internal_accesses
        self.node_writes += other.node_writes
        self.buffer_hits += other.buffer_hits
        self.buffer_misses += other.buffer_misses
        self.contributing_leaf_accesses += other.contributing_leaf_accesses
        for key, value in other.extra.items():
            self.bump(key, value)
        return self

    def reset(self) -> None:
        """Zero every counter."""
        self.leaf_accesses = 0
        self.internal_accesses = 0
        self.node_writes = 0
        self.buffer_hits = 0
        self.buffer_misses = 0
        self.contributing_leaf_accesses = 0
        self.extra.clear()
