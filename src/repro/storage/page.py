"""Page layout arithmetic: how many entries fit in a disk page.

The paper configures min/max node capacities per the RR*-tree benchmark
([13]); those depend on page size and dimensionality.  ``PageLayout``
derives capacities from a page size so experiments can state "4 KiB pages"
and get the same fan-outs the original benchmark would.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PageLayout:
    """Byte-level layout assumptions for a disk-based R-tree node.

    ``coord_bytes`` is the size of one coordinate (8 for doubles),
    ``pointer_bytes`` the size of a child pointer / object id, and
    ``header_bytes`` the fixed per-node header (level, entry count, ...).
    """

    page_size: int = 4096
    coord_bytes: int = 8
    pointer_bytes: int = 8
    header_bytes: int = 16

    def entry_bytes(self, dims: int) -> int:
        """Bytes per entry: a d-dimensional rectangle plus a pointer."""
        return 2 * dims * self.coord_bytes + self.pointer_bytes

    def max_entries(self, dims: int) -> int:
        """Maximum fan-out ``M`` for ``dims``-dimensional data."""
        capacity = (self.page_size - self.header_bytes) // self.entry_bytes(dims)
        return max(int(capacity), 2)

    def min_entries(self, dims: int, fill: float = 0.4) -> int:
        """Minimum fan-out ``m`` as a fraction of ``M`` (default 40 %)."""
        return max(2, int(self.max_entries(dims) * fill))

    def node_bytes(self) -> int:
        """Size of one node on disk (always a full page)."""
        return self.page_size


#: Default layout used across the benchmark harness.
DEFAULT_PAGE_LAYOUT = PageLayout()
