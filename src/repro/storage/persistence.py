"""Persisting R-trees and clip stores in the paper's physical layout.

Figure 4 of the paper shows the on-disk layout: R-tree nodes are arrays of
``(rectangle, pointer)`` entries, and clip points live in a separate
auxiliary table indexed by node id, each entry holding a count and a list
of ``(bitmask, coordinates)`` records.  This module serialises a tree (and
optionally its clip store) to a single binary file in that spirit and
loads it back, so indexes can be built once and re-used across processes.

The format is deliberately simple and self-describing:

* header: magic, version, dimensionality, fan-out parameters, object count;
* one record per node: id, level, entry count, entries (each a rectangle
  plus either a child id or an object id + payload-less object rectangle);
* the clip table: node id, clip count, then (mask, coordinates, score) per
  clip point.

Object payloads are not serialised (they may be arbitrary Python objects);
loading reconstructs :class:`SpatialObject` instances with ``payload=None``.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Dict, Optional, Tuple, Type, Union

from repro.cbb.clip_point import ClipPoint
from repro.cbb.store import ClipStore
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree
from repro.rtree.entry import Entry
from repro.rtree.hilbert import HilbertRTree
from repro.rtree.node import Node
from repro.rtree.quadratic import QuadraticRTree
from repro.rtree.rrstar import RRStarTree
from repro.rtree.rstar import RStarTree

_MAGIC = b"CBBRTREE"
#: v2 widened the clip-point mask field from ``<I`` (32-bit) to ``<Q``:
#: corner bitmasks have one bit per dimension, so any index beyond 32
#: dimensions overflows — and ``struct.pack`` refuses — the old field.
#: v1 files remain loadable.
_VERSION = 2
_SUPPORTED_VERSIONS = (1, 2)

_VARIANT_CODES: Dict[str, int] = {
    "quadratic": 1,
    "hilbert": 2,
    "rstar": 3,
    "rrstar": 4,
}
_VARIANT_CLASSES: Dict[int, Type[RTreeBase]] = {
    1: QuadraticRTree,
    2: HilbertRTree,
    3: RStarTree,
    4: RRStarTree,
}


def _write_rect(out: BinaryIO, rect: Rect) -> None:
    for value in rect.low + rect.high:
        out.write(struct.pack("<d", value))


def _read_rect(data: BinaryIO, dims: int) -> Rect:
    values = struct.unpack(f"<{2 * dims}d", data.read(16 * dims))
    return Rect(values[:dims], values[dims:])


def save_tree(
    tree_or_clipped: Union[RTreeBase, ClippedRTree], path: Union[str, Path]
) -> None:
    """Serialise a tree (optionally with its clip store) to ``path``."""
    if isinstance(tree_or_clipped, ClippedRTree):
        tree = tree_or_clipped.tree
        store: Optional[ClipStore] = tree_or_clipped.store
    else:
        tree = tree_or_clipped
        store = None
    variant_code = _VARIANT_CODES.get(tree.variant_name, 1)

    path = Path(path)
    with path.open("wb") as out:
        out.write(_MAGIC)
        out.write(
            struct.pack(
                "<HHIIIqI",
                _VERSION,
                variant_code,
                tree.dims,
                tree.max_entries,
                tree.min_entries,
                tree.root_id,
                len(tree),
            )
        )
        nodes = list(tree.nodes())
        out.write(struct.pack("<I", len(nodes)))
        for node in nodes:
            out.write(struct.pack("<qII", node.node_id, node.level, len(node.entries)))
            for entry in node.entries:
                _write_rect(out, entry.rect)
                if entry.is_node_pointer:
                    out.write(struct.pack("<q", entry.child))
                else:
                    out.write(struct.pack("<q", entry.child.oid))

        clip_entries = list(store.items()) if store is not None else []
        out.write(struct.pack("<I", len(clip_entries)))
        for node_id, clips in clip_entries:
            out.write(struct.pack("<qI", node_id, len(clips)))
            for clip in clips:
                out.write(struct.pack("<Qd", clip.mask, clip.score))
                for value in clip.coord:
                    out.write(struct.pack("<d", value))


def load_tree(path: Union[str, Path]) -> Tuple[RTreeBase, Optional[ClippedRTree]]:
    """Load a tree saved by :func:`save_tree`.

    Returns ``(tree, clipped)`` where ``clipped`` is ``None`` when the file
    carries no clip table, and otherwise a :class:`ClippedRTree` sharing
    the returned tree.
    """
    path = Path(path)
    with path.open("rb") as data:
        magic = data.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"{path} is not a CBB R-tree file")
        version, variant_code, dims, max_entries, min_entries, root_id, size = struct.unpack(
            "<HHIIIqI", data.read(struct.calcsize("<HHIIIqI"))
        )
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported file version {version}")

        cls = _VARIANT_CLASSES.get(variant_code, QuadraticRTree)
        tree = cls(dims, max_entries=max_entries, min_entries=min_entries)
        # Drop the constructor's fresh root; the file defines all nodes.
        tree._nodes.clear()

        (node_count,) = struct.unpack("<I", data.read(4))
        max_node_id = 0
        for _ in range(node_count):
            node_id, level, entry_count = struct.unpack("<qII", data.read(16))
            node = Node(node_id, level)
            for _ in range(entry_count):
                rect = _read_rect(data, dims)
                (child,) = struct.unpack("<q", data.read(8))
                if level == 0:
                    node.entries.append(Entry(rect, SpatialObject(child, rect)))
                else:
                    node.entries.append(Entry(rect, child))
            tree._nodes[node_id] = node
            max_node_id = max(max_node_id, node_id)
        tree._next_id = max_node_id + 1
        tree._adopt_structure(root_id, size)

        (clip_node_count,) = struct.unpack("<I", data.read(4))
        if clip_node_count == 0:
            return tree, None
        clipped = ClippedRTree(tree)
        # v1 stored the mask as 32-bit; v2 widened it to 64-bit.
        clip_format = "<Qd" if version >= 2 else "<Id"
        clip_header_size = struct.calcsize(clip_format)
        for _ in range(clip_node_count):
            node_id, clip_count = struct.unpack("<qI", data.read(12))
            clips = []
            for _ in range(clip_count):
                mask, score = struct.unpack(clip_format, data.read(clip_header_size))
                coord = struct.unpack(f"<{dims}d", data.read(8 * dims))
                clips.append(ClipPoint(coord, mask, score))
            clipped.store.put(node_id, clips)
        return tree, clipped
