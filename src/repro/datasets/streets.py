"""``rea02`` stand-in: street segments of a Californian road network.

Street segments are short, thin, mostly axis-aligned rectangles arranged
in a jittered grid (city blocks) with occasional long diagonal arterials —
the structure that makes the real dataset hard to clip ("street segments
wrap around some of the dead space, particularly in cities with grid
patterns", §V-C).
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.datasets.base import DatasetGenerator
from repro.geometry.rect import Rect


class StreetSegmentGenerator(DatasetGenerator):
    """Grid-patterned street-segment rectangles (the ``rea02`` stand-in)."""

    dims = 2

    def __init__(
        self,
        extent: float = 10000.0,
        block_size: float = 100.0,
        segment_width: float = 1.0,
        diagonal_fraction: float = 0.1,
        jitter: float = 0.15,
    ):
        self.extent = extent
        self.block_size = block_size
        self.segment_width = segment_width
        self.diagonal_fraction = diagonal_fraction
        self.jitter = jitter
        self.description = "grid-patterned street segments (rea02 stand-in)"

    def _generate_rects(self, size: int, rng: random.Random) -> List[Rect]:
        rects: List[Rect] = []
        cells = max(1, int(self.extent / self.block_size))
        for _ in range(size):
            if rng.random() < self.diagonal_fraction:
                rects.append(self._diagonal_segment(rng))
            else:
                rects.append(self._grid_segment(rng, cells))
        return rects

    def _grid_segment(self, rng: random.Random, cells: int) -> Rect:
        # Pick a block corner and run a segment along one axis of the block.
        bx = rng.randrange(cells) * self.block_size
        by = rng.randrange(cells) * self.block_size
        jitter = self.block_size * self.jitter
        x0 = bx + rng.uniform(-jitter, jitter)
        y0 = by + rng.uniform(-jitter, jitter)
        length = self.block_size * rng.uniform(0.3, 1.0)
        width = self.segment_width * rng.uniform(0.5, 2.0)
        if rng.random() < 0.5:
            low = (x0, y0)
            high = (x0 + length, y0 + width)
        else:
            low = (x0, y0)
            high = (x0 + width, y0 + length)
        return Rect(low, high)

    def _diagonal_segment(self, rng: random.Random) -> Rect:
        # Arterial roads cutting diagonally across blocks: their MBB is a
        # nearly-square box mostly made of dead space.
        x0 = rng.uniform(0.0, self.extent)
        y0 = rng.uniform(0.0, self.extent)
        length = self.block_size * rng.uniform(0.5, 2.0)
        angle = rng.uniform(0.0, math.pi)
        dx = abs(math.cos(angle)) * length
        dy = abs(math.sin(angle)) * length
        return Rect((x0, y0), (x0 + max(dx, self.segment_width), y0 + max(dy, self.segment_width)))
