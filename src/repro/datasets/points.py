"""``rea03`` stand-in: a 3d point cloud of correlated numeric attributes.

The real ``rea03`` dataset holds ~12 M points built from three floating
point attributes of a biological data file.  The essential properties for
the paper's experiments are (a) the objects are pure points (zero-extent
boxes, so leaf MBBs are all dead space) and (b) the attributes are
clustered/correlated rather than uniform.
"""

from __future__ import annotations

import random
from typing import List

from repro.datasets.base import DatasetGenerator
from repro.geometry.rect import Rect


class PointCloudGenerator(DatasetGenerator):
    """Clustered, correlated 3d points (the ``rea03`` stand-in)."""

    def __init__(self, dims: int = 3, extent: float = 1000.0, clusters: int = 24):
        if dims < 1:
            raise ValueError("dims must be positive")
        self.dims = dims
        self.extent = extent
        self.clusters = clusters
        self.description = f"clustered {dims}d point cloud (rea03 stand-in)"

    def _generate_rects(self, size: int, rng: random.Random) -> List[Rect]:
        cluster_centers = [
            [rng.uniform(0.0, self.extent) for _ in range(self.dims)]
            for _ in range(self.clusters)
        ]
        cluster_spreads = [
            [self.extent * rng.uniform(0.005, 0.08) for _ in range(self.dims)]
            for _ in range(self.clusters)
        ]
        rects: List[Rect] = []
        for _ in range(size):
            if rng.random() < 0.85:
                idx = rng.randrange(self.clusters)
                point = [
                    rng.gauss(c, s)
                    for c, s in zip(cluster_centers[idx], cluster_spreads[idx])
                ]
            else:
                point = [rng.uniform(0.0, self.extent) for _ in range(self.dims)]
            # Correlate the last attribute with the first, as derived
            # physical attributes tend to be.
            if self.dims >= 2:
                point[-1] = 0.6 * point[0] + 0.4 * point[-1]
            rects.append(Rect.from_point(point))
        return rects
