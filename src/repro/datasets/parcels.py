"""``par02`` / ``par03`` stand-ins: boxes with very high size/shape variance.

The benchmark describes these as synthetic boxes "generated with a very
large variance in size and shape, which makes them challenging to
approximate".  We draw box volumes from a log-normal distribution spanning
several orders of magnitude and aspect ratios independently per dimension,
placing centres with a mixture of uniform background and dense clusters.
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.datasets.base import DatasetGenerator
from repro.geometry.rect import Rect


class ParcelGenerator(DatasetGenerator):
    """High-variance box generator (the ``par0d`` datasets)."""

    def __init__(
        self,
        dims: int = 2,
        extent: float = 1000.0,
        volume_sigma: float = 2.0,
        cluster_fraction: float = 0.5,
        clusters: int = 16,
    ):
        if dims < 2:
            raise ValueError("ParcelGenerator needs at least 2 dimensions")
        self.dims = dims
        self.extent = extent
        self.volume_sigma = volume_sigma
        self.cluster_fraction = cluster_fraction
        self.clusters = clusters
        self.description = f"high-variance boxes in {dims}d (par0{dims} stand-in)"

    def _generate_rects(self, size: int, rng: random.Random) -> List[Rect]:
        centers = self._centers(size, rng)
        base_side = self.extent / (size ** (1.0 / self.dims))
        rects = []
        for center in centers:
            # Log-normal volume, independent log-normal aspect per dimension.
            scale = math.exp(rng.gauss(0.0, self.volume_sigma))
            sides = []
            for _ in range(self.dims):
                aspect = math.exp(rng.gauss(0.0, 0.8))
                sides.append(max(1e-6, base_side * scale ** (1.0 / self.dims) * aspect))
            low = [c - s / 2.0 for c, s in zip(center, sides)]
            high = [c + s / 2.0 for c, s in zip(center, sides)]
            rects.append(Rect(low, high))
        return rects

    def _centers(self, size: int, rng: random.Random) -> List[List[float]]:
        cluster_centers = [
            [rng.uniform(0.1 * self.extent, 0.9 * self.extent) for _ in range(self.dims)]
            for _ in range(self.clusters)
        ]
        cluster_spread = self.extent / 20.0
        centers = []
        for _ in range(size):
            if rng.random() < self.cluster_fraction:
                base = rng.choice(cluster_centers)
                centers.append([rng.gauss(b, cluster_spread) for b in base])
            else:
                centers.append([rng.uniform(0.0, self.extent) for _ in range(self.dims)])
        return centers
