"""Synthetic stand-ins for the paper's seven benchmark datasets.

The original evaluation uses two real datasets from the Beckmann/Seeger
benchmark (``rea02``, ``rea03``), two synthetic ones (``par02``,
``par03``), and three Human-Brain-Project neuroscience datasets
(``axo03``, ``den03``, ``neu03``).  None of those files can be shipped
here, so each is replaced by a deterministic generator that reproduces the
geometric character the paper's analysis relies on (see DESIGN.md §3/§4).

Use :func:`generate` with a dataset name, or the generator classes
directly for custom parameters.
"""

from repro.datasets.base import DatasetGenerator
from repro.datasets.neurites import NeuriteGenerator
from repro.datasets.parcels import ParcelGenerator
from repro.datasets.points import PointCloudGenerator
from repro.datasets.registry import DATASET_NAMES, dataset_info, generate
from repro.datasets.streets import StreetSegmentGenerator
from repro.datasets.uniform import GaussianClusterGenerator, UniformBoxGenerator

__all__ = [
    "DatasetGenerator",
    "ParcelGenerator",
    "StreetSegmentGenerator",
    "PointCloudGenerator",
    "NeuriteGenerator",
    "UniformBoxGenerator",
    "GaussianClusterGenerator",
    "generate",
    "dataset_info",
    "DATASET_NAMES",
]
