"""Named access to the seven paper datasets (plus reference distributions)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.base import DatasetGenerator
from repro.datasets.neurites import NeuriteGenerator
from repro.datasets.parcels import ParcelGenerator
from repro.datasets.points import PointCloudGenerator
from repro.datasets.streets import StreetSegmentGenerator
from repro.datasets.uniform import GaussianClusterGenerator, UniformBoxGenerator
from repro.geometry.objects import SpatialObject

_FACTORIES: Dict[str, Callable[[], DatasetGenerator]] = {
    # paper datasets
    "rea02": StreetSegmentGenerator,
    "rea03": lambda: PointCloudGenerator(dims=3),
    "par02": lambda: ParcelGenerator(dims=2),
    "par03": lambda: ParcelGenerator(dims=3),
    "axo03": lambda: NeuriteGenerator(kind="axon"),
    "den03": lambda: NeuriteGenerator(kind="dendrite"),
    "neu03": lambda: NeuriteGenerator(kind="neurite"),
    # auxiliary distributions
    "uniform02": lambda: UniformBoxGenerator(dims=2),
    "uniform03": lambda: UniformBoxGenerator(dims=3),
    # higher-dimensional stand-ins for the d ∈ {4, 6, 8} scenario sweep:
    # clipping's win shrinks as corners multiply (2^(d+1) per node)
    "uniform04": lambda: UniformBoxGenerator(dims=4),
    "uniform06": lambda: UniformBoxGenerator(dims=6),
    "uniform08": lambda: UniformBoxGenerator(dims=8),
    "cluster02": lambda: GaussianClusterGenerator(dims=2),
}

#: The seven dataset names used throughout the paper's evaluation.
DATASET_NAMES = ("par02", "par03", "rea02", "rea03", "axo03", "den03", "neu03")


def dataset_info(name: str) -> DatasetGenerator:
    """Instantiate the generator registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory()


def generate(name: str, size: int, seed: int = 0) -> List[SpatialObject]:
    """Generate ``size`` objects of the named dataset with ``seed``."""
    return dataset_info(name).generate(size, seed)
