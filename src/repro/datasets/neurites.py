"""``axo03`` / ``den03`` / ``neu03`` stand-ins: neuron morphology segments.

The Human-Brain-Project datasets contain volumetric boxes bounding short
segments of axons, dendrites and neurites in a 3d brain model.  Their
defining property — the one the paper's motivation (Figure 1) and results
rely on — is that the segments are *long, skinny, arbitrarily oriented*
boxes produced by cutting branching tubular structures into pieces, so the
MBB of any group of them is ≥ 90 % dead space.

The generator grows random 3d branching trajectories (a biased random
walk with occasional branching), cuts them into per-step segments, and
bounds each segment with its axis-aligned box.  Axons are long and thin,
dendrites shorter and thicker, neurites a mixture of both.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.datasets.base import DatasetGenerator
from repro.geometry.rect import Rect

_KIND_PARAMS = {
    # (step length, tube radius, branch probability, tortuosity)
    "axon": (30.0, 0.4, 0.02, 0.25),
    "dendrite": (12.0, 1.2, 0.08, 0.45),
    "neurite": (20.0, 0.8, 0.05, 0.35),
}


class NeuriteGenerator(DatasetGenerator):
    """Branching tubular segment boxes (the neuroscience stand-ins)."""

    dims = 3

    def __init__(self, kind: str = "axon", extent: float = 2000.0):
        if kind not in _KIND_PARAMS:
            raise ValueError(f"unknown neurite kind {kind!r}; expected one of {sorted(_KIND_PARAMS)}")
        self.kind = kind
        self.extent = extent
        self.step, self.radius, self.branch_prob, self.tortuosity = _KIND_PARAMS[kind]
        self.description = f"branching {kind} segment boxes (3d, HBP stand-in)"

    def _generate_rects(self, size: int, rng: random.Random) -> List[Rect]:
        rects: List[Rect] = []
        while len(rects) < size:
            rects.extend(self._grow_fiber(rng, size - len(rects)))
        return rects[:size]

    def _grow_fiber(self, rng: random.Random, budget: int) -> List[Rect]:
        """Grow one branching fiber; returns up to ``budget`` segment boxes."""
        start = [rng.uniform(0.1 * self.extent, 0.9 * self.extent) for _ in range(3)]
        direction = self._random_direction(rng)
        segments: List[Rect] = []
        frontier: List[Tuple[List[float], List[float]]] = [(start, direction)]
        max_segments = min(budget, rng.randint(20, 120))
        while frontier and len(segments) < max_segments:
            position, direction = frontier.pop()
            steps = rng.randint(5, 40)
            for _ in range(steps):
                if len(segments) >= max_segments:
                    break
                direction = self._perturb(direction, rng)
                end = [p + d * self.step for p, d in zip(position, direction)]
                segments.append(self._segment_box(position, end, rng))
                position = end
                if rng.random() < self.branch_prob and len(frontier) < 8:
                    frontier.append((list(position), self._perturb(direction, rng, strength=1.5)))
        return segments

    def _segment_box(self, a: List[float], b: List[float], rng: random.Random) -> Rect:
        radius = self.radius * rng.uniform(0.5, 1.5)
        low = [min(x, y) - radius for x, y in zip(a, b)]
        high = [max(x, y) + radius for x, y in zip(a, b)]
        return Rect(low, high)

    @staticmethod
    def _random_direction(rng: random.Random) -> List[float]:
        while True:
            vec = [rng.gauss(0.0, 1.0) for _ in range(3)]
            norm = math.sqrt(sum(v * v for v in vec))
            if norm > 1e-9:
                return [v / norm for v in vec]

    def _perturb(self, direction: List[float], rng: random.Random, strength: float = 1.0) -> List[float]:
        sigma = self.tortuosity * strength
        vec = [d + rng.gauss(0.0, sigma) for d in direction]
        norm = math.sqrt(sum(v * v for v in vec))
        if norm < 1e-9:
            return self._random_direction(rng)
        return [v / norm for v in vec]
