"""Base class for dataset generators."""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect


class DatasetGenerator:
    """Deterministic generator of :class:`SpatialObject` collections.

    Subclasses implement :meth:`_generate_rects`; the base class wraps the
    rectangles into objects with sequential ids.  Every generator is fully
    determined by its constructor parameters and the ``seed`` passed to
    :meth:`generate`.
    """

    #: dimensionality of the generated data
    dims: int = 2
    #: short human-readable description used by the bench reports
    description: str = ""

    def generate(self, size: int, seed: int = 0) -> List[SpatialObject]:
        """Generate ``size`` objects using ``seed``."""
        if size <= 0:
            raise ValueError("size must be positive")
        rng = random.Random(seed)
        rects = self._generate_rects(size, rng)
        if len(rects) != size:
            raise RuntimeError(
                f"{type(self).__name__} produced {len(rects)} rects, expected {size}"
            )
        return [SpatialObject(i, rect) for i, rect in enumerate(rects)]

    def _generate_rects(self, size: int, rng: random.Random) -> Sequence[Rect]:
        raise NotImplementedError
