"""Simple reference distributions used by unit tests and ablations."""

from __future__ import annotations

import random
from typing import List

from repro.datasets.base import DatasetGenerator
from repro.geometry.rect import Rect


class UniformBoxGenerator(DatasetGenerator):
    """Uniformly placed boxes of a fixed relative size."""

    def __init__(self, dims: int = 2, extent: float = 1000.0, relative_side: float = 0.005):
        self.dims = dims
        self.extent = extent
        self.relative_side = relative_side
        self.description = f"uniform boxes in {dims}d"

    def _generate_rects(self, size: int, rng: random.Random) -> List[Rect]:
        side = self.extent * self.relative_side
        rects = []
        for _ in range(size):
            low = [rng.uniform(0.0, self.extent - side) for _ in range(self.dims)]
            high = [lo + side * rng.uniform(0.2, 1.0) for lo in low]
            rects.append(Rect(low, high))
        return rects


class GaussianClusterGenerator(DatasetGenerator):
    """Boxes whose centres follow a Gaussian mixture."""

    def __init__(self, dims: int = 2, extent: float = 1000.0, clusters: int = 8, relative_side: float = 0.004):
        self.dims = dims
        self.extent = extent
        self.clusters = clusters
        self.relative_side = relative_side
        self.description = f"gaussian-clustered boxes in {dims}d"

    def _generate_rects(self, size: int, rng: random.Random) -> List[Rect]:
        centers = [
            [rng.uniform(0.0, self.extent) for _ in range(self.dims)]
            for _ in range(self.clusters)
        ]
        spread = self.extent / 25.0
        side = self.extent * self.relative_side
        rects = []
        for _ in range(size):
            base = rng.choice(centers)
            center = [rng.gauss(b, spread) for b in base]
            low = [c - side * rng.uniform(0.1, 0.5) for c in center]
            high = [c + side * rng.uniform(0.1, 0.5) for c in center]
            rects.append(Rect(low, high))
        return rects
