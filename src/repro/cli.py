"""Command-line interface: ``python -m repro <command>``.

Gives quick access to the reproduction without writing any code:

* ``list-experiments`` — show every registered experiment and its id;
* ``run <experiment>`` — run one experiment and print its table(s);
* ``bench run <experiment>|all`` — run experiments through the archived
  harness (``--set key=value`` overrides, ``--smoke``, timestamped
  archive folders with config + meta + result + rendered tables);
* ``bench compare <experiment>`` — re-run under a baseline archive's
  config and diff the metrics; exits non-zero on a regression;
* ``bench archive [<experiment>]`` — list archived runs / show one;
* ``datasets`` — list the available dataset generators;
* ``build-info <dataset> <variant>`` — build one index and print tree
  statistics, dead space, and clipping summaries;
* ``snapshot save <dir>`` / ``snapshot load <dir>`` — persist a frozen
  columnar snapshot as mmap-able ``.npy`` files and open it back;
* ``serve`` — build an index and drive the fault-tolerant serving layer
  through the seeded chaos scenario, printing the robustness report.

Examples::

    python -m repro list-experiments
    python -m repro run fig11 --queries 20 --size 1000
    python -m repro bench run dims --set size=1600 --set build_engine=vectorized
    python -m repro bench run all --smoke --archive-root /tmp/archive
    python -m repro bench compare hotspot --against latest
    python -m repro build-info axo03 rstar --size 2000
    python -m repro snapshot save /tmp/snap --dataset axo03 --variant rstar --clip stairline
    python -m repro snapshot load /tmp/snap --queries 50 --workers 2
    python -m repro serve --dataset par02 --requests 200 --chaos-seed 11
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench import BenchConfig, ExperimentContext, ParameterError, format_table
from repro.bench.archive import (
    ArchiveError,
    default_archive_root,
    list_runs,
    resolve_run,
)
from repro.bench.registry import (
    REGISTRY,
    UnknownExperimentError,
    experiment_ids,
    get_experiment,
)
from repro.bench.runner import (
    compare_experiment,
    parse_set_overrides,
    render_tables,
    run_experiment,
)
from repro.datasets.registry import DATASET_NAMES, dataset_info
from repro.metrics.dead_space import average_dead_space, clipped_dead_space_summary
from repro.metrics.node_stats import tree_stats
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree


def _render_experiment(experiment_id: str, context: ExperimentContext) -> str:
    experiment = get_experiment(experiment_id)
    return render_tables(experiment, experiment.build(context))


#: id → renderer, registry-backed (kept for backwards compatibility).
EXPERIMENTS: Dict[str, Callable[[ExperimentContext], str]] = {
    experiment_id: (lambda context, _id=experiment_id: _render_experiment(_id, context))
    for experiment_id in experiment_ids()
}


def _make_config(args: argparse.Namespace) -> BenchConfig:
    config = BenchConfig()
    if args.size is not None:
        config.dataset_sizes = {name: args.size for name in config.dataset_sizes}
    if args.queries is not None:
        config.queries_per_profile = args.queries
    if args.max_entries is not None:
        config.max_entries = args.max_entries
    if getattr(args, "engine", None) is not None:
        config.engine = args.engine
    if getattr(args, "build_engine", None) is not None:
        config.build_engine = args.build_engine
    if getattr(args, "join_engine", None) is not None:
        config.join_engine = args.join_engine
    if getattr(args, "update_engine", None) is not None:
        config.update_engine = args.update_engine
    if getattr(args, "workers", None) is not None:
        config.workers = args.workers
    return config


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    rows = [
        {"experiment": experiment.id, "description": experiment.description}
        for experiment in REGISTRY.values()
    ]
    print(format_table(rows, title="Available experiments"))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_NAMES:
        generator = dataset_info(name)
        rows.append({"dataset": name, "dims": generator.dims, "description": generator.description})
    print(format_table(rows, title="Datasets (synthetic stand-ins, see DESIGN.md)"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list-experiments'", file=sys.stderr)
        return 2
    context = ExperimentContext(_make_config(args))
    print(EXPERIMENTS[args.experiment](context))
    return 0


def _bench_root(args: argparse.Namespace):
    return args.archive_root if args.archive_root else default_archive_root()


def _cmd_bench_run(args: argparse.Namespace) -> int:
    targets = (
        list(experiment_ids())
        if "all" in args.experiment
        else list(args.experiment)
    )
    try:
        overrides = parse_set_overrides(args.set or [])
        for target in targets:
            get_experiment(target)  # fail fast before running anything
        for target in targets:
            run = run_experiment(
                target,
                overrides,
                smoke=args.smoke,
                workers=args.workers,
                archive_root=_bench_root(args),
            )
            if not args.quiet:
                print((run.path / "table.txt").read_text().rstrip())
            print(
                f"archived {target} run {run.run_id} -> {run.path} "
                f"(wall {run.metrics['wall_seconds']:.2f}s)"
            )
    except (UnknownExperimentError, ParameterError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    try:
        report, _ = compare_experiment(
            args.experiment,
            against=args.against,
            archive_root=_bench_root(args),
            threshold=args.threshold / 100.0,
            include_timing=args.include_timing,
            current=args.current,
        )
    except (UnknownExperimentError, ArchiveError, ParameterError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report.render())
    return 1 if report.regressions else 0


def _cmd_bench_archive(args: argparse.Namespace) -> int:
    root = _bench_root(args)
    if args.experiment is None:
        rows = []
        for experiment_id in experiment_ids():
            runs = list_runs(root, experiment_id)
            rows.append(
                {
                    "experiment": experiment_id,
                    "runs": len(runs),
                    "latest": runs[-1] if runs else None,
                }
            )
        print(format_table(rows, title=f"Archive at {root}"))
        return 0
    try:
        run = resolve_run(root, args.experiment, args.run)
    except ArchiveError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    meta = run.meta
    print(
        f"{run.experiment} run {run.run_id} — {meta.get('timestamp')} "
        f"git {str(meta.get('git_revision'))[:12]} "
        f"wall {meta.get('wall_seconds')}s smoke={meta.get('smoke')}"
    )
    print((run.path / "table.txt").read_text().rstrip())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    handlers = {
        "run": _cmd_bench_run,
        "compare": _cmd_bench_compare,
        "archive": _cmd_bench_archive,
    }
    return handlers[args.bench_command](args)


def _cmd_build_info(args: argparse.Namespace) -> int:
    if args.dataset not in DATASET_NAMES:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    if args.variant not in VARIANT_NAMES:
        print(f"unknown variant {args.variant!r}; known: {VARIANT_NAMES}", file=sys.stderr)
        return 2
    config = _make_config(args)
    objects = dataset_info(args.dataset).generate(config.size_of(args.dataset), seed=config.seed)
    tree = build_rtree(args.variant, objects, max_entries=config.max_entries)
    stats = tree_stats(tree)
    print(format_table([stats.as_row()], title=f"{args.variant} over {args.dataset}"))
    print(f"average dead space per node: {100 * average_dead_space(tree):.1f}%")
    for method in ("skyline", "stairline"):
        clipped = ClippedRTree.wrap(tree, method=method, engine=config.build_engine)
        summary = clipped_dead_space_summary(clipped)
        print(
            f"{method:10s}: {100 * summary.clipped_share_of_dead_space:5.1f}% of dead space clipped, "
            f"{clipped.store.average_clip_points():.1f} clip points/node"
        )
    return 0


def _cmd_snapshot_save(args: argparse.Namespace) -> int:
    if args.dataset not in DATASET_NAMES:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    if args.variant not in VARIANT_NAMES:
        print(f"unknown variant {args.variant!r}; known: {VARIANT_NAMES}", file=sys.stderr)
        return 2
    import time

    from repro.engine import ColumnarIndex, save_snapshot

    config = _make_config(args)
    objects = dataset_info(args.dataset).generate(config.size_of(args.dataset), seed=config.seed)
    index = build_rtree(args.variant, objects, max_entries=config.max_entries)
    if args.clip != "none":
        index = ClippedRTree.wrap(index, method=args.clip, engine=config.build_engine)
    start = time.perf_counter()
    snapshot = ColumnarIndex.from_tree(index)
    freeze_s = time.perf_counter() - start
    start = time.perf_counter()
    save_snapshot(snapshot, args.directory)
    save_s = time.perf_counter() - start
    from repro.engine.snapshot_io import read_manifest

    manifest = read_manifest(args.directory)
    print(
        f"saved {args.variant}/{args.dataset} ({args.clip} clip) to {args.directory}: "
        f"{len(snapshot.objects)} objects, {len(snapshot.is_leaf)} nodes, d={snapshot.dims}"
    )
    print(f"freeze {freeze_s * 1000:.1f} ms, save {save_s * 1000:.1f} ms, "
          f"{len(manifest['arrays'])} arrays (format v{manifest['format_version']})")
    return 0


def _cmd_snapshot_load(args: argparse.Namespace) -> int:
    import time

    from repro.engine import load_snapshot
    from repro.engine.snapshot_io import SnapshotFormatError, read_manifest

    try:
        manifest = read_manifest(args.directory)
    except SnapshotFormatError as exc:
        print(f"not a snapshot: {exc}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    snapshot = load_snapshot(args.directory, mmap=not args.no_mmap)
    load_s = time.perf_counter() - start
    mode = "copied into RAM" if args.no_mmap else "zero-copy mmap"
    print(
        f"loaded {args.directory} ({mode}) in {load_s * 1000:.2f} ms: "
        f"{len(snapshot.objects)} objects, {len(snapshot.is_leaf)} nodes, "
        f"d={snapshot.dims}, format v{manifest['format_version']}"
    )
    if args.queries:
        from repro.query.range_query import execute_workload
        from repro.query.workload import RangeQueryWorkload

        workload = RangeQueryWorkload.from_objects(
            list(snapshot.objects), target_results=10, seed=7
        )
        queries = workload.query_list(args.queries, seed=7)
        workers = args.workers or 1
        start = time.perf_counter()
        result = execute_workload(snapshot, queries, engine="columnar", workers=workers)
        query_s = time.perf_counter() - start
        print(
            f"{result.queries} sanity queries (workers={workers}) in "
            f"{query_s * 1000:.1f} ms: {result.avg_results:.1f} results/query, "
            f"{result.avg_leaf_accesses:.1f} leaf accesses/query"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.dataset not in DATASET_NAMES:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    if args.variant not in VARIANT_NAMES:
        print(f"unknown variant {args.variant!r}; known: {VARIANT_NAMES}", file=sys.stderr)
        return 2
    from repro.engine import SnapshotManager
    from repro.serve.bench import report_row, run_serve_scenario

    config = _make_config(args)
    objects = dataset_info(args.dataset).generate(config.size_of(args.dataset), seed=config.seed)
    index = build_rtree(args.variant, objects, max_entries=config.max_entries)
    if args.clip != "none":
        index = ClippedRTree.wrap(index, method=args.clip, engine=config.build_engine)
    manager = SnapshotManager(index, update_engine="delta")
    report, responses = run_serve_scenario(
        manager,
        n_requests=args.requests,
        seed=args.chaos_seed,
        concurrency=args.concurrency,
        workers=args.workers or 1,
        admission_rate=args.admission_rate,
    )
    row = report_row(report, dataset=args.dataset, variant=args.variant)
    print(
        format_table(
            [row],
            title=f"chaos serving over {args.variant}/{args.dataset} "
            f"({len(objects)} objects, seed {args.chaos_seed})",
        )
    )
    print(
        f"robustness: {report['stale_served']} stale-stamped answers, "
        f"{report['degraded_batches']} degraded batches, "
        f"{report['deadline_exceeded']} deadline misses, "
        f"{report['pool_rebuilds']} pool rebuilds, "
        f"{report['serial_fallbacks']} serial fallbacks, "
        f"breaker {report['breaker_state']}"
    )
    explicit = sum(1 for r in responses if r.status in ("ok", "shed"))
    print(
        f"accounting: {len(responses)} responses, {explicit} explicit "
        f"(ok/shed), {report['errors']} errors, wall {report['elapsed_seconds']:.2f}s"
    )
    return 0 if report["errors"] == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Clipped-bounding-box reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-experiments", help="list available experiments")
    subparsers.add_parser("datasets", help="list dataset generators")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its tables")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig11")
    run_parser.add_argument(
        "--engine",
        choices=("scalar", "columnar"),
        default=None,
        help="query engine for range-query experiments (columnar = vectorized batch)",
    )
    run_parser.add_argument(
        "--join-engine",
        choices=("scalar", "columnar"),
        default=None,
        help="join engine for the joins experiment (columnar = vectorized batch joins)",
    )
    run_parser.add_argument(
        "--update-engine",
        choices=("delta", "refreeze"),
        default=None,
        help="update engine for the updates experiment (delta = overlay + compaction)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the columnar engines (>1 shards batches "
        "across a pool over a shared mmap snapshot)",
    )

    bench_parser = subparsers.add_parser(
        "bench", help="archived-experiment harness: run / compare / archive"
    )
    bench_sub = bench_parser.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run experiment(s) and write timestamped archive folders"
    )
    bench_run.add_argument(
        "experiment",
        nargs="+",
        help="experiment id(s) (see list-experiments) or 'all'",
    )
    bench_run.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override a BenchConfig parameter (repeatable); unknown keys fail",
    )
    bench_run.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration + per-experiment smoke kwargs (seconds per experiment)",
    )
    bench_run.add_argument(
        "--workers", type=int, default=None, help="worker processes for the columnar engines"
    )
    bench_run.add_argument(
        "--quiet", action="store_true", help="print only the archive location, not the tables"
    )

    bench_compare = bench_sub.add_parser(
        "compare",
        help="re-run under a baseline archive's config and diff metrics "
        "(exit 1 on regression)",
    )
    bench_compare.add_argument("experiment", help="experiment id")
    bench_compare.add_argument(
        "--against",
        default="latest",
        metavar="RUN-ID",
        help="baseline run id (default: latest archived run)",
    )
    bench_compare.add_argument(
        "--current",
        default=None,
        metavar="RUN-DIR",
        help="compare this existing run folder instead of re-running",
    )
    bench_compare.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        help="regression threshold in percent (default 20)",
    )
    bench_compare.add_argument(
        "--include-timing",
        action="store_true",
        help="also gate on timing metrics (noisy on shared runners)",
    )

    bench_archive = bench_sub.add_parser(
        "archive", help="list archived runs, or show one run's tables"
    )
    bench_archive.add_argument(
        "experiment", nargs="?", default=None, help="experiment id (omit for an overview)"
    )
    bench_archive.add_argument(
        "--run", default="latest", metavar="RUN-ID", help="run id (default: latest)"
    )

    for sub in (bench_run, bench_compare, bench_archive):
        sub.add_argument(
            "--archive-root",
            default=None,
            help="archive directory (default: $REPRO_ARCHIVE_ROOT or ./archive)",
        )

    info_parser = subparsers.add_parser("build-info", help="build one index and summarise it")
    info_parser.add_argument("dataset", help="dataset name, e.g. axo03")
    info_parser.add_argument("variant", help="R-tree variant, e.g. rstar")

    snap_parser = subparsers.add_parser(
        "snapshot", help="persist / open frozen columnar snapshots"
    )
    snap_sub = snap_parser.add_subparsers(dest="snapshot_command", required=True)
    save_parser = snap_sub.add_parser(
        "save", help="build one index, freeze it, and save it as .npy files"
    )
    save_parser.add_argument("directory", help="target directory for the snapshot files")
    save_parser.add_argument("--dataset", default="axo03", help="dataset name (default axo03)")
    save_parser.add_argument("--variant", default="rstar", help="R-tree variant (default rstar)")
    save_parser.add_argument(
        "--clip",
        choices=("none", "skyline", "stairline"),
        default="none",
        help="clip the tree before freezing (default: unclipped)",
    )
    load_parser = snap_sub.add_parser(
        "load", help="open a saved snapshot and print a summary"
    )
    load_parser.add_argument("directory", help="directory holding the snapshot files")
    load_parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="copy arrays into RAM instead of the default zero-copy mmap",
    )
    load_parser.add_argument(
        "--queries",
        type=int,
        default=0,
        help="run N calibrated sanity range queries against the loaded snapshot",
    )
    load_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sanity queries (>1 uses the shared snapshot)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="drive the coalescing server through the seeded chaos scenario",
    )
    serve_parser.add_argument("--dataset", default="par02", help="dataset name (default par02)")
    serve_parser.add_argument("--variant", default="rstar", help="R-tree variant (default rstar)")
    serve_parser.add_argument(
        "--clip",
        choices=("none", "skyline", "stairline"),
        default="stairline",
        help="clip the tree before serving (default stairline)",
    )
    serve_parser.add_argument(
        "--requests", type=int, default=200, help="requests in the closed-loop stream"
    )
    serve_parser.add_argument(
        "--concurrency", type=int, default=32, help="closed-loop in-flight cap"
    )
    serve_parser.add_argument(
        "--admission-rate",
        type=float,
        default=80.0,
        help="token-bucket refill rate in requests per logical second",
    )
    serve_parser.add_argument(
        "--chaos-seed", type=int, default=11, help="seed for the deterministic fault plan"
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for read batches (>1 engages the self-healing pool)",
    )

    for sub in (run_parser, info_parser, save_parser, serve_parser):
        sub.add_argument("--size", type=int, default=None, help="objects per dataset")
        sub.add_argument("--queries", type=int, default=None, help="queries per profile")
        sub.add_argument("--max-entries", type=int, default=None, help="node capacity")
        sub.add_argument(
            "--build-engine",
            choices=("scalar", "vectorized"),
            default=None,
            help="clip-point construction engine (vectorized = level-synchronous bulk_clip)",
        )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list-experiments": _cmd_list_experiments,
        "datasets": _cmd_datasets,
        "run": _cmd_run,
        "bench": _cmd_bench,
        "build-info": _cmd_build_info,
        "snapshot": lambda a: (
            _cmd_snapshot_save(a) if a.snapshot_command == "save" else _cmd_snapshot_load(a)
        ),
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
