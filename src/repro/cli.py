"""Command-line interface: ``python -m repro <command>``.

Gives quick access to the reproduction without writing any code:

* ``list-experiments`` — show every table/figure experiment and its id;
* ``run <experiment>`` — run one experiment and print its table(s);
* ``datasets`` — list the available dataset generators;
* ``build-info <dataset> <variant>`` — build one index and print tree
  statistics, dead space, and clipping summaries;
* ``snapshot save <dir>`` / ``snapshot load <dir>`` — persist a frozen
  columnar snapshot as mmap-able ``.npy`` files and open it back.

Examples::

    python -m repro list-experiments
    python -m repro run fig11 --queries 20 --size 1000
    python -m repro run fig15 --engine columnar --workers 4
    python -m repro build-info axo03 rstar --size 2000
    python -m repro snapshot save /tmp/snap --dataset axo03 --variant rstar --clip stairline
    python -m repro snapshot load /tmp/snap --queries 50 --workers 2
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench import BenchConfig, ExperimentContext, format_table
from repro.bench.experiments import (
    ablations,
    fig01_motivation,
    fig08_bounding_example,
    fig09_bounding_comparison,
    fig10_clipped_dead_space,
    fig11_range_queries,
    fig12_update_cost,
    fig13_storage,
    fig14_build_time,
    fig15_scalability,
    joins,
    updates,
)
from repro.datasets.registry import DATASET_NAMES, dataset_info
from repro.metrics.dead_space import average_dead_space, clipped_dead_space_summary
from repro.metrics.node_stats import tree_stats
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree


def _run_fig01(context: ExperimentContext) -> str:
    panels = fig01_motivation.run(context)
    parts = [
        format_table(panels["fig1a_overlap"], title="Figure 1a — overlap (%)"),
        format_table(panels["fig1b_dead_space"], title="Figure 1b — dead space (%)"),
        format_table(panels["fig1c_io_optimality"], title="Figure 1c — I/O optimality (%)"),
    ]
    return "\n\n".join(parts)


def _run_fig11(context: ExperimentContext) -> str:
    rows = fig11_range_queries.run(context)
    table = fig11_range_queries.table1(rows)
    return "\n\n".join(
        [
            format_table(rows, title="Figure 11 — relative leaf accesses (%)"),
            format_table(table, title="Table I — avg. % I/O reduction (skyline/stairline)"),
        ]
    )


def _run_ablations(context: ExperimentContext) -> str:
    return "\n\n".join(
        [
            format_table(ablations.run_tau_sweep(context), title="τ sweep"),
            format_table(ablations.run_scoring_comparison(context), title="scoring approximation"),
            format_table(ablations.run_k_sweep_io(context), title="k sweep (query I/O)"),
        ]
    )


EXPERIMENTS: Dict[str, Callable[[ExperimentContext], str]] = {
    "fig01": _run_fig01,
    "fig08": lambda context: format_table(fig08_bounding_example.run(), title="Figure 8"),
    "fig09": lambda context: format_table(fig09_bounding_comparison.run(context), title="Figure 9"),
    "fig10": lambda context: format_table(fig10_clipped_dead_space.run(context), title="Figure 10"),
    "fig11": _run_fig11,
    "fig12": lambda context: format_table(fig12_update_cost.run(context), title="Figure 12"),
    "fig13": lambda context: format_table(fig13_storage.run(context), title="Figure 13"),
    "fig14": lambda context: format_table(fig14_build_time.run(context), title="Figure 14"),
    "joins": lambda context: format_table(joins.run(context), title="Spatial joins (§V)"),
    "fig15": lambda context: format_table(fig15_scalability.run(context), title="Figure 15"),
    "updates": lambda context: format_table(
        updates.run(context), title="Incremental updates (delta vs refreeze)"
    ),
    "ablations": _run_ablations,
}

_EXPERIMENT_DESCRIPTIONS = {
    "fig01": "overlap, dead space, and I/O optimality of unclipped R-trees",
    "fig08": "bounding methods on the paper's running example",
    "fig09": "dead space vs representation cost of 8 bounding methods",
    "fig10": "dead space clipped away as k varies (CSKY and CSTA)",
    "fig11": "range-query I/O of clipped vs unclipped trees + Table I",
    "fig12": "expected re-clips per insertion",
    "fig13": "storage overhead of clip points",
    "fig14": "build-time overhead of clipping",
    "joins": "INLJ and STT spatial joins with and without clipping",
    "fig15": "cold-disk scalability experiment",
    "updates": "amortised write cost of delta overlay vs refreeze-per-write",
    "ablations": "τ sweep, scoring approximation error, k sweep",
}


def _make_config(args: argparse.Namespace) -> BenchConfig:
    config = BenchConfig()
    if args.size is not None:
        config.dataset_sizes = {name: args.size for name in config.dataset_sizes}
    if args.queries is not None:
        config.queries_per_profile = args.queries
    if args.max_entries is not None:
        config.max_entries = args.max_entries
    if getattr(args, "engine", None) is not None:
        config.engine = args.engine
    if getattr(args, "build_engine", None) is not None:
        config.build_engine = args.build_engine
    if getattr(args, "join_engine", None) is not None:
        config.join_engine = args.join_engine
    if getattr(args, "update_engine", None) is not None:
        config.update_engine = args.update_engine
    if getattr(args, "workers", None) is not None:
        config.workers = args.workers
    return config


def _cmd_list_experiments(_: argparse.Namespace) -> int:
    rows = [
        {"experiment": name, "description": _EXPERIMENT_DESCRIPTIONS[name]}
        for name in EXPERIMENTS
    ]
    print(format_table(rows, title="Available experiments"))
    return 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_NAMES:
        generator = dataset_info(name)
        rows.append({"dataset": name, "dims": generator.dims, "description": generator.description})
    print(format_table(rows, title="Datasets (synthetic stand-ins, see DESIGN.md)"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment {args.experiment!r}; try 'list-experiments'", file=sys.stderr)
        return 2
    context = ExperimentContext(_make_config(args))
    print(EXPERIMENTS[args.experiment](context))
    return 0


def _cmd_build_info(args: argparse.Namespace) -> int:
    if args.dataset not in DATASET_NAMES:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    if args.variant not in VARIANT_NAMES:
        print(f"unknown variant {args.variant!r}; known: {VARIANT_NAMES}", file=sys.stderr)
        return 2
    config = _make_config(args)
    objects = dataset_info(args.dataset).generate(config.size_of(args.dataset), seed=config.seed)
    tree = build_rtree(args.variant, objects, max_entries=config.max_entries)
    stats = tree_stats(tree)
    print(format_table([stats.as_row()], title=f"{args.variant} over {args.dataset}"))
    print(f"average dead space per node: {100 * average_dead_space(tree):.1f}%")
    for method in ("skyline", "stairline"):
        clipped = ClippedRTree.wrap(tree, method=method, engine=config.build_engine)
        summary = clipped_dead_space_summary(clipped)
        print(
            f"{method:10s}: {100 * summary.clipped_share_of_dead_space:5.1f}% of dead space clipped, "
            f"{clipped.store.average_clip_points():.1f} clip points/node"
        )
    return 0


def _cmd_snapshot_save(args: argparse.Namespace) -> int:
    if args.dataset not in DATASET_NAMES:
        print(f"unknown dataset {args.dataset!r}", file=sys.stderr)
        return 2
    if args.variant not in VARIANT_NAMES:
        print(f"unknown variant {args.variant!r}; known: {VARIANT_NAMES}", file=sys.stderr)
        return 2
    import time

    from repro.engine import ColumnarIndex, save_snapshot

    config = _make_config(args)
    objects = dataset_info(args.dataset).generate(config.size_of(args.dataset), seed=config.seed)
    index = build_rtree(args.variant, objects, max_entries=config.max_entries)
    if args.clip != "none":
        index = ClippedRTree.wrap(index, method=args.clip, engine=config.build_engine)
    start = time.perf_counter()
    snapshot = ColumnarIndex.from_tree(index)
    freeze_s = time.perf_counter() - start
    start = time.perf_counter()
    save_snapshot(snapshot, args.directory)
    save_s = time.perf_counter() - start
    from repro.engine.snapshot_io import read_manifest

    manifest = read_manifest(args.directory)
    print(
        f"saved {args.variant}/{args.dataset} ({args.clip} clip) to {args.directory}: "
        f"{len(snapshot.objects)} objects, {len(snapshot.is_leaf)} nodes, d={snapshot.dims}"
    )
    print(f"freeze {freeze_s * 1000:.1f} ms, save {save_s * 1000:.1f} ms, "
          f"{len(manifest['arrays'])} arrays (format v{manifest['format_version']})")
    return 0


def _cmd_snapshot_load(args: argparse.Namespace) -> int:
    import time

    from repro.engine import load_snapshot
    from repro.engine.snapshot_io import SnapshotFormatError, read_manifest

    try:
        manifest = read_manifest(args.directory)
    except SnapshotFormatError as exc:
        print(f"not a snapshot: {exc}", file=sys.stderr)
        return 2
    start = time.perf_counter()
    snapshot = load_snapshot(args.directory, mmap=not args.no_mmap)
    load_s = time.perf_counter() - start
    mode = "copied into RAM" if args.no_mmap else "zero-copy mmap"
    print(
        f"loaded {args.directory} ({mode}) in {load_s * 1000:.2f} ms: "
        f"{len(snapshot.objects)} objects, {len(snapshot.is_leaf)} nodes, "
        f"d={snapshot.dims}, format v{manifest['format_version']}"
    )
    if args.queries:
        from repro.query.range_query import execute_workload
        from repro.query.workload import RangeQueryWorkload

        workload = RangeQueryWorkload.from_objects(
            list(snapshot.objects), target_results=10, seed=7
        )
        queries = workload.query_list(args.queries, seed=7)
        workers = args.workers or 1
        start = time.perf_counter()
        result = execute_workload(snapshot, queries, engine="columnar", workers=workers)
        query_s = time.perf_counter() - start
        print(
            f"{result.queries} sanity queries (workers={workers}) in "
            f"{query_s * 1000:.1f} ms: {result.avg_results:.1f} results/query, "
            f"{result.avg_leaf_accesses:.1f} leaf accesses/query"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Clipped-bounding-box reproduction toolkit"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list-experiments", help="list available experiments")
    subparsers.add_parser("datasets", help="list dataset generators")

    run_parser = subparsers.add_parser("run", help="run one experiment and print its tables")
    run_parser.add_argument("experiment", help="experiment id, e.g. fig11")
    run_parser.add_argument(
        "--engine",
        choices=("scalar", "columnar"),
        default=None,
        help="query engine for range-query experiments (columnar = vectorized batch)",
    )
    run_parser.add_argument(
        "--join-engine",
        choices=("scalar", "columnar"),
        default=None,
        help="join engine for the joins experiment (columnar = vectorized batch joins)",
    )
    run_parser.add_argument(
        "--update-engine",
        choices=("delta", "refreeze"),
        default=None,
        help="update engine for the updates experiment (delta = overlay + compaction)",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the columnar engines (>1 shards batches "
        "across a pool over a shared mmap snapshot)",
    )

    info_parser = subparsers.add_parser("build-info", help="build one index and summarise it")
    info_parser.add_argument("dataset", help="dataset name, e.g. axo03")
    info_parser.add_argument("variant", help="R-tree variant, e.g. rstar")

    snap_parser = subparsers.add_parser(
        "snapshot", help="persist / open frozen columnar snapshots"
    )
    snap_sub = snap_parser.add_subparsers(dest="snapshot_command", required=True)
    save_parser = snap_sub.add_parser(
        "save", help="build one index, freeze it, and save it as .npy files"
    )
    save_parser.add_argument("directory", help="target directory for the snapshot files")
    save_parser.add_argument("--dataset", default="axo03", help="dataset name (default axo03)")
    save_parser.add_argument("--variant", default="rstar", help="R-tree variant (default rstar)")
    save_parser.add_argument(
        "--clip",
        choices=("none", "skyline", "stairline"),
        default="none",
        help="clip the tree before freezing (default: unclipped)",
    )
    load_parser = snap_sub.add_parser(
        "load", help="open a saved snapshot and print a summary"
    )
    load_parser.add_argument("directory", help="directory holding the snapshot files")
    load_parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="copy arrays into RAM instead of the default zero-copy mmap",
    )
    load_parser.add_argument(
        "--queries",
        type=int,
        default=0,
        help="run N calibrated sanity range queries against the loaded snapshot",
    )
    load_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sanity queries (>1 uses the shared snapshot)",
    )

    for sub in (run_parser, info_parser, save_parser):
        sub.add_argument("--size", type=int, default=None, help="objects per dataset")
        sub.add_argument("--queries", type=int, default=None, help="queries per profile")
        sub.add_argument("--max-entries", type=int, default=None, help="node capacity")
        sub.add_argument(
            "--build-engine",
            choices=("scalar", "vectorized"),
            default=None,
            help="clip-point construction engine (vectorized = level-synchronous bulk_clip)",
        )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "list-experiments": _cmd_list_experiments,
        "datasets": _cmd_datasets,
        "run": _cmd_run,
        "build-info": _cmd_build_info,
        "snapshot": lambda a: (
            _cmd_snapshot_save(a) if a.snapshot_command == "save" else _cmd_snapshot_load(a)
        ),
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
