"""Minimum bounding circle via Welzl's algorithm (expected linear time)."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

Point = Tuple[float, float]


@dataclass(frozen=True)
class BoundingCircle:
    """A circle given by centre and radius."""

    center: Point
    radius: float

    def area(self) -> float:
        """Disc area."""
        return math.pi * self.radius * self.radius

    def num_points(self) -> int:
        """Representation cost: centre point plus a radius (counted as 2)."""
        return 2

    def contains_point(self, point: Point, eps: float = 1e-9) -> bool:
        """True when ``point`` lies inside or on the circle."""
        return math.dist(self.center, point) <= self.radius * (1.0 + eps) + eps


def _circle_two(a: Point, b: Point) -> BoundingCircle:
    center = ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)
    return BoundingCircle(center, math.dist(a, b) / 2.0)


def _circle_three(a: Point, b: Point, c: Point) -> Optional[BoundingCircle]:
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) < 1e-18:
        return None
    ux = ((ax * ax + ay * ay) * (by - cy) + (bx * bx + by * by) * (cy - ay) + (cx * cx + cy * cy) * (ay - by)) / d
    uy = ((ax * ax + ay * ay) * (cx - bx) + (bx * bx + by * by) * (ax - cx) + (cx * cx + cy * cy) * (bx - ax)) / d
    center = (ux, uy)
    return BoundingCircle(center, math.dist(center, a))


def _trivial(boundary: List[Point]) -> BoundingCircle:
    if not boundary:
        return BoundingCircle((0.0, 0.0), 0.0)
    if len(boundary) == 1:
        return BoundingCircle(boundary[0], 0.0)
    if len(boundary) == 2:
        return _circle_two(boundary[0], boundary[1])
    circle = _circle_three(*boundary)
    if circle is not None:
        return circle
    # Collinear triple: fall back to the widest pair.
    best = None
    for i in range(3):
        for j in range(i + 1, 3):
            candidate = _circle_two(boundary[i], boundary[j])
            if best is None or candidate.radius > best.radius:
                best = candidate
    return best


def minimum_bounding_circle(points: Sequence[Point], seed: int = 0) -> BoundingCircle:
    """Smallest enclosing circle of ``points`` (Welzl, 1991)."""
    pts = [(float(x), float(y)) for x, y in points]
    if not pts:
        raise ValueError("cannot bound an empty point set")
    rng = random.Random(seed)
    shuffled = list(dict.fromkeys(pts))
    rng.shuffle(shuffled)

    circle = BoundingCircle(shuffled[0], 0.0)
    for i, p in enumerate(shuffled):
        if circle.contains_point(p):
            continue
        circle = BoundingCircle(p, 0.0)
        for j in range(i):
            q = shuffled[j]
            if circle.contains_point(q):
                continue
            circle = _circle_two(p, q)
            for k in range(j):
                r = shuffled[k]
                if circle.contains_point(r):
                    continue
                circle = _trivial([p, q, r])
    return circle
