"""Minimum-area enclosing polygons with at most m corners (4-C, 5-C).

The exact algorithm (Aggarwal, Chang, Chee 1985) is involved; the paper
only needs the resulting areas for a comparison figure, so we use the
standard greedy edge-removal heuristic: start from the convex hull and
repeatedly remove the edge whose removal — by extending its two
neighbouring edges until they intersect — adds the least area, until at
most ``m`` corners remain.  Each step replaces two vertices by one and the
result always contains the hull, so containment of the input is
preserved; areas are close to optimal on R-tree-node sized inputs.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.bounding.convex_hull import ConvexPolygon, convex_hull

Point = Tuple[float, float]


def _extend_to_intersection(
    a0: Point, a1: Point, b0: Point, b1: Point
) -> Optional[Tuple[Point, float]]:
    """Intersection of rays a0->a1 and b0->b1 extended *beyond* a1 and b1.

    Returns ``(point, added_area)`` where ``added_area`` is the area of the
    triangle (a1, point, b1), or ``None`` when the rays do not converge
    beyond the edge (removal would not preserve containment).
    """
    dax, day = a1[0] - a0[0], a1[1] - a0[1]
    dbx, dby = b1[0] - b0[0], b1[1] - b0[1]
    denom = dax * dby - day * dbx
    if abs(denom) < 1e-15:
        return None
    # Solve a0 + t*da == b0 + s*db.
    t = ((b0[0] - a0[0]) * dby - (b0[1] - a0[1]) * dbx) / denom
    s = ((b0[0] - a0[0]) * day - (b0[1] - a0[1]) * dax) / denom
    if t <= 1.0 + 1e-12 or s <= 1.0 + 1e-12:
        return None
    crossing = (a0[0] + t * dax, a0[1] + t * day)
    added = (
        abs(
            (crossing[0] - a1[0]) * (b1[1] - a1[1])
            - (b1[0] - a1[0]) * (crossing[1] - a1[1])
        )
        / 2.0
    )
    return crossing, added


def m_corner_polygon(points: Sequence[Point], corners: int) -> ConvexPolygon:
    """Enclosing convex polygon with at most ``corners`` vertices."""
    if corners < 3:
        raise ValueError("a bounding polygon needs at least 3 corners")
    hull = convex_hull(points)
    verts: List[Point] = list(hull.vertices)
    if len(verts) <= corners:
        return ConvexPolygon(verts)

    while len(verts) > corners:
        n = len(verts)
        best: Optional[Tuple[float, int, Point]] = None
        for i in range(n):
            # Candidate edge to remove: (verts[i], verts[i+1]).
            prev_vertex = verts[(i - 1) % n]
            v_i = verts[i]
            v_next = verts[(i + 1) % n]
            after_next = verts[(i + 2) % n]
            extended = _extend_to_intersection(prev_vertex, v_i, after_next, v_next)
            if extended is None:
                continue
            crossing, added = extended
            if best is None or added < best[0]:
                best = (added, i, crossing)
        if best is None:
            # No removable edge (degenerate polygon); return as-is.
            break
        _, index, crossing = best
        verts[index] = crossing
        del verts[(index + 1) % len(verts)]
    return ConvexPolygon(verts)
