"""Convex hulls and convex polygons (2d)."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

Point = Tuple[float, float]


class ConvexPolygon:
    """A convex polygon given by its vertices in counter-clockwise order."""

    def __init__(self, vertices: Sequence[Point]):
        if len(vertices) < 1:
            raise ValueError("a polygon needs at least one vertex")
        self.vertices: List[Point] = [(float(x), float(y)) for x, y in vertices]

    def area(self) -> float:
        """Polygon area via the shoelace formula (0 for degenerate polygons)."""
        verts = self.vertices
        if len(verts) < 3:
            return 0.0
        total = 0.0
        for (x1, y1), (x2, y2) in zip(verts, verts[1:] + verts[:1]):
            total += x1 * y2 - x2 * y1
        return abs(total) / 2.0

    def perimeter(self) -> float:
        """Sum of edge lengths."""
        verts = self.vertices
        if len(verts) < 2:
            return 0.0
        return sum(
            math.dist(a, b) for a, b in zip(verts, verts[1:] + verts[:1])
        )

    def num_points(self) -> int:
        """Number of vertices (the shape's representation cost)."""
        return len(self.vertices)

    def contains_point(self, point: Point, eps: float = 1e-9) -> bool:
        """True when ``point`` lies inside or on the boundary."""
        verts = self.vertices
        if len(verts) == 1:
            return math.dist(verts[0], point) <= eps
        if len(verts) == 2:
            return _on_segment(verts[0], verts[1], point, eps)
        px, py = point
        for (x1, y1), (x2, y2) in zip(verts, verts[1:] + verts[:1]):
            cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
            if cross < -eps * max(1.0, abs(x2 - x1) + abs(y2 - y1)):
                return False
        return True


def _on_segment(a: Point, b: Point, p: Point, eps: float) -> bool:
    cross = (b[0] - a[0]) * (p[1] - a[1]) - (b[1] - a[1]) * (p[0] - a[0])
    if abs(cross) > eps * max(1.0, math.dist(a, b)):
        return False
    dot = (p[0] - a[0]) * (b[0] - a[0]) + (p[1] - a[1]) * (b[1] - a[1])
    return -eps <= dot <= math.dist(a, b) ** 2 + eps


def _cross(o: Point, a: Point, b: Point) -> float:
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Sequence[Point]) -> ConvexPolygon:
    """Convex hull via Andrew's monotone chain (collinear points dropped)."""
    unique = sorted(set((float(x), float(y)) for x, y in points))
    if not unique:
        raise ValueError("cannot hull an empty point set")
    if len(unique) <= 2:
        return ConvexPolygon(unique)

    lower: List[Point] = []
    for p in unique:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Point] = []
    for p in reversed(unique):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return ConvexPolygon(unique[:2])
    return ConvexPolygon(hull)
