"""Uniform interface over the compared bounding shapes (Figures 8 and 9).

Every shape bounds the *corner points* of a set of 2d child rectangles.
``bounding_shape`` dispatches on the shape name used in the paper:
``"MBC"``, ``"MBB"``, ``"RMBB"``, ``"4-C"``, ``"5-C"``, ``"CH"``.
The CBB variants are not built here — they come from
:func:`repro.cbb.clipping.compute_clip_points` — but the Figure 9 bench
presents all eight side by side.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence, Tuple

from repro.bounding.circle import minimum_bounding_circle
from repro.bounding.convex_hull import ConvexPolygon, convex_hull
from repro.bounding.mcorner import m_corner_polygon
from repro.bounding.rotated_mbb import rotated_minimum_bounding_box
from repro.geometry.rect import Rect, mbb_of_rects

Point = Tuple[float, float]

#: Shape names in the order of Figure 8/9 (CBB rows are added by the bench).
SHAPE_NAMES = ("MBC", "MBB", "RMBB", "4-C", "5-C", "CH")


class BoundingShape(Protocol):
    """Anything with an area and a representation cost in points."""

    def area(self) -> float:
        ...  # pragma: no cover - protocol

    def num_points(self) -> int:
        ...  # pragma: no cover - protocol


class _RectShape:
    """Adapter presenting a Rect with the BoundingShape interface."""

    def __init__(self, rect: Rect):
        self.rect = rect

    def area(self) -> float:
        return self.rect.volume()

    def num_points(self) -> int:
        return 2


def corner_points(rects: Sequence[Rect]) -> List[Point]:
    """All four corners of every rectangle (2d only)."""
    points: List[Point] = []
    for rect in rects:
        if rect.dims != 2:
            raise ValueError("bounding-shape comparison is 2d only")
        (x1, y1), (x2, y2) = rect.low, rect.high
        points.extend([(x1, y1), (x1, y2), (x2, y1), (x2, y2)])
    return points


def bounding_shape(kind: str, rects: Sequence[Rect]) -> BoundingShape:
    """Build the named bounding shape over the corners of ``rects``."""
    points = corner_points(rects)
    kind = kind.upper()
    if kind == "MBC":
        return minimum_bounding_circle(points)
    if kind == "MBB":
        return _RectShape(mbb_of_rects(rects))
    if kind == "RMBB":
        return rotated_minimum_bounding_box(points)
    if kind == "4-C":
        return m_corner_polygon(points, 4)
    if kind == "5-C":
        return m_corner_polygon(points, 5)
    if kind == "CH":
        return convex_hull(points)
    raise ValueError(f"unknown bounding shape {kind!r}; known: {SHAPE_NAMES}")


def dead_space_of_shape(shape: BoundingShape, rects: Sequence[Rect]) -> float:
    """Fraction of the shape's area not covered by the child rectangles.

    The children always lie inside the shape, so the exact union area of
    the rectangles can simply be subtracted from the shape's area.
    """
    from repro.geometry.union_volume import union_volume

    area = shape.area()
    if area <= 0.0:
        return 1.0
    covered = union_volume(rects)
    return max(0.0, min(1.0, 1.0 - covered / area))
