"""Rotated (arbitrarily oriented) minimum bounding box, 2d.

Computed as in the paper: iterate the edges of the convex hull and, for
each edge orientation, compute the axis-aligned bounding box in the
rotated frame; the minimum-area one is returned as a 4-vertex polygon.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

from repro.bounding.convex_hull import ConvexPolygon, convex_hull

Point = Tuple[float, float]


def rotated_minimum_bounding_box(points: Sequence[Point]) -> ConvexPolygon:
    """Minimum-area enclosing rectangle over all orientations of hull edges."""
    hull = convex_hull(points)
    verts = hull.vertices
    if len(verts) < 3:
        # Degenerate input: a zero-area "rectangle" along the segment.
        return ConvexPolygon(verts)

    best_area = math.inf
    best_corners = None
    for (x1, y1), (x2, y2) in zip(verts, verts[1:] + verts[:1]):
        edge_len = math.hypot(x2 - x1, y2 - y1)
        if edge_len < 1e-15:
            continue
        ux, uy = (x2 - x1) / edge_len, (y2 - y1) / edge_len  # edge direction
        vx, vy = -uy, ux  # normal
        us = [px * ux + py * uy for px, py in verts]
        vs = [px * vx + py * vy for px, py in verts]
        u_min, u_max = min(us), max(us)
        v_min, v_max = min(vs), max(vs)
        area = (u_max - u_min) * (v_max - v_min)
        if area < best_area:
            best_area = area
            best_corners = [
                (u_min * ux + v_min * vx, u_min * uy + v_min * vy),
                (u_max * ux + v_min * vx, u_max * uy + v_min * vy),
                (u_max * ux + v_max * vx, u_max * uy + v_max * vy),
                (u_min * ux + v_max * vx, u_min * uy + v_max * vy),
            ]
    return ConvexPolygon(best_corners if best_corners is not None else verts)
