"""Alternative bounding geometries compared against CBBs (Figures 8 and 9).

All shapes are 2d — the paper restricts this comparison to 2d datasets
because minimum m-corner polytopes have no practical construction in
higher dimensions — and bound the *corner points* of a group of child
rectangles, exactly as the figure does for R-tree nodes.
"""

from repro.bounding.base import BoundingShape, bounding_shape, SHAPE_NAMES
from repro.bounding.circle import BoundingCircle, minimum_bounding_circle
from repro.bounding.convex_hull import ConvexPolygon, convex_hull
from repro.bounding.mcorner import m_corner_polygon
from repro.bounding.rotated_mbb import rotated_minimum_bounding_box

__all__ = [
    "BoundingShape",
    "bounding_shape",
    "SHAPE_NAMES",
    "BoundingCircle",
    "minimum_bounding_circle",
    "ConvexPolygon",
    "convex_hull",
    "rotated_minimum_bounding_box",
    "m_corner_polygon",
]
