"""General tree statistics used in bench reports."""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtree.base import RTreeBase


@dataclass
class TreeStats:
    """Structural summary of one R-tree."""

    variant: str
    size: int
    height: int
    node_count: int
    leaf_count: int
    internal_count: int
    avg_leaf_fill: float
    avg_internal_fill: float

    def as_row(self) -> dict:
        """Dict representation for tabular reports."""
        return {
            "variant": self.variant,
            "objects": self.size,
            "height": self.height,
            "nodes": self.node_count,
            "leaves": self.leaf_count,
            "avg_leaf_fill": round(self.avg_leaf_fill, 3),
            "avg_internal_fill": round(self.avg_internal_fill, 3),
        }


def tree_stats(tree: RTreeBase) -> TreeStats:
    """Compute :class:`TreeStats` for ``tree``."""
    leaves = list(tree.leaves())
    internals = list(tree.internal_nodes())
    leaf_fill = (
        sum(len(n.entries) for n in leaves) / (len(leaves) * tree.max_entries)
        if leaves
        else 0.0
    )
    internal_fill = (
        sum(len(n.entries) for n in internals) / (len(internals) * tree.max_entries)
        if internals
        else 0.0
    )
    return TreeStats(
        variant=tree.variant_name,
        size=len(tree),
        height=tree.height,
        node_count=tree.node_count(),
        leaf_count=len(leaves),
        internal_count=len(internals),
        avg_leaf_fill=leaf_fill,
        avg_internal_fill=internal_fill,
    )
