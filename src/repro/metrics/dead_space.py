"""Dead-space measurements (Definition 1; Figures 1b, 8, 9, 10)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.geometry.union_volume import dead_space_fraction
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree
from repro.rtree.node import Node


def node_dead_space(node: Node) -> float:
    """Fraction of the node MBB's volume not covered by any child rectangle."""
    if not node.entries:
        return 0.0
    return dead_space_fraction(node.mbb(), node.child_rects())


def average_dead_space(
    tree: RTreeBase, leaves_only: bool = False, internal_only: bool = False
) -> float:
    """Average dead-space fraction over the selected nodes of ``tree``."""
    if leaves_only and internal_only:
        raise ValueError("choose at most one of leaves_only / internal_only")
    if leaves_only:
        nodes: Iterable[Node] = tree.leaves()
    elif internal_only:
        nodes = tree.internal_nodes()
    else:
        nodes = tree.nodes()
    fractions = [node_dead_space(node) for node in nodes if node.entries]
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)


@dataclass
class ClippedDeadSpaceSummary:
    """Average dead space of a clipped tree, split into clipped vs remaining.

    All three values are fractions of node volume averaged over nodes, so
    ``dead_space == clipped + remaining`` (up to floating-point error).
    This is exactly the quantity stacked in Figure 10.
    """

    dead_space: float
    clipped: float
    remaining: float

    @property
    def clipped_share_of_dead_space(self) -> float:
        """Fraction of the dead space that the clip points eliminate."""
        if self.dead_space <= 0.0:
            return 0.0
        return self.clipped / self.dead_space


def clipped_dead_space_summary(
    clipped_tree: ClippedRTree, leaves_only: bool = False
) -> ClippedDeadSpaceSummary:
    """Per-node average of total dead space and the part clipped away."""
    tree = clipped_tree.tree
    nodes = tree.leaves() if leaves_only else tree.nodes()
    total = 0.0
    clipped = 0.0
    count = 0
    for node in nodes:
        if not node.entries:
            continue
        volume = node.mbb().volume()
        dead = node_dead_space(node)
        if volume <= 0.0:
            clip_fraction = 0.0
        else:
            clip_fraction = clipped_tree.clipped_volume_of(node) / volume
        total += dead
        clipped += min(clip_fraction, dead)
        count += 1
    if count == 0:
        return ClippedDeadSpaceSummary(0.0, 0.0, 0.0)
    total /= count
    clipped /= count
    return ClippedDeadSpaceSummary(total, clipped, max(0.0, total - clipped))
