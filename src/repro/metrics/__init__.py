"""Measurements used throughout the paper's evaluation.

* dead space per node (Figure 1b, 8, 9, 10),
* overlap between siblings (Figure 1a),
* I/O optimality of query processing (Figure 1c),
* storage breakdown of clipped trees (Figure 13),
* general tree statistics used by the reports.
"""

from repro.metrics.dead_space import (
    average_dead_space,
    clipped_dead_space_summary,
    node_dead_space,
)
from repro.metrics.io_optimality import io_optimality
from repro.metrics.node_stats import TreeStats, tree_stats
from repro.metrics.overlap import average_overlap, multi_covered_volume, node_overlap
from repro.metrics.storage_breakdown import storage_breakdown_percent

__all__ = [
    "node_dead_space",
    "average_dead_space",
    "clipped_dead_space_summary",
    "node_overlap",
    "average_overlap",
    "multi_covered_volume",
    "io_optimality",
    "tree_stats",
    "TreeStats",
    "storage_breakdown_percent",
]
