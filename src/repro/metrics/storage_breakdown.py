"""Storage breakdown of a clipped R-tree (Figure 13)."""

from __future__ import annotations

from typing import Dict

from repro.rtree.clipped import ClippedRTree
from repro.storage.page import DEFAULT_PAGE_LAYOUT, PageLayout


def storage_breakdown_percent(
    clipped_tree: ClippedRTree, layout: PageLayout = DEFAULT_PAGE_LAYOUT
) -> Dict[str, float]:
    """Percentage of total bytes in directory nodes, leaf nodes, clip points.

    Also reports ``avg_clip_points`` (per clipped node), matching the
    annotation atop each bar of Figure 13.
    """
    breakdown = clipped_tree.storage_breakdown(layout)
    total = sum(breakdown.values())
    if total == 0:
        return {"dir_nodes": 0.0, "leaf_nodes": 0.0, "clip_points": 0.0, "avg_clip_points": 0.0}
    return {
        "dir_nodes": 100.0 * breakdown["dir_nodes"] / total,
        "leaf_nodes": 100.0 * breakdown["leaf_nodes"] / total,
        "clip_points": 100.0 * breakdown["clip_points"] / total,
        "avg_clip_points": clipped_tree.store.average_clip_points(),
    }
