"""Overlap measurements (Figure 1a).

The overlap of a node is the fraction of its MBB's volume covered by two
or more of its children.  Like the union volume, this is computed exactly
with coordinate compression.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.geometry.rect import Rect
from repro.rtree.base import RTreeBase
from repro.rtree.node import Node


def multi_covered_volume(rects: Iterable[Rect], within: Optional[Rect] = None) -> float:
    """Volume covered by at least two of ``rects`` (optionally clipped)."""
    clipped: List[Rect] = []
    for rect in rects:
        if within is not None:
            inter = within.intersection(rect)
            if inter is None:
                continue
            clipped.append(inter)
        else:
            clipped.append(rect)
    if len(clipped) < 2:
        return 0.0

    dims = clipped[0].dims
    lows = np.array([r.low for r in clipped], dtype=float)
    highs = np.array([r.high for r in clipped], dtype=float)
    cuts = [np.unique(np.concatenate([lows[:, i], highs[:, i]])) for i in range(dims)]
    cell_sizes = [np.diff(c) for c in cuts]
    if any(cs.size == 0 for cs in cell_sizes):
        return 0.0

    shape = tuple(cs.size for cs in cell_sizes)
    coverage = np.zeros(shape, dtype=np.int32)
    for low, high in zip(lows, highs):
        slices = []
        degenerate = False
        for i in range(dims):
            start = int(np.searchsorted(cuts[i], low[i]))
            stop = int(np.searchsorted(cuts[i], high[i]))
            if stop <= start:
                degenerate = True
                break
            slices.append(slice(start, stop))
        if degenerate:
            continue
        coverage[tuple(slices)] += 1

    volume_grid = cell_sizes[0]
    for i in range(1, dims):
        volume_grid = np.multiply.outer(volume_grid, cell_sizes[i])
    return float((volume_grid * (coverage >= 2)).sum())


def node_overlap(node: Node) -> float:
    """Fraction of the node MBB's volume covered by two or more children."""
    if len(node.entries) < 2:
        return 0.0
    mbb = node.mbb()
    volume = mbb.volume()
    if volume <= 0.0:
        return 0.0
    return multi_covered_volume(node.child_rects(), within=mbb) / volume


def average_overlap(tree: RTreeBase, internal_only: bool = True) -> float:
    """Average per-node overlap, by default over directory nodes only.

    Figure 1a reports overlap "averaged over all internal nodes"; pass
    ``internal_only=False`` to include leaves.
    """
    nodes = tree.internal_nodes() if internal_only else tree.nodes()
    fractions = [node_overlap(node) for node in nodes if node.entries]
    if not fractions:
        return 0.0
    return sum(fractions) / len(fractions)
