"""I/O optimality: how many leaf accesses actually contribute results (Fig. 1c)."""

from __future__ import annotations

from typing import Iterable, Union

from repro.geometry.rect import Rect
from repro.query.range_query import execute_workload
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree


def io_optimality(
    index: Union[RTreeBase, ClippedRTree],
    queries: Iterable[Rect],
    engine: str = "scalar",
) -> float:
    """Fraction of leaf accesses containing at least one result object.

    1.0 means every leaf read was useful ("optimal"); the complement is
    the fraction of reads that only touched dead space.  Both engines
    report the same value — they visit the same leaves.
    """
    result = execute_workload(index, queries, engine=engine)
    return result.io_optimality
