"""Oriented skyline computation (Definition 5).

Given a set of points and a corner bitmask ``b``, the oriented skyline is
the subset of points not dominated by any other point with respect to
``b`` — i.e. the frontier of points closest to the corner ``R^b``.  In the
context of clipping, the skyline of the children's ``b``-corners is
exactly the set of valid object-situated clip points for that corner
(paper §III-B).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.geometry.dominance import dominates

Point = Tuple[float, ...]


def oriented_skyline_indices(points: Sequence[Point], mask: int) -> List[int]:
    """Indices of the skyline of ``points`` with respect to corner ``mask``.

    Duplicate points are reported once (the first occurrence wins), because
    a duplicate contributes no additional clipping power.  The 2-d case
    runs a sort-based O(n log n) sweep; higher dimensions fall back to the
    classic O(n^2) pairwise filter (a sweep no longer works there because
    dominance is not a total order restricted to one axis).  Both paths
    return the same indices in the same (increasing) order —
    ``tests/test_skyline.py`` pins the equivalence with a property test.
    """
    if points and len(points[0]) == 2:
        return _skyline_2d_indices(points, mask)
    return _skyline_pairwise_indices(points, mask)


def _skyline_2d_indices(points: Sequence[Point], mask: int) -> List[int]:
    """Sort-based sweep for the 2-d skyline.

    Orient both axes so that a *smaller* key means closer to the corner,
    then scan in (key0, key1, index) order keeping a running minimum of
    key1: a point is on the skyline iff it strictly improves that minimum.
    Points failing the strict test are either dominated (some earlier
    point is at least as close on both axes and strictly closer on one) or
    duplicates of an earlier skyline point, exactly the set the pairwise
    filter drops.
    """
    sign0 = -1.0 if mask & 1 else 1.0
    sign1 = -1.0 if mask & 2 else 1.0
    order = sorted(
        range(len(points)),
        key=lambda i: (sign0 * points[i][0], sign1 * points[i][1], i),
    )
    skyline: List[int] = []
    best1 = math.inf
    for i in order:
        key1 = sign1 * points[i][1]
        if key1 < best1:
            skyline.append(i)
            best1 = key1
    skyline.sort()
    return skyline


def _skyline_pairwise_indices(points: Sequence[Point], mask: int) -> List[int]:
    """O(n^2) pairwise dominance filter (any dimensionality)."""
    skyline: List[int] = []
    seen: set = set()
    for i, p in enumerate(points):
        if p in seen:
            continue
        dominated = False
        for j, q in enumerate(points):
            if i == j:
                continue
            if dominates(q, p, mask):
                dominated = True
                break
        if not dominated:
            skyline.append(i)
            seen.add(p)
    return skyline


def oriented_skyline(points: Sequence[Point], mask: int) -> List[Point]:
    """The skyline points themselves (see :func:`oriented_skyline_indices`)."""
    return [points[i] for i in oriented_skyline_indices(points, mask)]
