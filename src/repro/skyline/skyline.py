"""Oriented skyline computation (Definition 5).

Given a set of points and a corner bitmask ``b``, the oriented skyline is
the subset of points not dominated by any other point with respect to
``b`` — i.e. the frontier of points closest to the corner ``R^b``.  In the
context of clipping, the skyline of the children's ``b``-corners is
exactly the set of valid object-situated clip points for that corner
(paper §III-B).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.dominance import dominates

Point = Tuple[float, ...]


def oriented_skyline_indices(points: Sequence[Point], mask: int) -> List[int]:
    """Indices of the skyline of ``points`` with respect to corner ``mask``.

    Duplicate points are reported once (the first occurrence wins), because
    a duplicate contributes no additional clipping power.  Runs the classic
    O(n^2) pairwise filter, which is the right trade-off for R-tree node
    fan-outs (tens of points); a sort-based O(n log n) method would only
    help in 2d.
    """
    skyline: List[int] = []
    seen: set = set()
    for i, p in enumerate(points):
        if p in seen:
            continue
        dominated = False
        for j, q in enumerate(points):
            if i == j:
                continue
            if dominates(q, p, mask):
                dominated = True
                break
        if not dominated:
            skyline.append(i)
            seen.add(p)
    return skyline


def oriented_skyline(points: Sequence[Point], mask: int) -> List[Point]:
    """The skyline points themselves (see :func:`oriented_skyline_indices`)."""
    return [points[i] for i in oriented_skyline_indices(points, mask)]
