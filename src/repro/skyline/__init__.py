"""Oriented skylines and stairlines (paper §III-B / §III-C)."""

from repro.skyline.skyline import oriented_skyline, oriented_skyline_indices
from repro.skyline.stairline import splice_point, stairline_points

__all__ = [
    "oriented_skyline",
    "oriented_skyline_indices",
    "splice_point",
    "stairline_points",
]
