"""Stairline (point-spliced) clip-point generation (Definitions 6 and 7).

A *splice point* of two points mixes their coordinates: with respect to
mask ``m`` it takes the maximum coordinate on set bits and the minimum on
cleared bits (it is the ``m``-corner of the MBB of the two points).

For clipping corner ``R^b`` of a node, stairline points are splice points
of pairs of skyline points computed with the *opposite* mask ``~b`` — they
sit at the inner corners of the staircase formed by the skyline, as far
from ``R^b`` as their two sources allow — that are still *valid* clip
points, i.e. whose clip region contains no object.

The validity test: a splice point ``c`` is valid for corner ``b`` iff no
object corner lies strictly inside the region between ``c`` and ``R^b``.
Because an object's ``b``-corner is its closest point to ``R^b`` (in the
rectilinear sense), it suffices to check the skyline of the object
corners.  (Algorithm 1 as printed in the paper writes this check with the
operands of ``≺_b`` swapped; the running example of Figure 2 requires the
orientation implemented here — see DESIGN.md.)
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.geometry.bitmask import flip_mask
from repro.geometry.dominance import strictly_inside_corner_region

Point = Tuple[float, ...]


def splice_point(p: Point, q: Point, mask: int) -> Point:
    """The ``mask``-corner of the MBB of ``{p, q}`` (Definition 6)."""
    return tuple(
        max(pi, qi) if (mask >> i) & 1 else min(pi, qi)
        for i, (pi, qi) in enumerate(zip(p, q))
    )


def stairline_points(
    skyline: Sequence[Point], mask: int, dims: int
) -> List[Point]:
    """Valid stairline points for corner ``mask``, spliced from ``skyline``.

    ``skyline`` must be the oriented skyline of the children's
    ``mask``-corners.  The result excludes points that coincide with a
    skyline point (they would add no clipping power) and points whose clip
    region would swallow part of an object.  The pairwise enumeration is
    O(s^3) in the skyline size ``s``, as in the paper; ``s`` is bounded by
    the node fan-out so this is cheap in practice.
    """
    opposite = flip_mask(mask, dims)
    skyline = list(skyline)
    skyline_set = set(skyline)
    result: List[Point] = []
    seen: set = set(skyline_set)
    for i, p in enumerate(skyline):
        for q in skyline[i + 1:]:
            candidate = splice_point(p, q, opposite)
            if candidate in seen:
                continue
            seen.add(candidate)
            # Valid iff no object corner sits strictly inside the region the
            # candidate would clip away (checking skyline corners suffices).
            invalid = any(
                strictly_inside_corner_region(s, candidate, mask)
                for s in skyline
            )
            if not invalid:
                result.append(candidate)
    return result
