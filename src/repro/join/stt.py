"""Synchronised Tree Traversal (STT) spatial join (Brinkhoff et al. 1993).

Both inputs are indexed.  The join descends both trees simultaneously,
only following pairs of children whose bounding boxes intersect.  When the
inputs are :class:`ClippedRTree` instances, the paper's §V strategy is
applied: a child pair is pruned when either child's clipped bounding box
proves the other child's MBB lies entirely in dead space.

I/O accounting: a node access is recorded each time the traversal descends
into a child (one access per node *pairing*, mirroring a page fetch per
visit), and a leaf access is *contributing* only when the subtree pairing
entered at that access emitted at least one result pair.  When the two
roots cannot join at all — disjoint MBBs, or a clip point proving the
overlap is dead space — nothing is accessed and every counter stays zero.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from repro.geometry.rect import Rect
from repro.join.result import JoinResult
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree
from repro.rtree.node import Node
from repro.storage.stats import IOStats

Index = Union[RTreeBase, ClippedRTree]


def _unwrap(index: Index) -> Tuple[RTreeBase, Optional[ClippedRTree]]:
    if isinstance(index, ClippedRTree):
        return index.tree, index
    return index, None


def _pair_passes(
    rect_a: Rect,
    node_a_id: int,
    clipped_a: Optional[ClippedRTree],
    rect_b: Rect,
    node_b_id: int,
    clipped_b: Optional[ClippedRTree],
) -> bool:
    """MBB intersection extended with the CBB dominance tests of §V."""
    if not rect_a.intersects(rect_b):
        return False
    if clipped_a is not None and not clipped_a.node_intersects(node_a_id, rect_a, rect_b):
        return False
    if clipped_b is not None and not clipped_b.node_intersects(node_b_id, rect_b, rect_a):
        return False
    return True


def _record_access(stats: IOStats, node: Node, emitted: int) -> None:
    if node.is_leaf:
        stats.record_leaf(contributed=emitted > 0)
    else:
        stats.record_internal()


def synchronized_tree_traversal_join(
    left: Index, right: Index, collect_pairs: bool = True
) -> JoinResult:
    """Join every pair of intersecting objects from the two indexes."""
    left_tree, left_clipped = _unwrap(left)
    right_tree, right_clipped = _unwrap(right)
    result = JoinResult()

    def join_nodes(node_l: Node, node_r: Node) -> int:
        """Join one node pair; returns the result pairs it emitted."""
        if node_l.is_leaf and node_r.is_leaf:
            emitted = 0
            for e_l in node_l.entries:
                for e_r in node_r.entries:
                    if e_l.rect.intersects(e_r.rect):
                        emitted += 1
                        if collect_pairs:
                            result.pairs.append((e_l.child, e_r.child))
            return emitted
        emitted = 0
        if not node_l.is_leaf and (node_r.is_leaf or node_l.level >= node_r.level):
            # Descend the left (deeper) tree.
            for entry in node_l.entries:
                if _pair_passes(
                    entry.rect, entry.child, left_clipped,
                    node_r.mbb(), node_r.node_id, right_clipped,
                ):
                    child = left_tree.node(entry.child)
                    sub = join_nodes(child, node_r)
                    _record_access(result.outer_stats, child, sub)
                    emitted += sub
            return emitted
        for entry in node_r.entries:
            if _pair_passes(
                node_l.mbb(), node_l.node_id, left_clipped,
                entry.rect, entry.child, right_clipped,
            ):
                child = right_tree.node(entry.child)
                sub = join_nodes(node_l, child)
                _record_access(result.inner_stats, child, sub)
                emitted += sub
        return emitted

    root_l, root_r = left_tree.root, right_tree.root
    pair_count = 0
    if root_l.entries and root_r.entries and _pair_passes(
        root_l.mbb(), root_l.node_id, left_clipped,
        root_r.mbb(), root_r.node_id, right_clipped,
    ):
        pair_count = join_nodes(root_l, root_r)
        _record_access(result.outer_stats, root_l, pair_count)
        _record_access(result.inner_stats, root_r, pair_count)
    result.set_pair_count(pair_count, collected=collect_pairs)
    return result
