"""Join result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.geometry.objects import SpatialObject
from repro.storage.stats import IOStats


@dataclass
class JoinResult:
    """Output of a spatial join: result pairs plus I/O accounting.

    ``outer_stats`` / ``inner_stats`` separate the leaf accesses incurred
    in each input index (for INLJ only the inner side is indexed, so
    ``outer_stats`` stays empty).
    """

    pairs: List[Tuple[SpatialObject, SpatialObject]] = field(default_factory=list)
    outer_stats: IOStats = field(default_factory=IOStats)
    inner_stats: IOStats = field(default_factory=IOStats)

    @property
    def pair_count(self) -> int:
        """Number of joined pairs."""
        return len(self.pairs)

    @property
    def total_leaf_accesses(self) -> int:
        """Leaf accesses summed over both inputs — the paper's join metric."""
        return self.outer_stats.leaf_accesses + self.inner_stats.leaf_accesses
