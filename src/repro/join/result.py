"""Join result container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.geometry.objects import SpatialObject
from repro.storage.stats import IOStats

#: Deprecated ``IOStats.extra`` key that used to smuggle the pair count out
#: of ``collect_pairs=False`` joins.  Read :attr:`JoinResult.pair_count`
#: instead; the alias is still written for one deprecation cycle.
UNCOLLECTED_PAIRS_KEY = "uncollected_pairs"


@dataclass
class JoinResult:
    """Output of a spatial join: result pairs plus I/O accounting.

    ``pair_count`` is maintained by every join algorithm in both modes:
    with ``collect_pairs=True`` it equals ``len(pairs)``, with
    ``collect_pairs=False`` the pairs are counted without being
    materialised.  (Older code read the count from
    ``inner_stats.extra["uncollected_pairs"]``; that key is still written
    in uncollected mode as a deprecated alias.)

    ``outer_stats`` / ``inner_stats`` separate the leaf accesses incurred
    in each input index (for INLJ only the inner side is indexed, so
    ``outer_stats`` stays empty).
    """

    pairs: List[Tuple[SpatialObject, SpatialObject]] = field(default_factory=list)
    pair_count: int = 0
    outer_stats: IOStats = field(default_factory=IOStats)
    inner_stats: IOStats = field(default_factory=IOStats)

    def set_pair_count(self, count: int, collected: bool) -> None:
        """Record the final pair count (and the deprecated alias).

        ``collected`` mirrors the join's ``collect_pairs`` flag: the
        legacy ``uncollected_pairs`` alias is only written when the pairs
        were *not* materialised, exactly as the old API did.
        """
        self.pair_count = count
        if not collected:
            self.inner_stats.bump(UNCOLLECTED_PAIRS_KEY, count)

    @property
    def total_leaf_accesses(self) -> int:
        """Leaf accesses summed over both inputs — the paper's join metric."""
        return self.outer_stats.leaf_accesses + self.inner_stats.leaf_accesses
