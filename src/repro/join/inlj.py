"""Index Nested Loop Join (INLJ).

Used when only one input is indexed: every object of the probing (outer)
input issues one range query against the indexed (inner) input, exactly as
described in §V ("essentially one range query per den03 object").  The
inner index may be a plain R-tree or a :class:`ClippedRTree`; clipping
reduces the leaf accesses of the probes.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.geometry.objects import SpatialObject
from repro.join.result import JoinResult
from repro.rtree.base import RTreeBase
from repro.rtree.clipped import ClippedRTree

Index = Union[RTreeBase, ClippedRTree]


def index_nested_loop_join(
    outer_objects: Iterable[SpatialObject],
    inner_index: Index,
    collect_pairs: bool = True,
) -> JoinResult:
    """Join ``outer_objects`` with the objects indexed by ``inner_index``.

    ``collect_pairs=False`` skips materialising the (potentially large)
    pair list; ``result.pair_count`` reports the count in both modes.
    """
    result = JoinResult()
    pair_count = 0
    for outer in outer_objects:
        matches = inner_index.range_query(outer.rect, stats=result.inner_stats)
        pair_count += len(matches)
        if collect_pairs:
            result.pairs.extend((outer, inner) for inner in matches)
    result.set_pair_count(pair_count, collected=collect_pairs)
    return result
