"""Spatial joins: Index Nested Loop Join and Synchronised Tree Traversal.

Two interchangeable execution engines serve both strategies:

* ``"scalar"`` — the reference implementations in :mod:`repro.join.inlj`
  and :mod:`repro.join.stt`, one Python node visit at a time;
* ``"columnar"`` — :mod:`repro.engine.join_exec`, which freezes the
  indexes into :class:`~repro.engine.columnar.ColumnarIndex` snapshots
  and runs the joins level-synchronously through NumPy kernels, with
  identical pairs, ``pair_count`` and ``IOStats``.

:func:`execute_join` is the engine-dispatching entry point the
experiments and the CLI use.
"""

from __future__ import annotations

from repro.join.inlj import index_nested_loop_join
from repro.join.result import JoinResult
from repro.join.stt import synchronized_tree_traversal_join

JOIN_ENGINES = ("scalar", "columnar")
JOIN_ALGORITHMS = ("inlj", "stt")


def _as_snapshot(index, stale: str = "refresh"):
    """``index`` as a ColumnarIndex, freezing trees on the fly.

    A pre-frozen snapshot whose source has mutated is resolved through
    the ``stale`` policy (refresh by default) so joins never silently
    run against an outdated freeze.
    """
    from repro.engine import ColumnarIndex, resolve_stale

    if isinstance(index, ColumnarIndex):
        return resolve_stale(index, stale)
    return ColumnarIndex.from_tree(index)


def execute_join(
    left,
    right,
    algorithm: str = "stt",
    engine: str = "scalar",
    collect_pairs: bool = True,
    stale: str = "refresh",
    workers: int = 1,
) -> JoinResult:
    """Run one spatial join with the selected algorithm and engine.

    ``algorithm``:

    * ``"inlj"`` — ``left`` is an iterable of outer
      :class:`~repro.geometry.objects.SpatialObject` probes, ``right``
      the indexed inner input;
    * ``"stt"`` — ``left`` and ``right`` are both indexed inputs.

    Indexed inputs are plain trees, :class:`ClippedRTree` wrappers, or —
    for the columnar engine — pre-frozen
    :class:`~repro.engine.columnar.ColumnarIndex` snapshots (trees are
    frozen on the fly; pass snapshots to amortise the freeze across many
    joins).  Both engines return identical results and I/O accounting;
    ``tests/test_join_differential.py`` pins the equivalence.

    Pre-frozen snapshots are checked for staleness under the ``stale``
    policy (``"refresh"`` / ``"raise"`` / ``"serve"``, see
    :func:`repro.engine.columnar.resolve_stale`).  Either side may also
    be a :class:`~repro.engine.delta.SnapshotManager`, in which case the
    join merges its base snapshot with the pending delta regardless of
    ``engine``.

    ``workers`` > 1 (columnar engine only) shards the join across a
    process pool over shared mmap snapshots — INLJ by outer-object
    partition, STT by pair-frontier partition (see
    :class:`~repro.engine.parallel.ParallelExecutor`).  Pair counts and
    both sides' ``IOStats`` still match the serial engines exactly;
    STT's collected pairs arrive in a different (deterministic) order.
    """
    if algorithm not in JOIN_ALGORITHMS:
        raise ValueError(
            f"unknown join algorithm {algorithm!r}; known: {JOIN_ALGORITHMS}"
        )
    if engine not in JOIN_ENGINES:
        raise ValueError(f"unknown join engine {engine!r}; known: {JOIN_ENGINES}")
    workers = int(workers)
    if getattr(left, "is_snapshot_manager", False) or getattr(
        right, "is_snapshot_manager", False
    ):
        # A SnapshotManager serves base + pending delta; its merge join is
        # the only engine that sees both layers.
        from repro.engine.delta import overlay_join

        return overlay_join(left, right, algorithm=algorithm, collect_pairs=collect_pairs)
    if workers > 1 and engine != "columnar":
        raise ValueError(
            "workers > 1 requires the columnar join engine (pass engine='columnar')"
        )
    if engine == "columnar":
        # Imported lazily: the scalar path must not require NumPy.
        from repro.engine.join_exec import inlj_batch, stt_batch

        if workers > 1:
            from repro.engine.parallel import ParallelExecutor

            if algorithm == "inlj":
                with ParallelExecutor(
                    _as_snapshot(right, stale), workers=workers
                ) as executor:
                    return executor.inlj_batch(left, collect_pairs=collect_pairs)
            with ParallelExecutor(
                _as_snapshot(left, stale), workers=workers
            ) as executor:
                return executor.stt_batch(
                    _as_snapshot(right, stale), collect_pairs=collect_pairs
                )
        if algorithm == "inlj":
            return inlj_batch(
                left, _as_snapshot(right, stale), collect_pairs=collect_pairs
            )
        return stt_batch(
            _as_snapshot(left, stale),
            _as_snapshot(right, stale),
            collect_pairs=collect_pairs,
        )
    if algorithm == "inlj":
        return index_nested_loop_join(left, right, collect_pairs=collect_pairs)
    return synchronized_tree_traversal_join(left, right, collect_pairs=collect_pairs)


__all__ = [
    "JOIN_ALGORITHMS",
    "JOIN_ENGINES",
    "JoinResult",
    "execute_join",
    "index_nested_loop_join",
    "synchronized_tree_traversal_join",
]
