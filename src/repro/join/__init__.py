"""Spatial joins: Index Nested Loop Join and Synchronised Tree Traversal."""

from repro.join.inlj import index_nested_loop_join
from repro.join.result import JoinResult
from repro.join.stt import synchronized_tree_traversal_join

__all__ = [
    "index_nested_loop_join",
    "synchronized_tree_traversal_join",
    "JoinResult",
]
