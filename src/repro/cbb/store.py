"""Auxiliary clip-point store (paper, Figure 4b).

R-tree nodes are left untouched; clip points live in a separate table
indexed by node id.  The store also tracks its own storage footprint so
the Figure 13 storage-breakdown experiment can read it off directly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.cbb.clip_point import ClipPoint


class ClipStore:
    """Maps node ids to their (score-ordered) clip points."""

    #: bytes per directory-table entry: node id (4), count (2), pointer (8)
    ENTRY_HEADER_BYTES = 14

    def __init__(self, coord_bytes: int = 8):
        self._table: Dict[int, List[ClipPoint]] = {}
        self._coord_bytes = coord_bytes
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone counter bumped by every store mutation.

        Together with the tree's own version this lets columnar snapshots
        of clipped trees detect that re-clipping has happened.
        """
        return self._version

    def put(self, node_id: int, clip_points: Sequence[ClipPoint]) -> None:
        """Store (replacing) the clip points of ``node_id``.

        Points are kept sorted by descending score, the order in which the
        intersection test probes them.  Storing an empty sequence removes
        the entry.
        """
        points = sorted(clip_points, key=lambda cp: cp.score, reverse=True)
        self._version += 1
        if points:
            self._table[node_id] = points
        else:
            self._table.pop(node_id, None)

    def get(self, node_id: int) -> List[ClipPoint]:
        """Clip points of ``node_id`` (empty list when the node is unclipped)."""
        return self._table.get(node_id, [])

    def remove(self, node_id: int) -> None:
        """Drop the entry of ``node_id`` (no-op when absent)."""
        if self._table.pop(node_id, None) is not None:
            self._version += 1

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._table

    def __len__(self) -> int:
        return len(self._table)

    def items(self) -> Iterator[Tuple[int, List[ClipPoint]]]:
        """Iterate over ``(node_id, clip_points)`` pairs."""
        return iter(self._table.items())

    # -- statistics --------------------------------------------------------

    def total_clip_points(self) -> int:
        """Number of clip points across all nodes."""
        return sum(len(points) for points in self._table.values())

    def average_clip_points(self) -> float:
        """Average number of clip points per clipped node (0.0 when empty)."""
        if not self._table:
            return 0.0
        return self.total_clip_points() / len(self._table)

    def storage_bytes(self) -> int:
        """Approximate byte footprint of the auxiliary structure."""
        total = 0
        for points in self._table.values():
            total += self.ENTRY_HEADER_BYTES
            total += sum(p.storage_bytes(self._coord_bytes) for p in points)
        return total

    def clear(self) -> None:
        """Remove every entry."""
        self._table.clear()
        self._version += 1
