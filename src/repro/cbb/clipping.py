"""Clip-point construction for one node (paper, Algorithm 1).

``compute_clip_points`` takes the MBB of a node and the rectangles of its
children (child MBBs for directory nodes, object rectangles for leaves)
and produces at most ``k`` clip points whose individual scores exceed
``tau`` times the node volume.

Two methods are supported:

* ``"skyline"``  (CSKY, §III-B) — candidates are the oriented skyline of
  the children's corners, one skyline per corner of the node MBB.
* ``"stairline"`` (CSTA, §III-C) — the skyline candidates plus all valid
  splice points between pairs of skyline points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cbb.clip_point import ClipPoint
from repro.cbb.scoring import score_clip_candidates
from repro.geometry.bitmask import all_corner_masks
from repro.geometry.rect import Rect
from repro.skyline.skyline import oriented_skyline
from repro.skyline.stairline import stairline_points

VALID_METHODS = ("skyline", "stairline")


@dataclass(frozen=True)
class ClippingConfig:
    """Parameters of Algorithm 1.

    ``k`` defaults to ``2**(d+1)`` when left ``None`` (the paper's choice:
    up to two clip points per corner) and ``tau`` to 2.5 % of the node
    volume.  ``method`` selects CSKY (``"skyline"``) or CSTA
    (``"stairline"``).
    """

    method: str = "stairline"
    k: int | None = None
    tau: float = 0.025

    def __post_init__(self):
        if self.method not in VALID_METHODS:
            raise ValueError(
                f"unknown clipping method {self.method!r}; expected one of {VALID_METHODS}"
            )
        if self.k is not None and self.k < 0:
            raise ValueError("k must be non-negative")
        if not 0.0 <= self.tau < 1.0:
            raise ValueError("tau must be in [0, 1)")

    def max_clip_points(self, dims: int) -> int:
        """Effective ``k`` for a node of dimensionality ``dims``."""
        if self.k is None:
            return 2 ** (dims + 1)
        return self.k


def compute_clip_points(
    mbb: Rect,
    children: Sequence[Rect],
    config: ClippingConfig = ClippingConfig(),
) -> List[ClipPoint]:
    """Algorithm 1: select up to ``k`` clip points for one node.

    Returns clip points sorted by descending score.  Nodes whose MBB has
    zero volume (e.g. leaves of a pure point dataset that happen to be
    collinear) cannot be clipped meaningfully and yield an empty list.
    """
    if not children:
        return []
    dims = mbb.dims
    node_volume = mbb.volume()
    if node_volume <= 0.0:
        return []

    threshold = config.tau * node_volume
    k = config.max_clip_points(dims)
    if k == 0:
        return []

    selected: List[ClipPoint] = []
    for mask in all_corner_masks(dims):
        corners = [child.corner(mask) for child in children]
        skyline = oriented_skyline(corners, mask)
        candidates = list(skyline)
        if config.method == "stairline":
            candidates.extend(stairline_points(skyline, mask, dims))

        for clip in score_clip_candidates(candidates, mask, mbb):
            if clip.score > threshold:
                selected.append(clip)

    selected.sort(key=lambda cp: cp.score, reverse=True)
    return selected[:k]
