"""Clipped bounding boxes: clip points, clipping, and clipped intersection.

This package is the paper's core contribution (§III and §IV):

* :class:`~repro.cbb.clip_point.ClipPoint` — a ``(coordinate, corner mask,
  score)`` triple declaring the box between the coordinate and the MBB
  corner to be dead space.
* :func:`~repro.cbb.clipping.compute_clip_points` — Algorithm 1, producing
  skyline (CSKY) or stairline (CSTA) clip points for one node.
* :func:`~repro.cbb.intersection.clipped_intersects` — Algorithm 2, the
  dominance-based intersection test used for both querying and insertion
  validity checks.
* :class:`~repro.cbb.store.ClipStore` — the auxiliary table of Figure 4b.
"""

from repro.cbb.clip_point import ClipPoint
from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.intersection import (
    QUERY_SELECTOR_ALL_DIMS,
    clipped_intersects,
    insertion_keeps_clips_valid,
)
from repro.cbb.scoring import (
    clip_region,
    clip_volume,
    clipped_union_volume,
    score_clip_candidates,
)
from repro.cbb.store import ClipStore

__all__ = [
    "ClipPoint",
    "ClipStore",
    "ClippingConfig",
    "compute_clip_points",
    "clipped_intersects",
    "insertion_keeps_clips_valid",
    "QUERY_SELECTOR_ALL_DIMS",
    "clip_region",
    "clip_volume",
    "clipped_union_volume",
    "score_clip_candidates",
]
