"""Clipped intersection test (paper, Algorithm 2).

The same routine serves two purposes, differentiated by ``selector``:

* **Query** (``selector = 2**d - 1``): test whether a query rectangle
  intersects the live (non-dead) part of a clipped bounding box.  The
  query's corner *farthest* from the clip corner is compared to each clip
  point; if even that corner lies strictly inside a clipped region, the
  whole of ``Q ∩ R`` is dead space and the node can be skipped.
* **Insertion validity** (``selector = 0``): test whether a newly inserted
  rectangle stays clear of every clipped region.  Here the rectangle's
  corner *closest* to the clip corner is used; if it reaches strictly
  inside a clipped region, that clip point is invalidated and the node
  must be re-clipped (§IV-D).

The dominance test is strict in every dimension, which guarantees that a
query touching an object only on the boundary of a clipped region is never
pruned (no false negatives under closed-rectangle intersection semantics).
"""

from __future__ import annotations

from typing import Iterable

from repro.cbb.clip_point import ClipPoint
from repro.geometry.dominance import strictly_inside_corner_region
from repro.geometry.rect import Rect

#: Selector value used for range queries: pick the query corner opposite
#: to the clip corner (``selector XOR mask`` flips every bit).
QUERY_SELECTOR_ALL_DIMS = -1  # sentinel resolved per-dimensionality below


def _resolve_selector(selector: int, dims: int) -> int:
    if selector == QUERY_SELECTOR_ALL_DIMS:
        return (1 << dims) - 1
    return selector


def clipped_intersects(
    mbb: Rect,
    clip_points: Iterable[ClipPoint],
    rect: Rect,
    selector: int = QUERY_SELECTOR_ALL_DIMS,
) -> bool:
    """Algorithm 2: does ``rect`` intersect the live part of the CBB?

    Returns ``False`` either when ``rect`` misses the MBB entirely or when
    one of the clip points proves that ``rect ∩ mbb`` lies wholly inside
    dead space.
    """
    if not mbb.intersects(rect):
        return False
    selector = _resolve_selector(selector, mbb.dims)
    for clip in clip_points:
        probe = rect.corner(selector ^ clip.mask)
        if strictly_inside_corner_region(probe, clip.coord, clip.mask):
            return False
    return True


def insertion_keeps_clips_valid(
    mbb: Rect, clip_points: Iterable[ClipPoint], rect: Rect
) -> bool:
    """True when inserting ``rect`` leaves every clip point valid.

    This is Algorithm 2 with ``selector = 0``: the inserted rectangle's
    corner closest to each clip corner is probed; reaching strictly inside
    a clipped region means the region is no longer dead space.
    """
    return clipped_intersects(mbb, clip_points, rect, selector=0)
