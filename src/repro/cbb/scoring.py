"""Scoring of candidate clip points (paper, Figure 5 and §IV-B).

The exact volume clipped by a *set* of clip points would require the
inclusion–exclusion principle (exponential in the set size).  The paper's
approximation, reproduced here, assumes per corner that

1. the candidate clipping the most volume is always selected, and
2. every other candidate contributes its own volume minus its overlap with
   that best candidate.

An exact union-volume helper is also provided; the benchmark
``benchmarks/test_ablation_scoring.py`` quantifies the approximation error.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.cbb.clip_point import ClipPoint
from repro.geometry.rect import Rect
from repro.geometry.union_volume import union_volume

Point = Tuple[float, ...]


def clip_region(coord: Point, mask: int, mbb: Rect) -> Rect:
    """The box between ``coord`` and the ``mask``-corner of ``mbb``."""
    corner = mbb.corner(mask)
    low = tuple(min(c, k) for c, k in zip(coord, corner))
    high = tuple(max(c, k) for c, k in zip(coord, corner))
    return Rect(low, high)


def clip_volume(coord: Point, mask: int, mbb: Rect) -> float:
    """Volume of the region clipped away by ``(coord, mask)`` in ``mbb``."""
    corner = mbb.corner(mask)
    vol = 1.0
    for c, k in zip(coord, corner):
        vol *= abs(k - c)
    return vol


def _same_corner_overlap(p: Point, q: Point, mask: int, mbb: Rect) -> float:
    """Overlap volume of the clip regions of two candidates of one corner."""
    corner = mbb.corner(mask)
    vol = 1.0
    for pc, qc, k in zip(p, q, corner):
        vol *= min(abs(k - pc), abs(k - qc))
    return vol


def score_clip_candidates(
    candidates: Sequence[Point], mask: int, mbb: Rect
) -> List[ClipPoint]:
    """Assign approximate scores to all candidates of one corner.

    The highest-volume candidate receives its exact clipped volume; every
    other candidate receives its volume minus the overlap with that best
    candidate (Figure 5).  Returns :class:`ClipPoint` instances in
    descending score order.
    """
    if not candidates:
        return []
    volumes = [clip_volume(c, mask, mbb) for c in candidates]
    best_index = max(range(len(candidates)), key=volumes.__getitem__)
    best = candidates[best_index]

    scored: List[ClipPoint] = []
    for i, candidate in enumerate(candidates):
        if i == best_index:
            score = volumes[i]
        else:
            score = volumes[i] - _same_corner_overlap(candidate, best, mask, mbb)
        scored.append(ClipPoint(candidate, mask, score))
    scored.sort(key=lambda cp: cp.score, reverse=True)
    return scored


def clipped_union_volume(clip_points: Iterable[ClipPoint], mbb: Rect) -> float:
    """Exact volume of the union of the regions clipped by ``clip_points``.

    Unlike the additive score, this never double-counts overlapping
    regions; it is the quantity plotted in Figure 10.
    """
    regions = [cp.region(mbb) for cp in clip_points]
    return union_volume(regions, within=mbb)
