"""Clip points (paper, Definition 2)."""

from __future__ import annotations

from typing import Tuple

from repro.geometry.rect import Rect


class ClipPoint:
    """A single clip point: coordinate, corner bitmask, and heuristic score.

    The pair ``(coord, mask)`` declares the axis-aligned box between
    ``coord`` and the MBB corner selected by ``mask`` to contain no
    objects.  ``score`` is the (approximate) volume the point clips away;
    clip points of a node are stored sorted by descending score so that
    non-intersection is detected as early as possible (§IV-A).
    """

    __slots__ = ("coord", "mask", "score")

    def __init__(self, coord: Tuple[float, ...], mask: int, score: float = 0.0):
        self.coord = tuple(float(c) for c in coord)
        self.mask = int(mask)
        self.score = float(score)

    @property
    def dims(self) -> int:
        """Dimensionality of the clip point."""
        return len(self.coord)

    def region(self, mbb: Rect) -> Rect:
        """The box this clip point declares dead, relative to ``mbb``."""
        corner = mbb.corner(self.mask)
        low = tuple(min(c, k) for c, k in zip(self.coord, corner))
        high = tuple(max(c, k) for c, k in zip(self.coord, corner))
        return Rect(low, high)

    def storage_bytes(self, coord_bytes: int = 8) -> int:
        """Bytes needed to store this clip point (mask byte + coordinates).

        Matches the layout of Figure 4b: a d-bit corner flag (rounded up to
        one byte) followed by ``d`` coordinates.
        """
        return 1 + coord_bytes * self.dims

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ClipPoint)
            and self.coord == other.coord
            and self.mask == other.mask
        )

    def __hash__(self) -> int:
        return hash((self.coord, self.mask))

    def __repr__(self) -> str:
        return f"ClipPoint(coord={self.coord}, mask={self.mask:b}, score={self.score:.4g})"
