"""Keeping a clipped R-tree up to date under inserts and deletes.

Demonstrates the §IV-D update strategies: lazily ignoring deletions that
leave MBBs untouched and eagerly re-clipping only the nodes an insertion
can actually invalidate.  Prints the observed re-clip rate per insertion,
broken down by cause, as in Figure 12.

Run with ``python examples/dynamic_updates.py``.
"""

import random

from repro.datasets import generate
from repro.query import brute_force_range
from repro.rtree import ClippedRTree, ReclipCause, build_rtree


def main() -> None:
    objects = generate("den03", size=2000, seed=5)
    initial, updates = objects[:1600], objects[1600:]

    tree = build_rtree("rstar", initial, max_entries=32)
    clipped = ClippedRTree.wrap(tree, method="stairline")
    print(f"built a clipped R*-tree over {len(initial)} segments")

    # --- insert the remaining objects one by one -------------------------
    cause_counts = {cause: 0 for cause in ReclipCause}
    for obj in updates:
        report = clipped.insert(obj)
        for cause, count in report.counts_by_cause().items():
            cause_counts[cause] += count
    total = sum(cause_counts.values())
    print(f"\ninserted {len(updates)} objects; {total} node re-clips "
          f"({total / len(updates):.2f} per insert)")
    for cause, count in cause_counts.items():
        print(f"  {cause.value:12s}: {count / len(updates):.2f} per insert")

    # --- delete a random subset ------------------------------------------
    rng = random.Random(0)
    victims = rng.sample(updates, k=len(updates) // 2)
    reclips = sum(clipped.delete(obj).count() for obj in victims)
    print(f"\ndeleted {len(victims)} objects; {reclips} re-clips "
          "(deletions are handled lazily)")

    # --- verify correctness after the update mix -------------------------
    remaining = initial + [o for o in updates if o not in set(victims)]
    probe = remaining[len(remaining) // 2].rect.scaled(8.0)
    expected = {o.oid for o in brute_force_range(remaining, probe)}
    actual = {o.oid for o in clipped.range_query(probe)}
    assert expected == actual
    print("\nrange-query results verified against a linear scan")


if __name__ == "__main__":
    main()
