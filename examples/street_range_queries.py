"""Range queries over a road network: comparing all four R-tree variants.

Builds each of the paper's four R-tree variants over the street-segment
dataset (the rea02 stand-in), clips them with both CSKY and CSTA, and
prints a per-variant I/O comparison across the three query-selectivity
profiles — a miniature version of Figure 11.

Run with ``python examples/street_range_queries.py``.
"""

from repro.bench.reporting import format_table
from repro.datasets import generate
from repro.query import STANDARD_PROFILES, RangeQueryWorkload, execute_workload
from repro.rtree import ClippedRTree, build_rtree
from repro.rtree.registry import VARIANT_LABELS, VARIANT_NAMES


def main() -> None:
    objects = generate("rea02", size=3000, seed=3)
    print(f"indexed {len(objects)} street segments")

    rows = []
    for variant in VARIANT_NAMES:
        tree = build_rtree(variant, objects, max_entries=32)
        skyline = ClippedRTree.wrap(tree, method="skyline")
        stairline = ClippedRTree.wrap(tree, method="stairline")
        for profile in STANDARD_PROFILES:
            workload = RangeQueryWorkload.from_objects(
                objects, target_results=profile.target_results, seed=1
            )
            queries = workload.query_list(50)
            base = execute_workload(tree, queries)
            sky = execute_workload(skyline, queries)
            sta = execute_workload(stairline, queries)
            rows.append(
                {
                    "variant": VARIANT_LABELS[variant],
                    "profile": profile.name,
                    "leaf_acc": round(base.avg_leaf_accesses, 2),
                    "csky_leaf_acc": round(sky.avg_leaf_accesses, 2),
                    "csta_leaf_acc": round(sta.avg_leaf_accesses, 2),
                    "csta_saving_pct": round(
                        100.0 * (1 - sta.avg_leaf_accesses / base.avg_leaf_accesses), 1
                    )
                    if base.avg_leaf_accesses
                    else 0.0,
                }
            )
    print(format_table(rows, title="Range-query I/O per variant and query profile"))


if __name__ == "__main__":
    main()
