"""Spatial join over brain-morphology data (the paper's motivating use case).

Joins axon segments with dendrite segments (synthetic stand-ins for the
Human-Brain-Project datasets) to find candidate touch points, using both
join strategies of the paper — Index Nested Loop Join and Synchronised
Tree Traversal — with and without clipped bounding boxes.

Run with ``python examples/neuroscience_join.py``.
"""

from repro.datasets import NeuriteGenerator
from repro.join import execute_join, index_nested_loop_join, synchronized_tree_traversal_join
from repro.rtree import ClippedRTree, build_rtree


def main() -> None:
    # Axons and dendrites occupy the same brain sub-volume.
    extent = 400.0
    axons = NeuriteGenerator(kind="axon", extent=extent).generate(1500, seed=11)
    dendrites = NeuriteGenerator(kind="dendrite", extent=extent).generate(1500, seed=12)
    print(f"{len(axons)} axon segments x {len(dendrites)} dendrite segments")

    axon_tree = build_rtree("rrstar", axons, max_entries=32)
    dendrite_tree = build_rtree("rrstar", dendrites, max_entries=32)
    clipped_axons = ClippedRTree.wrap(axon_tree, method="stairline")
    clipped_dendrites = ClippedRTree.wrap(dendrite_tree, method="stairline")

    # --- INLJ: probe the axon index with every dendrite segment. ---------
    plain = index_nested_loop_join(dendrites, axon_tree, collect_pairs=False)
    fast = index_nested_loop_join(dendrites, clipped_axons, collect_pairs=False)
    print(f"\nINLJ: {plain.pair_count} candidate touch pairs")
    print(f"  leaf accesses unclipped: {plain.inner_stats.leaf_accesses}")
    print(f"  leaf accesses clipped:   {fast.inner_stats.leaf_accesses}")

    # --- STT: traverse both indexes simultaneously. -----------------------
    plain_stt = synchronized_tree_traversal_join(axon_tree, dendrite_tree, collect_pairs=False)
    fast_stt = synchronized_tree_traversal_join(
        clipped_axons, clipped_dendrites, collect_pairs=False
    )
    print(f"\nSTT: leaf accesses unclipped: {plain_stt.total_leaf_accesses}")
    print(f"     leaf accesses clipped:   {fast_stt.total_leaf_accesses}")

    # --- The columnar batch engine runs either strategy over snapshots. ---
    columnar_stt = execute_join(
        clipped_axons, clipped_dendrites, algorithm="stt", engine="columnar",
        collect_pairs=False,
    )
    print(f"\ncolumnar STT: leaf accesses {columnar_stt.total_leaf_accesses}")

    # Every strategy and engine enumerates the same join.
    assert plain_stt.pair_count == plain.pair_count == columnar_stt.pair_count
    assert columnar_stt.total_leaf_accesses == fast_stt.total_leaf_accesses
    print("join results verified identical across strategies and engines")


if __name__ == "__main__":
    main()
