"""Quickstart: build an R-tree, clip it, and compare query I/O.

Run with ``python examples/quickstart.py``.
"""

from repro.datasets import generate
from repro.metrics import average_dead_space, clipped_dead_space_summary
from repro.query import RangeQueryWorkload, execute_workload
from repro.rtree import ClippedRTree, build_rtree


def main() -> None:
    # 1. Generate a synthetic stand-in for the paper's par02 dataset.
    objects = generate("par02", size=3000, seed=7)
    print(f"generated {len(objects)} objects in {objects[0].dims}d")

    # 2. Build a classic R*-tree over them.
    tree = build_rtree("rstar", objects, max_entries=32)
    print(f"R*-tree: {tree.node_count()} nodes, height {tree.height}")
    print(f"average dead space per node: {100 * average_dead_space(tree):.1f}%")

    # 3. Clip it: stairline clip points, the paper's default k and tau.
    clipped = ClippedRTree.wrap(tree, method="stairline")
    summary = clipped_dead_space_summary(clipped)
    print(
        f"clipping removes {100 * summary.clipped_share_of_dead_space:.1f}% of the dead space "
        f"using {clipped.store.average_clip_points():.1f} clip points per node"
    )

    # 4. Compare range-query I/O (leaf accesses) with and without clipping.
    workload = RangeQueryWorkload.from_objects(objects, target_results=10, seed=1)
    queries = workload.query_list(100)
    plain = execute_workload(tree, queries)
    fast = execute_workload(clipped, queries)
    print(f"unclipped: {plain.avg_leaf_accesses:.2f} leaf accesses/query")
    print(f"clipped:   {fast.avg_leaf_accesses:.2f} leaf accesses/query")
    saved = 100.0 * (1.0 - fast.avg_leaf_accesses / plain.avg_leaf_accesses)
    print(f"I/O saved by clipping: {saved:.1f}%")

    # 5. Results are identical — clipping only skips dead space.
    for query in queries[:20]:
        assert {o.oid for o in tree.range_query(query)} == {
            o.oid for o in clipped.range_query(query)
        }
    print("query results verified identical with and without clipping")

    # 6. Batch the whole workload through the columnar engine: same
    #    results, same I/O counts, answered by vectorized kernels.
    #    (Re-freeze with ColumnarIndex.from_tree after inserts/deletes —
    #    a snapshot is immutable; check snapshot.is_stale.)
    import time

    from repro.engine import ColumnarIndex

    snapshot = ColumnarIndex.from_tree(clipped)
    start = time.perf_counter()
    batch = execute_workload(snapshot, queries, engine="columnar")
    batch_s = time.perf_counter() - start
    start = time.perf_counter()
    scalar = execute_workload(clipped, queries)
    scalar_s = time.perf_counter() - start
    assert batch.stats.leaf_accesses == scalar.stats.leaf_accesses
    print(
        f"columnar engine: {batch.total_results} results in {1000 * batch_s:.1f} ms "
        f"(scalar: {1000 * scalar_s:.1f} ms, same leaf accesses)"
    )


if __name__ == "__main__":
    main()
