"""Crash-durability tests for the snapshot persistence layer.

:func:`save_snapshot` claims a precise contract: the manifest
``os.replace`` is the *single commit point* — a process killed at any
byte offset of the write sequence leaves the directory loading the
previous snapshot, and the first moment it loads the new one is the
rename.  ``test_kill_at_every_byte_offset`` proves that literally: it
replays a save's byte stream (every generation array file, then the
manifest temp file, in the order the saver writes them) one byte at a
time into a directory holding an older committed snapshot, and asserts
a full :func:`load_snapshot` succeeds — and still yields the *old*
snapshot — after every single byte, flipping to the new snapshot only
after the final rename.

The rest pins the supporting machinery: old generations are
garbage-collected only after a commit, an interrupted save is cleanly
resumable, re-saving identical content is a no-op, format-version-1
layouts (arrays at top level, no ``data_dir``) still load, and the load
fault hook used by the chaos suite installs and restores correctly.
"""

import json
import os
import shutil

import pytest

from repro.engine import (
    ColumnarIndex,
    SnapshotFormatError,
    load_snapshot,
    range_query_batch,
    save_snapshot,
    set_load_fault_hook,
)
from repro.engine.snapshot_io import MANIFEST_NAME, read_manifest
from repro.geometry.rect import Rect
from repro.rtree.registry import build_rtree
from tests.conftest import make_random_objects


def _tiny_snapshot(seed, count=10):
    objects = make_random_objects(count, dims=2, seed=seed)
    return ColumnarIndex.from_tree(build_rtree("rstar", objects, max_entries=4))


def _save_plan(snapshot, scratch):
    """The exact byte stream a save writes: ordered files + manifest."""
    save_snapshot(snapshot, scratch)
    manifest = read_manifest(scratch)
    generation = manifest["data_dir"]
    # json preserves insertion order, which is the order the arrays were
    # written in — replay must match the saver's sequence.
    files = [
        (f"{generation}/{name}.npy", (scratch / generation / f"{name}.npy").read_bytes())
        for name in manifest["arrays"]
    ]
    manifest_bytes = (scratch / MANIFEST_NAME).read_bytes()
    return generation, files, manifest_bytes


def test_kill_at_every_byte_offset(tmp_path):
    old = _tiny_snapshot(seed=1)
    new = _tiny_snapshot(seed=2, count=12)
    target = tmp_path / "snap"
    save_snapshot(old, target)
    old_fingerprint = read_manifest(target)["fingerprint"]
    old_len = len(old.objects)

    generation, files, manifest_bytes = _save_plan(new, tmp_path / "scratch")
    new_fingerprint = json.loads(manifest_bytes)["fingerprint"]
    assert new_fingerprint != old_fingerprint

    def assert_loads_old():
        # mmap load: full manifest + array validation without copying
        loaded = load_snapshot(target, mmap=True)
        assert len(loaded.objects) == old_len
        assert read_manifest(target)["fingerprint"] == old_fingerprint

    # crash during any array write: old snapshot stays fully loadable
    (target / generation).mkdir()
    for rel_path, payload in files:
        with open(target / rel_path, "ab") as handle:
            for offset in range(len(payload)):
                handle.write(payload[offset : offset + 1])
                handle.flush()
                assert_loads_old()

    # crash during the manifest temp write: still the old snapshot
    tmp_manifest = target / (MANIFEST_NAME + ".tmp")
    with open(tmp_manifest, "ab") as handle:
        for offset in range(len(manifest_bytes)):
            handle.write(manifest_bytes[offset : offset + 1])
            handle.flush()
            assert_loads_old()

    # the commit point: after the rename the new snapshot is served
    os.replace(tmp_manifest, target / MANIFEST_NAME)
    loaded = load_snapshot(target)
    assert read_manifest(target)["fingerprint"] == new_fingerprint
    assert len(loaded.objects) == len(new.objects)
    probe = [Rect([0.0, 0.0], [100.0, 100.0])]
    assert {o.oid for o in range_query_batch(loaded, probe)[0]} == {
        o.oid for o in range_query_batch(new, probe)[0]
    }


def test_interrupted_save_is_resumable(tmp_path):
    """A half-written generation does not block a later successful save."""
    old = _tiny_snapshot(seed=1)
    new = _tiny_snapshot(seed=2, count=12)
    target = tmp_path / "snap"
    save_snapshot(old, target)

    generation, files, _manifest = _save_plan(new, tmp_path / "scratch")
    (target / generation).mkdir()
    rel_path, payload = files[0]
    (target / rel_path).write_bytes(payload[: len(payload) // 2])  # torn file

    save_snapshot(new, target)  # the retry overwrites and commits
    loaded = load_snapshot(target)
    assert len(loaded.objects) == len(new.objects)


def test_old_generations_gc_after_commit(tmp_path):
    old = _tiny_snapshot(seed=1)
    new = _tiny_snapshot(seed=2, count=12)
    save_snapshot(old, tmp_path)
    old_generation = read_manifest(tmp_path)["data_dir"]
    assert (tmp_path / old_generation).is_dir()

    save_snapshot(new, tmp_path)
    new_generation = read_manifest(tmp_path)["data_dir"]
    assert new_generation != old_generation
    assert (tmp_path / new_generation).is_dir()
    assert not (tmp_path / old_generation).exists()
    assert len(load_snapshot(tmp_path).objects) == len(new.objects)


def test_identical_resave_is_a_noop(tmp_path):
    snapshot = _tiny_snapshot(seed=1)
    save_snapshot(snapshot, tmp_path)
    generation = read_manifest(tmp_path)["data_dir"]
    before = {
        path.name: path.stat().st_mtime_ns
        for path in (tmp_path / generation).iterdir()
    }
    manifest_before = (tmp_path / MANIFEST_NAME).read_bytes()

    save_snapshot(snapshot, tmp_path)
    after = {
        path.name: path.stat().st_mtime_ns
        for path in (tmp_path / generation).iterdir()
    }
    assert after == before  # no byte of the committed generation rewritten
    assert (tmp_path / MANIFEST_NAME).read_bytes() == manifest_before


def test_format_version_1_layout_still_loads(tmp_path):
    """v1 snapshots (top-level arrays, no data_dir) remain readable."""
    snapshot = _tiny_snapshot(seed=1)
    save_snapshot(snapshot, tmp_path)
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    generation = manifest.pop("data_dir")
    manifest["format_version"] = 1
    for path in (tmp_path / generation).iterdir():
        shutil.move(str(path), str(tmp_path / path.name))
    (tmp_path / generation).rmdir()
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))

    loaded = load_snapshot(tmp_path)
    assert len(loaded.objects) == len(snapshot.objects)
    probe = [Rect([0.0, 0.0], [100.0, 100.0])]
    assert {o.oid for o in range_query_batch(loaded, probe)[0]} == {
        o.oid for o in range_query_batch(snapshot, probe)[0]
    }


def test_load_fault_hook_install_and_restore(tmp_path):
    snapshot = _tiny_snapshot(seed=1)
    save_snapshot(snapshot, tmp_path)
    seen = []

    def hook(path):
        seen.append(path)
        raise OSError("injected torn read")

    previous = set_load_fault_hook(hook)
    try:
        with pytest.raises(OSError, match="torn read"):
            load_snapshot(tmp_path)
        assert seen == [str(tmp_path)]
    finally:
        restored = set_load_fault_hook(previous)
        assert restored is hook
    load_snapshot(tmp_path)  # hook gone: loads normally
    assert seen == [str(tmp_path)]


def test_unknown_generation_dirs_are_preserved(tmp_path):
    """GC removes only content-addressed generation dirs it owns."""
    old = _tiny_snapshot(seed=1)
    new = _tiny_snapshot(seed=2, count=12)
    save_snapshot(old, tmp_path)
    keep = tmp_path / "user-data"
    keep.mkdir()
    (keep / "notes.txt").write_text("not a generation")
    save_snapshot(new, tmp_path)
    assert (keep / "notes.txt").read_text() == "not a generation"
