"""Unit tests for the storage layer: stats, page layout, disk, buffer pool."""

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.page import PageLayout
from repro.storage.stats import IOStats


class TestIOStats:
    def test_record_and_totals(self):
        stats = IOStats()
        stats.record_leaf(contributed=True)
        stats.record_leaf(contributed=False)
        stats.record_internal()
        stats.record_write()
        assert stats.leaf_accesses == 2
        assert stats.contributing_leaf_accesses == 1
        assert stats.internal_accesses == 1
        assert stats.node_writes == 1
        assert stats.total_accesses == 3

    def test_bump_and_merge(self):
        a, b = IOStats(), IOStats()
        a.bump("probe", 2)
        b.bump("probe", 3)
        b.record_leaf()
        a.merge(b)
        assert a.extra["probe"] == 5
        assert a.leaf_accesses == 1

    def test_reset(self):
        stats = IOStats()
        stats.record_leaf()
        stats.bump("x")
        stats.reset()
        assert stats.leaf_accesses == 0
        assert stats.extra == {}


class TestPageLayout:
    def test_entry_bytes(self):
        layout = PageLayout()
        assert layout.entry_bytes(2) == 2 * 2 * 8 + 8
        assert layout.entry_bytes(3) == 2 * 3 * 8 + 8

    def test_max_entries_decreases_with_dims(self):
        layout = PageLayout(page_size=4096)
        assert layout.max_entries(2) > layout.max_entries(3) > layout.max_entries(6)
        assert layout.max_entries(2) == (4096 - 16) // 40

    def test_min_entries_fraction(self):
        layout = PageLayout()
        assert layout.min_entries(2) == int(layout.max_entries(2) * 0.4)
        assert layout.min_entries(2, fill=0.2) >= 2

    def test_tiny_page_still_has_two_entries(self):
        layout = PageLayout(page_size=64)
        assert layout.max_entries(3) == 2

    def test_node_bytes_is_page_size(self):
        assert PageLayout(page_size=8192).node_bytes() == 8192


class TestSimulatedDisk:
    def test_random_read_cost(self):
        model = DiskModel(seek_ms=10.0, transfer_mb_per_s=100.0, page_size=4096)
        disk = SimulatedDisk(model)
        disk.register_page(1)
        disk.read(1)
        assert disk.reads == 1
        assert disk.elapsed_ms == pytest.approx(model.random_read_ms())

    def test_sequential_reads_are_cheaper(self):
        disk = SimulatedDisk()
        for page in (1, 2, 3):
            disk.register_page(page)
        disk.read(1)
        disk.read(2)
        disk.read(3)
        assert disk.sequential_reads == 2
        assert disk.elapsed_ms < 3 * disk.model.random_read_ms()

    def test_unknown_page_raises(self):
        disk = SimulatedDisk()
        with pytest.raises(KeyError):
            disk.read(42)

    def test_reset_counters(self):
        disk = SimulatedDisk()
        disk.register_page(1)
        disk.read(1)
        disk.reset_counters()
        assert disk.reads == 0
        assert disk.elapsed_ms == 0.0
        assert disk.page_count == 1


class TestBufferPool:
    def test_hit_after_miss(self):
        pool = BufferPool(capacity=4)
        assert pool.access(1) is False
        assert pool.access(1) is True
        assert pool.stats.buffer_misses == 1
        assert pool.stats.buffer_hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(capacity=2)
        pool.access(1)
        pool.access(2)
        pool.access(1)      # 1 becomes most recent
        pool.access(3)      # evicts 2
        assert pool.contains(1)
        assert not pool.contains(2)
        assert pool.contains(3)

    def test_zero_capacity_never_caches(self):
        pool = BufferPool(capacity=0)
        pool.access(1)
        pool.access(1)
        assert pool.stats.buffer_hits == 0
        assert pool.stats.buffer_misses == 2

    def test_unbounded_capacity(self):
        pool = BufferPool(capacity=None)
        for page in range(100):
            pool.access(page)
        assert len(pool) == 100
        assert pool.access(0) is True

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(capacity=-1)

    def test_misses_charge_the_disk(self):
        disk = SimulatedDisk()
        disk.register_page(1)
        pool = BufferPool(capacity=2, disk=disk)
        pool.access(1)
        pool.access(1)
        assert disk.reads == 1

    def test_clear_forgets_everything(self):
        pool = BufferPool(capacity=4)
        pool.access(1)
        pool.clear()
        assert not pool.contains(1)
        assert pool.access(1) is False
