"""Property tests: each batched clip kernel ≡ its scalar counterpart.

Every kernel in :mod:`repro.engine.clip_kernels` claims bit-exact
agreement with one scalar building block of Algorithm 1; these seeded
hypothesis suites pin each claim on adversarial inputs (grid-valued
coordinates so ties, duplicates, and shared corners occur constantly).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cbb.scoring import _same_corner_overlap, clip_volume, score_clip_candidates
from repro.engine.clip_kernels import (
    _skyline_mask_2d,
    _skyline_mask_pairwise,
    clip_volumes,
    equals_any_point,
    first_occurrence_mask,
    overlap_volumes,
    segment_first_argmax,
    sequential_prod,
    skyline_mask_batch,
    splice_candidates,
    stair_invalid_mask,
)
from repro.engine.kernels import masks_to_bool
from repro.geometry.rect import Rect, mbb_of_points
from repro.skyline.skyline import _skyline_pairwise_indices, oriented_skyline
from repro.skyline.stairline import stairline_points

#: Grid-heavy coordinates: duplicates and axis ties with high probability.
coord = st.one_of(
    st.integers(min_value=0, max_value=5).map(float),
    st.floats(min_value=0, max_value=10, allow_nan=False, allow_infinity=False, width=16),
)


def _point_groups(dims, max_group=10, max_points=12):
    return st.lists(
        st.lists(st.tuples(*[coord] * dims), min_size=1, max_size=max_points),
        min_size=1,
        max_size=max_group,
    )


def _pad_groups(groups, dims):
    """Stack variable-size groups into a dense (g, c, d) array by padding
    each group with repeats of its first point (repeats never change a
    skyline beyond the dedup the kernels already implement)."""
    count = max(len(g) for g in groups)
    padded = [list(g) + [g[0]] * (count - len(g)) for g in groups]
    return np.array(padded, dtype=np.float64), count


class TestSkylineKernel:
    @given(_point_groups(dims=2), st.integers(min_value=0, max_value=3))
    @settings(max_examples=120)
    def test_matches_scalar_per_group_2d(self, groups, mask):
        is_high = masks_to_bool(np.array([mask]), 2)[0]
        for group in groups:
            points = np.array([group], dtype=np.float64)
            expected = np.zeros(len(group), dtype=bool)
            expected[_skyline_pairwise_indices(group, mask)] = True
            assert np.array_equal(skyline_mask_batch(points, is_high)[0], expected)

    @given(_point_groups(dims=3), st.integers(min_value=0, max_value=7))
    @settings(max_examples=120)
    def test_matches_scalar_per_group_3d(self, groups, mask):
        is_high = masks_to_bool(np.array([mask]), 3)[0]
        for group in groups:
            points = np.array([group], dtype=np.float64)
            expected = np.zeros(len(group), dtype=bool)
            expected[_skyline_pairwise_indices(group, mask)] = True
            assert np.array_equal(skyline_mask_batch(points, is_high)[0], expected)

    @given(_point_groups(dims=2), st.integers(min_value=0, max_value=3))
    @settings(max_examples=80)
    def test_2d_sweep_equals_batched_pairwise(self, groups, mask):
        is_high = masks_to_bool(np.array([mask]), 2)[0]
        points, _ = _pad_groups(groups, 2)
        assert np.array_equal(
            _skyline_mask_2d(points, is_high),
            _skyline_mask_pairwise(points, is_high),
        )


class TestStairlineKernels:
    @given(_point_groups(dims=2, max_group=6), st.integers(min_value=0, max_value=3))
    @settings(max_examples=100)
    def test_composed_candidates_match_scalar_stairline_2d(self, groups, mask):
        self._check(groups, mask, dims=2)

    @given(_point_groups(dims=3, max_group=4), st.integers(min_value=0, max_value=7))
    @settings(max_examples=60)
    def test_composed_candidates_match_scalar_stairline_3d(self, groups, mask):
        self._check(groups, mask, dims=3)

    @staticmethod
    def _check(groups, mask, dims):
        """splice ∘ validity ∘ dedup over each group ≡ stairline_points."""
        is_high = masks_to_bool(np.array([mask]), dims)[0]
        for group in groups:
            skyline = oriented_skyline(group, mask)
            if len(skyline) < 2:
                continue
            sky = np.array([skyline], dtype=np.float64)
            cands, _, _ = splice_candidates(sky, is_high)
            bad = stair_invalid_mask(sky, cands, is_high) | equals_any_point(cands, sky)
            flat = cands.reshape(-1, dims)
            owners = np.zeros(len(flat), dtype=np.int64)
            keep = first_occurrence_mask(flat, owners) & ~bad.reshape(-1)
            got = [tuple(row) for row in flat[keep]]
            assert got == stairline_points(skyline, mask, dims)


class TestScoringKernels:
    @given(st.lists(st.tuples(coord, coord, coord), min_size=1, max_size=16))
    @settings(max_examples=100)
    def test_sequential_prod_matches_scalar_accumulation(self, rows):
        values = np.array(rows, dtype=np.float64)
        expected = []
        for row in rows:
            acc = 1.0
            for x in row:
                acc *= x
            expected.append(acc)
        assert np.array_equal(sequential_prod(values), np.array(expected))

    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=12),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=100)
    def test_volumes_overlaps_and_selection_match_scalar_scoring(self, pts, mask):
        mbb = mbb_of_points(pts + [(0.0, 0.0), (10.0, 10.0)])
        corner = np.array(mbb.corner(mask))
        arr = np.array(pts, dtype=np.float64)
        vols = clip_volumes(arr, corner)
        assert vols.tolist() == [clip_volume(p, mask, mbb) for p in pts]

        best_index = max(range(len(pts)), key=vols.tolist().__getitem__)
        starts = np.array([0])
        counts = np.array([len(pts)])
        assert segment_first_argmax(vols, starts, counts)[0] == best_index

        best = arr[best_index]
        overlaps = overlap_volumes(arr, best, corner)
        assert overlaps.tolist() == [
            _same_corner_overlap(p, tuple(best), mask, mbb) for p in pts
        ]

        # And the composed per-corner scoring matches score_clip_candidates.
        scored = score_clip_candidates(pts, mask, mbb)
        kernel_scores = np.where(
            np.arange(len(pts)) == best_index, vols, vols - overlaps
        )
        order = np.lexsort((np.arange(len(pts)), -kernel_scores))
        got = [(tuple(arr[i]), float(kernel_scores[i])) for i in order]
        assert got == [(cp.coord, cp.score) for cp in scored]

    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=30
        )
    )
    @settings(max_examples=80)
    def test_segment_first_argmax_multi_segment(self, raw):
        values = np.array([float(a) for a, _ in raw])
        # Split into segments at pseudo-random boundaries derived from data.
        bounds = sorted({0, *[i for i, (_, b) in enumerate(raw) if b == 0 and i > 0]})
        starts = np.array(bounds, dtype=np.int64)
        counts = np.diff(np.append(starts, len(values)))
        got = segment_first_argmax(values, starts, counts)
        for seg, (start, count) in enumerate(zip(starts, counts)):
            chunk = values[start : start + count].tolist()
            expected = start + max(range(count), key=chunk.__getitem__)
            assert got[seg] == expected


class TestDedupKernel:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 2)),
            min_size=0,
            max_size=40,
        )
    )
    @settings(max_examples=100)
    def test_first_occurrence_mask_matches_seen_set(self, raw):
        rows = np.array([(float(a), float(b)) for a, b, _ in raw], dtype=np.float64)
        rows = rows.reshape(-1, 2)
        owners = np.array([g % 3 for _, _, g in raw], dtype=np.int64)
        seen = set()
        expected = []
        for owner, row in zip(owners.tolist(), rows.tolist()):
            key = (owner, tuple(row))
            expected.append(key not in seen)
            seen.add(key)
        assert first_occurrence_mask(rows, owners).tolist() == expected


class TestBatchConsistency:
    """Batching many groups must decide each group as if it were alone."""

    @given(_point_groups(dims=3, max_group=8, max_points=6), st.integers(0, 7))
    @settings(max_examples=60)
    def test_skyline_batch_equals_one_group_at_a_time(self, groups, mask):
        is_high = masks_to_bool(np.array([mask]), 3)[0]
        points, count = _pad_groups(groups, 3)
        batched = skyline_mask_batch(points, is_high)
        for gi in range(len(groups)):
            single = skyline_mask_batch(points[gi : gi + 1], is_high)[0]
            assert np.array_equal(batched[gi], single)
