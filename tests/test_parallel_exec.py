"""Regression tests for the multi-process sharded executor.

The invariant under test: for every entry point — range batches, kNN
batches, INLJ, STT — and every worker count, :class:`ParallelExecutor`
returns *exactly* what the single-process columnar engine returns: same
hit lists, same pairs, same ``pair_count``, same ``IOStats`` on both
sides.  STT's collected pairs are additionally pinned to be
order-identical across worker counts (the parallel order is
deterministic, though different from the serial round-major order — vs
serial they are compared as multisets).

Worker counts {1, 2, 4} run even on a single-core machine; the pool is
merely oversubscribed, determinism must not depend on scheduling.
"""

import os

import pytest

from repro.engine import (
    ColumnarIndex,
    ParallelExecutor,
    default_workers,
    inlj_batch,
    knn_batch,
    range_query_batch,
    save_snapshot,
    stt_batch,
)
from repro.engine.delta import SnapshotManager
from repro.geometry.rect import Rect
from repro.join import execute_join
from repro.query.range_query import execute_workload
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.storage.stats import IOStats
from tests.conftest import make_random_objects

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def frozen():
    objects = make_random_objects(320, dims=3, seed=11)
    tree = build_rtree("rstar", objects, max_entries=8)
    clipped = ClippedRTree.wrap(tree, method="stairline")
    return objects, ColumnarIndex.from_tree(clipped)


@pytest.fixture(scope="module")
def queries(frozen):
    objects, _ = frozen
    step = max(1, len(objects) // 24)
    result = []
    for obj in objects[::step][:24]:
        low = [c - 2.0 for c in obj.rect.low]
        high = [c + 2.0 for c in obj.rect.high]
        result.append(Rect(low, high))
    return result


def _oid_lists(results):
    return [[obj.oid for obj in batch] for batch in results]


def test_range_identical_across_worker_counts(frozen, queries):
    _, snapshot = frozen
    serial_stats = IOStats()
    serial = _oid_lists(range_query_batch(snapshot, queries, stats=serial_stats))
    for workers in WORKER_COUNTS:
        stats = IOStats()
        with ParallelExecutor(snapshot, workers=workers) as executor:
            results = executor.range_query_batch(queries, stats=stats)
        assert _oid_lists(results) == serial
        assert stats == serial_stats


def test_knn_identical_across_worker_counts(frozen, queries):
    _, snapshot = frozen
    points = [q.low for q in queries[:10]]
    serial_stats = IOStats()
    serial = [
        [(d, o.oid) for d, o in r]
        for r in knn_batch(snapshot, points, k=4, stats=serial_stats)
    ]
    for workers in WORKER_COUNTS:
        stats = IOStats()
        with ParallelExecutor(snapshot, workers=workers) as executor:
            results = executor.knn_batch(points, k=4, stats=stats)
        assert [[(d, o.oid) for d, o in r] for r in results] == serial
        assert stats == serial_stats


def test_inlj_identical_across_worker_counts(frozen):
    _, snapshot = frozen
    outer = make_random_objects(150, dims=3, seed=12)
    serial = inlj_batch(outer, snapshot)
    serial_pairs = [(a.oid, b.oid) for a, b in serial.pairs]
    for workers in WORKER_COUNTS:
        with ParallelExecutor(snapshot, workers=workers) as executor:
            result = executor.inlj_batch(outer)
        # INLJ's merge is order-identical to the serial batch join.
        assert [(a.oid, b.oid) for a, b in result.pairs] == serial_pairs
        assert result.pair_count == serial.pair_count
        assert result.inner_stats == serial.inner_stats
        assert result.outer_stats == serial.outer_stats


def test_stt_identical_across_worker_counts(frozen):
    _, left = frozen
    right_objects = make_random_objects(280, dims=3, seed=13)
    right = ColumnarIndex.from_tree(build_rtree("rstar", right_objects, max_entries=8))
    serial = stt_batch(left, right)
    serial_pairs = sorted((a.oid, b.oid) for a, b in serial.pairs)
    parallel_orders = []
    for workers in WORKER_COUNTS:
        with ParallelExecutor(left, workers=workers) as executor:
            result = executor.stt_batch(right)
        assert result.pair_count == serial.pair_count
        assert result.outer_stats == serial.outer_stats
        assert result.inner_stats == serial.inner_stats
        # Same pair multiset as serial; the parallel order (shipped-pair-
        # major) differs from the serial round-major order...
        pairs = [(a.oid, b.oid) for a, b in result.pairs]
        assert sorted(pairs) == serial_pairs
        parallel_orders.append(pairs)
    # ...but is itself invariant across worker counts.
    assert parallel_orders[0] == parallel_orders[1] == parallel_orders[2]


def test_stt_uncollected_counts_match(frozen):
    _, left = frozen
    right_objects = make_random_objects(200, dims=3, seed=14)
    right = ColumnarIndex.from_tree(build_rtree("hilbert", right_objects, max_entries=8))
    serial = stt_batch(left, right, collect_pairs=False)
    with ParallelExecutor(left, workers=3) as executor:
        result = executor.stt_batch(right, collect_pairs=False)
    assert result.pairs == []
    assert result.pair_count == serial.pair_count
    assert result.outer_stats == serial.outer_stats
    assert result.inner_stats == serial.inner_stats


def test_executor_accepts_snapshot_path(tmp_path, frozen, queries):
    _, snapshot = frozen
    save_snapshot(snapshot, tmp_path / "snap")
    serial = _oid_lists(range_query_batch(snapshot, queries))
    with ParallelExecutor(str(tmp_path / "snap"), workers=2) as executor:
        assert _oid_lists(executor.range_query_batch(queries)) == serial
    # A caller-provided directory is not owned: close() must keep it.
    assert (tmp_path / "snap" / "manifest.json").is_file()


def test_executor_cleans_owned_temp_dir(frozen):
    _, snapshot = frozen
    executor = ParallelExecutor(snapshot, workers=2)
    owned = executor.path
    assert owned.is_dir()
    executor.close()
    assert not owned.exists()


def test_empty_batches(frozen):
    _, snapshot = frozen
    with ParallelExecutor(snapshot, workers=2) as executor:
        assert executor.range_query_batch([]) == []
        assert executor.knn_batch([], k=3) == []
        result = executor.inlj_batch([])
        assert result.pair_count == 0 and result.pairs == []


def test_knn_validates_inputs(frozen):
    _, snapshot = frozen
    with ParallelExecutor(snapshot, workers=2) as executor:
        with pytest.raises(ValueError, match="k must be"):
            executor.knn_batch([[0.0, 0.0, 0.0]], k=0)
        with pytest.raises(ValueError, match="expects"):
            executor.knn_batch([[0.0, 0.0]], k=2)


def test_default_workers_positive():
    assert default_workers() >= 1
    assert default_workers() <= len(os.sched_getaffinity(0)) or default_workers() == 1


def test_execute_workload_workers_parity(frozen, queries):
    objects, _ = frozen
    tree = build_rtree("rstar", objects, max_entries=8)
    serial = execute_workload(tree, queries, engine="columnar")
    parallel = execute_workload(tree, queries, engine="columnar", workers=2)
    assert parallel.queries == serial.queries
    assert parallel.total_results == serial.total_results
    assert parallel.stats == serial.stats


def test_execute_join_workers_parity(frozen):
    objects, left = frozen
    right_objects = make_random_objects(180, dims=3, seed=15)
    right_tree = build_rtree("rstar", right_objects, max_entries=8)

    serial = execute_join(objects, right_tree, algorithm="inlj", engine="columnar")
    parallel = execute_join(
        objects, right_tree, algorithm="inlj", engine="columnar", workers=2
    )
    assert parallel.pair_count == serial.pair_count
    assert parallel.inner_stats == serial.inner_stats
    assert [(a.oid, b.oid) for a, b in parallel.pairs] == [
        (a.oid, b.oid) for a, b in serial.pairs
    ]

    serial = execute_join(left, right_tree, algorithm="stt", engine="columnar")
    parallel = execute_join(
        left, right_tree, algorithm="stt", engine="columnar", workers=2
    )
    assert parallel.pair_count == serial.pair_count
    assert parallel.outer_stats == serial.outer_stats
    assert parallel.inner_stats == serial.inner_stats
    assert sorted((a.oid, b.oid) for a, b in parallel.pairs) == sorted(
        (a.oid, b.oid) for a, b in serial.pairs
    )


def test_workers_require_columnar_engine(frozen, queries):
    objects, _ = frozen
    tree = build_rtree("quadratic", objects[:80], max_entries=8)
    with pytest.raises(ValueError, match="columnar"):
        execute_workload(tree, queries, engine="scalar", workers=2)
    with pytest.raises(ValueError, match="columnar"):
        execute_join(objects[:20], tree, algorithm="inlj", engine="scalar", workers=2)


def test_workers_reject_snapshot_manager(frozen, queries):
    objects, _ = frozen
    tree = build_rtree("rstar", objects[:80], max_entries=8)
    manager = SnapshotManager(tree)
    with pytest.raises(ValueError, match="SnapshotManager"):
        execute_workload(manager, queries, engine="columnar", workers=2)
