"""Differential tests: SnapshotManager (base + delta) ≡ scalar ClippedRTree.

The delta overlay's one promise is that buffering writes must be
invisible to readers: after any interleaving of inserts, deletes,
queries, and compactions, a manager answers exactly like a scalar
``ClippedRTree`` maintained with the same operations.  The manager's
*tree* may legitimately diverge structurally (compaction applies the
buffered batch in one pass, the scalar reference one write at a time),
so clip-store equality is pinned against a fresh ``clip_all`` over the
manager's own tree, while query results are pinned against the scalar
reference and brute force.
"""

import copy
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import build_columnar_str
from repro.engine.delta import (
    CompactionInProgressError,
    DeltaOverlay,
    SnapshotManager,
    object_key,
)
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.join import execute_join
from repro.join.inlj import index_nested_loop_join
from repro.join.stt import synchronized_tree_traversal_join
from repro.query.knn import knn_query
from repro.query.range_query import brute_force_range, execute_workload
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree
from repro.storage.stats import IOStats


def _random_object(rng, oid):
    low = (rng.uniform(0, 100), rng.uniform(0, 100))
    high = (low[0] + rng.uniform(0, 6), low[1] + rng.uniform(0, 6))
    return SpatialObject(oid, Rect(low, high))


def _keys(hits):
    return sorted((o.oid, o.rect.low, o.rect.high) for o in hits)


def _queries(rng, count=8):
    out = []
    for _ in range(count):
        cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
        size = rng.uniform(2, 30)
        out.append(Rect((cx, cy), (cx + size, cy + size)))
    return out


def _assert_matches_scalar(manager, reference, live, rng):
    queries = _queries(rng)
    stats = IOStats()
    batched = manager.range_query_batch(queries, stats=stats)
    for query, hits in zip(queries, batched):
        expected = _keys(reference.range_query(query))
        assert _keys(hits) == expected
        assert expected == _keys(brute_force_range(live, query))
    if live:
        assert stats.leaf_accesses > 0
    points = [(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(4)]
    k = min(5, len(live)) or 1
    for point, hits in zip(points, manager.knn_batch(points, k)):
        expected = knn_query(reference.tree, point, k)
        assert sorted((d, o.oid) for d, o in hits) == sorted(
            (d, o.oid) for d, o in expected
        )
    assert len(manager) == len(live) == len(reference)


class TestInterleavedUpdates:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(VARIANT_NAMES),
        st.sampled_from([None, 7, 13]),
    )
    @settings(max_examples=10, deadline=None)
    def test_arbitrary_interleaving_matches_scalar(self, seed, variant, compact_every):
        rng = random.Random(seed)
        live = [_random_object(rng, i) for i in range(40)]
        # Duplicates (same oid AND rect) exercise the tombstone counts.
        live += [SpatialObject(o.oid, o.rect) for o in live[:4]]
        reference = ClippedRTree.wrap(
            build_rtree(variant, live, max_entries=6), method="stairline"
        )
        manager = SnapshotManager(
            copy.deepcopy(reference),
            update_engine="delta",
            compact_every=compact_every,
        )
        next_oid = 1000
        for step in range(50):
            if live and rng.random() < 0.45:
                victim = live.pop(rng.randrange(len(live)))
                reference.delete(victim)
                assert manager.delete(victim)
            else:
                obj = _random_object(rng, next_oid)
                next_oid += 1
                live.append(obj)
                reference.insert(obj)
                manager.insert(obj)
            if step % 17 == 16:
                _assert_matches_scalar(manager, reference, live, rng)
            if compact_every is None and rng.random() < 0.08:
                manager.compact()
        _assert_matches_scalar(manager, reference, live, rng)

        # After a final fold the manager's store must equal a full clipping
        # pass over its own tree, and hold every invariant.
        manager.compact()
        assert manager.pending_ops == 0
        source = manager._source
        recomputed = ClippedRTree(copy.deepcopy(source.tree), source.config)
        recomputed.clip_all()
        assert dict(source.store.items()) == dict(recomputed.store.items())
        source.check_clip_invariants()
        source.tree.check_invariants()
        _assert_matches_scalar(manager, reference, live, rng)

    def test_refreeze_engine_matches_scalar(self):
        rng = random.Random(5)
        live = [_random_object(rng, i) for i in range(30)]
        reference = ClippedRTree.wrap(
            build_rtree("quadratic", live, max_entries=6), method="stairline"
        )
        manager = SnapshotManager(copy.deepcopy(reference), update_engine="refreeze")
        for step in range(25):
            if live and rng.random() < 0.5:
                victim = live.pop(rng.randrange(len(live)))
                reference.delete(victim)
                assert manager.delete(victim)
            else:
                obj = _random_object(rng, 500 + step)
                live.append(obj)
                reference.insert(obj)
                manager.insert(obj)
        assert manager.pending_ops == 0
        _assert_matches_scalar(manager, reference, live, rng)


class TestEdgeCases:
    def _manager(self, seed=3, count=25, **kwargs):
        rng = random.Random(seed)
        live = [_random_object(rng, i) for i in range(count)]
        clipped = ClippedRTree.wrap(
            build_rtree("quadratic", live, max_entries=6), method="stairline"
        )
        return live, SnapshotManager(clipped, **kwargs)

    def test_empty_delta_compact_is_noop(self):
        _, manager = self._manager()
        epoch = manager.epoch
        stats = manager.compact()
        assert (stats.applied_inserts, stats.applied_deletes, stats.reclipped_nodes) == (0, 0, 0)
        assert manager.epoch == epoch

    def test_delete_unknown_object_returns_false(self):
        rng = random.Random(11)
        _, manager = self._manager()
        ghost = _random_object(rng, 9999)
        assert not manager.delete(ghost)
        assert manager.pending_ops == 0
        manager.insert(ghost)
        assert manager.delete(ghost)
        # A second delete of the same object must fail again.
        assert not manager.delete(ghost)

    def test_insert_then_delete_in_overlay_cancels_out(self):
        rng = random.Random(12)
        live, manager = self._manager()
        obj = _random_object(rng, 777)
        manager.insert(obj)
        assert manager.delete(obj)
        assert not manager.overlay.has_deletes
        assert _keys(manager.live_objects()) == _keys(live)
        stats = manager.compact()
        assert (stats.applied_inserts, stats.applied_deletes) == (0, 0)

    def test_delete_everything(self):
        live, manager = self._manager()
        for obj in live:
            assert manager.delete(obj)
        assert len(manager) == 0
        query = Rect((0, 0), (200, 200))
        assert manager.range_query(query) == []
        assert manager.knn_batch([(50, 50)], 3) == [[]]
        manager.compact()
        assert len(manager) == 0
        assert manager.range_query(query) == []
        # The emptied index keeps accepting writes.
        obj = _random_object(random.Random(1), 42)
        manager.insert(obj)
        assert _keys(manager.range_query(query)) == _keys([obj])

    def test_duplicate_objects_delete_one_copy_at_a_time(self):
        rng = random.Random(13)
        obj = _random_object(rng, 1)
        live = [obj, SpatialObject(obj.oid, obj.rect), _random_object(rng, 2)]
        clipped = ClippedRTree.wrap(
            build_rtree("quadratic", live, max_entries=4), method="stairline"
        )
        manager = SnapshotManager(clipped)
        assert manager.delete(obj)
        hits = manager.range_query(obj.rect)
        assert sum(1 for o in hits if object_key(o) == object_key(obj)) == 1
        assert manager.delete(obj)
        assert not manager.delete(obj)

    def test_source_free_manager(self):
        rng = random.Random(14)
        live = [_random_object(rng, i) for i in range(30)]
        manager = SnapshotManager(build_columnar_str(live, max_entries=8))
        extra = [_random_object(rng, 100 + i) for i in range(10)]
        for obj in extra:
            manager.insert(obj)
        victims = live[:8]
        for obj in victims:
            assert manager.delete(obj)
        expected_live = live[8:] + extra
        for query in _queries(rng, 5):
            assert _keys(manager.range_query(query)) == _keys(
                brute_force_range(expected_live, query)
            )
        manager.compact()
        assert not manager.snapshot.is_stale
        for query in _queries(rng, 5):
            assert _keys(manager.range_query(query)) == _keys(
                brute_force_range(expected_live, query)
            )

    def test_rejects_unknown_engine_and_bad_compact_every(self):
        live, _ = self._manager()
        clipped = ClippedRTree.wrap(build_rtree("quadratic", live, max_entries=6))
        with pytest.raises(ValueError):
            SnapshotManager(clipped, update_engine="lazy")
        with pytest.raises(ValueError):
            SnapshotManager(clipped, compact_every=0)

    def test_overlay_rejects_dimension_mismatch(self):
        live, manager = self._manager()
        overlay = manager.overlay
        assert isinstance(overlay, DeltaOverlay)
        bad = SpatialObject(1, Rect((0, 0, 0), (1, 1, 1)))
        with pytest.raises(ValueError):
            overlay.insert(bad)


class TestWorkloadAndJoinRouting:
    def test_execute_workload_routes_managers(self):
        rng = random.Random(21)
        live = [_random_object(rng, i) for i in range(40)]
        reference = ClippedRTree.wrap(
            build_rtree("quadratic", live, max_entries=6), method="stairline"
        )
        manager = SnapshotManager(copy.deepcopy(reference), update_engine="delta")
        extra = [_random_object(rng, 100 + i) for i in range(10)]
        for obj in extra:
            reference.insert(obj)
            manager.insert(obj)
        queries = _queries(rng, 6)
        managed = execute_workload(manager, queries)
        scalar = execute_workload(reference, queries, engine="scalar")
        assert managed.queries == scalar.queries
        assert managed.total_results == scalar.total_results

    @pytest.mark.parametrize("algorithm", ["inlj", "stt"])
    def test_joins_with_pending_deltas_match_scalar(self, algorithm):
        rng = random.Random(22)
        left_live = [_random_object(rng, i) for i in range(30)]
        right_live = [_random_object(rng, 1000 + i) for i in range(30)]
        left_mgr = SnapshotManager(
            ClippedRTree.wrap(build_rtree("quadratic", left_live, max_entries=6))
        )
        right_mgr = SnapshotManager(
            ClippedRTree.wrap(build_rtree("quadratic", right_live, max_entries=6))
        )
        # Mutate both sides so base, tombstones, and delta trees all engage.
        for mgr, live, base_oid in ((left_mgr, left_live, 50), (right_mgr, right_live, 2000)):
            for i in range(6):
                obj = _random_object(rng, base_oid + i)
                mgr.insert(obj)
                live.append(obj)
            for _ in range(6):
                victim = live.pop(rng.randrange(len(live)))
                assert mgr.delete(victim)

        left_tree = ClippedRTree.wrap(build_rtree("quadratic", left_live, max_entries=6))
        right_tree = ClippedRTree.wrap(build_rtree("quadratic", right_live, max_entries=6))
        if algorithm == "inlj":
            managed = execute_join(left_mgr, right_mgr, algorithm="inlj")
            scalar = index_nested_loop_join(left_live, right_tree)
        else:
            managed = execute_join(left_mgr, right_mgr, algorithm="stt")
            scalar = synchronized_tree_traversal_join(left_tree, right_tree)

        def pair_keys(pairs):
            return sorted((object_key(l), object_key(r)) for l, r in pairs)

        assert managed.pair_count == scalar.pair_count
        assert pair_keys(managed.pairs) == pair_keys(scalar.pairs)

    def test_join_manager_against_plain_tree(self):
        rng = random.Random(23)
        left_live = [_random_object(rng, i) for i in range(25)]
        right_live = [_random_object(rng, 500 + i) for i in range(25)]
        manager = SnapshotManager(build_rtree("quadratic", left_live, max_entries=6))
        for _ in range(5):
            victim = left_live.pop(rng.randrange(len(left_live)))
            assert manager.delete(victim)
        right_tree = build_rtree("quadratic", right_live, max_entries=6)
        managed = execute_join(manager, right_tree, algorithm="stt")
        scalar = synchronized_tree_traversal_join(
            build_rtree("quadratic", left_live, max_entries=6), right_tree
        )
        assert managed.pair_count == scalar.pair_count


# ----------------------------------------------------------------------
# writes racing a compaction (the CompactionInProgressError contract)
# ----------------------------------------------------------------------


class TestCompactionConcurrency:
    """Pins the documented mid-compaction write contract.

    The ``compaction_fault_hook`` fires inside ``compact()`` after the
    compacting flag is set but before the source tree is touched, which
    makes it the perfect stand-in for "another thread runs while the
    fold is in flight": everything a concurrent writer could attempt is
    attempted from the hook, and everything a mid-fold crash could
    corrupt is checked after raising from it.
    """

    def _manager(self, count=30, seed=5):
        rng = random.Random(seed)
        objects = [_random_object(rng, i) for i in range(count)]
        manager = SnapshotManager(build_rtree("quadratic", objects, max_entries=6))
        return rng, objects, manager

    def test_insert_during_compaction_lands_in_current_overlay(self):
        rng, objects, manager = self._manager()
        manager.insert(_random_object(rng, 1000))
        staged = _random_object(rng, 2000)

        def racer():
            manager.insert(staged)  # staged, not dropped, not applied twice

        manager.compaction_fault_hook = racer
        stats = manager.compact()
        manager.compaction_fault_hook = None

        assert stats.applied_inserts == 1  # only the pre-compaction insert folded
        assert manager.epoch == 1
        # the staged insert replayed into the fresh overlay: pending, visible
        assert manager.pending_ops == 1
        hits = manager.range_query(staged.rect)
        assert staged.oid in {o.oid for o in hits}
        assert {o.oid for o in hits if o.oid == staged.oid} == {staged.oid}
        # folding it later applies it exactly once
        manager.compact()
        assert manager.pending_ops == 0
        again = manager.range_query(staged.rect)
        assert sum(1 for o in again if o.oid == staged.oid) == 1

    def test_delete_during_compaction_raises_cleanly(self):
        rng, objects, manager = self._manager()
        manager.insert(_random_object(rng, 1000))
        victim = objects[0]
        outcome = {}

        def racer():
            with pytest.raises(CompactionInProgressError, match="retry after the swap"):
                manager.delete(victim)
            outcome["raised"] = True

        manager.compaction_fault_hook = racer
        manager.compact()
        manager.compaction_fault_hook = None
        assert outcome == {"raised": True}
        # the rejected delete was not half-applied: the victim is intact,
        # and retrying after the swap works
        assert victim.oid in {o.oid for o in manager.range_query(victim.rect)}
        assert manager.delete(victim)
        assert victim.oid not in {o.oid for o in manager.range_query(victim.rect)}

    def test_reentrant_compact_raises(self):
        rng, objects, manager = self._manager()
        manager.insert(_random_object(rng, 1000))
        outcome = {}

        def racer():
            with pytest.raises(CompactionInProgressError, match="already running"):
                manager.compact()
            outcome["raised"] = True

        manager.compaction_fault_hook = racer
        stats = manager.compact()
        manager.compaction_fault_hook = None
        assert outcome == {"raised": True}
        assert stats.applied_inserts == 1
        assert manager.epoch == 1

    def test_crash_mid_compaction_preserves_view_and_staged_inserts(self):
        rng, objects, manager = self._manager()
        pending = _random_object(rng, 1000)
        manager.insert(pending)
        staged = _random_object(rng, 2000)
        before_epoch = manager.epoch
        before_snapshot = manager.view[0]

        def crasher():
            manager.insert(staged)
            raise RuntimeError("compaction crashed mid-fold")

        manager.compaction_fault_hook = crasher
        with pytest.raises(RuntimeError, match="crashed mid-fold"):
            manager.compact()
        manager.compaction_fault_hook = None

        # published view unchanged; nothing folded; nothing lost
        assert manager.epoch == before_epoch
        assert manager.view[0] is before_snapshot
        assert manager.total_compactions == 0
        assert manager.pending_ops == 2  # the original insert + the staged one
        for obj in (pending, staged):
            assert obj.oid in {o.oid for o in manager.range_query(obj.rect)}

        # the crash consumed nothing: a retry folds the full delta once
        stats = manager.compact()
        assert stats.applied_inserts == 2
        assert manager.epoch == before_epoch + 1
        assert manager.pending_ops == 0
        for obj in (pending, staged):
            hits = manager.range_query(obj.rect)
            assert sum(1 for o in hits if o.oid == obj.oid) == 1

    def test_mid_compaction_insert_validates_dims(self):
        rng, objects, manager = self._manager()
        manager.insert(_random_object(rng, 1000))
        bad = SpatialObject(3000, Rect((0, 0, 0), (1, 1, 1)))
        outcome = {}

        def racer():
            with pytest.raises(ValueError, match="dims"):
                manager.insert(bad)
            outcome["raised"] = True

        manager.compaction_fault_hook = racer
        manager.compact()
        manager.compaction_fault_hook = None
        assert outcome == {"raised": True}
        assert manager.pending_ops == 0  # the bad insert was never staged

    def test_refreeze_write_racing_compaction_raises(self):
        rng = random.Random(5)
        objects = [_random_object(rng, i) for i in range(20)]
        manager = SnapshotManager(
            build_rtree("quadratic", objects, max_entries=6),
            update_engine="refreeze",
        )
        # refreeze has no overlay to stage into: a racing write must raise
        with manager._write_lock:
            manager._compacting = True
        try:
            with pytest.raises(CompactionInProgressError):
                manager.insert(_random_object(rng, 1000))
            with pytest.raises(CompactionInProgressError):
                manager.delete(objects[0])
        finally:
            manager._compacting = False
