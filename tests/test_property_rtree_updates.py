"""Property-based stress test: random update sequences keep every invariant."""

import random

from hypothesis import given, settings, strategies as st

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree


def _random_object(rng, oid):
    low = (rng.uniform(0, 100), rng.uniform(0, 100))
    high = (low[0] + rng.uniform(0, 4), low[1] + rng.uniform(0, 4))
    return SpatialObject(oid, Rect(low, high))


class TestRandomUpdateSequences:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(VARIANT_NAMES),
        st.integers(min_value=4, max_value=10),
    )
    @settings(max_examples=12, deadline=None)
    def test_mixed_insert_delete_workload(self, seed, variant, max_entries):
        rng = random.Random(seed)
        live = [_random_object(rng, i) for i in range(60)]
        tree = build_rtree(variant, live, max_entries=max_entries)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        next_oid = len(live)

        for step in range(80):
            if live and rng.random() < 0.45:
                victim = live.pop(rng.randrange(len(live)))
                clipped.delete(victim)
            else:
                obj = _random_object(rng, next_oid)
                next_oid += 1
                live.append(obj)
                clipped.insert(obj)
            if step % 20 == 19:
                tree.check_invariants()
                clipped.check_clip_invariants()

        tree.check_invariants()
        clipped.check_clip_invariants()
        assert len(tree) == len(live)

        for _ in range(10):
            cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
            size = rng.uniform(1, 25)
            query = Rect((cx, cy), (cx + size, cy + size))
            expected = {o.oid for o in live if o.rect.intersects(query)}
            assert {o.oid for o in clipped.range_query(query)} == expected
