"""Tests for the measurement helpers (dead space, overlap, I/O optimality, storage)."""

import pytest

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.metrics.dead_space import average_dead_space, clipped_dead_space_summary, node_dead_space
from repro.metrics.io_optimality import io_optimality
from repro.metrics.node_stats import tree_stats
from repro.metrics.overlap import average_overlap, multi_covered_volume, node_overlap
from repro.metrics.storage_breakdown import storage_breakdown_percent
from repro.query.workload import RangeQueryWorkload
from repro.rtree.clipped import ClippedRTree
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.registry import build_rtree
from tests.conftest import make_random_objects


def _leaf(rects):
    node = Node(0, level=0)
    node.entries = [Entry(r, SpatialObject(i, r)) for i, r in enumerate(rects)]
    return node


class TestDeadSpace:
    def test_node_dead_space_simple(self):
        node = _leaf([Rect((0, 0), (1, 2)), Rect((1, 0), (2, 2))])
        assert node_dead_space(node) == pytest.approx(0.0)
        half_empty = _leaf([Rect((0, 0), (1, 2)), Rect((3, 0), (4, 2))])
        assert half_empty.mbb() == Rect((0, 0), (4, 2))
        assert node_dead_space(half_empty) == pytest.approx(0.5)

    def test_empty_node(self):
        assert node_dead_space(Node(0, level=0)) == 0.0

    def test_average_dead_space_filters(self):
        objects = make_random_objects(300, seed=71)
        tree = build_rtree("rstar", objects, max_entries=10)
        overall = average_dead_space(tree)
        leaves = average_dead_space(tree, leaves_only=True)
        internal = average_dead_space(tree, internal_only=True)
        assert 0.0 <= overall <= 1.0
        assert 0.0 <= leaves <= 1.0
        assert 0.0 <= internal <= 1.0
        with pytest.raises(ValueError):
            average_dead_space(tree, leaves_only=True, internal_only=True)

    def test_clipped_summary_consistency(self):
        objects = make_random_objects(300, seed=72)
        tree = build_rtree("rstar", objects, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        summary = clipped_dead_space_summary(clipped)
        assert summary.clipped <= summary.dead_space + 1e-9
        assert summary.remaining == pytest.approx(summary.dead_space - summary.clipped, abs=1e-9)
        assert 0.0 <= summary.clipped_share_of_dead_space <= 1.0


class TestOverlap:
    def test_multi_covered_volume(self):
        rects = [Rect((0, 0), (2, 2)), Rect((1, 1), (3, 3)), Rect((10, 10), (11, 11))]
        assert multi_covered_volume(rects) == pytest.approx(1.0)

    def test_multi_covered_needs_two_rects(self):
        assert multi_covered_volume([Rect((0, 0), (5, 5))]) == 0.0
        assert multi_covered_volume([]) == 0.0

    def test_triple_overlap_counted_once(self):
        rects = [Rect((0, 0), (2, 2))] * 3
        assert multi_covered_volume(rects) == pytest.approx(4.0)

    def test_node_overlap(self):
        node = _leaf([Rect((0, 0), (2, 2)), Rect((1, 1), (3, 3))])
        # MBB is 3x3 = 9; overlap region is 1.
        assert node_overlap(node) == pytest.approx(1.0 / 9.0)
        disjoint = _leaf([Rect((0, 0), (1, 1)), Rect((2, 2), (3, 3))])
        assert node_overlap(disjoint) == 0.0

    def test_average_overlap_range(self):
        objects = make_random_objects(300, seed=73)
        tree = build_rtree("quadratic", objects, max_entries=10)
        assert 0.0 <= average_overlap(tree) <= 1.0
        assert 0.0 <= average_overlap(tree, internal_only=False) <= 1.0


class TestIoOptimalityAndStats:
    def test_io_optimality_bounds(self):
        objects = make_random_objects(400, seed=74)
        tree = build_rtree("rrstar", objects, max_entries=10)
        workload = RangeQueryWorkload.from_objects(objects, target_results=3, seed=1)
        value = io_optimality(tree, workload.query_list(30))
        assert 0.0 < value <= 1.0

    def test_tree_stats(self):
        objects = make_random_objects(300, seed=75)
        tree = build_rtree("rstar", objects, max_entries=10)
        stats = tree_stats(tree)
        assert stats.size == 300
        assert stats.leaf_count + stats.internal_count == stats.node_count
        assert 0.0 < stats.avg_leaf_fill <= 1.0
        row = stats.as_row()
        assert row["objects"] == 300
        assert row["variant"] == "rstar"

    def test_storage_breakdown_percent_sums_to_100(self):
        objects = make_random_objects(400, seed=76)
        tree = build_rtree("rrstar", objects, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        breakdown = storage_breakdown_percent(clipped)
        total = breakdown["dir_nodes"] + breakdown["leaf_nodes"] + breakdown["clip_points"]
        assert total == pytest.approx(100.0)
        assert breakdown["avg_clip_points"] >= 0.0
