"""Unit tests for the Hilbert curve and the Hilbert R-tree."""

import random

import pytest

from repro.geometry.rect import Rect
from repro.query.range_query import brute_force_range
from repro.rtree.hilbert import HilbertRTree
from repro.rtree.hilbert_curve import HilbertMapper, hilbert_index, hilbert_point
from repro.rtree.str_bulk import str_bulk_load
from tests.conftest import make_random_objects


class TestHilbertCurve:
    def test_bijective_on_small_grid_2d(self):
        bits = 3
        seen = set()
        for x in range(8):
            for y in range(8):
                seen.add(hilbert_index((x, y), bits))
        assert seen == set(range(64))

    def test_bijective_on_small_grid_3d(self):
        bits = 2
        seen = set()
        for x in range(4):
            for y in range(4):
                for z in range(4):
                    seen.add(hilbert_index((x, y, z), bits))
        assert seen == set(range(64))

    def test_roundtrip_with_inverse(self):
        rng = random.Random(0)
        for _ in range(50):
            coords = (rng.randrange(256), rng.randrange(256))
            index = hilbert_index(coords, bits=8)
            assert hilbert_point(index, bits=8, dims=2) == coords

    def test_consecutive_indexes_are_grid_neighbours(self):
        bits = 4
        points = {hilbert_index((x, y), bits): (x, y) for x in range(16) for y in range(16)}
        for index in range(len(points) - 1):
            (x1, y1), (x2, y2) = points[index], points[index + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1, "the curve must be continuous"

    def test_mapper_clamps_out_of_range(self):
        mapper = HilbertMapper(Rect((0, 0), (10, 10)), bits=8)
        inside = mapper.grid_coords((5, 5))
        below = mapper.grid_coords((-100, -100))
        above = mapper.grid_coords((100, 100))
        assert below == (0, 0)
        assert above == (255, 255)
        assert 0 < inside[0] < 255

    def test_mapper_degenerate_dimension(self):
        mapper = HilbertMapper(Rect((0, 5), (10, 5)), bits=8)
        assert mapper.grid_coords((3, 5))[1] == 0

    def test_mapper_rect_uses_center(self):
        mapper = HilbertMapper(Rect((0, 0), (10, 10)), bits=8)
        rect = Rect((2, 2), (4, 4))
        assert mapper.index_of_rect(rect) == mapper.index_of_point((3, 3))


class TestHilbertRTree:
    def test_bulk_load_packs_leaves(self, medium_objects_2d):
        tree = HilbertRTree.bulk_load(medium_objects_2d, max_entries=10)
        tree.check_invariants()
        fills = [len(leaf.entries) for leaf in tree.leaves()]
        assert sum(fills) == len(medium_objects_2d)
        # Bulk loading should fill most leaves to (near) capacity.
        assert sum(fills) / (len(fills) * 10) > 0.8

    def test_bulk_load_query_correctness(self, medium_objects_2d):
        tree = HilbertRTree.bulk_load(medium_objects_2d, max_entries=10)
        query = Rect((10, 10), (35, 40))
        expected = {o.oid for o in brute_force_range(medium_objects_2d, query)}
        assert {o.oid for o in tree.range_query(query)} == expected

    def test_bulk_load_sets_lhv(self, small_objects_2d):
        tree = HilbertRTree.bulk_load(small_objects_2d, max_entries=8)
        for node in tree.nodes():
            assert node.lhv is not None

    def test_leaf_fill_parameter(self, medium_objects_2d):
        packed = HilbertRTree.bulk_load(medium_objects_2d, max_entries=10, leaf_fill=1.0)
        loose = HilbertRTree.bulk_load(medium_objects_2d, max_entries=10, leaf_fill=0.6)
        assert loose.leaf_count() > packed.leaf_count()

    def test_invalid_leaf_fill_rejected(self, small_objects_2d):
        with pytest.raises(ValueError):
            HilbertRTree.bulk_load(small_objects_2d, max_entries=8, leaf_fill=0.0)

    def test_bulk_load_empty_rejected(self):
        with pytest.raises(ValueError):
            HilbertRTree.bulk_load([], max_entries=8)

    def test_hilbert_clustering_beats_random_insertion_order(self):
        """Hilbert packing should produce nodes with little overlap."""
        from repro.metrics.overlap import average_overlap

        objects = make_random_objects(600, seed=8)
        tree = HilbertRTree.bulk_load(objects, max_entries=16)
        assert average_overlap(tree, internal_only=False) < 0.25


class TestStrBulkLoad:
    def test_str_invariants_and_correctness(self, medium_objects_2d):
        tree = str_bulk_load(medium_objects_2d, max_entries=10)
        tree.check_invariants()
        query = Rect((5, 5), (60, 60))
        expected = {o.oid for o in brute_force_range(medium_objects_2d, query)}
        assert {o.oid for o in tree.range_query(query)} == expected

    def test_str_3d(self, small_objects_3d):
        tree = str_bulk_load(small_objects_3d, max_entries=8)
        tree.check_invariants()

    def test_str_empty_rejected(self):
        with pytest.raises(ValueError):
            str_bulk_load([])

    def test_str_updatable_after_bulk_load(self, small_objects_2d):
        tree = str_bulk_load(small_objects_2d, max_entries=8)
        extra = make_random_objects(30, seed=42)
        for obj in extra:
            tree.insert(obj)
        tree.check_invariants()
        assert len(tree) == len(small_objects_2d) + 30
