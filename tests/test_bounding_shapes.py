"""Tests for the alternative bounding geometries (Figure 8/9 shapes)."""

import math
import random

import pytest

from repro.bounding.base import SHAPE_NAMES, bounding_shape, corner_points, dead_space_of_shape
from repro.bounding.circle import minimum_bounding_circle
from repro.bounding.convex_hull import ConvexPolygon, convex_hull
from repro.bounding.mcorner import m_corner_polygon
from repro.bounding.rotated_mbb import rotated_minimum_bounding_box
from repro.geometry.rect import Rect, mbb_of_rects


def _random_points(count, seed=0, extent=10.0):
    rng = random.Random(seed)
    return [(rng.uniform(0, extent), rng.uniform(0, extent)) for _ in range(count)]


class TestConvexHull:
    def test_square_hull(self):
        points = [(0, 0), (1, 0), (1, 1), (0, 1), (0.5, 0.5)]
        hull = convex_hull(points)
        assert hull.area() == pytest.approx(1.0)
        assert hull.num_points() == 4

    def test_collinear_points(self):
        hull = convex_hull([(0, 0), (1, 1), (2, 2)])
        assert hull.area() == 0.0
        assert hull.num_points() <= 2

    def test_hull_contains_all_points(self):
        points = _random_points(60, seed=1)
        hull = convex_hull(points)
        assert all(hull.contains_point(p) for p in points)

    def test_hull_area_never_exceeds_mbb(self):
        points = _random_points(40, seed=2)
        hull = convex_hull(points)
        xs, ys = zip(*points)
        mbb_area = (max(xs) - min(xs)) * (max(ys) - min(ys))
        assert hull.area() <= mbb_area + 1e-9

    def test_polygon_perimeter(self):
        square = ConvexPolygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.perimeter() == pytest.approx(8.0)

    def test_empty_polygon_rejected(self):
        with pytest.raises(ValueError):
            ConvexPolygon([])
        with pytest.raises(ValueError):
            convex_hull([])


class TestMinimumBoundingCircle:
    def test_two_points(self):
        circle = minimum_bounding_circle([(0, 0), (2, 0)])
        assert circle.center == pytest.approx((1.0, 0.0))
        assert circle.radius == pytest.approx(1.0)

    def test_contains_all_points(self):
        points = _random_points(80, seed=3)
        circle = minimum_bounding_circle(points)
        assert all(circle.contains_point(p) for p in points)

    def test_minimality_against_centroid_circle(self):
        points = _random_points(40, seed=4)
        circle = minimum_bounding_circle(points)
        cx = sum(p[0] for p in points) / len(points)
        cy = sum(p[1] for p in points) / len(points)
        naive_radius = max(math.dist((cx, cy), p) for p in points)
        assert circle.radius <= naive_radius + 1e-9

    def test_single_point(self):
        circle = minimum_bounding_circle([(3.0, 4.0)])
        assert circle.radius == 0.0
        assert circle.area() == 0.0

    def test_collinear_points(self):
        circle = minimum_bounding_circle([(0, 0), (1, 0), (4, 0)])
        assert circle.radius == pytest.approx(2.0)


class TestRotatedMbbAndMCorner:
    def test_rotated_box_beats_axis_aligned_for_diagonal_data(self):
        points = [(i, i + (0.1 if i % 2 else -0.1)) for i in range(10)]
        rotated = rotated_minimum_bounding_box(points)
        xs, ys = zip(*points)
        axis_aligned_area = (max(xs) - min(xs)) * (max(ys) - min(ys))
        assert rotated.area() < axis_aligned_area

    def test_rotated_box_contains_points(self):
        points = _random_points(30, seed=5)
        rotated = rotated_minimum_bounding_box(points)
        assert all(rotated.contains_point(p, eps=1e-6) for p in points)

    def test_mcorner_reduces_vertex_count(self):
        points = _random_points(50, seed=6)
        hull = convex_hull(points)
        four = m_corner_polygon(points, 4)
        five = m_corner_polygon(points, 5)
        assert four.num_points() <= 4 or four.num_points() <= hull.num_points()
        assert five.num_points() <= max(5, hull.num_points())

    def test_mcorner_contains_hull(self):
        points = _random_points(40, seed=7)
        four = m_corner_polygon(points, 4)
        assert all(four.contains_point(p, eps=1e-6) for p in points)

    def test_mcorner_area_at_least_hull(self):
        points = _random_points(40, seed=8)
        hull = convex_hull(points)
        four = m_corner_polygon(points, 4)
        assert four.area() >= hull.area() - 1e-9

    def test_mcorner_invalid_corner_count(self):
        with pytest.raises(ValueError):
            m_corner_polygon([(0, 0), (1, 1)], corners=2)


class TestBoundingShapeDispatch:
    @pytest.fixture
    def rects(self):
        rng = random.Random(9)
        rects = []
        for _ in range(12):
            low = (rng.uniform(0, 10), rng.uniform(0, 10))
            rects.append(Rect(low, (low[0] + rng.uniform(0.2, 2), low[1] + rng.uniform(0.2, 2))))
        return rects

    def test_all_shapes_constructible(self, rects):
        for name in SHAPE_NAMES:
            shape = bounding_shape(name, rects)
            assert shape.area() >= 0.0
            assert shape.num_points() >= 2

    def test_unknown_shape_rejected(self, rects):
        with pytest.raises(ValueError):
            bounding_shape("ellipse", rects)

    def test_dead_space_ordering(self, rects):
        mbb_dead = dead_space_of_shape(bounding_shape("MBB", rects), rects)
        hull_dead = dead_space_of_shape(bounding_shape("CH", rects), rects)
        assert hull_dead <= mbb_dead + 1e-9
        assert 0.0 <= hull_dead <= 1.0

    def test_corner_points_requires_2d(self):
        with pytest.raises(ValueError):
            corner_points([Rect((0, 0, 0), (1, 1, 1))])

    def test_mbb_shape_matches_rect_union(self, rects):
        shape = bounding_shape("MBB", rects)
        assert shape.area() == pytest.approx(mbb_of_rects(rects).volume())
