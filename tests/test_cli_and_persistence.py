"""Tests for the command-line interface and the tree persistence format."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.geometry.rect import Rect
from repro.query.range_query import brute_force_range
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree
from repro.storage.persistence import load_tree, save_tree
from tests.conftest import make_random_objects


class TestPersistence:
    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_roundtrip_plain_tree(self, variant, tmp_path, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        path = tmp_path / "index.cbbr"
        save_tree(tree, path)
        loaded, clipped = load_tree(path)
        assert clipped is None
        assert len(loaded) == len(tree)
        assert loaded.height == tree.height
        assert loaded.max_entries == tree.max_entries
        loaded.check_invariants()
        query = Rect((10, 10), (40, 40))
        expected = {o.oid for o in brute_force_range(medium_objects_2d, query)}
        assert {o.oid for o in loaded.range_query(query)} == expected

    def test_roundtrip_clipped_tree(self, tmp_path, medium_objects_2d):
        tree = build_rtree("rstar", medium_objects_2d, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        path = tmp_path / "clipped.cbbr"
        save_tree(clipped, path)
        loaded_tree, loaded_clipped = load_tree(path)
        assert loaded_clipped is not None
        assert loaded_clipped.store.total_clip_points() == clipped.store.total_clip_points()
        loaded_clipped.check_clip_invariants()
        query = Rect((0, 0), (50, 50))
        expected = {o.oid for o in brute_force_range(medium_objects_2d, query)}
        assert {o.oid for o in loaded_clipped.range_query(query)} == expected

    def test_roundtrip_3d(self, tmp_path, small_objects_3d):
        tree = build_rtree("quadratic", small_objects_3d, max_entries=8)
        clipped = ClippedRTree.wrap(tree)
        path = tmp_path / "tree3d.cbbr"
        save_tree(clipped, path)
        loaded_tree, loaded_clipped = load_tree(path)
        assert loaded_tree.dims == 3
        loaded_tree.check_invariants()
        assert loaded_clipped is not None

    def test_loaded_tree_supports_updates(self, tmp_path, small_objects_2d):
        tree = build_rtree("rstar", small_objects_2d, max_entries=8)
        path = tmp_path / "tree.cbbr"
        save_tree(tree, path)
        loaded, _ = load_tree(path)
        extra = make_random_objects(40, seed=77)
        for obj in extra:
            loaded.insert(obj)
        loaded.check_invariants()
        assert len(loaded) == len(small_objects_2d) + 40

    def test_rejects_non_tree_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not an index")
        with pytest.raises(ValueError):
            load_tree(path)


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "axo03" in output and "rea02" in output

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fig08(self, capsys):
        assert main(["run", "fig08"]) == 0
        output = capsys.readouterr().out
        assert "CBBSTA" in output

    def test_run_small_experiment_with_overrides(self, capsys):
        assert main(["run", "fig13", "--size", "300", "--max-entries", "16", "--queries", "5"]) == 0
        output = capsys.readouterr().out
        assert "CSKY" in output and "CSTA" in output

    def test_build_info(self, capsys):
        assert main(["build-info", "par02", "rstar", "--size", "300", "--max-entries", "16"]) == 0
        output = capsys.readouterr().out
        assert "dead space" in output
        assert "stairline" in output

    def test_build_info_rejects_unknown_names(self, capsys):
        assert main(["build-info", "nope", "rstar"]) == 2
        assert main(["build-info", "par02", "kd-tree"]) == 2
