"""Tests for the command-line interface and the tree persistence format."""

import struct

import pytest

from repro.cbb.clip_point import ClipPoint
from repro.cli import EXPERIMENTS, build_parser, main
from repro.geometry.rect import Rect
from repro.query.range_query import brute_force_range
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree
from repro.storage.persistence import _MAGIC, load_tree, save_tree
from tests.conftest import make_random_objects


class TestPersistence:
    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_roundtrip_plain_tree(self, variant, tmp_path, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        path = tmp_path / "index.cbbr"
        save_tree(tree, path)
        loaded, clipped = load_tree(path)
        assert clipped is None
        assert len(loaded) == len(tree)
        assert loaded.height == tree.height
        assert loaded.max_entries == tree.max_entries
        loaded.check_invariants()
        query = Rect((10, 10), (40, 40))
        expected = {o.oid for o in brute_force_range(medium_objects_2d, query)}
        assert {o.oid for o in loaded.range_query(query)} == expected

    def test_roundtrip_clipped_tree(self, tmp_path, medium_objects_2d):
        tree = build_rtree("rstar", medium_objects_2d, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        path = tmp_path / "clipped.cbbr"
        save_tree(clipped, path)
        loaded_tree, loaded_clipped = load_tree(path)
        assert loaded_clipped is not None
        assert loaded_clipped.store.total_clip_points() == clipped.store.total_clip_points()
        loaded_clipped.check_clip_invariants()
        query = Rect((0, 0), (50, 50))
        expected = {o.oid for o in brute_force_range(medium_objects_2d, query)}
        assert {o.oid for o in loaded_clipped.range_query(query)} == expected

    def test_roundtrip_3d(self, tmp_path, small_objects_3d):
        tree = build_rtree("quadratic", small_objects_3d, max_entries=8)
        clipped = ClippedRTree.wrap(tree)
        path = tmp_path / "tree3d.cbbr"
        save_tree(clipped, path)
        loaded_tree, loaded_clipped = load_tree(path)
        assert loaded_tree.dims == 3
        loaded_tree.check_invariants()
        assert loaded_clipped is not None

    def test_loaded_tree_supports_updates(self, tmp_path, small_objects_2d):
        tree = build_rtree("rstar", small_objects_2d, max_entries=8)
        path = tmp_path / "tree.cbbr"
        save_tree(tree, path)
        loaded, _ = load_tree(path)
        extra = make_random_objects(40, seed=77)
        for obj in extra:
            loaded.insert(obj)
        loaded.check_invariants()
        assert len(loaded) == len(small_objects_2d) + 40

    def test_rejects_non_tree_file(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"definitely not an index")
        with pytest.raises(ValueError):
            load_tree(path)

    def test_rejects_unknown_version(self, tmp_path, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        path = tmp_path / "future.cbbr"
        save_tree(tree, path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, len(_MAGIC), 99)
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            load_tree(path)

    def test_roundtrip_8d_clipped_tree(self, tmp_path):
        """Regression: the v1 32-bit mask field was too narrow for high d."""
        objects = make_random_objects(40, dims=8, seed=9)
        tree = build_rtree("quadratic", objects, max_entries=8)
        clipped = ClippedRTree.wrap(tree, method="stairline", k=4)
        path = tmp_path / "tree8d.cbbr"
        save_tree(clipped, path)
        loaded_tree, loaded_clipped = load_tree(path)
        assert loaded_tree.dims == 8
        assert loaded_clipped is not None
        assert dict(loaded_clipped.store.items()) == dict(clipped.store.items())
        loaded_clipped.check_clip_invariants()

    def test_roundtrip_mask_beyond_32_bits(self, tmp_path):
        """Masks with bits past position 31 survive the v2 ``<Q`` field.

        Organically clipping a >32-dimensional tree is infeasible (corner
        enumeration is exponential), so the wide mask is planted directly.
        """
        dims = 40
        objects = make_random_objects(12, dims=dims, seed=10)
        tree = build_rtree("quadratic", objects, max_entries=8)
        clipped = ClippedRTree(tree)
        wide_mask = (1 << 33) + 5
        coord = tuple(50.0 for _ in range(dims))
        clipped.store.put(tree.root_id, [ClipPoint(coord, wide_mask, score=1.0)])
        path = tmp_path / "wide.cbbr"
        save_tree(clipped, path)
        _, loaded_clipped = load_tree(path)
        (clip,) = loaded_clipped.store.get(tree.root_id)
        assert clip.mask == wide_mask
        assert clip.coord == coord

    def test_loads_v1_files(self, tmp_path, small_objects_2d):
        """Files written by the old 32-bit-mask format stay loadable."""
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        path = tmp_path / "legacy.cbbr"
        self._save_v1(clipped, path)
        loaded_tree, loaded_clipped = load_tree(path)
        assert len(loaded_tree) == len(tree)
        assert loaded_clipped is not None
        assert dict(loaded_clipped.store.items()) == dict(clipped.store.items())
        loaded_clipped.check_clip_invariants()

    @staticmethod
    def _save_v1(clipped, path):
        """Write ``clipped`` exactly as the version-1 format did."""
        tree = clipped.tree
        with path.open("wb") as out:
            out.write(_MAGIC)
            out.write(
                struct.pack(
                    "<HHIIIqI", 1, 1, tree.dims, tree.max_entries,
                    tree.min_entries, tree.root_id, len(tree),
                )
            )
            nodes = list(tree.nodes())
            out.write(struct.pack("<I", len(nodes)))
            for node in nodes:
                out.write(struct.pack("<qII", node.node_id, node.level, len(node.entries)))
                for entry in node.entries:
                    for value in entry.rect.low + entry.rect.high:
                        out.write(struct.pack("<d", value))
                    child = entry.child if entry.is_node_pointer else entry.child.oid
                    out.write(struct.pack("<q", child))
            clip_entries = list(clipped.store.items())
            out.write(struct.pack("<I", len(clip_entries)))
            for node_id, clips in clip_entries:
                out.write(struct.pack("<qI", node_id, len(clips)))
                for clip in clips:
                    out.write(struct.pack("<Id", clip.mask, clip.score))
                    for value in clip.coord:
                        out.write(struct.pack("<d", value))


class TestCli:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        assert "axo03" in output and "rea02" in output

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_fig08(self, capsys):
        assert main(["run", "fig08"]) == 0
        output = capsys.readouterr().out
        assert "CBBSTA" in output

    def test_run_small_experiment_with_overrides(self, capsys):
        assert main(["run", "fig13", "--size", "300", "--max-entries", "16", "--queries", "5"]) == 0
        output = capsys.readouterr().out
        assert "CSKY" in output and "CSTA" in output

    def test_build_info(self, capsys):
        assert main(["build-info", "par02", "rstar", "--size", "300", "--max-entries", "16"]) == 0
        output = capsys.readouterr().out
        assert "dead space" in output
        assert "stairline" in output

    def test_build_info_rejects_unknown_names(self, capsys):
        assert main(["build-info", "nope", "rstar"]) == 2
        assert main(["build-info", "par02", "kd-tree"]) == 2

    def test_update_engine_flag_parses(self):
        args = build_parser().parse_args(["run", "updates", "--update-engine", "refreeze"])
        assert args.update_engine == "refreeze"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "updates", "--update-engine", "eager"])

    def test_run_updates_experiment(self, capsys):
        assert main([
            "run", "updates", "--size", "150", "--queries", "4",
            "--max-entries", "8", "--update-engine", "refreeze",
        ]) == 0
        output = capsys.readouterr().out
        assert "refreeze_ms_per_update" in output
        assert "refreeze" in output

    def test_serve_command_runs_chaos_scenario(self, capsys):
        assert main([
            "serve", "--size", "500", "--requests", "60",
            "--max-entries", "16", "--chaos-seed", "11",
        ]) == 0
        output = capsys.readouterr().out
        # the robustness report surfaces the gated counters and the
        # explicit-response accounting line
        assert "chaos serving over rstar/par02" in output
        assert "breaker_opens" in output and "faults_injected" in output
        assert "explicit (ok/shed), 0 errors" in output

    def test_serve_command_rejects_unknown_dataset(self, capsys):
        assert main(["serve", "--dataset", "nope"]) == 2
        assert "unknown dataset" in capsys.readouterr().err
