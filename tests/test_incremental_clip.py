"""Dirty-node re-clipping ≡ full recomputation, for any update batch.

A node's clip points are a pure function of its own entry rectangles, so
re-clipping exactly the nodes whose entries changed
(:func:`repro.engine.incremental_clip.reclip_nodes_for_results`) must
leave the store identical to throwing everything away and running
``clip_all`` from scratch.  These tests apply random insert/delete
batches to the *bare* tree (no per-update clip maintenance), run one
incremental pass, and compare against the full recompute.
"""

import copy
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.incremental_clip import (
    dirty_node_ids,
    reclip_nodes,
    reclip_nodes_for_results,
)
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree


def _random_object(rng, oid):
    low = (rng.uniform(0, 100), rng.uniform(0, 100))
    high = (low[0] + rng.uniform(0, 5), low[1] + rng.uniform(0, 5))
    return SpatialObject(oid, Rect(low, high))


def _store_state(clipped):
    return dict(clipped.store.items())


def _full_recompute(clipped, engine="scalar"):
    fresh = ClippedRTree(copy.deepcopy(clipped.tree), clipped.config)
    fresh.clip_all(engine=engine)
    return _store_state(fresh)


class TestReclipForResults:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(VARIANT_NAMES),
        st.sampled_from(["scalar", "vectorized"]),
    )
    @settings(max_examples=10, deadline=None)
    def test_batch_reclip_equals_full_recompute(self, seed, variant, engine):
        rng = random.Random(seed)
        live = [_random_object(rng, i) for i in range(45)]
        clipped = ClippedRTree.wrap(
            build_rtree(variant, live, max_entries=6), method="stairline"
        )
        # Mutate the bare tree, exactly as SnapshotManager.compact does.
        results = []
        for step in range(30):
            if live and rng.random() < 0.5:
                victim = live.pop(rng.randrange(len(live)))
                results.append(clipped.tree.delete(victim))
            else:
                obj = _random_object(rng, 1000 + step)
                live.append(obj)
                results.append(clipped.tree.insert(obj))
        count = reclip_nodes_for_results(clipped, results, engine=engine)
        assert count >= 0
        assert _store_state(clipped) == _full_recompute(clipped)
        clipped.check_clip_invariants()

    def test_dirty_set_covers_removed_and_changed(self):
        rng = random.Random(4)
        live = [_random_object(rng, i) for i in range(40)]
        clipped = ClippedRTree.wrap(
            build_rtree("quadratic", live, max_entries=4), method="stairline"
        )
        results = [clipped.tree.delete(obj) for obj in live[:30]]
        dirty = dirty_node_ids(results)
        removed = set().union(*(r.removed_node_ids for r in results))
        # Heavy deletion must eliminate nodes; their clips must disappear.
        assert removed
        reclip_nodes_for_results(clipped, results)
        for node_id in removed - {n.node_id for n in clipped.tree.nodes()}:
            assert clipped.store.get(node_id) == []
        assert dirty
        assert _store_state(clipped) == _full_recompute(clipped)


class TestReclipNodes:
    def _clipped(self, seed=5):
        rng = random.Random(seed)
        live = [_random_object(rng, i) for i in range(35)]
        return ClippedRTree.wrap(
            build_rtree("quadratic", live, max_entries=6), method="stairline"
        )

    @pytest.mark.parametrize("engine", ["scalar", "vectorized"])
    def test_engines_agree(self, engine):
        clipped = self._clipped()
        node_ids = [node.node_id for node in clipped.tree.nodes()]
        before = _store_state(clipped)
        count = reclip_nodes(clipped, node_ids, engine=engine)
        assert count == len(node_ids)
        assert _store_state(clipped) == before

    def test_dead_node_ids_are_dropped_from_store(self):
        clipped = self._clipped()
        ghost_id = 10_000
        clipped.store.put(ghost_id, clipped.store.get(clipped.tree.root_id))
        assert reclip_nodes(clipped, [ghost_id]) == 0
        assert clipped.store.get(ghost_id) == []

    def test_clipped_rtree_wrapper_delegates(self):
        clipped = self._clipped()
        node_ids = [node.node_id for node in clipped.tree.nodes()]
        before = _store_state(clipped)
        for engine in ("scalar", "vectorized"):
            assert clipped.reclip_nodes(node_ids, engine=engine) == len(node_ids)
            assert _store_state(clipped) == before

    def test_rejects_unknown_engine(self):
        clipped = self._clipped()
        with pytest.raises(ValueError):
            reclip_nodes(clipped, [clipped.tree.root_id], engine="gpu")
        with pytest.raises(ValueError):
            clipped.reclip_nodes([clipped.tree.root_id], engine="gpu")
