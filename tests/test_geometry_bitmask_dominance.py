"""Unit tests for corner bitmasks and oriented dominance."""

import pytest

from repro.geometry.bitmask import (
    all_corner_masks,
    corner_of,
    flip_mask,
    mask_bits,
    mask_from_bits,
)
from repro.geometry.dominance import dominates, strictly_inside_corner_region


class TestBitmask:
    def test_mask_bits_roundtrip(self):
        for mask in range(16):
            bits = mask_bits(mask, 4)
            assert mask_from_bits(bits) == mask

    def test_mask_bits_values(self):
        assert mask_bits(0b101, 3) == (1, 0, 1)
        assert mask_from_bits((0, 1, 1)) == 0b110

    def test_flip_mask(self):
        assert flip_mask(0b00, 2) == 0b11
        assert flip_mask(0b101, 3) == 0b010
        assert flip_mask(flip_mask(0b0110, 4), 4) == 0b0110

    def test_all_corner_masks(self):
        assert list(all_corner_masks(2)) == [0, 1, 2, 3]
        assert len(list(all_corner_masks(3))) == 8

    def test_corner_of(self):
        low, high = (0.0, 1.0, 2.0), (10.0, 11.0, 12.0)
        assert corner_of(low, high, 0b000) == (0.0, 1.0, 2.0)
        assert corner_of(low, high, 0b111) == (10.0, 11.0, 12.0)
        assert corner_of(low, high, 0b010) == (0.0, 11.0, 2.0)


class TestDominance:
    def test_paper_example_dominance(self):
        # Figure 2: o4's 00-corner dominates o5's 00-corner w.r.t. R^00.
        o4_corner = (5.5, 1.0)
        o5_corner = (8.0, 2.0)
        assert dominates(o4_corner, o5_corner, mask=0b00)
        assert not dominates(o5_corner, o4_corner, mask=0b00)

    def test_orientation_matters(self):
        p, q = (1.0, 1.0), (2.0, 2.0)
        assert dominates(p, q, mask=0b00)   # closer to the min corner
        assert dominates(q, p, mask=0b11)   # closer to the max corner
        assert not dominates(p, q, mask=0b01)
        assert not dominates(p, q, mask=0b10)

    def test_no_self_dominance(self):
        p = (3.0, 4.0)
        assert not dominates(p, p, mask=0b00)
        assert not dominates(p, tuple(p), mask=0b11)

    def test_ties_require_strict_improvement(self):
        p, q = (1.0, 2.0), (1.0, 3.0)
        assert dominates(p, q, mask=0b00)   # equal x, strictly smaller y
        assert not dominates(q, p, mask=0b00)

    def test_incomparable_points(self):
        p, q = (1.0, 5.0), (2.0, 1.0)
        for mask in range(4):
            assert not dominates(p, q, mask) or not dominates(q, p, mask)
        assert not dominates(p, q, 0b00)
        assert not dominates(q, p, 0b00)

    def test_3d_dominance(self):
        p, q = (1.0, 1.0, 1.0), (2.0, 2.0, 2.0)
        assert dominates(p, q, mask=0b000)
        assert dominates(q, p, mask=0b111)
        assert not dominates(p, q, mask=0b001)


class TestStrictCornerRegion:
    def test_strictly_inside(self):
        # Region between anchor (5,5) and the max corner: points with both
        # coordinates strictly greater than 5 are inside.
        assert strictly_inside_corner_region((6, 6), (5, 5), mask=0b11)
        assert not strictly_inside_corner_region((5, 6), (5, 5), mask=0b11)
        assert not strictly_inside_corner_region((4, 6), (5, 5), mask=0b11)

    def test_min_corner_orientation(self):
        assert strictly_inside_corner_region((1, 1), (2, 2), mask=0b00)
        assert not strictly_inside_corner_region((2, 1), (2, 2), mask=0b00)

    def test_mixed_orientation(self):
        # mask 0b01: corner maximises x, minimises y.
        assert strictly_inside_corner_region((3, 1), (2, 2), mask=0b01)
        assert not strictly_inside_corner_region((1, 1), (2, 2), mask=0b01)

    def test_boundary_is_outside(self):
        anchor = (2.0, 2.0)
        assert not strictly_inside_corner_region(anchor, anchor, mask=0b11)
