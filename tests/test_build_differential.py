"""Differential suite: vectorized construction ≡ scalar construction.

Two contracts, each pinned exactly (no tolerances):

1. ``bulk_clip`` / ``clip_all(engine="vectorized")`` must fill a
   :class:`ClipStore` *identical* to the scalar ``compute_clip_points``
   path — same node set, same clip-point coordinates and corner masks,
   same scores, same (score-descending) per-node ordering, same byte
   accounting — across every tree variant × dataset × clipping method.

2. ``build_columnar_str`` must produce a :class:`ColumnarIndex`
   array-for-array identical to freezing the scalar STR builder's tree
   (``ColumnarIndex.from_tree(str_bulk_load(...))``), including the
   synthesized node ids and the permuted object order.
"""

import numpy as np
import pytest

from repro.cbb.clipping import ClippingConfig
from repro.datasets import generate
from repro.engine import ColumnarIndex, build_columnar_str, bulk_clip
from repro.query.range_query import brute_force_range
from repro.query.workload import RangeQueryWorkload
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.rtree.str_bulk import str_bulk_load

DATASETS = (("uniform02", 420), ("rea02", 380), ("axo03", 320), ("par03", 300))
VARIANTS = ("quadratic", "hilbert", "rstar", "rrstar", "str")
METHODS = ("skyline", "stairline")

SNAPSHOT_ARRAYS = (
    "is_leaf",
    "entry_start",
    "entry_count",
    "node_ids",
    "entry_lows",
    "entry_highs",
    "entry_child",
    "clip_start",
    "clip_count",
    "clip_coords",
    "clip_is_high",
)


def _store_table(store):
    """The full observable content of a ClipStore, exact floats included."""
    return {
        node_id: [(cp.coord, cp.mask, cp.score) for cp in points]
        for node_id, points in store.items()
    }


def _assert_stores_identical(scalar_store, vector_store):
    scalar_table = _store_table(scalar_store)
    vector_table = _store_table(vector_store)
    # Same entries *and* the same insertion (iteration) order — persisted
    # files serialize ``store.items()`` and must be byte-identical.
    assert list(vector_table) == list(scalar_table)
    for node_id, scalar_points in scalar_table.items():
        assert vector_table[node_id] == scalar_points, f"node {node_id}"
    assert vector_store.total_clip_points() == scalar_store.total_clip_points()
    assert vector_store.storage_bytes() == scalar_store.storage_bytes()
    assert vector_store.average_clip_points() == scalar_store.average_clip_points()


class TestBulkClipDifferential:
    @pytest.mark.parametrize("dataset,size", DATASETS)
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("method", METHODS)
    def test_bulk_clip_matches_scalar(self, dataset, size, variant, method):
        objects = generate(dataset, size, seed=11)
        tree = build_rtree(variant, objects, max_entries=8)
        scalar = ClippedRTree(tree, ClippingConfig(method=method))
        scalar_count = scalar.clip_all(engine="scalar")
        vector = ClippedRTree(tree, ClippingConfig(method=method))
        vector_count = vector.clip_all(engine="vectorized")
        assert vector_count == scalar_count
        # Both engines report the same thing: the resulting store length
        # (the number of nodes holding clip points).
        assert scalar_count == len(scalar.store)
        assert vector_count == len(vector.store)
        _assert_stores_identical(scalar.store, vector.store)

    @pytest.mark.parametrize("k,tau", [(0, 0.025), (1, 0.0), (3, 0.1), (None, 0.0)])
    def test_bulk_clip_matches_scalar_across_k_tau(self, k, tau):
        objects = generate("axo03", 300, seed=4)
        tree = build_rtree("rstar", objects, max_entries=10)
        config = ClippingConfig(method="stairline", k=k, tau=tau)
        scalar = ClippedRTree(tree, config)
        scalar.clip_all(engine="scalar")
        _assert_stores_identical(scalar.store, bulk_clip(tree, config))

    def test_bulk_clip_refills_wrapper_store_in_place(self):
        objects = generate("uniform02", 300, seed=9)
        tree = build_rtree("str", objects, max_entries=8)
        clipped = ClippedRTree(tree, ClippingConfig(method="stairline"))
        clipped.clip_all(engine="vectorized")
        store = clipped.store
        before = _store_table(store)
        assert before
        clipped.clip_all(engine="vectorized")
        assert clipped.store is store
        assert _store_table(store) == before

    def test_bulk_clip_empty_tree(self):
        tree = build_rtree("quadratic", generate("uniform02", 5, seed=1), max_entries=4)
        for obj in list(tree.objects()):
            tree.delete(obj)
        assert len(tree) == 0
        assert len(bulk_clip(tree, ClippingConfig())) == 0

    def test_unknown_engine_rejected(self):
        objects = generate("uniform02", 50, seed=2)
        clipped = ClippedRTree(build_rtree("str", objects, max_entries=8))
        with pytest.raises(ValueError, match="unknown clip engine"):
            clipped.clip_all(engine="gpu")

    def test_persisted_bytes_identical_across_engines(self, tmp_path):
        objects = generate("uniform02", 500, seed=13)
        tree = build_rtree("str", objects, max_entries=8)
        from repro.storage.persistence import save_tree

        paths = {}
        for engine in ("scalar", "vectorized"):
            clipped = ClippedRTree(tree, ClippingConfig(method="stairline"))
            clipped.clip_all(engine=engine)
            paths[engine] = tmp_path / f"{engine}.bin"
            save_tree(clipped, paths[engine])
        assert paths["scalar"].read_bytes() == paths["vectorized"].read_bytes()

    def test_clipped_queries_agree_after_vectorized_clipping(self):
        objects = generate("rea02", 400, seed=6)
        tree = build_rtree("rrstar", objects, max_entries=8)
        clipped = ClippedRTree.wrap(tree, method="stairline", engine="vectorized")
        clipped.check_clip_invariants()
        queries = RangeQueryWorkload.from_objects(
            objects, target_results=8, seed=3
        ).query_list(25)
        for query in queries:
            expected = {o.oid for o in brute_force_range(objects, query)}
            assert {o.oid for o in clipped.range_query(query)} == expected


class TestBuilderDifferential:
    @pytest.mark.parametrize("dataset,size", DATASETS)
    @pytest.mark.parametrize("max_entries", (8, 24))
    def test_arrays_identical_to_scalar_str(self, dataset, size, max_entries):
        objects = generate(dataset, size, seed=11)
        scalar = ColumnarIndex.from_tree(str_bulk_load(objects, max_entries=max_entries))
        vector = build_columnar_str(objects, max_entries=max_entries)
        for name in SNAPSHOT_ARRAYS:
            left, right = getattr(scalar, name), getattr(vector, name)
            assert left.dtype == right.dtype, name
            assert np.array_equal(left, right), name
        assert len(scalar.objects) == len(vector.objects)
        assert all(a is b for a, b in zip(scalar.objects, vector.objects))

    @pytest.mark.parametrize(
        "size,kwargs",
        [
            (10, {}),  # single leaf
            (60, {"leaf_fill": 0.7}),
            (300, {"min_entries": 3}),
            (300, {"leaf_fill": 0.5, "min_entries": 2}),
        ],
    )
    def test_arrays_identical_on_edge_shapes(self, size, kwargs):
        objects = generate("uniform02", size, seed=5)
        scalar = ColumnarIndex.from_tree(str_bulk_load(objects, max_entries=8, **kwargs))
        vector = build_columnar_str(objects, max_entries=8, **kwargs)
        for name in SNAPSHOT_ARRAYS:
            assert np.array_equal(getattr(scalar, name), getattr(vector, name)), name

    def test_source_free_snapshot_semantics(self):
        objects = generate("uniform02", 200, seed=8)
        snapshot = build_columnar_str(objects, max_entries=8)
        assert snapshot.source is None
        assert not snapshot.is_stale
        assert snapshot.refresh() is snapshot
        assert not snapshot.has_clips
        assert len(snapshot) == len(objects)

    def test_batch_queries_match_brute_force(self):
        objects = generate("uniform03", 400, seed=12)
        snapshot = build_columnar_str(objects, max_entries=10)
        queries = RangeQueryWorkload.from_objects(
            objects, target_results=6, seed=4
        ).query_list(20)
        for query, result in zip(queries, snapshot.range_query_batch(queries)):
            expected = {o.oid for o in brute_force_range(objects, query)}
            assert {o.oid for o in result} == expected

    def test_validation_errors(self):
        objects = generate("uniform02", 20, seed=1)
        with pytest.raises(ValueError, match="empty object collection"):
            build_columnar_str([])
        with pytest.raises(ValueError, match="leaf_fill"):
            build_columnar_str(objects, leaf_fill=0.0)
        with pytest.raises(ValueError, match="max_entries"):
            build_columnar_str(objects, max_entries=1)
