"""Tests for the spatial-join strategies (INLJ and STT)."""

import pytest

from repro.join.inlj import index_nested_loop_join
from repro.join.result import JoinResult
from repro.join.stt import synchronized_tree_traversal_join
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree
from tests.conftest import make_random_objects


def _brute_force_pairs(left, right):
    return {
        (a.oid, b.oid) for a in left for b in right if a.rect.intersects(b.rect)
    }


@pytest.fixture
def join_inputs():
    left = make_random_objects(150, seed=61, extent=50.0, max_side=4.0)
    right = make_random_objects(120, seed=62, extent=50.0, max_side=4.0)
    return left, right


class TestInlj:
    def test_matches_brute_force(self, join_inputs):
        left, right = join_inputs
        tree = build_rtree("rstar", right, max_entries=8)
        result = index_nested_loop_join(left, tree)
        expected = _brute_force_pairs(left, right)
        assert {(a.oid, b.oid) for a, b in result.pairs} == expected

    def test_clipped_inner_index_gives_same_pairs(self, join_inputs):
        left, right = join_inputs
        tree = build_rtree("rstar", right, max_entries=8)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        plain = index_nested_loop_join(left, tree)
        fast = index_nested_loop_join(left, clipped)
        assert {(a.oid, b.oid) for a, b in plain.pairs} == {(a.oid, b.oid) for a, b in fast.pairs}
        assert fast.inner_stats.leaf_accesses <= plain.inner_stats.leaf_accesses

    def test_uncollected_mode_counts_pairs(self, join_inputs):
        left, right = join_inputs
        tree = build_rtree("quadratic", right, max_entries=8)
        collected = index_nested_loop_join(left, tree, collect_pairs=True)
        counted = index_nested_loop_join(left, tree, collect_pairs=False)
        assert counted.pairs == []
        assert collected.pair_count == len(collected.pairs)
        assert counted.pair_count == len(collected.pairs)
        # Deprecated alias, kept for one cycle — prefer ``pair_count``.
        assert counted.inner_stats.extra["uncollected_pairs"] == len(collected.pairs)
        assert "uncollected_pairs" not in collected.inner_stats.extra

    def test_empty_outer(self, join_inputs):
        _, right = join_inputs
        tree = build_rtree("quadratic", right, max_entries=8)
        result = index_nested_loop_join([], tree)
        assert result.pair_count == 0
        assert result.inner_stats.leaf_accesses == 0


class TestStt:
    @pytest.mark.parametrize("variant", VARIANT_NAMES)
    def test_matches_brute_force_all_variants(self, join_inputs, variant):
        left, right = join_inputs
        left_tree = build_rtree(variant, left, max_entries=8)
        right_tree = build_rtree(variant, right, max_entries=8)
        result = synchronized_tree_traversal_join(left_tree, right_tree)
        assert {(a.oid, b.oid) for a, b in result.pairs} == _brute_force_pairs(left, right)

    def test_clipped_join_same_pairs_fewer_accesses(self, join_inputs):
        left, right = join_inputs
        left_tree = build_rtree("rstar", left, max_entries=8)
        right_tree = build_rtree("rstar", right, max_entries=8)
        clipped_left = ClippedRTree.wrap(left_tree, method="stairline")
        clipped_right = ClippedRTree.wrap(right_tree, method="stairline")
        plain = synchronized_tree_traversal_join(left_tree, right_tree)
        fast = synchronized_tree_traversal_join(clipped_left, clipped_right)
        assert {(a.oid, b.oid) for a, b in plain.pairs} == {(a.oid, b.oid) for a, b in fast.pairs}
        assert fast.total_leaf_accesses <= plain.total_leaf_accesses

    def test_contributing_accesses_require_emitted_pairs(self, join_inputs):
        left, right = join_inputs
        result = synchronized_tree_traversal_join(
            build_rtree("rstar", left, max_entries=8),
            build_rtree("rstar", right, max_entries=8),
        )
        assert result.pair_count == len(result.pairs) > 0
        for stats in (result.outer_stats, result.inner_stats):
            assert stats.contributing_leaf_accesses <= stats.leaf_accesses

    def test_mixed_clipped_and_plain_inputs(self, join_inputs):
        left, right = join_inputs
        left_tree = build_rtree("quadratic", left, max_entries=8)
        right_tree = build_rtree("quadratic", right, max_entries=8)
        clipped_left = ClippedRTree.wrap(left_tree)
        result = synchronized_tree_traversal_join(clipped_left, right_tree)
        assert {(a.oid, b.oid) for a, b in result.pairs} == _brute_force_pairs(left, right)

    def test_disjoint_inputs_produce_nothing(self):
        left = make_random_objects(60, seed=63, extent=10.0)
        right = [o for o in make_random_objects(60, seed=64, extent=10.0)]
        shifted = [type(o)(o.oid, o.rect.translate((1000.0, 1000.0))) for o in right]
        left_tree = build_rtree("quadratic", left, max_entries=8)
        right_tree = build_rtree("quadratic", shifted, max_entries=8)
        result = synchronized_tree_traversal_join(left_tree, right_tree)
        assert result.pair_count == 0
        # Disjoint root MBBs: the join answers without accessing any node.
        assert result.outer_stats.total_accesses == 0
        assert result.inner_stats.total_accesses == 0

    def test_trees_of_different_heights(self):
        left = make_random_objects(500, seed=65, extent=50.0)
        right = make_random_objects(30, seed=66, extent=50.0)
        left_tree = build_rtree("rstar", left, max_entries=8)
        right_tree = build_rtree("rstar", right, max_entries=8)
        assert left_tree.height > right_tree.height
        result = synchronized_tree_traversal_join(left_tree, right_tree)
        assert {(a.oid, b.oid) for a, b in result.pairs} == _brute_force_pairs(left, right)

    def test_join_result_helpers(self):
        result = JoinResult()
        assert result.pair_count == 0
        assert result.total_leaf_accesses == 0
