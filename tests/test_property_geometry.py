"""Property-based tests (hypothesis) for the geometric primitives."""

from hypothesis import given, settings, strategies as st

from repro.geometry.bitmask import flip_mask
from repro.geometry.dominance import dominates
from repro.geometry.rect import Rect, mbb_of_rects
from repro.geometry.union_volume import dead_space_fraction, union_volume

coord = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False, width=32)


@st.composite
def rects(draw, dims=2):
    low = [draw(coord) for _ in range(dims)]
    extent = [draw(st.floats(min_value=0, max_value=100, allow_nan=False, width=32)) for _ in range(dims)]
    high = [lo + e for lo, e in zip(low, extent)]
    return Rect(low, high)


@st.composite
def points(draw, dims=2):
    return tuple(draw(coord) for _ in range(dims))


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_symmetry(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        assert a.intersection_volume(b) == b.intersection_volume(a)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        union = a.union(b)
        assert union.contains(a)
        assert union.contains(b)
        assert union.volume() >= max(a.volume(), b.volume())

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains(inter)
            assert b.contains(inter)
            assert inter.volume() <= min(a.volume(), b.volume()) + 1e-6

    @given(rects())
    def test_enlargement_of_self_is_zero(self, rect):
        assert rect.enlargement(rect) == 0.0
        assert rect.contains(rect)
        assert rect.intersects(rect)

    @given(rects(), rects())
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(st.lists(rects(), min_size=1, max_size=10))
    def test_mbb_contains_all(self, collection):
        mbb = mbb_of_rects(collection)
        assert all(mbb.contains(r) for r in collection)

    @given(rects(dims=3))
    def test_corners_are_inside(self, rect):
        for mask in range(8):
            assert rect.contains_point(rect.corner(mask))

    @given(rects(dims=2), st.integers(min_value=0, max_value=3))
    def test_opposite_corners_span_rect(self, rect, mask):
        a = rect.corner(mask)
        b = rect.corner(flip_mask(mask, 2))
        reconstructed = Rect(
            tuple(min(x, y) for x, y in zip(a, b)), tuple(max(x, y) for x, y in zip(a, b))
        )
        assert reconstructed == rect


class TestDominanceProperties:
    @given(points(), points(), st.integers(min_value=0, max_value=3))
    def test_antisymmetry(self, p, q, mask):
        assert not (dominates(p, q, mask) and dominates(q, p, mask))

    @given(points(), points(), st.integers(min_value=0, max_value=3))
    def test_flip_mask_inverts_direction(self, p, q, mask):
        if dominates(p, q, mask):
            assert dominates(q, p, flip_mask(mask, 2))

    @given(points(dims=3), points(dims=3), points(dims=3), st.integers(min_value=0, max_value=7))
    @settings(max_examples=60)
    def test_transitivity(self, p, q, r, mask):
        if dominates(p, q, mask) and dominates(q, r, mask):
            assert dominates(p, r, mask)


class TestUnionVolumeProperties:
    @given(st.lists(rects(), min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_union_bounded_by_sum_and_max(self, collection):
        total = union_volume(collection)
        assert total <= sum(r.volume() for r in collection) + 1e-6
        assert total >= max(r.volume() for r in collection) - 1e-6

    @given(st.lists(rects(), min_size=1, max_size=6), rects())
    @settings(max_examples=60)
    def test_union_monotone_in_inputs(self, collection, extra):
        assert union_volume(collection + [extra]) >= union_volume(collection) - 1e-6

    @given(st.lists(rects(), min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_dead_space_fraction_in_unit_interval(self, collection):
        mbb = mbb_of_rects(collection)
        fraction = dead_space_fraction(mbb, collection)
        assert 0.0 <= fraction <= 1.0
