"""Differential-testing harness for the spatial joins.

Four implementations must enumerate the same join:

1. the brute-force nested loop over the raw objects (ground truth);
2. the scalar INLJ (``index_nested_loop_join``);
3. the scalar STT (``synchronized_tree_traversal_join``);
4. the columnar batch joins (``inlj_batch`` / ``stt_batch``) over
   :class:`ColumnarIndex` snapshots.

On top of the pair sets, the columnar joins must report **identical**
``pair_count`` and ``IOStats`` (leaf, contributing-leaf, and internal
accesses on both sides, plus the deprecated ``uncollected_pairs`` alias)
to their scalar counterparts — across every registered R-tree variant ×
dataset × clipped/plain, including disjoint inputs, trees of unequal
height, single-leaf trees, and empty trees.

The suite also pins the fixed accounting semantics: non-emitting
leaf-leaf pairings are *not* contributing accesses, and a root pair that
fails the (clipped) intersection test accesses nothing at all.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets.registry import DATASET_NAMES, generate
from repro.engine import ColumnarIndex, inlj_batch, stt_batch
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.join import execute_join
from repro.join.inlj import index_nested_loop_join
from repro.join.stt import synchronized_tree_traversal_join
from repro.rtree.clipped import ClippedRTree
from repro.rtree.quadratic import QuadraticRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree
from tests.conftest import make_random_objects

ALL_VARIANTS = VARIANT_NAMES + ("str",)


def _brute_force_pairs(left, right):
    return {(a.oid, b.oid) for a in left for b in right if a.rect.intersects(b.rect)}


def _pair_oids(result):
    return {(a.oid, b.oid) for a, b in result.pairs}


def _stats_tuple(stats):
    return (
        stats.leaf_accesses,
        stats.contributing_leaf_accesses,
        stats.internal_accesses,
        stats.extra.get("uncollected_pairs"),
    )


def _assert_join_engines_agree(left_objects, right_objects, left_index, right_index):
    """Scalar ≡ columnar on pairs, counts, and both sides' IOStats."""
    expected = _brute_force_pairs(left_objects, right_objects)
    left_snap = ColumnarIndex.from_tree(left_index)
    right_snap = ColumnarIndex.from_tree(right_index)

    for collect in (True, False):
        scalar_inlj = index_nested_loop_join(
            left_objects, right_index, collect_pairs=collect
        )
        batch_inlj = inlj_batch(left_objects, right_snap, collect_pairs=collect)
        scalar_stt = synchronized_tree_traversal_join(
            left_index, right_index, collect_pairs=collect
        )
        batch_stt = stt_batch(left_snap, right_snap, collect_pairs=collect)

        for result in (scalar_inlj, batch_inlj, scalar_stt, batch_stt):
            assert result.pair_count == len(expected)
            if collect:
                assert _pair_oids(result) == expected
            else:
                assert result.pairs == []
                assert result.inner_stats.extra["uncollected_pairs"] == len(expected)

        assert _stats_tuple(batch_inlj.inner_stats) == _stats_tuple(
            scalar_inlj.inner_stats
        )
        assert _stats_tuple(batch_inlj.outer_stats) == _stats_tuple(
            scalar_inlj.outer_stats
        )
        assert _stats_tuple(batch_stt.inner_stats) == _stats_tuple(
            scalar_stt.inner_stats
        )
        assert _stats_tuple(batch_stt.outer_stats) == _stats_tuple(
            scalar_stt.outer_stats
        )


class TestAcrossVariants:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_plain_trees(self, variant):
        left = make_random_objects(170, seed=61, extent=50.0, max_side=4.0)
        right = make_random_objects(140, seed=62, extent=50.0, max_side=4.0)
        left_tree = build_rtree(variant, left, max_entries=8)
        right_tree = build_rtree(variant, right, max_entries=8)
        _assert_join_engines_agree(left, right, left_tree, right_tree)

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_clipped_trees(self, variant):
        left = make_random_objects(170, seed=63, extent=50.0, max_side=4.0)
        right = make_random_objects(140, seed=64, extent=50.0, max_side=4.0)
        left_index = ClippedRTree.wrap(
            build_rtree(variant, left, max_entries=8), method="stairline"
        )
        right_index = ClippedRTree.wrap(
            build_rtree(variant, right, max_entries=8), method="stairline"
        )
        _assert_join_engines_agree(left, right, left_index, right_index)

    @pytest.mark.parametrize("method", ["skyline", "stairline"])
    def test_clipping_methods_and_mixed_inputs(self, method):
        left = make_random_objects(200, seed=65, extent=40.0, max_side=5.0)
        right = make_random_objects(160, seed=66, extent=40.0, max_side=5.0)
        left_tree = build_rtree("rstar", left, max_entries=10)
        right_tree = build_rtree("rstar", right, max_entries=10)
        clipped_left = ClippedRTree.wrap(left_tree, method=method)
        # Clipped ⋈ plain exercises one-sided pruning in both executors.
        _assert_join_engines_agree(left, right, clipped_left, right_tree)


class TestAcrossDatasets:
    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    def test_dataset_self_join(self, dataset):
        left = generate(dataset, 150, seed=21)
        right = generate(dataset, 130, seed=22)
        left_index = ClippedRTree.wrap(
            build_rtree("str", left, max_entries=10), method="stairline"
        )
        right_index = build_rtree("str", right, max_entries=10)
        _assert_join_engines_agree(left, right, left_index, right_index)


class TestShapeEdgeCases:
    def test_trees_of_unequal_height_both_directions(self):
        big = make_random_objects(500, seed=65, extent=50.0)
        small = make_random_objects(30, seed=66, extent=50.0)
        big_tree = build_rtree("rstar", big, max_entries=8)
        small_tree = build_rtree("rstar", small, max_entries=8)
        assert big_tree.height > small_tree.height
        _assert_join_engines_agree(big, small, big_tree, small_tree)
        _assert_join_engines_agree(small, big, small_tree, big_tree)

    def test_single_leaf_trees(self):
        left = make_random_objects(5, seed=7)
        right = make_random_objects(5, seed=8)
        left_tree = build_rtree("quadratic", left, max_entries=8)
        right_tree = build_rtree("quadratic", right, max_entries=8)
        assert left_tree.height == right_tree.height == 1
        _assert_join_engines_agree(left, right, left_tree, right_tree)

    def test_empty_trees(self):
        objects = make_random_objects(40, seed=5)
        tree = build_rtree("quadratic", objects, max_entries=8)
        empty = QuadraticRTree(dims=2, max_entries=4)
        for left_objs, right_objs, left_tree, right_tree in (
            ([], objects, empty, tree),
            (objects, [], tree, empty),
            ([], [], empty, QuadraticRTree(dims=2, max_entries=4)),
        ):
            _assert_join_engines_agree(left_objs, right_objs, left_tree, right_tree)


class TestFixedAccounting:
    """Regression pins for the two accounting bugs this suite was built on."""

    @staticmethod
    def _lattice(offset, count=40):
        """Tiny boxes on an integer lattice, shifted by ``offset``."""
        side = 10
        return [
            SpatialObject(
                i,
                Rect(
                    (i % side + offset, i // side + offset),
                    (i % side + offset + 0.2, i // side + offset + 0.2),
                ),
            )
            for i in range(count)
        ]

    def test_disjoint_roots_access_nothing(self):
        left = make_random_objects(60, seed=63, extent=10.0)
        right = [
            type(o)(o.oid, o.rect.translate((1000.0, 1000.0)))
            for o in make_random_objects(60, seed=64, extent=10.0)
        ]
        left_tree = build_rtree("quadratic", left, max_entries=8)
        right_tree = build_rtree("quadratic", right, max_entries=8)
        _assert_join_engines_agree(left, right, left_tree, right_tree)
        result = synchronized_tree_traversal_join(left_tree, right_tree)
        assert result.pair_count == 0
        assert result.total_leaf_accesses == 0
        assert result.outer_stats.total_accesses == 0
        assert result.inner_stats.total_accesses == 0

    def test_non_emitting_leaves_do_not_contribute(self):
        # Interleaved lattices: node MBBs overlap heavily, but no object
        # pair intersects — every leaf access must be non-contributing.
        left = self._lattice(0.0)
        right = self._lattice(0.5)
        left_tree = build_rtree("quadratic", left, max_entries=4)
        right_tree = build_rtree("quadratic", right, max_entries=4)
        _assert_join_engines_agree(left, right, left_tree, right_tree)
        result = synchronized_tree_traversal_join(left_tree, right_tree)
        assert result.pair_count == 0
        assert result.total_leaf_accesses > 0
        assert result.outer_stats.contributing_leaf_accesses == 0
        assert result.inner_stats.contributing_leaf_accesses == 0

    def test_contributions_bounded_by_leaf_accesses(self):
        left = make_random_objects(120, seed=91, extent=30.0, max_side=3.0)
        right = make_random_objects(120, seed=92, extent=30.0, max_side=3.0)
        result = synchronized_tree_traversal_join(
            build_rtree("rstar", left, max_entries=8),
            build_rtree("rstar", right, max_entries=8),
        )
        assert result.pair_count > 0
        for stats in (result.outer_stats, result.inner_stats):
            assert 0 < stats.contributing_leaf_accesses <= stats.leaf_accesses


class TestExecuteJoinDispatch:
    def test_engines_and_algorithms(self, small_objects_2d):
        left = small_objects_2d
        right = make_random_objects(50, seed=44)
        left_tree = build_rtree("rstar", left, max_entries=8)
        right_tree = build_rtree("rstar", right, max_entries=8)
        expected = _brute_force_pairs(left, right)
        for engine in ("scalar", "columnar"):
            stt = execute_join(left_tree, right_tree, algorithm="stt", engine=engine)
            inlj = execute_join(left, right_tree, algorithm="inlj", engine=engine)
            assert _pair_oids(stt) == _pair_oids(inlj) == expected

    def test_precomputed_snapshots_are_accepted(self, small_objects_2d):
        right = make_random_objects(50, seed=44)
        left_tree = build_rtree("rstar", small_objects_2d, max_entries=8)
        right_tree = build_rtree("rstar", right, max_entries=8)
        direct = execute_join(left_tree, right_tree, engine="columnar")
        reused = execute_join(
            ColumnarIndex.from_tree(left_tree),
            ColumnarIndex.from_tree(right_tree),
            engine="columnar",
        )
        assert _pair_oids(reused) == _pair_oids(direct)
        assert reused.total_leaf_accesses == direct.total_leaf_accesses

    def test_unknown_engine_and_algorithm_rejected(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        with pytest.raises(ValueError):
            execute_join(tree, tree, engine="gpu")
        with pytest.raises(ValueError):
            execute_join(tree, tree, algorithm="hash")

    def test_dimension_mismatch_rejected(self, small_objects_2d, small_objects_3d):
        tree_2d = ColumnarIndex.from_tree(
            build_rtree("quadratic", small_objects_2d, max_entries=8)
        )
        tree_3d = ColumnarIndex.from_tree(
            build_rtree("quadratic", small_objects_3d, max_entries=8)
        )
        with pytest.raises(ValueError):
            stt_batch(tree_2d, tree_3d)
        with pytest.raises(ValueError):
            inlj_batch(small_objects_3d, tree_2d)


box = st.tuples(
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False, width=32),
    st.floats(min_value=0.0, max_value=40.0, allow_nan=False, width=32),
    st.floats(min_value=0.0, max_value=6.0, allow_nan=False, width=32),
    st.floats(min_value=0.0, max_value=6.0, allow_nan=False, width=32),
)


def _objects_from(boxes):
    return [
        SpatialObject(i, Rect((x, y), (x + w, y + h)))
        for i, (x, y, w, h) in enumerate(boxes)
    ]


class TestJoinProperties:
    @given(
        st.lists(box, min_size=1, max_size=40),
        st.lists(box, min_size=1, max_size=40),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_inputs_agree_everywhere(self, left_boxes, right_boxes):
        left = _objects_from(left_boxes)
        right = _objects_from(right_boxes)
        left_index = ClippedRTree.wrap(
            build_rtree("quadratic", left, max_entries=4), method="stairline"
        )
        right_index = build_rtree("quadratic", right, max_entries=4)
        _assert_join_engines_agree(left, right, left_index, right_index)
