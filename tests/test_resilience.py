"""Unit tests for the robustness kernel and the fault-injection layer.

Everything in :mod:`repro.serve.resilience` is clock-injectable and
everything in :mod:`repro.serve.faults` is seed-deterministic; these
tests pin both properties, because the chaos suite and the gated
``serve`` benchmark counters rest on them.
"""

import pytest

from repro.serve.faults import (
    BATCH_FAULT,
    KNOWN_SITES,
    SNAPSHOT_LOAD,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    TransientFault,
)
from repro.serve.metrics import ServerMetrics, percentile
from repro.serve.resilience import (
    CircuitBreaker,
    Deadline,
    LogicalClock,
    MonotonicClock,
    Overloaded,
    RetryPolicy,
    TokenBucket,
)

# ----------------------------------------------------------------------
# clocks and deadlines
# ----------------------------------------------------------------------


def test_logical_clock_advances_monotonically():
    clock = LogicalClock(10.0)
    assert clock.now() == 10.0
    assert clock.advance(2.5) == 12.5
    with pytest.raises(ValueError, match="backward"):
        clock.advance(-1.0)


def test_deadline_on_logical_clock():
    clock = LogicalClock()
    deadline = Deadline(5.0, clock)
    assert not deadline.expired()
    assert deadline.remaining() == 5.0
    clock.advance(4.999)
    assert not deadline.expired()
    clock.advance(0.001)
    assert deadline.expired()
    assert deadline.remaining() == 0.0


def test_deadline_none_never_expires():
    clock = LogicalClock()
    deadline = Deadline(None, clock)
    clock.advance(1e9)
    assert not deadline.expired()
    assert deadline.remaining() is None


def test_monotonic_clock_is_monotonic():
    clock = MonotonicClock()
    assert clock.now() <= clock.now()


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------


def test_retry_delays_are_seed_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.04, seed=3)
    delays = policy.delays()
    assert delays == RetryPolicy(
        max_attempts=5, base_delay=0.01, max_delay=0.04, seed=3
    ).delays()
    assert len(delays) == 4  # max_attempts counts the first try
    # exponential growth capped at max_delay, shrunk by jitter
    undithered = [0.01, 0.02, 0.04, 0.04]
    for delay, cap in zip(delays, undithered):
        assert 0.0 < delay <= cap
    assert delays != RetryPolicy(max_attempts=5, seed=4).delays()


def test_retry_run_retries_then_succeeds():
    calls = []
    slept = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise TransientFault("boom")
        return "ok"

    policy = RetryPolicy(max_attempts=4, seed=0)
    result = policy.run(flaky, (TransientFault,), sleep=slept.append)
    assert result == "ok"
    assert len(calls) == 3
    assert slept == policy.delays()[:2]


def test_retry_run_exhausts_and_reraises():
    policy = RetryPolicy(max_attempts=3, seed=0)
    attempts = []
    with pytest.raises(TransientFault):
        policy.run(
            lambda: (_ for _ in ()).throw(TransientFault("always")),
            (TransientFault,),
            on_retry=lambda exc, n: attempts.append(n),
            sleep=lambda _s: None,
        )
    assert attempts == [1, 2]


def test_retry_does_not_absorb_unlisted_errors():
    policy = RetryPolicy(max_attempts=5, seed=0)
    calls = []

    def bad():
        calls.append(1)
        raise ValueError("not transient")

    with pytest.raises(ValueError):
        policy.run(bad, (TransientFault,), sleep=lambda _s: None)
    assert len(calls) == 1


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------


def test_token_bucket_sheds_and_refills_on_logical_clock():
    clock = LogicalClock()
    bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
    assert (bucket.admitted, bucket.shed) == (3, 1)
    clock.advance(1.0)  # +2 tokens
    assert bucket.try_acquire()
    assert bucket.try_acquire()
    assert not bucket.try_acquire()
    clock.advance(100.0)  # refill caps at burst
    assert bucket.available == 3.0


def test_token_bucket_disabled_admits_everything():
    bucket = TokenBucket(rate=None, clock=LogicalClock())
    assert all(bucket.try_acquire() for _ in range(1000))
    assert bucket.shed == 0
    assert bucket.available == float("inf")


def test_token_bucket_acquire_or_raise():
    bucket = TokenBucket(rate=1.0, burst=1, clock=LogicalClock())
    bucket.acquire_or_raise()
    with pytest.raises(Overloaded, match="bucket empty"):
        bucket.acquire_or_raise()


def test_token_bucket_validates_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0)


# ----------------------------------------------------------------------
# circuit breaker
# ----------------------------------------------------------------------


def test_breaker_opens_after_consecutive_failures_only():
    clock = LogicalClock()
    breaker = CircuitBreaker(failure_threshold=3, cooldown=1.0, clock=clock)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # resets the consecutive streak
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert not breaker.allow()
    assert breaker.opened_count == 1


def test_breaker_half_open_probe_success_closes():
    clock = LogicalClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=2.0, clock=clock)
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    clock.advance(2.0)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.opened_count == 1


def test_breaker_half_open_probe_failure_reopens():
    clock = LogicalClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown=1.0, clock=clock)
    breaker.record_failure()
    clock.advance(1.0)
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.opened_count == 2


def test_breaker_force_open():
    breaker = CircuitBreaker(clock=LogicalClock())
    breaker.force_open()
    assert not breaker.allow()
    assert breaker.opened_count == 1


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------


def test_percentile_interpolates():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0) == 10.0
    assert percentile(values, 100) == 40.0
    assert percentile(values, 50) == 25.0
    assert percentile([], 50) is None


def test_server_metrics_counters_and_latency():
    metrics = ServerMetrics()
    metrics.incr("offered", 3)
    metrics.incr("shed")
    assert metrics.offered == 3
    assert metrics.shed == 1
    with pytest.raises(KeyError):
        metrics.incr("not_a_counter")
    for ms in (1.0, 2.0, 3.0, 4.0):
        metrics.observe_latency(ms / 1000.0)
    metrics.set_elapsed(2.0)
    snap = metrics.snapshot()
    assert snap["offered"] == 3
    assert snap["p50_ms"] == pytest.approx(2.5)
    assert metrics.latency_count() == 4


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------


def test_fault_spec_window():
    spec = FaultSpec("site", at=3, times=2)
    assert [spec.covers(n) for n in range(1, 7)] == [
        False, False, True, True, False, False,
    ]
    with pytest.raises(ValueError):
        FaultSpec("site", at=0)
    with pytest.raises(ValueError):
        FaultSpec("site", times=0)


def test_fault_plan_fires_on_exact_ordinals():
    plan = FaultPlan([FaultSpec(BATCH_FAULT, at=2, times=2, message="kaboom")])
    assert plan.fires(BATCH_FAULT) is None
    assert plan.fires(BATCH_FAULT) is not None
    with pytest.raises(InjectedFault, match="kaboom"):
        plan.raise_if_fires(BATCH_FAULT)
    assert plan.fires(BATCH_FAULT) is None
    assert plan.calls(BATCH_FAULT) == 4
    assert plan.fired(BATCH_FAULT) == 2
    assert plan.total_fired() == 2
    assert plan.fired_by_site() == {BATCH_FAULT: 2}
    plan.reset()
    assert plan.calls(BATCH_FAULT) == 0


def test_fault_plan_sites_are_independent():
    plan = FaultPlan([FaultSpec(BATCH_FAULT, at=1)])
    assert plan.fires(SNAPSHOT_LOAD) is None  # separate counter
    assert plan.fires(BATCH_FAULT) is not None


def test_fault_plan_hook_adapter():
    plan = FaultPlan([FaultSpec(SNAPSHOT_LOAD, at=1)])
    hook = plan.hook(SNAPSHOT_LOAD)
    with pytest.raises(InjectedFault):
        hook("/some/path", anything=True)
    hook("/some/path")  # second call is past the window


def test_fault_plan_install_routes_snapshot_loads(tmp_path):
    from repro.engine import ColumnarIndex, load_snapshot, save_snapshot
    from repro.rtree.registry import build_rtree
    from tests.conftest import make_random_objects

    objects = make_random_objects(60, dims=2, seed=1)
    snapshot = ColumnarIndex.from_tree(build_rtree("rstar", objects, max_entries=8))
    save_snapshot(snapshot, tmp_path)
    plan = FaultPlan([FaultSpec(SNAPSHOT_LOAD, at=1, message="torn file")])
    with plan:
        with pytest.raises(InjectedFault, match="torn file"):
            load_snapshot(tmp_path)
        loaded = load_snapshot(tmp_path)  # past the window: loads fine
        assert loaded.dims == snapshot.dims
    # uninstalled: loads never consult the plan again
    load_snapshot(tmp_path)
    assert plan.calls(SNAPSHOT_LOAD) == 2


def test_chaos_plan_is_seed_deterministic():
    a = FaultPlan.chaos(42, include_pool_faults=True)
    b = FaultPlan.chaos(42, include_pool_faults=True)
    assert a.specs == b.specs
    assert {spec.site for spec in a.specs} <= set(KNOWN_SITES)
    c = FaultPlan.chaos(43, include_pool_faults=True)
    assert a.specs != c.specs
    burst = [s for s in a.specs if s.site == BATCH_FAULT]
    assert len(burst) == 1 and burst[0].times == 3
