"""Differential-testing harness for the columnar batch engine.

Three implementations must agree on every workload:

1. ``brute_force_range`` — the linear-scan ground truth;
2. the scalar ``range_query`` traversal (plain and clipped trees);
3. ``range_query_batch`` over a :class:`ColumnarIndex` snapshot.

The harness sweeps every registered R-tree variant × every dataset
generator with seeded randomized workloads that include degenerate point
rectangles and guaranteed-empty queries, asserting identical result sets
*and* identical ``IOStats`` counters (leaf, contributing-leaf, and
internal accesses) between the scalar and batch paths.
"""

import random

import pytest

from repro.datasets.registry import DATASET_NAMES, generate
from repro.engine import ColumnarIndex, knn_batch, range_query_batch
from repro.geometry.rect import Rect
from repro.query.knn import knn_query
from repro.query.range_query import brute_force_range, execute_workload
from repro.query.workload import RangeQueryWorkload
from repro.rtree.clipped import ClippedRTree
from repro.rtree.quadratic import QuadraticRTree
from repro.rtree.registry import VARIANT_NAMES, build_rtree
from repro.storage.stats import IOStats
from tests.conftest import make_random_objects

ALL_VARIANTS = VARIANT_NAMES + ("str",)
DATASET_SIZE = 220
QUERIES_PER_CASE = 18


def _workload_queries(objects, seed):
    """A mixed query batch: calibrated boxes, point rects, empty queries."""
    rng = random.Random(seed)
    workload = RangeQueryWorkload.from_objects(objects, target_results=8, seed=seed)
    queries = workload.query_list(QUERIES_PER_CASE, seed=seed)
    # Degenerate point queries: object corners (boundary contact) and
    # dithered interior points.
    for _ in range(6):
        obj = rng.choice(objects)
        queries.append(Rect(obj.rect.low, obj.rect.low))
        queries.append(Rect.from_point(obj.rect.center))
    # Guaranteed-empty queries far outside the data space.
    space = workload.space
    far = [hi + (hi - lo) + 10.0 for lo, hi in zip(space.low, space.high)]
    queries.append(Rect(far, [f + 1.0 for f in far]))
    queries.append(Rect.from_point(far))
    return queries


def _assert_engines_agree(index, objects, queries):
    """Scalar ≡ batch ≡ brute force on results; scalar ≡ batch on stats."""
    scalar_stats = IOStats()
    scalar_results = [index.range_query(q, stats=scalar_stats) for q in queries]

    snapshot = ColumnarIndex.from_tree(index)
    batch_stats = IOStats()
    batch_results = range_query_batch(snapshot, queries, stats=batch_stats)

    for query, scalar_res, batch_res in zip(queries, scalar_results, batch_results):
        expected = {obj.oid for obj in brute_force_range(objects, query)}
        assert {obj.oid for obj in scalar_res} == expected
        assert {obj.oid for obj in batch_res} == expected
        assert len(batch_res) == len(scalar_res)

    assert batch_stats.leaf_accesses == scalar_stats.leaf_accesses
    assert batch_stats.contributing_leaf_accesses == scalar_stats.contributing_leaf_accesses
    assert batch_stats.internal_accesses == scalar_stats.internal_accesses


class TestDifferentialAcrossVariantsAndDatasets:
    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_batch_equals_scalar_equals_brute_force(self, dataset, variant):
        objects = generate(dataset, DATASET_SIZE, seed=11)
        queries = _workload_queries(objects, seed=13)
        tree = build_rtree(variant, objects, max_entries=12)
        _assert_engines_agree(tree, objects, queries)

    @pytest.mark.parametrize("dataset", DATASET_NAMES)
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_batch_equals_scalar_on_clipped_trees(self, dataset, variant):
        objects = generate(dataset, DATASET_SIZE, seed=17)
        queries = _workload_queries(objects, seed=19)
        tree = build_rtree(variant, objects, max_entries=12)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        _assert_engines_agree(clipped, objects, queries)

    @pytest.mark.parametrize("method", ["skyline", "stairline"])
    def test_both_clipping_methods(self, method):
        objects = make_random_objects(300, dims=2, seed=23)
        queries = _workload_queries(objects, seed=29)
        tree = build_rtree("rstar", objects, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method=method)
        _assert_engines_agree(clipped, objects, queries)

    def test_three_dimensional_clipped(self):
        objects = make_random_objects(250, dims=3, seed=31)
        queries = _workload_queries(objects, seed=37)
        tree = build_rtree("rrstar", objects, max_entries=10)
        _assert_engines_agree(ClippedRTree.wrap(tree), objects, queries)


class TestWorkloadEngineParity:
    """``execute_workload`` reports identical results for both engines."""

    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_workload_results_identical(self, variant, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        queries = _workload_queries(medium_objects_2d, seed=41)
        for index in (tree, ClippedRTree.wrap(tree)):
            scalar = execute_workload(index, queries, engine="scalar")
            batch = execute_workload(index, queries, engine="columnar")
            assert batch.queries == scalar.queries
            assert batch.total_results == scalar.total_results
            assert batch.stats.leaf_accesses == scalar.stats.leaf_accesses
            assert (
                batch.stats.contributing_leaf_accesses
                == scalar.stats.contributing_leaf_accesses
            )
            assert batch.stats.internal_accesses == scalar.stats.internal_accesses
            assert batch.io_optimality == scalar.io_optimality
            assert batch.avg_leaf_accesses == scalar.avg_leaf_accesses

    def test_precomputed_snapshot_is_accepted(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        snapshot = ColumnarIndex.from_tree(tree)
        queries = _workload_queries(small_objects_2d, seed=43)
        direct = execute_workload(tree, queries, engine="columnar")
        reused = execute_workload(snapshot, queries, engine="columnar")
        assert reused.total_results == direct.total_results
        assert reused.stats.leaf_accesses == direct.stats.leaf_accesses
        # A snapshot has no scalar traversal: the default engine argument
        # must route it through the columnar executor, not crash.
        defaulted = execute_workload(snapshot, queries)
        assert defaulted.total_results == direct.total_results
        assert defaulted.stats.leaf_accesses == direct.stats.leaf_accesses

    def test_unknown_engine_rejected(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        with pytest.raises(ValueError):
            execute_workload(tree, [], engine="gpu")

    def test_empty_query_batch(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        result = execute_workload(tree, [], engine="columnar")
        assert result.queries == 0
        assert result.total_results == 0
        assert result.io_optimality == 1.0


class TestStatsPinned:
    """Regression pin: exact counters on a small fixed tree, both engines.

    The numbers below were produced by the scalar traversal at the time
    the batch engine landed; any drift in either engine breaks the pin.
    """

    QUERIES = [
        Rect((10.0, 10.0), (40.0, 40.0)),
        Rect((0.0, 0.0), (5.0, 5.0)),
        Rect((80.0, 80.0), (99.0, 99.0)),
        Rect((200.0, 200.0), (210.0, 210.0)),  # empty result
        Rect((50.0, 50.0), (50.0, 50.0)),  # degenerate point
    ]

    # (total_results, leaf_accesses, contributing_leaf_accesses, internal_accesses)
    PINNED_PLAIN = (9, 6, 5, 9)
    PINNED_CLIPPED = (9, 5, 5, 9)

    def _fixed_indexes(self):
        objects = make_random_objects(60, dims=2, seed=1)
        tree = build_rtree("rstar", objects, max_entries=8)
        return tree, ClippedRTree.wrap(tree)

    @pytest.mark.parametrize("engine", ["scalar", "columnar"])
    def test_pinned_counts(self, engine):
        tree, clipped = self._fixed_indexes()
        for index, pinned in ((tree, self.PINNED_PLAIN), (clipped, self.PINNED_CLIPPED)):
            result = execute_workload(index, self.QUERIES, engine=engine)
            observed = (
                result.total_results,
                result.stats.leaf_accesses,
                result.stats.contributing_leaf_accesses,
                result.stats.internal_accesses,
            )
            assert observed == pinned, f"{engine} drifted on {type(index).__name__}"

    def test_pinned_io_optimality(self):
        tree, clipped = self._fixed_indexes()
        assert execute_workload(tree, self.QUERIES, engine="columnar").io_optimality == pytest.approx(5 / 6)
        assert execute_workload(clipped, self.QUERIES, engine="columnar").io_optimality == 1.0


class TestKnnDifferential:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    def test_knn_batch_matches_scalar(self, variant, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        snapshot = ColumnarIndex.from_tree(tree)
        points = [(0.0, 0.0), (50.0, 50.0), (99.0, 1.0), (25.0, 75.0)]
        scalar_stats = IOStats()
        batch_stats = IOStats()
        batch = knn_batch(snapshot, points, k=9, stats=batch_stats)
        for point, batch_res in zip(points, batch):
            scalar_res = knn_query(tree, point, k=9, stats=scalar_stats)
            assert [(d, o.oid) for d, o in batch_res] == [
                (d, o.oid) for d, o in scalar_res
            ]
        assert batch_stats.leaf_accesses == scalar_stats.leaf_accesses
        assert batch_stats.internal_accesses == scalar_stats.internal_accesses

    def test_knn_batch_on_clipped_snapshot(self, medium_objects_2d):
        tree = build_rtree("rstar", medium_objects_2d, max_entries=10)
        clipped = ClippedRTree.wrap(tree)
        snapshot = ColumnarIndex.from_tree(clipped)
        point = (42.0, 17.0)
        batch = knn_batch(snapshot, [point], k=5)[0]
        scalar = knn_query(tree, point, k=5)
        assert [(d, o.oid) for d, o in batch] == [(d, o.oid) for d, o in scalar]

    def test_knn_batch_k_larger_than_dataset(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        snapshot = ColumnarIndex.from_tree(tree)
        results = knn_batch(snapshot, [(1.0, 1.0)], k=1000)[0]
        assert len(results) == len(small_objects_2d)

    def test_knn_batch_invalid_k(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        snapshot = ColumnarIndex.from_tree(tree)
        with pytest.raises(ValueError):
            knn_batch(snapshot, [(0.0, 0.0)], k=0)


class TestSnapshotLifecycle:
    def test_empty_tree_snapshot(self):
        tree = QuadraticRTree(dims=2, max_entries=4)
        snapshot = ColumnarIndex.from_tree(tree)
        stats = IOStats()
        results = range_query_batch(snapshot, [Rect((0, 0), (10, 10))], stats=stats)
        assert results == [[]]
        # The scalar path also counts the (empty) root leaf access.
        assert stats.leaf_accesses == 1
        assert stats.contributing_leaf_accesses == 0
        assert knn_batch(snapshot, [(0.0, 0.0)], k=3) == [[]]

    def test_snapshot_staleness_and_refresh(self, small_objects_2d):
        extra = make_random_objects(5, dims=2, seed=99)
        tree = build_rtree("rstar", small_objects_2d, max_entries=8)
        snapshot = ColumnarIndex.from_tree(tree)
        assert not snapshot.is_stale
        tree.insert(extra[0])
        assert snapshot.is_stale
        assert len(snapshot) == len(small_objects_2d)  # still the frozen state
        fresh = snapshot.refresh()
        assert not fresh.is_stale
        assert len(fresh) == len(small_objects_2d) + 1

    def test_clipped_snapshot_staleness_after_reclip(self, small_objects_2d):
        tree = build_rtree("rstar", small_objects_2d, max_entries=8)
        clipped = ClippedRTree.wrap(tree)
        snapshot = ColumnarIndex.from_tree(clipped)
        assert not snapshot.is_stale
        clipped.clip_all()  # re-clipping alone must invalidate
        assert snapshot.is_stale

    def test_deletion_invalidates(self, small_objects_2d):
        tree = build_rtree("rstar", small_objects_2d, max_entries=8)
        snapshot = ColumnarIndex.from_tree(tree)
        tree.delete(small_objects_2d[0])
        assert snapshot.is_stale

    def test_dimension_mismatch_rejected(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        snapshot = ColumnarIndex.from_tree(tree)
        with pytest.raises(ValueError):
            range_query_batch(snapshot, [Rect((0, 0, 0), (1, 1, 1))])
        with pytest.raises(ValueError):
            knn_batch(snapshot, [(0.0, 0.0, 0.0)], k=1)
