"""Unit tests for Rect and the MBB helpers."""

import math

import pytest

from repro.geometry.rect import Rect, mbb_of_points, mbb_of_rects


class TestRectConstruction:
    def test_basic_properties(self):
        rect = Rect((0.0, 1.0), (2.0, 5.0))
        assert rect.dims == 2
        assert rect.low == (0.0, 1.0)
        assert rect.high == (2.0, 5.0)
        assert rect.center == (1.0, 3.0)
        assert rect.side(0) == 2.0
        assert rect.side(1) == 4.0

    def test_volume_and_margin(self):
        rect = Rect((0, 0, 0), (2, 3, 4))
        assert rect.volume() == 24.0
        assert rect.margin() == 9.0

    def test_point_rect(self):
        point = Rect.from_point((3.0, 4.0))
        assert point.is_point()
        assert point.volume() == 0.0

    def test_from_center(self):
        rect = Rect.from_center((5.0, 5.0), (1.0, 2.0))
        assert rect.low == (4.0, 3.0)
        assert rect.high == (6.0, 7.0)

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            Rect((0.0,), (1.0, 1.0))

    def test_zero_dims_raise(self):
        with pytest.raises(ValueError):
            Rect((), ())

    def test_immutable(self):
        rect = Rect((0, 0), (1, 1))
        with pytest.raises(AttributeError):
            rect.low = (5, 5)

    def test_equality_and_hash(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((0.0, 0.0), (1.0, 1.0))
        c = Rect((0, 0), (2, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a rect"


class TestRectRelations:
    def test_intersects_overlapping(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 1), (3, 3))
        assert a.intersects(b)
        assert b.intersects(a)

    def test_intersects_touching_edge(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((1, 0), (2, 1))
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        assert not a.intersects(b)
        assert a.intersection(b) is None
        assert a.intersection_volume(b) == 0.0

    def test_contains(self):
        outer = Rect((0, 0), (10, 10))
        inner = Rect((2, 2), (3, 3))
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert outer.contains(outer)

    def test_contains_point(self):
        rect = Rect((0, 0), (2, 2))
        assert rect.contains_point((1, 1))
        assert rect.contains_point((0, 2))
        assert not rect.contains_point((3, 1))

    def test_intersection_volume(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((1, 1), (3, 3))
        assert a.intersection_volume(b) == pytest.approx(1.0)
        assert a.intersection(b) == Rect((1, 1), (2, 2))

    def test_union_and_enlargement(self):
        a = Rect((0, 0), (1, 1))
        b = Rect((2, 2), (3, 3))
        union = a.union(b)
        assert union == Rect((0, 0), (3, 3))
        assert a.enlargement(b) == pytest.approx(9.0 - 1.0)
        assert a.enlargement(Rect((0.2, 0.2), (0.8, 0.8))) == 0.0

    def test_min_distance_sq(self):
        rect = Rect((0, 0), (1, 1))
        assert rect.min_distance_sq((0.5, 0.5)) == 0.0
        assert rect.min_distance_sq((2.0, 1.0)) == pytest.approx(1.0)
        assert rect.min_distance_sq((2.0, 3.0)) == pytest.approx(1.0 + 4.0)

    def test_center_distance_sq(self):
        a = Rect((0, 0), (2, 2))
        b = Rect((3, 4), (5, 6))
        assert a.center_distance_sq(b) == pytest.approx((4 - 1) ** 2 + (5 - 1) ** 2)

    def test_translate_and_scale(self):
        rect = Rect((0, 0), (2, 2))
        moved = rect.translate((1, -1))
        assert moved == Rect((1, -1), (3, 1))
        grown = rect.scaled(2.0)
        assert grown == Rect((-1, -1), (3, 3))
        shrunk = rect.scaled(0.0)
        assert shrunk.is_point()
        with pytest.raises(ValueError):
            rect.scaled(-1.0)

    def test_corner(self):
        rect = Rect((0, 0), (2, 3))
        assert rect.corner(0b00) == (0, 0)
        assert rect.corner(0b01) == (2, 0)
        assert rect.corner(0b10) == (0, 3)
        assert rect.corner(0b11) == (2, 3)


class TestMbbHelpers:
    def test_mbb_of_points(self):
        mbb = mbb_of_points([(0, 5), (2, 1), (1, 3)])
        assert mbb == Rect((0, 1), (2, 5))

    def test_mbb_of_rects(self):
        mbb = mbb_of_rects([Rect((0, 0), (1, 1)), Rect((3, -1), (4, 0.5))])
        assert mbb == Rect((0, -1), (4, 1))

    def test_empty_inputs_raise(self):
        with pytest.raises(ValueError):
            mbb_of_points([])
        with pytest.raises(ValueError):
            mbb_of_rects([])

    def test_mbb_contains_all_inputs(self):
        rects = [Rect((i, i), (i + 1, i + 2)) for i in range(5)]
        mbb = mbb_of_rects(rects)
        assert all(mbb.contains(r) for r in rects)
