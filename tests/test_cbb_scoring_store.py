"""Unit tests for clip points, scoring, and the auxiliary clip store."""

import pytest

from repro.cbb.clip_point import ClipPoint
from repro.cbb.scoring import (
    clip_region,
    clip_volume,
    clipped_union_volume,
    score_clip_candidates,
)
from repro.cbb.store import ClipStore
from repro.geometry.rect import Rect


class TestClipPoint:
    def test_region_spans_point_to_corner(self):
        mbb = Rect((0, 0), (10, 10))
        clip = ClipPoint((6.0, 7.0), 0b11)
        assert clip.region(mbb) == Rect((6, 7), (10, 10))
        clip_low = ClipPoint((3.0, 4.0), 0b00)
        assert clip_low.region(mbb) == Rect((0, 0), (3, 4))

    def test_equality_ignores_score(self):
        a = ClipPoint((1.0, 2.0), 0b01, score=5.0)
        b = ClipPoint((1.0, 2.0), 0b01, score=9.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != ClipPoint((1.0, 2.0), 0b10)

    def test_storage_bytes(self):
        clip = ClipPoint((1.0, 2.0, 3.0), 0b101)
        assert clip.storage_bytes() == 1 + 3 * 8
        assert clip.storage_bytes(coord_bytes=4) == 1 + 3 * 4

    def test_dims(self):
        assert ClipPoint((1.0, 2.0), 0).dims == 2
        assert ClipPoint((1.0, 2.0, 3.0), 0).dims == 3


class TestScoring:
    def test_clip_volume(self):
        mbb = Rect((0, 0), (10, 10))
        assert clip_volume((6, 7), 0b11, mbb) == pytest.approx(4 * 3)
        assert clip_volume((6, 7), 0b00, mbb) == pytest.approx(6 * 7)
        assert clip_volume((10, 10), 0b11, mbb) == 0.0

    def test_clip_region_matches_volume(self):
        mbb = Rect((0, 0), (8, 4))
        for mask in range(4):
            region = clip_region((5.0, 3.0), mask, mbb)
            assert region.volume() == pytest.approx(clip_volume((5.0, 3.0), mask, mbb))

    def test_best_candidate_gets_exact_volume(self):
        mbb = Rect((0, 0), (10, 10))
        candidates = [(4.0, 4.0), (2.0, 8.0), (8.0, 2.0)]
        scored = score_clip_candidates(candidates, 0b11, mbb)
        best = scored[0]
        assert best.coord == (4.0, 4.0)
        assert best.score == pytest.approx(6 * 6)

    def test_other_candidates_discounted_by_overlap_with_best(self):
        mbb = Rect((0, 0), (10, 10))
        candidates = [(4.0, 4.0), (2.0, 8.0)]
        scored = {cp.coord: cp.score for cp in score_clip_candidates(candidates, 0b11, mbb)}
        # (2, 8): own volume 8*2 = 16, overlap with best region [4..10]x[4..10]
        # is min(6,8)*min(6,2) = 6*2 = 12 -> score 4.
        assert scored[(2.0, 8.0)] == pytest.approx(16 - 12)

    def test_scores_sorted_descending(self):
        mbb = Rect((0, 0), (10, 10))
        candidates = [(1.0, 9.0), (5.0, 5.0), (9.0, 1.0)]
        scored = score_clip_candidates(candidates, 0b11, mbb)
        assert [cp.score for cp in scored] == sorted((cp.score for cp in scored), reverse=True)

    def test_empty_candidates(self):
        assert score_clip_candidates([], 0b11, Rect((0, 0), (1, 1))) == []

    def test_clipped_union_volume_deduplicates(self):
        mbb = Rect((0, 0), (10, 10))
        clips = [ClipPoint((4.0, 4.0), 0b11), ClipPoint((5.0, 5.0), 0b11)]
        # The second region is nested in the first.
        assert clipped_union_volume(clips, mbb) == pytest.approx(36.0)

    def test_clipped_union_volume_different_corners(self):
        mbb = Rect((0, 0), (10, 10))
        clips = [ClipPoint((2.0, 2.0), 0b00), ClipPoint((8.0, 8.0), 0b11)]
        assert clipped_union_volume(clips, mbb) == pytest.approx(4.0 + 4.0)


class TestClipStore:
    def test_put_get_roundtrip(self):
        store = ClipStore()
        clips = [ClipPoint((1.0, 1.0), 0b00, score=2.0), ClipPoint((2.0, 2.0), 0b11, score=5.0)]
        store.put(7, clips)
        stored = store.get(7)
        assert [c.score for c in stored] == [5.0, 2.0]
        assert 7 in store
        assert len(store) == 1

    def test_get_missing_returns_empty(self):
        assert ClipStore().get(99) == []

    def test_put_empty_removes_entry(self):
        store = ClipStore()
        store.put(1, [ClipPoint((0.0, 0.0), 0, score=1.0)])
        store.put(1, [])
        assert 1 not in store
        assert len(store) == 0

    def test_remove_is_idempotent(self):
        store = ClipStore()
        store.remove(3)
        store.put(3, [ClipPoint((0.0, 0.0), 0, score=1.0)])
        store.remove(3)
        store.remove(3)
        assert 3 not in store

    def test_statistics(self):
        store = ClipStore()
        store.put(1, [ClipPoint((0.0, 0.0), 0, score=1.0)])
        store.put(2, [ClipPoint((0.0, 0.0), 0, score=1.0), ClipPoint((1.0, 1.0), 3, score=2.0)])
        assert store.total_clip_points() == 3
        assert store.average_clip_points() == pytest.approx(1.5)
        expected_bytes = 2 * ClipStore.ENTRY_HEADER_BYTES + 3 * (1 + 2 * 8)
        assert store.storage_bytes() == expected_bytes

    def test_empty_statistics(self):
        store = ClipStore()
        assert store.total_clip_points() == 0
        assert store.average_clip_points() == 0.0
        assert store.storage_bytes() == 0

    def test_clear(self):
        store = ClipStore()
        store.put(1, [ClipPoint((0.0, 0.0), 0, score=1.0)])
        store.clear()
        assert len(store) == 0

    def test_items_iteration(self):
        store = ClipStore()
        store.put(4, [ClipPoint((0.0, 0.0), 0, score=1.0)])
        items = dict(store.items())
        assert set(items) == {4}
