"""Behavioural tests shared by all four R-tree variants."""

import random

import pytest

from repro.geometry.rect import Rect
from repro.query.range_query import brute_force_range
from repro.rtree.registry import VARIANT_NAMES, build_rtree, canonical_variant, rtree_class
from repro.storage.stats import IOStats
from tests.conftest import make_random_objects


@pytest.fixture(params=VARIANT_NAMES)
def variant(request):
    return request.param


class TestBuildAndQuery:
    def test_structural_invariants_after_build(self, variant, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        tree.check_invariants()
        assert len(tree) == len(medium_objects_2d)
        assert tree.height >= 2
        assert tree.leaf_count() >= len(medium_objects_2d) // 10

    def test_all_objects_reachable(self, variant, small_objects_2d):
        tree = build_rtree(variant, small_objects_2d, max_entries=8)
        indexed = sorted(obj.oid for obj in tree.objects())
        assert indexed == sorted(obj.oid for obj in small_objects_2d)

    def test_range_query_matches_linear_scan(self, variant, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        rng = random.Random(7)
        for _ in range(25):
            cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
            size = rng.uniform(1, 20)
            query = Rect((cx, cy), (cx + size, cy + size))
            expected = {o.oid for o in brute_force_range(medium_objects_2d, query)}
            actual = {o.oid for o in tree.range_query(query)}
            assert actual == expected

    def test_range_query_counts_io(self, variant, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        stats = IOStats()
        tree.range_query(Rect((0, 0), (100, 100)), stats=stats)
        assert stats.leaf_accesses == tree.leaf_count()
        assert stats.contributing_leaf_accesses == tree.leaf_count()

    def test_empty_query_region(self, variant, small_objects_2d):
        tree = build_rtree(variant, small_objects_2d, max_entries=8)
        assert tree.range_query(Rect((1000, 1000), (1001, 1001))) == []

    def test_3d_support(self, variant, small_objects_3d):
        tree = build_rtree(variant, small_objects_3d, max_entries=8)
        tree.check_invariants()
        query = Rect((0, 0, 0), (100, 100, 100))
        assert len(tree.range_query(query)) == len(small_objects_3d)


class TestInsertions:
    def test_incremental_inserts_preserve_invariants(self, variant):
        objects = make_random_objects(150, seed=11)
        cls = rtree_class(variant)
        if variant == "hilbert":
            tree = build_rtree(variant, objects[:50], max_entries=8)
        else:
            tree = cls(dims=2, max_entries=8)
            for obj in objects[:50]:
                tree.insert(obj)
        for obj in objects[50:]:
            tree.insert(obj)
        tree.check_invariants()
        assert len(tree) == len(objects)
        query = Rect((0, 0), (100, 100))
        assert len(tree.range_query(query)) == len(objects)

    def test_insert_reports_leaf(self, variant, small_objects_2d):
        tree = build_rtree(variant, small_objects_2d, max_entries=8)
        new_obj = make_random_objects(1, seed=99)[0]
        result = tree.insert(new_obj)
        assert result.leaf_id is not None
        assert tree.node(result.leaf_id).is_leaf

    def test_insert_dimension_mismatch_rejected(self, variant, small_objects_2d):
        tree = build_rtree(variant, small_objects_2d, max_entries=8)
        bad = make_random_objects(1, dims=3, seed=1)[0]
        with pytest.raises(ValueError):
            tree.insert(bad)


class TestDeletions:
    def test_delete_removes_object(self, variant, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        victim = medium_objects_2d[37]
        result = tree.delete(victim)
        assert result.found
        assert len(tree) == len(medium_objects_2d) - 1
        assert victim.oid not in {o.oid for o in tree.range_query(victim.rect)}
        tree.check_invariants()

    def test_delete_missing_object(self, variant, small_objects_2d):
        tree = build_rtree(variant, small_objects_2d, max_entries=8)
        ghost = make_random_objects(1, seed=123)[0]
        result = tree.delete(ghost)
        assert not result.found
        assert len(tree) == len(small_objects_2d)

    def test_delete_many_keeps_correctness(self, variant):
        objects = make_random_objects(200, seed=21)
        tree = build_rtree(variant, objects, max_entries=8)
        rng = random.Random(5)
        victims = rng.sample(objects, 120)
        for victim in victims:
            assert tree.delete(victim).found
        tree.check_invariants()
        remaining = [o for o in objects if o not in set(victims)]
        query = Rect((0, 0), (100, 100))
        assert {o.oid for o in tree.range_query(query)} == {o.oid for o in remaining}

    def test_delete_down_to_empty(self, variant, small_objects_2d):
        tree = build_rtree(variant, small_objects_2d, max_entries=8)
        for obj in small_objects_2d:
            assert tree.delete(obj).found
        assert len(tree) == 0
        assert tree.range_query(Rect((0, 0), (100, 100))) == []


class TestRegistry:
    def test_aliases_resolve(self):
        assert canonical_variant("QR") == "quadratic"
        assert canonical_variant("r*") == "rstar"
        assert canonical_variant("RR*") == "rrstar"
        assert canonical_variant("HR-Tree".replace("Tree", "")) == "hilbert"

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            canonical_variant("kd-tree")
        with pytest.raises(ValueError):
            build_rtree("kd-tree", make_random_objects(5))

    def test_empty_objects_rejected(self):
        with pytest.raises(ValueError):
            build_rtree("rstar", [])

    def test_default_capacity_from_page_layout(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d)
        assert tree.max_entries == (4096 - 16) // 40

    def test_str_bulk_load_via_registry(self, medium_objects_2d):
        tree = build_rtree("str", medium_objects_2d, max_entries=10)
        tree.check_invariants()
        query = Rect((0, 0), (100, 100))
        assert len(tree.range_query(query)) == len(medium_objects_2d)
