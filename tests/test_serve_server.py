"""Behavioural tests for :class:`repro.serve.server.CoalescingServer`.

The server is an *online* layer over the engine, so the contract under
test is twofold: answers must equal what the engine returns directly
(coalescing and parallelism are invisible), and every robustness feature
— admission shedding, deadlines, retries, the breaker's serve-stale
degraded mode — must surface *explicitly* in the response metadata,
never as silence or a wrong answer.
"""

import asyncio

import pytest

from repro.engine import SnapshotManager
from repro.engine.delta import overlay_join
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.rtree.registry import build_rtree
from repro.serve.faults import BATCH_FAULT, COMPACTION, FaultPlan, FaultSpec
from repro.serve.resilience import LogicalClock
from repro.serve.server import CoalescingServer, Request, Response, ServeConfig
from tests.conftest import make_random_objects


def _manager(count=150, dims=2, seed=3, **kwargs):
    objects = make_random_objects(count, dims=dims, seed=seed)
    tree = build_rtree("rstar", objects, max_entries=8)
    return objects, SnapshotManager(tree, update_engine="delta", **kwargs)


def _rects(objects, n=10, pad=1.5):
    step = max(1, len(objects) // n)
    return [
        Rect([c - pad for c in o.rect.low], [c + pad for c in o.rect.high])
        for o in objects[::step][:n]
    ]


def _oids(hits):
    return sorted(obj.oid for obj in hits)


def _run(coro):
    return asyncio.run(coro)


def test_request_validation():
    with pytest.raises(ValueError, match="unknown request kind"):
        Request("frobnicate")
    assert Request.range(Rect([0, 0], [1, 1])).kind == "range"
    assert Request.knn((0, 0), 3).payload == ((0.0, 0.0), 3)


def test_answers_match_direct_engine():
    objects, manager = _manager()
    rects = _rects(objects, 12)
    points = [o.rect.low for o in objects[:6]]
    expected_ranges = [_oids(hits) for hits in manager.range_query_batch(rects)]
    expected_knn = [
        [(d, o.oid) for d, o in hits[:3]] for hits in manager.knn_batch(points, 3)
    ]

    async def main():
        async with CoalescingServer(manager) as server:
            range_futs = [server.submit_nowait(Request.range(r)) for r in rects]
            knn_futs = [server.submit_nowait(Request.knn(p, 3)) for p in points]
            ranges = await asyncio.gather(*range_futs)
            knns = await asyncio.gather(*knn_futs)
        return ranges, knns

    ranges, knns = _run(main())
    assert all(r.ok and not r.stale and not r.degraded for r in ranges + knns)
    assert [_oids(r.value) for r in ranges] == expected_ranges
    assert [[(d, o.oid) for d, o in r.value] for r in knns] == expected_knn
    # concurrent submissions of the same kind coalesced into shared batches
    assert manager is not None


def test_coalescing_batches_concurrent_requests():
    objects, manager = _manager()
    rects = _rects(objects, 16)

    async def main():
        async with CoalescingServer(manager) as server:
            futures = [server.submit_nowait(Request.range(r)) for r in rects]
            await asyncio.gather(*futures)
            return server.metrics.batches, server.metrics.coalesced

    batches, coalesced = _run(main())
    assert batches < len(rects)
    assert coalesced >= len(rects) - batches


def test_admission_shed_is_deterministic_on_logical_clock():
    objects, manager = _manager()
    rect = _rects(objects, 1)[0]
    config = ServeConfig(admission_rate=10.0, admission_burst=4)

    async def main():
        clock = LogicalClock()
        async with CoalescingServer(manager, config, clock=clock) as server:
            statuses = []
            for _ in range(8):  # no clock advance: only the burst admits
                statuses.append((await server.submit_nowait(Request.range(rect))).status)
            clock.advance(0.2)  # 2 tokens at 10/s
            for _ in range(3):
                statuses.append((await server.submit_nowait(Request.range(rect))).status)
            return statuses, server.metrics.shed

    statuses, shed = _run(main())
    assert statuses == ["ok"] * 4 + ["shed"] * 4 + ["ok", "ok", "shed"]
    assert shed == 5


def test_shed_response_is_explicit():
    objects, manager = _manager()
    rect = _rects(objects, 1)[0]
    config = ServeConfig(admission_rate=1.0, admission_burst=1)

    async def main():
        clock = LogicalClock()
        async with CoalescingServer(manager, config, clock=clock) as server:
            first = await server.submit_nowait(Request.range(rect))
            second = await server.submit_nowait(Request.range(rect))
            return first, second

    first, second = _run(main())
    assert first.ok
    assert second.status == "shed" and "overloaded" in second.error


def test_expired_deadline_is_never_served():
    objects, manager = _manager()
    rect = _rects(objects, 1)[0]

    async def main():
        clock = LogicalClock()
        async with CoalescingServer(manager, clock=clock) as server:
            future = server.submit_nowait(Request.range(rect, deadline_s=0.0))
            return await future

    response = _run(main())
    assert response.status == "deadline"
    assert response.value is None
    assert "deadline exceeded" in response.error


def test_transient_faults_are_retried_to_success():
    objects, manager = _manager()
    rects = _rects(objects, 6)
    plan = FaultPlan([FaultSpec(BATCH_FAULT, at=1, times=2, message="flaky")])
    config = ServeConfig(retry_base_delay=0.001, retry_max_delay=0.002)
    expected = [_oids(hits) for hits in manager.range_query_batch(rects)]

    async def main():
        async with CoalescingServer(manager, config, fault_plan=plan) as server:
            futures = [server.submit_nowait(Request.range(r)) for r in rects]
            responses = await asyncio.gather(*futures)
            return responses, server.report()

    responses, report = _run(main())
    assert all(r.ok and not r.degraded for r in responses)
    assert [_oids(r.value) for r in responses] == expected
    assert report["retries"] == 2
    assert report["faults_injected"] == 2
    assert report["breaker_opens"] == 0  # 2 failures < threshold 3


def test_fault_burst_trips_breaker_and_degrades():
    objects, manager = _manager()
    rects = _rects(objects, 8)
    # burst longer than max_attempts: the victim batch exhausts retries
    plan = FaultPlan([FaultSpec(BATCH_FAULT, at=1, times=3)])
    config = ServeConfig(
        breaker_failure_threshold=3,
        breaker_cooldown=60.0,  # stays open for the whole test
        retry_max_attempts=5,
        retry_base_delay=0.001,
        retry_max_delay=0.002,
    )
    fresh = SpatialObject(10**6, Rect([0.0, 0.0], [1.0, 1.0]))
    base_snapshot = manager.view[0]

    async def main():
        clock = LogicalClock()
        async with CoalescingServer(manager, config, fault_plan=plan, clock=clock) as server:
            assert (await server.insert(fresh)).ok  # overlay now non-empty
            responses = await asyncio.gather(
                *[server.submit_nowait(Request.range(r)) for r in rects]
            )
            return responses, server.report()

    responses, report = _run(main())
    assert report["breaker_opens"] == 1
    assert report["retries"] == 3
    assert report["degraded_batches"] >= 1
    assert report["stale_served"] >= 1
    degraded = [r for r in responses if r.degraded]
    assert degraded, "breaker never engaged the degraded path"
    from repro.engine.executor import range_query_batch

    for response, rect in zip(responses, rects):
        assert response.ok
        if response.degraded:
            # stale-stamped: served from the frozen base, missing the
            # pending insert by design, and saying so
            assert response.stale
            assert _oids(response.value) == _oids(
                range_query_batch(base_snapshot, [rect])[0]
            )
        else:
            assert _oids(response.value) == _oids(manager.range_query(rect))


def test_breaker_recovers_after_cooldown():
    objects, manager = _manager()
    rect = _rects(objects, 1)[0]
    plan = FaultPlan([FaultSpec(BATCH_FAULT, at=1, times=3)])
    config = ServeConfig(
        breaker_failure_threshold=3,
        breaker_cooldown=0.5,
        retry_max_attempts=5,
        retry_base_delay=0.001,
        retry_max_delay=0.002,
    )

    async def main():
        clock = LogicalClock()
        async with CoalescingServer(manager, config, fault_plan=plan, clock=clock) as server:
            first = await server.submit_nowait(Request.range(rect))
            clock.advance(1.0)  # past the cooldown: half-open probe
            second = await server.submit_nowait(Request.range(rect))
            return first, second, server.breaker.state

    first, second, state = _run(main())
    assert first.ok and first.degraded
    assert second.ok and not second.degraded and not second.stale
    assert state == "closed"


def test_writes_and_reads_interleave():
    objects, manager = _manager()
    fresh = SpatialObject(10**6, Rect([50.0, 50.0], [51.0, 51.0]))
    probe = Rect([49.0, 49.0], [52.0, 52.0])

    async def main():
        async with CoalescingServer(manager) as server:
            before = await server.range_query(probe)
            assert (await server.insert(fresh)).ok
            after = await server.range_query(probe)
            deleted = await server.delete(fresh)
            gone = await server.range_query(probe)
            return before, after, deleted, gone

    before, after, deleted, gone = _run(main())
    assert 10**6 not in _oids(before.value)
    assert 10**6 in _oids(after.value)
    assert deleted.ok and deleted.value is True
    assert 10**6 not in _oids(gone.value)


def test_join_requests_match_overlay_join():
    objects, manager = _manager()
    probes = make_random_objects(40, dims=2, seed=9)
    expected = overlay_join(probes, manager, algorithm="inlj")

    async def main():
        async with CoalescingServer(manager) as server:
            return await server.join(probes=probes, algorithm="inlj")

    response = _run(main())
    assert response.ok
    assert response.value.pair_count == expected.pair_count
    assert [(a.oid, b.oid) for a, b in response.value.pairs] == [
        (a.oid, b.oid) for a, b in expected.pairs
    ]


def test_compaction_request_and_epoch_tracking():
    objects, manager = _manager()
    fresh = SpatialObject(10**6, Rect([1.0, 1.0], [2.0, 2.0]))

    async def main():
        async with CoalescingServer(manager) as server:
            assert (await server.insert(fresh)).ok
            compacted = await server.compact()
            probe = await server.range_query(Rect([0.0, 0.0], [3.0, 3.0]))
            return compacted, probe, server.report()

    compacted, probe, report = _run(main())
    assert compacted.ok
    assert report["compactions"] == 1
    assert report["epoch"] == 1
    assert 10**6 in _oids(probe.value)
    assert manager.pending_ops == 0


def test_injected_compaction_crash_is_retried():
    objects, manager = _manager()
    fresh = SpatialObject(10**6, Rect([1.0, 1.0], [2.0, 2.0]))
    plan = FaultPlan([FaultSpec(COMPACTION, at=1, message="compaction crash")])
    config = ServeConfig(retry_base_delay=0.001, retry_max_delay=0.002)

    async def main():
        async with CoalescingServer(manager, config, fault_plan=plan) as server:
            assert (await server.insert(fresh)).ok
            compacted = await server.compact()
            probe = await server.range_query(Rect([0.0, 0.0], [3.0, 3.0]))
            return compacted, probe, server.report()

    compacted, probe, report = _run(main())
    assert compacted.ok and compacted.retries == 1
    assert report["compaction_failures"] == 1
    assert report["compactions"] == 1
    assert report["retries"] == 1
    assert 10**6 in _oids(probe.value)


def test_background_compaction_trigger():
    objects, manager = _manager()
    config = ServeConfig(compact_threshold=3)

    async def main():
        async with CoalescingServer(manager, config) as server:
            for i in range(4):
                oid = 10**6 + i
                rect = Rect([float(i), 0.0], [float(i) + 1.0, 1.0])
                assert (await server.insert(SpatialObject(oid, rect))).ok
            for _ in range(200):
                if server.metrics.compactions:
                    break
                await asyncio.sleep(0.01)
            return server.report()

    report = _run(main())
    assert report["compactions"] >= 1
    assert report["snapshot_swaps"] >= 1
    assert manager.pending_ops < 4


def test_stop_resolves_queued_requests_and_rejects_new_ones():
    objects, manager = _manager()
    rect = _rects(objects, 1)[0]

    async def main():
        server = CoalescingServer(manager)
        await server.start()
        ok = await server.submit_nowait(Request.range(rect))
        await server.stop()
        rejected = await server.submit_nowait(Request.range(rect))
        return ok, rejected

    ok, rejected = _run(main())
    assert ok.ok
    assert rejected.status == "error" and "not running" in rejected.error


def test_report_shape():
    objects, manager = _manager()
    rect = _rects(objects, 1)[0]

    async def main():
        async with CoalescingServer(manager) as server:
            await server.range_query(rect)
            return server.report()

    report = _run(main())
    for key in ("offered", "admitted", "shed", "completed", "retries",
                "breaker_opens", "faults_injected", "p50_ms", "p99_ms",
                "qps", "breaker_state", "epoch"):
        assert key in report
    assert report["offered"] == report["admitted"] == report["completed"] == 1
    assert report["breaker_state"] == "closed"
    assert isinstance(Response(status="ok").ok, bool)
