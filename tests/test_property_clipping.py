"""Property-based tests for skyline/stairline clipping and query correctness.

These are the invariants the paper's correctness rests on:

1. clip points never clip away space occupied by an object;
2. a query that intersects an object is never pruned by the clipped
   intersection test (no false negatives);
3. clipped and unclipped R-trees return identical query results.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.intersection import clipped_intersects
from repro.geometry.dominance import dominates
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect, mbb_of_rects
from repro.skyline.skyline import oriented_skyline

coord = st.floats(min_value=0, max_value=100, allow_nan=False, allow_infinity=False, width=32)


@st.composite
def small_rects(draw, dims):
    low = [draw(coord) for _ in range(dims)]
    extent = [draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False, width=32)) for _ in range(dims)]
    return Rect(low, [lo + e for lo, e in zip(low, extent)])


@st.composite
def rect_groups(draw, dims=2):
    count = draw(st.integers(min_value=2, max_value=12))
    return [draw(small_rects(dims)) for _ in range(count)]


class TestSkylineProperties:
    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=30), st.integers(min_value=0, max_value=3))
    @settings(max_examples=80)
    def test_skyline_members_not_dominated(self, points, mask):
        skyline = oriented_skyline(points, mask)
        assert skyline
        for p in skyline:
            assert not any(dominates(q, p, mask) for q in points)

    @given(st.lists(st.tuples(coord, coord), min_size=1, max_size=30), st.integers(min_value=0, max_value=3))
    @settings(max_examples=80)
    def test_every_point_dominated_by_some_skyline_member_or_in_it(self, points, mask):
        skyline = set(oriented_skyline(points, mask))
        for p in points:
            assert p in skyline or any(dominates(s, p, mask) for s in skyline)


class TestClippingProperties:
    @given(rect_groups(dims=2), st.sampled_from(["skyline", "stairline"]))
    @settings(max_examples=60, deadline=None)
    def test_clip_regions_never_cover_children_2d(self, children, method):
        mbb = mbb_of_rects(children)
        clips = compute_clip_points(mbb, children, ClippingConfig(method=method, tau=0.0))
        for clip in clips:
            region = clip.region(mbb)
            for child in children:
                assert region.intersection_volume(child) <= 1e-7

    @given(rect_groups(dims=3), st.sampled_from(["skyline", "stairline"]))
    @settings(max_examples=30, deadline=None)
    def test_clip_regions_never_cover_children_3d(self, children, method):
        mbb = mbb_of_rects(children)
        clips = compute_clip_points(mbb, children, ClippingConfig(method=method, tau=0.0))
        for clip in clips:
            region = clip.region(mbb)
            for child in children:
                assert region.intersection_volume(child) <= 1e-6

    @given(rect_groups(dims=2), small_rects(2))
    @settings(max_examples=80, deadline=None)
    def test_no_false_negatives_for_queries(self, children, query):
        mbb = mbb_of_rects(children)
        clips = compute_clip_points(mbb, children, ClippingConfig(method="stairline", tau=0.0))
        touches_object = any(query.intersects(child) for child in children)
        if touches_object:
            assert clipped_intersects(mbb, clips, query)

    @given(rect_groups(dims=2))
    @settings(max_examples=40, deadline=None)
    def test_scores_positive_and_sorted(self, children):
        mbb = mbb_of_rects(children)
        clips = compute_clip_points(mbb, children, ClippingConfig(method="stairline", tau=0.01))
        scores = [c.score for c in clips]
        assert scores == sorted(scores, reverse=True)
        node_volume = mbb.volume()
        assert all(s > 0.01 * node_volume for s in scores)


class TestEndToEndEquivalence:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_clipped_tree_equals_plain_tree_on_random_workloads(self, seed):
        from repro.rtree.clipped import ClippedRTree
        from repro.rtree.registry import build_rtree

        rng = random.Random(seed)
        objects = []
        for i in range(rng.randint(30, 120)):
            low = (rng.uniform(0, 50), rng.uniform(0, 50))
            high = (low[0] + rng.uniform(0, 5), low[1] + rng.uniform(0, 5))
            objects.append(SpatialObject(i, Rect(low, high)))
        variant = rng.choice(["quadratic", "hilbert", "rstar", "rrstar"])
        tree = build_rtree(variant, objects, max_entries=rng.choice([4, 6, 10]))
        clipped = ClippedRTree.wrap(tree, method=rng.choice(["skyline", "stairline"]))
        for _ in range(15):
            cx, cy = rng.uniform(-5, 55), rng.uniform(-5, 55)
            size = rng.uniform(0.1, 20)
            query = Rect((cx, cy), (cx + size, cy + size))
            expected = {o.oid for o in objects if o.rect.intersects(query)}
            assert {o.oid for o in clipped.range_query(query)} == expected
            assert {o.oid for o in tree.range_query(query)} == expected
