"""Tests for the clipped R-tree wrapper: queries, updates, and statistics."""

import random

import pytest

from repro.cbb.clipping import ClippingConfig
from repro.geometry.rect import Rect
from repro.query.range_query import brute_force_range, execute_workload
from repro.query.workload import RangeQueryWorkload
from repro.rtree.clipped import ClippedRTree, ReclipCause, UpdateReport
from repro.rtree.registry import VARIANT_NAMES, build_rtree
from repro.storage.stats import IOStats
from tests.conftest import make_random_objects


@pytest.fixture(params=VARIANT_NAMES)
def variant(request):
    return request.param


class TestClippedQueries:
    def test_results_identical_to_unclipped(self, variant, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        rng = random.Random(3)
        for _ in range(30):
            cx, cy = rng.uniform(0, 100), rng.uniform(0, 100)
            size = rng.uniform(0.5, 15)
            query = Rect((cx, cy), (cx + size, cy + size))
            expected = {o.oid for o in brute_force_range(medium_objects_2d, query)}
            assert {o.oid for o in clipped.range_query(query)} == expected

    def test_clipping_never_increases_leaf_accesses(self, variant, medium_objects_2d):
        tree = build_rtree(variant, medium_objects_2d, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        workload = RangeQueryWorkload.from_objects(medium_objects_2d, target_results=5, seed=2)
        queries = workload.query_list(40)
        for query in queries:
            plain_stats, clip_stats = IOStats(), IOStats()
            tree.range_query(query, stats=plain_stats)
            clipped.range_query(query, stats=clip_stats)
            assert clip_stats.leaf_accesses <= plain_stats.leaf_accesses

    def test_clipping_reduces_io_on_sparse_data(self):
        """Long skinny boxes leave lots of clippable dead space."""
        from repro.datasets import NeuriteGenerator

        objects = NeuriteGenerator(kind="axon", extent=500.0).generate(800, seed=9)
        tree = build_rtree("rstar", objects, max_entries=16)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        workload = RangeQueryWorkload.from_objects(objects, target_results=2, seed=3)
        queries = workload.query_list(60)
        plain = execute_workload(tree, queries)
        fast = execute_workload(clipped, queries)
        assert fast.avg_leaf_accesses < plain.avg_leaf_accesses

    def test_wrap_clips_every_clippable_node(self, medium_objects_2d):
        tree = build_rtree("rstar", medium_objects_2d, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline", tau=0.0)
        assert len(clipped.store) > 0
        assert clipped.average_clip_points() > 0.0
        clipped.check_clip_invariants()

    def test_skyline_stores_no_more_points_than_stairline(self, medium_objects_2d):
        tree = build_rtree("rstar", medium_objects_2d, max_entries=10)
        sky = ClippedRTree.wrap(tree, method="skyline")
        sta = ClippedRTree.wrap(tree, method="stairline")
        assert sky.store.total_clip_points() <= sta.store.total_clip_points()

    def test_count_query(self, medium_objects_2d):
        tree = build_rtree("quadratic", medium_objects_2d, max_entries=10)
        clipped = ClippedRTree.wrap(tree)
        query = Rect((0, 0), (50, 50))
        assert clipped.count_query(query) == len(brute_force_range(medium_objects_2d, query))

    def test_storage_breakdown(self, medium_objects_2d):
        tree = build_rtree("rstar", medium_objects_2d, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        breakdown = clipped.storage_breakdown()
        assert breakdown["leaf_nodes"] > 0
        assert breakdown["dir_nodes"] > 0
        assert breakdown["clip_points"] > 0
        assert breakdown["clip_points"] < breakdown["leaf_nodes"]


class TestClippedUpdates:
    def test_insert_keeps_results_correct(self, variant):
        objects = make_random_objects(260, seed=13)
        initial, extra = objects[:200], objects[200:]
        tree = build_rtree(variant, initial, max_entries=8)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        for obj in extra:
            report = clipped.insert(obj)
            assert isinstance(report, UpdateReport)
        tree.check_invariants()
        clipped.check_clip_invariants()
        query = Rect((0, 0), (100, 100))
        assert {o.oid for o in clipped.range_query(query)} == {o.oid for o in objects}

    def test_delete_keeps_results_correct(self, variant):
        objects = make_random_objects(220, seed=17)
        tree = build_rtree(variant, objects, max_entries=8)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        victims = objects[::3]
        for victim in victims:
            clipped.delete(victim)
        tree.check_invariants()
        clipped.check_clip_invariants()
        remaining = [o for o in objects if o not in set(victims)]
        query = Rect((0, 0), (100, 100))
        assert {o.oid for o in clipped.range_query(query)} == {o.oid for o in remaining}

    def test_delete_missing_object_is_noop(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        clipped = ClippedRTree.wrap(tree)
        ghost = make_random_objects(1, seed=555)[0]
        report = clipped.delete(ghost)
        assert report.count() == 0

    def test_update_report_counts(self):
        report = UpdateReport(reclips=[(1, ReclipCause.NODE_SPLIT), (2, ReclipCause.MBB_CHANGE)])
        assert report.count() == 2
        assert report.count(ReclipCause.NODE_SPLIT) == 1
        counts = report.counts_by_cause()
        assert counts[ReclipCause.NODE_SPLIT] == 1
        assert counts[ReclipCause.CBB_ONLY] == 0

    def test_reclip_rate_below_worst_case(self):
        """§IV-D: far fewer than one CBB-only re-clip per insertion."""
        objects = make_random_objects(400, seed=19)
        initial, extra = objects[:320], objects[320:]
        tree = build_rtree("rrstar", initial, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        cbb_only = 0
        for obj in extra:
            cbb_only += clipped.insert(obj).count(ReclipCause.CBB_ONLY)
        assert cbb_only / len(extra) < 1.0

    def test_removed_nodes_are_dropped_from_store(self):
        objects = make_random_objects(200, seed=23)
        tree = build_rtree("quadratic", objects, max_entries=8)
        clipped = ClippedRTree.wrap(tree, method="stairline", tau=0.0)
        for obj in objects[:150]:
            clipped.delete(obj)
        for node_id, _ in clipped.store.items():
            assert tree.has_node(node_id)

    def test_custom_config_respected(self, small_objects_2d):
        tree = build_rtree("quadratic", small_objects_2d, max_entries=8)
        clipped = ClippedRTree(tree, ClippingConfig(method="skyline", k=1, tau=0.0))
        clipped.clip_all()
        for _, clips in clipped.store.items():
            assert len(clips) <= 1
