"""Unit tests for splice points and stairlines (Definitions 6 and 7)."""

from repro.geometry.dominance import strictly_inside_corner_region
from repro.geometry.rect import mbb_of_rects
from repro.skyline.skyline import oriented_skyline
from repro.skyline.stairline import splice_point, stairline_points


class TestSplicePoint:
    def test_max_mask_takes_maxima(self):
        assert splice_point((1, 5), (3, 2), 0b11) == (3, 5)

    def test_min_mask_takes_minima(self):
        assert splice_point((1, 5), (3, 2), 0b00) == (1, 2)

    def test_mixed_mask(self):
        assert splice_point((1, 5), (3, 2), 0b01) == (3, 2)
        assert splice_point((1, 5), (3, 2), 0b10) == (1, 5)

    def test_symmetry(self):
        p, q = (1.0, 7.0, 2.0), (4.0, 3.0, 9.0)
        for mask in range(8):
            assert splice_point(p, q, mask) == splice_point(q, p, mask)

    def test_idempotent_on_equal_points(self):
        p = (2.0, 2.0)
        assert splice_point(p, p, 0b01) == p


class TestStairline:
    def test_paper_figure2_splice(self, figure2_objects):
        # The paper's point c combines the x of o1's 11-corner with the y of
        # o4's 11-corner when clipping corner R^11.
        corners = [obj.rect.corner(0b11) for obj in figure2_objects]
        skyline = oriented_skyline(corners, 0b11)
        stairs = stairline_points(skyline, 0b11, dims=2)
        o1_corner = figure2_objects[0].rect.corner(0b11)
        o4_corner = figure2_objects[3].rect.corner(0b11)
        expected = (min(o1_corner[0], o4_corner[0]), min(o1_corner[1], o4_corner[1]))
        assert expected in stairs

    def test_stairline_points_are_valid_clip_points(self, figure2_objects):
        rects = [obj.rect for obj in figure2_objects]
        for mask in range(4):
            corners = [r.corner(mask) for r in rects]
            skyline = oriented_skyline(corners, mask)
            for stair in stairline_points(skyline, mask, dims=2):
                # No object corner may sit strictly inside the clipped region.
                assert not any(
                    strictly_inside_corner_region(r.corner(mask), stair, mask) for r in rects
                )

    def test_stairline_empty_for_single_point(self):
        assert stairline_points([(1.0, 1.0)], 0b00, dims=2) == []

    def test_stairline_excludes_existing_skyline_points(self):
        skyline = [(0.0, 4.0), (2.0, 2.0), (4.0, 0.0)]
        stairs = stairline_points(skyline, 0b11, dims=2)
        assert not set(stairs) & set(skyline)

    def test_staircase_of_three_points(self):
        # Three incomparable points w.r.t. the max corner produce the two
        # inner staircase corners.
        skyline = [(0.0, 4.0), (2.0, 2.0), (4.0, 0.0)]
        stairs = set(stairline_points(skyline, 0b11, dims=2))
        assert (0.0, 2.0) in stairs
        assert (2.0, 0.0) in stairs
        # The splice of the two extremes would clip over (2,2): invalid.
        assert (0.0, 0.0) not in stairs

    def test_3d_stairline_validity(self, small_objects_3d):
        rects = [obj.rect for obj in small_objects_3d[:20]]
        mbb = mbb_of_rects(rects)
        for mask in range(8):
            corners = [r.corner(mask) for r in rects]
            skyline = oriented_skyline(corners, mask)
            for stair in stairline_points(skyline, mask, dims=3):
                assert mbb.contains_point(stair)
                assert not any(
                    strictly_inside_corner_region(r.corner(mask), stair, mask) for r in rects
                )
