"""Unit tests for the oriented skyline (Definition 5)."""

from hypothesis import given, settings, strategies as st

from repro.geometry.dominance import dominates
from repro.skyline.skyline import (
    _skyline_pairwise_indices,
    oriented_skyline,
    oriented_skyline_indices,
)


class TestOrientedSkyline:
    def test_paper_figure2_skyline(self, figure2_objects):
        # For corner R^00, the skyline consists of o1..o4; o5 is dominated
        # by o3 and o4 (paper, §III-B).
        corners = [obj.rect.corner(0b00) for obj in figure2_objects]
        skyline = set(oriented_skyline(corners, 0b00))
        assert corners[4] not in skyline
        assert {corners[0], corners[1], corners[2], corners[3]} == skyline

    def test_single_point(self):
        assert oriented_skyline([(1.0, 2.0)], 0b11) == [(1.0, 2.0)]

    def test_duplicates_reported_once(self):
        points = [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)]
        skyline = oriented_skyline(points, 0b00)
        assert skyline.count((1.0, 1.0)) == 1

    def test_totally_ordered_chain(self):
        # Points on a diagonal: only the one closest to the corner survives.
        points = [(i, i) for i in range(5)]
        assert oriented_skyline(points, 0b00) == [(0, 0)]
        assert oriented_skyline(points, 0b11) == [(4, 4)]

    def test_anti_chain_all_kept(self):
        points = [(0, 4), (1, 3), (2, 2), (3, 1), (4, 0)]
        for mask in (0b00, 0b11):
            assert len(oriented_skyline(points, mask)) == len(points)

    def test_no_skyline_point_dominated(self):
        import random

        rng = random.Random(3)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(60)]
        for mask in range(8):
            skyline = oriented_skyline(points, mask)
            assert skyline, "a non-empty set always has a skyline"
            for p in skyline:
                assert not any(dominates(q, p, mask) for q in points)

    def test_non_skyline_points_are_dominated(self):
        import random

        rng = random.Random(4)
        points = [(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(40)]
        for mask in range(4):
            indices = set(oriented_skyline_indices(points, mask))
            for i, p in enumerate(points):
                if i in indices:
                    continue
                assert any(dominates(q, p, mask) for j, q in enumerate(points) if j != i) or any(
                    points[j] == p for j in indices
                )

    def test_indices_refer_to_input_positions(self):
        points = [(5.0, 5.0), (0.0, 0.0), (6.0, 1.0)]
        indices = oriented_skyline_indices(points, 0b00)
        assert 1 in indices
        assert all(points[i] in points for i in indices)


#: Coordinates drawn from a small grid so duplicates and shared
#: coordinates (the tricky tie cases of the sweep) occur frequently.
_grid_coord = st.one_of(
    st.integers(min_value=0, max_value=6).map(float),
    st.floats(min_value=0, max_value=10, allow_nan=False, allow_infinity=False, width=32),
)


class TestSweepEquivalence:
    """The 2-d sort-based sweep must match the pairwise filter exactly."""

    @given(
        st.lists(st.tuples(_grid_coord, _grid_coord), min_size=1, max_size=40),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=200)
    def test_sweep_matches_pairwise_filter_2d(self, points, mask):
        assert oriented_skyline_indices(points, mask) == _skyline_pairwise_indices(
            points, mask
        )

    def test_3d_still_uses_pairwise_filter(self):
        points = [(1.0, 2.0, 3.0), (0.0, 0.0, 0.0), (2.0, 2.0, 2.0)]
        for mask in range(8):
            assert oriented_skyline_indices(points, mask) == _skyline_pairwise_indices(
                points, mask
            )
