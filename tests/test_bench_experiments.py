"""Integration tests: every experiment module runs end-to-end at tiny scale.

These do not assert the paper's quantitative findings (the benchmark suite
under ``benchmarks/`` does that at a larger scale); they verify that each
``run`` function produces structurally sound rows so the benches cannot
silently bit-rot.
"""

import pytest

from repro.bench import BenchConfig, ExperimentContext, format_table
from repro.bench.config import _scale
from repro.bench.experiments import (
    ablations,
    fig01_motivation,
    fig08_bounding_example,
    fig09_bounding_comparison,
    fig10_clipped_dead_space,
    fig11_range_queries,
    fig12_update_cost,
    fig13_storage,
    fig14_build_time,
    fig15_scalability,
    joins,
    updates,
)


@pytest.fixture(scope="module")
def tiny_context():
    return ExperimentContext(BenchConfig.tiny())


class TestConfig:
    def test_default_config_has_all_paper_datasets(self):
        config = BenchConfig()
        for name in ("par02", "par03", "rea02", "rea03", "axo03", "den03", "neu03"):
            assert config.size_of(name) >= 200
        assert config.size_of("unknown") > 0

    def test_tiny_config_is_small(self):
        config = BenchConfig.tiny()
        assert all(size <= 500 for size in config.dataset_sizes.values())

    def test_scale_parsing_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-number")
        assert _scale() == 1.0
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert _scale() == 2.5


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="X")


class TestExperimentsRun:
    def test_fig01(self, tiny_context):
        panels = fig01_motivation.run(tiny_context)
        assert set(panels) == {"fig1a_overlap", "fig1b_dead_space", "fig1c_io_optimality"}
        assert len(panels["fig1a_overlap"]) == 2 * 4
        assert all(0 <= row["dead_space_pct"] <= 100 for row in panels["fig1b_dead_space"])

    def test_fig08(self):
        rows = fig08_bounding_example.run()
        assert {row["method"] for row in rows} == {"MBC", "MBB", "RMBB", "4-C", "5-C", "CH", "CBBSKY", "CBBSTA"}

    def test_fig09(self, tiny_context):
        rows = fig09_bounding_comparison.run(tiny_context)
        assert len(rows) == 2 * 8
        assert all(row["avg_points"] >= 2 for row in rows)

    def test_fig10(self, tiny_context):
        rows = fig10_clipped_dead_space.run(
            tiny_context, methods=("stairline",), datasets=("par02",), k_values=(1, 4)
        )
        assert len(rows) == 1 * 1 * 4 * 2
        assert all(row["remaining_pct"] >= -1e-6 for row in rows)

    def test_fig11_and_table1(self, tiny_context):
        rows = fig11_range_queries.run(tiny_context, datasets=("par02",), methods=("stairline",))
        assert len(rows) == 3 * 4
        table = fig11_range_queries.table1(rows)
        assert table[-1]["variant"] == "Total"
        assert "QR0" in table[0]

    def test_fig12(self, tiny_context):
        rows = fig12_update_cost.run(tiny_context, datasets=("par02",))
        assert len(rows) == 4
        for row in rows:
            assert row["reclips_per_insert"] >= 0.0

    def test_fig13(self, tiny_context):
        rows = fig13_storage.run(tiny_context, datasets=("par02", "axo03"))
        assert len(rows) == 4
        for row in rows:
            assert abs(row["dir_nodes_pct"] + row["leaf_nodes_pct"] + row["clip_points_pct"] - 100.0) < 0.5

    def test_fig14(self, tiny_context):
        rows = fig14_build_time.run(tiny_context, datasets=("par02",))
        assert len(rows) == 1
        assert rows[0]["rrstar_pct"] == 100.0

    def test_joins(self, tiny_context):
        rows = joins.run(tiny_context, variants=("quadratic",))
        assert len(rows) == 1
        assert rows[0]["inlj_clipped_leaf_acc"] <= rows[0]["inlj_leaf_acc"]

    def test_updates(self, tiny_context):
        rows = updates.run(tiny_context, datasets=("par02",))
        assert len(rows) == len(tiny_context.config.variants)
        for row in rows:
            assert row["updates"] > 0
            assert row["refreeze_ms_per_update"] > 0.0
            assert row["delta_ms_per_update"] > 0.0
            assert row["compactions"] >= 1
            assert row["serving_engine"] == tiny_context.config.update_engine

    def test_fig15(self, tiny_context):
        rows = fig15_scalability.run(
            tiny_context, datasets=("par02",), size=600, queries_per_profile=5
        )
        assert len(rows) == 2 * 3
        for row in rows:
            assert row["unclipped_ms"] >= 0.0

    def test_fig15_engine_equivalence(self):
        """The columnar replay charges the disk exactly like the scalar walk."""
        scalar_config = BenchConfig.tiny()
        columnar_config = BenchConfig.tiny()
        columnar_config.engine = "columnar"
        kwargs = dict(datasets=("par02",), size=500, queries_per_profile=4)
        scalar_rows = fig15_scalability.run(ExperimentContext(scalar_config), **kwargs)
        columnar_rows = fig15_scalability.run(ExperimentContext(columnar_config), **kwargs)
        assert scalar_rows == columnar_rows

    def test_ablation_tau(self, tiny_context):
        rows = ablations.run_tau_sweep(tiny_context, dataset="par02", taus=(0.0, 0.1))
        assert len(rows) == 2
        assert rows[0]["avg_clip_points"] >= rows[1]["avg_clip_points"]

    def test_ablation_scoring(self, tiny_context):
        rows = ablations.run_scoring_comparison(tiny_context, dataset="par02", variant="quadratic")
        assert rows[0]["additive_score_volume"] >= rows[0]["exact_clipped_volume"] * 0.999

    def test_ablation_k_sweep(self, tiny_context):
        rows = ablations.run_k_sweep_io(tiny_context, dataset="par02", k_values=(1, 4))
        assert len(rows) == 2


class TestHarnessCaching:
    def test_objects_cached(self, tiny_context):
        a = tiny_context.objects("par02")
        b = tiny_context.objects("par02")
        assert a is b

    def test_trees_cached(self, tiny_context):
        a = tiny_context.tree("par02", "quadratic")
        b = tiny_context.tree("par02", "quadratic")
        assert a is b

    def test_clipped_cached_per_parameters(self, tiny_context):
        a = tiny_context.clipped("par02", "quadratic", method="skyline")
        b = tiny_context.clipped("par02", "quadratic", method="skyline")
        c = tiny_context.clipped("par02", "quadratic", method="stairline")
        assert a is b
        assert a is not c

    def test_workload_cached(self, tiny_context):
        a = tiny_context.workload("par02", 10)
        b = tiny_context.workload("par02", 10)
        assert a is b
