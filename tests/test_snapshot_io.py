"""Round-trip tests for the zero-copy snapshot persistence layer.

A snapshot saved with :func:`save_snapshot` and reopened with
:func:`load_snapshot` — mmap'd or copied — must be *differentially
identical* to the in-RAM original: every batch entry point returns the
same results with the same ``IOStats``.  The suite also pins the
manifest's integrity checks (missing/corrupt manifest, format-version
mismatch, missing or tampered array files), the lazy object
materialisation, and the dtype/contiguity pinning that makes the arrays
mmap-stable in the first place.
"""

import json
import shutil

import numpy as np
import pytest

from repro.engine import (
    FORMAT_VERSION,
    ColumnarIndex,
    SnapshotFormatError,
    inlj_batch,
    knn_batch,
    load_snapshot,
    range_query_batch,
    save_snapshot,
    stt_batch,
)
from repro.engine.snapshot_io import LazyObjectList, MANIFEST_NAME, read_manifest
from repro.geometry.rect import Rect
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.storage.stats import IOStats
from tests.conftest import make_random_objects


def _frozen(dims=3, count=120, clip=None, seed=0, variant="rstar"):
    objects = make_random_objects(count, dims=dims, seed=seed)
    tree = build_rtree(variant, objects, max_entries=8)
    index = ClippedRTree.wrap(tree, method=clip) if clip else tree
    return objects, ColumnarIndex.from_tree(index)


def _queries(objects, count=12, pad=1.5):
    """Inflated object rectangles: selective but never all-empty."""
    step = max(1, len(objects) // count)
    queries = []
    for obj in objects[::step][:count]:
        low = [c - pad for c in obj.rect.low]
        high = [c + pad for c in obj.rect.high]
        queries.append(Rect(low, high))
    return queries


def _oid_lists(results):
    return [[obj.oid for obj in batch] for batch in results]


def _assert_differentially_identical(reference, loaded, queries):
    stats_ref, stats_load = IOStats(), IOStats()
    res_ref = range_query_batch(reference, queries, stats=stats_ref)
    res_load = range_query_batch(loaded, queries, stats=stats_load)
    assert _oid_lists(res_ref) == _oid_lists(res_load)
    assert stats_ref == stats_load

    points = [q.low for q in queries[:4]]
    stats_ref, stats_load = IOStats(), IOStats()
    knn_ref = knn_batch(reference, points, k=3, stats=stats_ref)
    knn_load = knn_batch(loaded, points, k=3, stats=stats_load)
    assert [[(d, o.oid) for d, o in r] for r in knn_ref] == [
        [(d, o.oid) for d, o in r] for r in knn_load
    ]
    assert stats_ref == stats_load


@pytest.mark.parametrize("dims", range(2, 9))
@pytest.mark.parametrize("clip", [None, "stairline"])
def test_round_trip_identical(tmp_path, dims, clip):
    objects, reference = _frozen(dims=dims, clip=clip)
    queries = _queries(objects)
    save_snapshot(reference, tmp_path / "snap")
    for mmap in (True, False):
        loaded = load_snapshot(tmp_path / "snap", mmap=mmap)
        assert loaded.dims == reference.dims
        assert len(loaded.objects) == len(objects)
        _assert_differentially_identical(reference, loaded, queries)


def test_round_trip_joins_identical(tmp_path):
    left_objects, left = _frozen(dims=3, count=150, clip="stairline", seed=1)
    right_objects, right = _frozen(dims=3, count=150, seed=2)
    save_snapshot(left, tmp_path / "left")
    save_snapshot(right, tmp_path / "right")
    loaded_left = load_snapshot(tmp_path / "left")
    loaded_right = load_snapshot(tmp_path / "right")

    ref = stt_batch(left, right)
    got = stt_batch(loaded_left, loaded_right)
    assert got.pair_count == ref.pair_count
    assert got.outer_stats == ref.outer_stats
    assert got.inner_stats == ref.inner_stats
    assert {(a.oid, b.oid) for a, b in got.pairs} == {
        (a.oid, b.oid) for a, b in ref.pairs
    }

    ref = inlj_batch(left_objects, right)
    got = inlj_batch(left_objects, loaded_right)
    assert got.pair_count == ref.pair_count
    assert got.inner_stats == ref.inner_stats
    assert [(a.oid, b.oid) for a, b in got.pairs] == [
        (a.oid, b.oid) for a, b in ref.pairs
    ]


def test_round_trip_is_bit_exact(tmp_path):
    _, reference = _frozen(clip="skyline")
    save_snapshot(reference, tmp_path / "first")
    first = read_manifest(tmp_path / "first")

    # Saving the same snapshot again reproduces the fingerprint...
    save_snapshot(reference, tmp_path / "again")
    assert read_manifest(tmp_path / "again")["fingerprint"] == first["fingerprint"]

    # ...and so does saving a *loaded* snapshot: load → save is lossless.
    loaded = load_snapshot(tmp_path / "first")
    save_snapshot(loaded, tmp_path / "second")
    second = read_manifest(tmp_path / "second")
    assert second["fingerprint"] == first["fingerprint"]
    assert second["arrays"] == first["arrays"]


def test_loaded_snapshot_has_derived_caches(tmp_path):
    _, reference = _frozen()
    ref_lows, ref_highs = reference.node_bounds()
    ref_levels = reference.node_levels()
    save_snapshot(reference, tmp_path / "snap")
    loaded = load_snapshot(tmp_path / "snap")
    # Seeded at load time from the persisted files — no recomputation.
    assert loaded._node_lows is not None
    assert loaded._node_levels is not None
    lows, highs = loaded.node_bounds()
    np.testing.assert_array_equal(lows, ref_lows)
    np.testing.assert_array_equal(highs, ref_highs)
    np.testing.assert_array_equal(loaded.node_levels(), ref_levels)


def test_no_mmap_load_survives_directory_removal(tmp_path):
    objects, reference = _frozen()
    queries = _queries(objects)
    save_snapshot(reference, tmp_path / "snap")
    loaded = load_snapshot(tmp_path / "snap", mmap=False)
    shutil.rmtree(tmp_path / "snap")
    _assert_differentially_identical(reference, loaded, queries)


def test_missing_manifest(tmp_path):
    with pytest.raises(SnapshotFormatError, match="no snapshot manifest"):
        load_snapshot(tmp_path / "nowhere")


def test_corrupt_manifest(tmp_path):
    _, reference = _frozen(count=60)
    save_snapshot(reference, tmp_path)
    (tmp_path / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(SnapshotFormatError, match="unreadable"):
        load_snapshot(tmp_path)


def test_future_format_version_rejected(tmp_path):
    _, reference = _frozen(count=60)
    save_snapshot(reference, tmp_path)
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    manifest["format_version"] = FORMAT_VERSION + 1
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError, match="not supported"):
        load_snapshot(tmp_path)


def test_missing_array_file(tmp_path):
    _, reference = _frozen(count=60)
    save_snapshot(reference, tmp_path)
    data_dir = read_manifest(tmp_path)["data_dir"]
    (tmp_path / data_dir / "entry_lows.npy").unlink()
    with pytest.raises(SnapshotFormatError, match="missing"):
        load_snapshot(tmp_path)


def test_manifest_array_entry_missing(tmp_path):
    _, reference = _frozen(count=60)
    save_snapshot(reference, tmp_path)
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    del manifest["arrays"]["node_levels"]
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError, match="lacks arrays"):
        load_snapshot(tmp_path)


@pytest.mark.parametrize("field,value", [("dtype", "float32"), ("shape", [1, 1])])
def test_tampered_array_spec_rejected(tmp_path, field, value):
    _, reference = _frozen(count=60)
    save_snapshot(reference, tmp_path)
    manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
    manifest["arrays"]["entry_lows"][field] = value
    (tmp_path / MANIFEST_NAME).write_text(json.dumps(manifest))
    with pytest.raises(SnapshotFormatError, match="manifest"):
        load_snapshot(tmp_path)


def test_lazy_object_list(tmp_path):
    objects, reference = _frozen(count=40)
    save_snapshot(reference, tmp_path)
    loaded = load_snapshot(tmp_path)
    lazy = loaded.objects
    assert isinstance(lazy, LazyObjectList)
    assert len(lazy) == len(objects)
    # The column order is the snapshot's leaf order, not insertion order;
    # materialised objects equal the originals (oid + rect; payloads are
    # not persisted) and are cached, so repeated access is identity-stable.
    by_oid = {obj.oid: obj for obj in objects}
    assert lazy[5] == by_oid[lazy[5].oid]
    assert lazy[5] is lazy[5]
    assert lazy[-1] is lazy[len(objects) - 1]
    assert sorted(obj.oid for obj in lazy) == sorted(by_oid)
    assert all(obj == by_oid[obj.oid] for obj in lazy)
    with pytest.raises(IndexError):
        lazy[len(objects)]


_EXPECTED_DTYPES = {
    "is_leaf": np.bool_,
    "clip_is_high": np.bool_,
    "entry_lows": np.float64,
    "entry_highs": np.float64,
    "clip_coords": np.float64,
    "entry_start": np.int64,
    "entry_count": np.int64,
    "node_ids": np.int64,
    "entry_child": np.int64,
    "clip_start": np.int64,
    "clip_count": np.int64,
    "node_clip_start": np.int64,
    "node_clip_count": np.int64,
}


def test_frozen_arrays_are_pinned_and_contiguous():
    _, snapshot = _frozen(clip="stairline")
    for attr, dtype in _EXPECTED_DTYPES.items():
        array = getattr(snapshot, attr)
        assert array.dtype == np.dtype(dtype), attr
        assert array.flags["C_CONTIGUOUS"], attr


def test_loaded_arrays_keep_pinned_dtypes(tmp_path):
    _, reference = _frozen(clip="stairline")
    save_snapshot(reference, tmp_path)
    for mmap in (True, False):
        loaded = load_snapshot(tmp_path, mmap=mmap)
        for attr, dtype in _EXPECTED_DTYPES.items():
            assert getattr(loaded, attr).dtype == np.dtype(dtype), attr


def test_loaded_snapshot_is_never_stale(tmp_path):
    _, reference = _frozen()
    save_snapshot(reference, tmp_path)
    loaded = load_snapshot(tmp_path)
    assert loaded.source is None
    assert not loaded.is_stale
