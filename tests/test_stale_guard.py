"""Stale-snapshot detection: frozen indexes must not silently lie.

A ``ColumnarIndex`` freezes one structure version of its source; once
the source mutates, serving the freeze silently returns pre-mutation
results.  ``execute_workload`` and ``execute_join`` now resolve such
snapshots through an explicit policy: refresh (default), raise, or
knowingly serve the frozen state.
"""

import pytest

from repro.engine import ColumnarIndex, StaleSnapshotError, resolve_stale
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.join import execute_join
from repro.join.stt import synchronized_tree_traversal_join
from repro.query.range_query import brute_force_range, execute_workload
from repro.rtree.registry import build_rtree
from tests.conftest import make_random_objects


@pytest.fixture
def mutated_setup():
    """A snapshot frozen before 30 extra objects landed in its source."""
    objects = make_random_objects(60, seed=31)
    tree = build_rtree("quadratic", objects, max_entries=8)
    snapshot = ColumnarIndex.from_tree(tree)
    extra = make_random_objects(30, seed=32)
    extra = [SpatialObject(1000 + i, o.rect) for i, o in enumerate(extra)]
    for obj in extra:
        tree.insert(obj)
    return tree, snapshot, objects + extra


class TestResolveStale:
    def test_fresh_snapshot_passes_through(self, mutated_setup):
        tree, snapshot, _ = mutated_setup
        fresh = ColumnarIndex.from_tree(tree)
        assert resolve_stale(fresh, "raise") is fresh

    def test_refresh_returns_current_freeze(self, mutated_setup):
        tree, snapshot, _ = mutated_setup
        assert snapshot.is_stale
        refreshed = resolve_stale(snapshot, "refresh")
        assert not refreshed.is_stale
        assert len(refreshed.objects) == len(tree)

    def test_raise_policy(self, mutated_setup):
        _, snapshot, _ = mutated_setup
        with pytest.raises(StaleSnapshotError):
            resolve_stale(snapshot, "raise")

    def test_serve_policy_keeps_frozen_state(self, mutated_setup):
        _, snapshot, _ = mutated_setup
        assert resolve_stale(snapshot, "serve") is snapshot

    def test_unknown_policy_rejected(self, mutated_setup):
        _, snapshot, _ = mutated_setup
        with pytest.raises(ValueError):
            resolve_stale(snapshot, "panic")


class TestWorkloadStaleGuard:
    def test_default_refresh_serves_current_data(self, mutated_setup):
        _, snapshot, live = mutated_setup
        query = Rect((0, 0), (100, 100))
        result = execute_workload(snapshot, [query])
        assert result.total_results == len(brute_force_range(live, query))

    def test_raise_policy_surfaces_staleness(self, mutated_setup):
        _, snapshot, _ = mutated_setup
        with pytest.raises(StaleSnapshotError):
            execute_workload(snapshot, [Rect((0, 0), (100, 100))], stale="raise")

    def test_serve_policy_answers_from_the_freeze(self, mutated_setup):
        _, snapshot, _ = mutated_setup
        query = Rect((0, 0), (100, 100))
        served = execute_workload(snapshot, [query], stale="serve")
        # The frozen state predates the 30 extra objects.
        assert served.total_results == len(
            brute_force_range(list(snapshot.objects), query)
        )


class TestJoinStaleGuard:
    def test_default_refresh_matches_scalar_join(self, mutated_setup):
        tree, snapshot, _ = mutated_setup
        other = build_rtree("quadratic", make_random_objects(40, seed=33), max_entries=8)
        managed = execute_join(snapshot, other, algorithm="stt", engine="columnar")
        scalar = synchronized_tree_traversal_join(tree, other)
        assert managed.pair_count == scalar.pair_count

    def test_raise_policy(self, mutated_setup):
        _, snapshot, _ = mutated_setup
        other = build_rtree("quadratic", make_random_objects(40, seed=33), max_entries=8)
        with pytest.raises(StaleSnapshotError):
            execute_join(snapshot, other, algorithm="stt", engine="columnar", stale="raise")

    def test_serve_policy_joins_the_freeze(self, mutated_setup):
        tree, snapshot, _ = mutated_setup
        other = build_rtree("quadratic", make_random_objects(40, seed=33), max_entries=8)
        served = execute_join(snapshot, other, algorithm="stt", engine="columnar", stale="serve")
        fresh = execute_join(tree, other, algorithm="stt", engine="columnar")
        # The frozen side misses the post-freeze inserts, so it can only
        # produce a subset of the fresh join's pairs.
        assert served.pair_count <= fresh.pair_count
        served_keys = {
            ((l.oid, l.rect.low, l.rect.high), (r.oid, r.rect.low, r.rect.high))
            for l, r in served.pairs
        }
        fresh_keys = {
            ((l.oid, l.rect.low, l.rect.high), (r.oid, r.rect.low, r.rect.high))
            for l, r in fresh.pairs
        }
        assert served_keys <= fresh_keys


class TestServeStaleUnderBreaker:
    """The server's breaker-degraded path is the ``"serve"`` policy online.

    When the circuit breaker opens, :class:`CoalescingServer` answers
    queries from the frozen base snapshot via ``resolve_stale(snapshot,
    "serve")`` — exactly the policy pinned above, but the staleness that
    ``execute_workload(stale="serve")`` leaves implicit must surface in
    the response metadata: ``stale=True`` whenever the answer can be
    missing pending writes, ``stale=False`` when the frozen base happens
    to be the complete truth.
    """

    @staticmethod
    def _server_setup(count=120, seed=41):
        import asyncio

        from repro.engine import SnapshotManager
        from repro.serve.server import CoalescingServer, Request

        objects = make_random_objects(count, seed=seed)
        tree = build_rtree("rstar", objects, max_entries=8)
        manager = SnapshotManager(tree, update_engine="delta")
        return asyncio, CoalescingServer, Request, objects, manager

    def test_degraded_answer_with_pending_writes_is_stale_stamped(self):
        asyncio, CoalescingServer, Request, objects, manager = self._server_setup()
        base_snapshot = manager.snapshot
        probe = Rect((0, 0), (100, 100))
        extra = SpatialObject(9_999, Rect((1.0, 1.0), (2.0, 2.0)))

        async def main():
            async with CoalescingServer(manager) as server:
                await server.insert(extra)  # lands in the overlay
                server.breaker.force_open()
                return await server.range_query(probe)

        response = asyncio.run(main())
        assert response.ok and response.degraded
        # the overlay holds a pending insert the frozen base cannot see:
        # the answer MUST be stamped stale
        assert response.stale
        served_oids = {o.oid for o in response.value}
        assert extra.oid not in served_oids
        # and it is exactly the "serve" policy's answer over the base
        frozen = resolve_stale(base_snapshot, "serve")
        expected = {
            o.oid for o in brute_force_range(list(frozen.objects), probe)
        }
        assert served_oids == expected

    def test_degraded_answer_without_pending_writes_is_not_stale(self):
        asyncio, CoalescingServer, Request, objects, manager = self._server_setup()
        probe = Rect((0, 0), (100, 100))

        async def main():
            async with CoalescingServer(manager) as server:
                server.breaker.force_open()
                return await server.range_query(probe)

        response = asyncio.run(main())
        assert response.ok and response.degraded
        # empty overlay + fresh base: the frozen answer is complete truth
        assert not response.stale
        assert {o.oid for o in response.value} == {
            o.oid for o in brute_force_range(objects, probe)
        }

    def test_degraded_knn_is_stale_stamped(self):
        asyncio, CoalescingServer, Request, objects, manager = self._server_setup()
        extra = SpatialObject(9_998, Rect((50.0, 50.0), (51.0, 51.0)))

        async def main():
            async with CoalescingServer(manager) as server:
                await server.insert(extra)
                server.breaker.force_open()
                return await server.knn((50.0, 50.0), 4)

        response = asyncio.run(main())
        assert response.ok and response.degraded and response.stale
        assert all(hit.oid != extra.oid for _d, hit in response.value)

    def test_recovered_server_serves_fresh_unstamped(self):
        """After the cooldown's half-open probe succeeds, answers include
        the overlay again and drop the stale stamp."""
        asyncio, CoalescingServer, Request, objects, manager = self._server_setup()
        from repro.serve.server import ServeConfig

        probe = Rect((0, 0), (100, 100))
        extra = SpatialObject(9_997, Rect((3.0, 3.0), (4.0, 4.0)))
        config = ServeConfig(breaker_cooldown=0.01)

        async def main():
            async with CoalescingServer(manager, config) as server:
                await server.insert(extra)
                server.breaker.force_open()
                degraded = await server.range_query(probe)
                await asyncio.sleep(0.03)  # past the cooldown: half-open
                fresh = await server.range_query(probe)
                return degraded, fresh

        degraded, fresh = asyncio.run(main())
        assert degraded.stale and degraded.degraded
        assert fresh.ok and not fresh.stale and not fresh.degraded
        assert extra.oid in {o.oid for o in fresh.value}
        assert extra.oid not in {o.oid for o in degraded.value}
