"""Tests for the synthetic dataset generators."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    GaussianClusterGenerator,
    NeuriteGenerator,
    ParcelGenerator,
    PointCloudGenerator,
    StreetSegmentGenerator,
    UniformBoxGenerator,
    dataset_info,
    generate,
)
from repro.geometry.rect import mbb_of_rects


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        assert set(DATASET_NAMES) == {"par02", "par03", "rea02", "rea03", "axo03", "den03", "neu03"}
        for name in DATASET_NAMES:
            assert dataset_info(name) is not None

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            generate("nope", 10)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_generate_correct_count_and_dims(self, name):
        objects = generate(name, 200, seed=1)
        assert len(objects) == 200
        expected_dims = 3 if name.endswith("03") else 2
        assert all(obj.dims == expected_dims for obj in objects)
        assert [obj.oid for obj in objects] == list(range(200))

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic_per_seed(self, name):
        a = generate(name, 50, seed=5)
        b = generate(name, 50, seed=5)
        c = generate(name, 50, seed=6)
        assert [o.rect for o in a] == [o.rect for o in b]
        assert [o.rect for o in a] != [o.rect for o in c]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate("par02", 0)


class TestGeneratorCharacteristics:
    def test_rea03_is_pure_points(self):
        objects = generate("rea03", 100, seed=2)
        assert all(obj.rect.is_point() for obj in objects)

    def test_street_segments_are_thin(self):
        objects = StreetSegmentGenerator().generate(300, seed=3)
        thin = sum(
            1
            for obj in objects
            if min(obj.rect.side(0), obj.rect.side(1)) < 0.2 * max(obj.rect.side(0), obj.rect.side(1))
        )
        assert thin > 0.5 * len(objects)

    def test_parcels_have_high_size_variance(self):
        objects = ParcelGenerator(dims=2).generate(500, seed=4)
        volumes = sorted(obj.rect.volume() for obj in objects)
        assert volumes[int(0.95 * len(volumes))] > 50 * max(volumes[int(0.05 * len(volumes))], 1e-12)

    def test_neurites_are_long_and_skinny(self):
        objects = NeuriteGenerator(kind="axon").generate(400, seed=5)
        elongated = 0
        for obj in objects:
            sides = sorted(obj.rect.side(i) for i in range(3))
            if sides[2] > 3 * sides[0]:
                elongated += 1
        assert elongated > 0.5 * len(objects)

    def test_neurite_kinds_differ(self):
        axons = NeuriteGenerator(kind="axon").generate(200, seed=6)
        dendrites = NeuriteGenerator(kind="dendrite").generate(200, seed=6)
        avg_axon = sum(o.rect.margin() for o in axons) / len(axons)
        avg_dendrite = sum(o.rect.margin() for o in dendrites) / len(dendrites)
        assert avg_axon > avg_dendrite

    def test_unknown_neurite_kind_rejected(self):
        with pytest.raises(ValueError):
            NeuriteGenerator(kind="soma")

    def test_parcel_generator_requires_2d(self):
        with pytest.raises(ValueError):
            ParcelGenerator(dims=1)

    def test_objects_fit_in_reasonable_extent(self):
        for generator in (
            UniformBoxGenerator(dims=2, extent=100.0),
            GaussianClusterGenerator(dims=2, extent=100.0),
            PointCloudGenerator(dims=3, extent=100.0),
        ):
            objects = generator.generate(200, seed=7)
            space = mbb_of_rects([o.rect for o in objects])
            assert all(space.side(i) < 1000.0 for i in range(space.dims))

    def test_uniform_boxes_cover_space(self):
        objects = UniformBoxGenerator(dims=2, extent=100.0).generate(500, seed=8)
        space = mbb_of_rects([o.rect for o in objects])
        assert space.side(0) > 80.0
        assert space.side(1) > 80.0
