"""Small API-surface tests: labels, reporting helpers, package exports."""

import pytest

import repro
from repro.bench.reporting import format_table, percent
from repro.cbb.clip_point import ClipPoint
from repro.cbb.intersection import QUERY_SELECTOR_ALL_DIMS, clipped_intersects
from repro.cbb.clipping import VALID_METHODS
from repro.datasets.registry import DATASET_NAMES
from repro.geometry.rect import Rect
from repro.rtree.registry import VARIANT_LABELS, VARIANT_NAMES


class TestPackageSurface:
    def test_version_and_top_level_exports(self):
        assert repro.__version__
        assert repro.Rect is Rect
        assert "SpatialObject" in repro.__all__

    def test_variant_labels_cover_all_variants(self):
        assert set(VARIANT_LABELS) == set(VARIANT_NAMES)
        assert VARIANT_LABELS["rrstar"] == "RR*-tree"

    def test_dataset_names_match_paper_order(self):
        assert DATASET_NAMES[0] == "par02"
        assert len(DATASET_NAMES) == 7

    def test_valid_clipping_methods(self):
        assert set(VALID_METHODS) == {"skyline", "stairline"}


class TestReportingHelpers:
    def test_percent(self):
        assert percent(0.5) == 50.0
        assert percent(0.12345) == pytest.approx(12.3)

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert "c" in header and "a" in header and "b" not in header

    def test_format_table_handles_missing_keys(self):
        rows = [{"a": 1}, {"a": 2, "b": "x"}]
        text = format_table(rows, columns=["a", "b"])
        assert text.count("\n") == 1 + 2  # header + separator + two rows - 1

    def test_format_table_float_formatting(self):
        text = format_table([{"v": 3.14159}])
        assert "3.14" in text


class TestSelectorSemantics:
    def test_query_selector_sentinel_resolves_per_dimensionality(self):
        # A clip on the max corner of a 3d box: a query hugging the
        # opposite corner must not be pruned, one inside the clipped
        # corner must be.
        mbb = Rect((0, 0, 0), (10, 10, 10))
        clip = ClipPoint((7.0, 7.0, 7.0), 0b111, score=27.0)
        near_origin = Rect((0, 0, 0), (1, 1, 1))
        in_corner = Rect((8, 8, 8), (9, 9, 9))
        assert clipped_intersects(mbb, [clip], near_origin, selector=QUERY_SELECTOR_ALL_DIMS)
        assert not clipped_intersects(mbb, [clip], in_corner, selector=QUERY_SELECTOR_ALL_DIMS)

    def test_explicit_selector_matches_sentinel(self):
        mbb = Rect((0, 0), (10, 10))
        clip = ClipPoint((6.0, 6.0), 0b11, score=16.0)
        query = Rect((7, 7), (8, 8))
        assert clipped_intersects(mbb, [clip], query, selector=0b11) == clipped_intersects(
            mbb, [clip], query, selector=QUERY_SELECTOR_ALL_DIMS
        )
