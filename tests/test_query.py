"""Tests for the query workload generator, execution helpers, and kNN search."""

import pytest

from repro.geometry.rect import Rect
from repro.query.knn import knn_query
from repro.query.range_query import brute_force_range, execute_workload
from repro.query.workload import STANDARD_PROFILES, QueryProfile, RangeQueryWorkload
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.storage.stats import IOStats
from tests.conftest import make_random_objects


class TestWorkloadCalibration:
    def test_standard_profiles(self):
        assert [p.target_results for p in STANDARD_PROFILES] == [1, 10, 100]
        assert [p.name for p in STANDARD_PROFILES] == ["QR0", "QR1", "QR2"]
        assert isinstance(STANDARD_PROFILES[0], QueryProfile)

    def test_calibrated_selectivity_close_to_target(self):
        objects = make_random_objects(2000, seed=31)
        workload = RangeQueryWorkload.from_objects(objects, target_results=10, seed=1)
        queries = workload.query_list(50)
        counts = [len(brute_force_range(objects, q)) for q in queries]
        average = sum(counts) / len(counts)
        assert 3.0 <= average <= 40.0, f"average selectivity {average} far from target 10"

    def test_higher_target_gives_larger_queries(self):
        objects = make_random_objects(1500, seed=32)
        small = RangeQueryWorkload.from_objects(objects, target_results=1, seed=1)
        large = RangeQueryWorkload.from_objects(objects, target_results=50, seed=1)
        assert large.side_lengths[0] > small.side_lengths[0]

    def test_queries_centered_on_dithered_object_centers(self):
        objects = make_random_objects(300, seed=33)
        workload = RangeQueryWorkload.from_objects(objects, target_results=5, seed=1)
        space = workload.space
        grown = space.scaled(1.5)
        for query in workload.queries(30):
            assert grown.intersects(query)

    def test_deterministic_given_seed(self):
        objects = make_random_objects(300, seed=34)
        workload = RangeQueryWorkload.from_objects(objects, target_results=5, seed=9)
        first = workload.query_list(10, seed=123)
        second = workload.query_list(10, seed=123)
        assert first == second

    def test_invalid_parameters(self):
        objects = make_random_objects(50, seed=35)
        with pytest.raises(ValueError):
            RangeQueryWorkload.from_objects(objects, target_results=0)
        with pytest.raises(ValueError):
            RangeQueryWorkload.from_objects([], target_results=5)
        with pytest.raises(ValueError):
            RangeQueryWorkload(objects, side_lengths=(1.0,), dither=0.1)

    def test_query_at(self):
        objects = make_random_objects(50, seed=36)
        workload = RangeQueryWorkload(objects, side_lengths=(2.0, 4.0), dither=0.0)
        query = workload.query_at((10.0, 20.0))
        assert query == Rect((9.0, 18.0), (11.0, 22.0))


class TestExecuteWorkload:
    def test_aggregates(self):
        objects = make_random_objects(400, seed=37)
        tree = build_rtree("rstar", objects, max_entries=10)
        workload = RangeQueryWorkload.from_objects(objects, target_results=5, seed=2)
        queries = workload.query_list(20)
        result = execute_workload(tree, queries)
        assert result.queries == 20
        assert result.avg_results > 0
        assert result.avg_leaf_accesses > 0
        assert 0.0 <= result.io_optimality <= 1.0

    def test_empty_workload(self):
        objects = make_random_objects(50, seed=38)
        tree = build_rtree("quadratic", objects, max_entries=8)
        result = execute_workload(tree, [])
        assert result.queries == 0
        assert result.avg_results == 0.0
        assert result.io_optimality == 1.0

    def test_brute_force_reference(self):
        objects = make_random_objects(100, seed=39)
        query = Rect((0, 0), (30, 30))
        expected = [o for o in objects if o.rect.intersects(query)]
        assert brute_force_range(objects, query) == expected


class TestKnn:
    def test_knn_matches_brute_force(self):
        objects = make_random_objects(400, seed=41)
        tree = build_rtree("rstar", objects, max_entries=10)
        point = (50.0, 50.0)
        results = knn_query(tree, point, k=10)
        assert len(results) == 10
        brute = sorted(objects, key=lambda o: o.rect.min_distance_sq(point))[:10]
        assert {o.oid for _, o in results} == {o.oid for o in brute}
        distances = [d for d, _ in results]
        assert distances == sorted(distances)

    def test_knn_k_larger_than_dataset(self):
        objects = make_random_objects(5, seed=42)
        tree = build_rtree("quadratic", objects, max_entries=4)
        results = knn_query(tree, (0.0, 0.0), k=50)
        assert len(results) == 5

    def test_knn_counts_io(self):
        objects = make_random_objects(300, seed=43)
        tree = build_rtree("rstar", objects, max_entries=10)
        stats = IOStats()
        knn_query(tree, (10.0, 10.0), k=3, stats=stats)
        assert stats.leaf_accesses >= 1
        assert stats.leaf_accesses < tree.leaf_count()

    def test_knn_invalid_k(self):
        objects = make_random_objects(10, seed=44)
        tree = build_rtree("quadratic", objects, max_entries=4)
        with pytest.raises(ValueError):
            knn_query(tree, (0.0, 0.0), k=0)


class TestClippedKnn:
    """kNN over a ClippedRTree traverses the wrapped tree unchanged."""

    def test_knn_on_clipped_matches_unclipped(self):
        objects = make_random_objects(400, seed=45)
        tree = build_rtree("rstar", objects, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        for point in [(50.0, 50.0), (0.0, 99.0), (12.5, 80.0)]:
            plain = knn_query(tree, point, k=8)
            via_clipped = knn_query(clipped, point, k=8)
            assert [(d, o.oid) for d, o in via_clipped] == [
                (d, o.oid) for d, o in plain
            ]

    def test_knn_on_clipped_matches_brute_force(self):
        objects = make_random_objects(300, seed=46)
        tree = build_rtree("hilbert", objects, max_entries=8)
        clipped = ClippedRTree.wrap(tree, method="skyline")
        point = (33.0, 66.0)
        results = knn_query(clipped, point, k=10)
        brute = sorted(objects, key=lambda o: o.rect.min_distance_sq(point))[:10]
        assert {o.oid for _, o in results} == {o.oid for o in brute}

    def test_knn_on_clipped_counts_io(self):
        objects = make_random_objects(300, seed=47)
        tree = build_rtree("rstar", objects, max_entries=10)
        clipped = ClippedRTree.wrap(tree)
        stats = IOStats()
        knn_query(clipped, (10.0, 10.0), k=3, stats=stats)
        assert stats.leaf_accesses >= 1
        assert stats.leaf_accesses < clipped.leaf_count()


class TestStatsNonePaths:
    """Query entry points must all accept the default ``stats=None``."""

    def test_scalar_paths_without_stats(self):
        objects = make_random_objects(120, seed=48)
        tree = build_rtree("rstar", objects, max_entries=8)
        clipped = ClippedRTree.wrap(tree)
        query = Rect((10.0, 10.0), (30.0, 30.0))
        assert {o.oid for o in tree.range_query(query)} == {
            o.oid for o in clipped.range_query(query)
        }
        assert knn_query(tree, (5.0, 5.0), k=3)
        assert knn_query(clipped, (5.0, 5.0), k=3)

    def test_batch_paths_without_stats(self):
        from repro.engine import ColumnarIndex

        objects = make_random_objects(120, seed=49)
        tree = build_rtree("rstar", objects, max_entries=8)
        for index in (tree, ClippedRTree.wrap(tree)):
            snapshot = ColumnarIndex.from_tree(index)
            queries = [Rect((10.0, 10.0), (30.0, 30.0)), Rect((200.0, 200.0), (201.0, 201.0))]
            results = snapshot.range_query_batch(queries)
            assert len(results) == 2
            assert results[1] == []
            assert snapshot.knn_batch([(5.0, 5.0)], k=3)[0]
