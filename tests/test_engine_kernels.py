"""Seeded property tests for the engine's vectorized kernels.

Each kernel is compared against its scalar reference implementation on
randomized inputs engineered to hit the awkward regions: rectangles that
touch only on a face/corner (closed-intersection boundary), degenerate
point rectangles, query corners exactly on a clip point (strictness), and
MinDist points inside/outside/astride rectangle slabs.  Seeds are fixed,
so failures reproduce deterministically.
"""

import random

import numpy as np
import pytest

from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.intersection import clipped_intersects
from repro.engine import ColumnarIndex, range_query_batch
from repro.engine.kernels import (
    clip_prune_mask,
    expand_segments,
    intersect_mask,
    masks_to_bool,
    min_dist_sq,
    segment_any,
)
from repro.geometry.dominance import strictly_inside_corner_region
from repro.geometry.rect import Rect, mbb_of_rects
from repro.query.knn import knn_query
from repro.query.range_query import brute_force_range
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from tests.conftest import make_random_objects


def _grid_rect(rng, dims, span=10):
    """Random rectangle on an integer grid (boundary contact is common)."""
    low = [float(rng.randint(0, span)) for _ in range(dims)]
    high = [lo + float(rng.randint(0, 3)) for lo in low]
    return Rect(low, high)


class TestIntersectionKernel:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4])
    def test_matches_rect_intersects(self, dims):
        rng = random.Random(100 + dims)
        rects = [_grid_rect(rng, dims) for _ in range(300)]
        queries = [_grid_rect(rng, dims) for _ in range(40)]
        lows = np.array([r.low for r in rects])
        highs = np.array([r.high for r in rects])
        for query in queries:
            mask = intersect_mask(lows, highs, np.array(query.low), np.array(query.high))
            expected = np.array([r.intersects(query) for r in rects])
            assert np.array_equal(mask, expected)

    def test_point_rectangles(self):
        rng = random.Random(7)
        rects = [_grid_rect(rng, 2) for _ in range(200)]
        lows = np.array([r.low for r in rects])
        highs = np.array([r.high for r in rects])
        for _ in range(50):
            point = Rect.from_point((float(rng.randint(0, 12)), float(rng.randint(0, 12))))
            mask = intersect_mask(lows, highs, np.array(point.low), np.array(point.high))
            expected = np.array([r.intersects(point) for r in rects])
            assert np.array_equal(mask, expected)

    def test_per_row_queries(self):
        rng = random.Random(8)
        rects = [_grid_rect(rng, 3) for _ in range(150)]
        queries = [_grid_rect(rng, 3) for _ in range(150)]
        mask = intersect_mask(
            np.array([r.low for r in rects]),
            np.array([r.high for r in rects]),
            np.array([q.low for q in queries]),
            np.array([q.high for q in queries]),
        )
        expected = np.array([r.intersects(q) for r, q in zip(rects, queries)])
        assert np.array_equal(mask, expected)


class TestMinDistKernel:
    @pytest.mark.parametrize("dims", [1, 2, 3])
    def test_matches_rect_min_distance_sq(self, dims):
        rng = random.Random(200 + dims)
        rects = [_grid_rect(rng, dims) for _ in range(300)]
        lows = np.array([r.low for r in rects])
        highs = np.array([r.high for r in rects])
        for _ in range(30):
            point = [rng.uniform(-5.0, 18.0) for _ in range(dims)]
            dists = min_dist_sq(lows, highs, np.array(point))
            expected = np.array([r.min_distance_sq(point) for r in rects])
            # Bit-exact: same per-dimension arithmetic, same accumulation order.
            assert np.array_equal(dists, expected)

    def test_zero_inside(self):
        rect = Rect((0.0, 0.0), (10.0, 10.0))
        dists = min_dist_sq(
            np.array([rect.low]), np.array([rect.high]), np.array([5.0, 10.0])
        )
        assert dists[0] == 0.0

    def test_knn_ordering_matches_scalar(self):
        """The kernel drives knn_batch to the scalar traversal's ordering."""
        objects = make_random_objects(350, dims=2, seed=55)
        tree = build_rtree("rstar", objects, max_entries=9)
        snapshot = ColumnarIndex.from_tree(tree)
        rng = random.Random(56)
        for _ in range(8):
            point = (rng.uniform(0, 100), rng.uniform(0, 100))
            scalar = knn_query(tree, point, k=12)
            batch = snapshot.knn_batch([point], k=12)[0]
            assert [(d, o.oid) for d, o in batch] == [(d, o.oid) for d, o in scalar]
            dists = [d for d, _ in batch]
            assert dists == sorted(dists)


class TestClipPruneKernel:
    def _random_clipped_node(self, rng, dims):
        rects = [_grid_rect(rng, dims) for _ in range(rng.randint(4, 14))]
        mbb = mbb_of_rects(rects)
        clips = compute_clip_points(mbb, rects, ClippingConfig(method="stairline"))
        return mbb, clips

    @pytest.mark.parametrize("dims", [2, 3])
    def test_matches_scalar_dominance_probe(self, dims):
        rng = random.Random(300 + dims)
        cases = 0
        for _ in range(60):
            mbb, clips = self._random_clipped_node(rng, dims)
            if not clips:
                continue
            coords = np.array([c.coord for c in clips])
            is_high = masks_to_bool(np.array([c.mask for c in clips]), dims)
            for _ in range(20):
                query = _grid_rect(rng, dims)
                q_low = np.broadcast_to(np.array(query.low), coords.shape)
                q_high = np.broadcast_to(np.array(query.high), coords.shape)
                verdicts = clip_prune_mask(q_low, q_high, coords, is_high)
                selector = (1 << dims) - 1
                expected = np.array(
                    [
                        strictly_inside_corner_region(
                            query.corner(selector ^ c.mask), c.coord, c.mask
                        )
                        for c in clips
                    ]
                )
                assert np.array_equal(verdicts, expected)
                # Aggregated: any pruning clip ≙ clipped_intersects == False
                if mbb.intersects(query):
                    assert (not clipped_intersects(mbb, clips, query)) == bool(
                        verdicts.any()
                    )
                cases += 1
        assert cases > 100, "not enough clipped nodes generated"

    def test_boundary_contact_never_prunes(self):
        """A query corner exactly on the clip point must not be pruned."""
        mbb = Rect((0.0, 0.0), (10.0, 10.0))
        coords = np.array([[8.0, 8.0]])
        is_high = masks_to_bool(np.array([0b11]), 2)  # clips towards (10, 10)
        # Query's far corner (towards the clip corner) lands exactly on the
        # clip coordinate: strictness requires no pruning.
        q_low = np.array([[8.0, 8.0]])
        q_high = np.array([[8.0, 8.0]])
        assert not clip_prune_mask(q_low, q_high, coords, is_high)[0]
        # Strictly inside the dead region: pruned.
        q_low = np.array([[8.5, 8.5]])
        q_high = np.array([[9.0, 9.0]])
        assert clip_prune_mask(q_low, q_high, coords, is_high)[0]

    @pytest.mark.parametrize("seed", [71, 72, 73])
    def test_never_prunes_a_contributing_leaf(self, seed):
        """End-to-end no-false-negative property on clipped snapshots.

        Every object the linear scan finds must survive batch execution
        over the clipped snapshot — i.e. the pruning kernel never skips a
        subtree that holds a result.
        """
        objects = make_random_objects(320, dims=2, seed=seed)
        tree = build_rtree("hilbert", objects, max_entries=10)
        clipped = ClippedRTree.wrap(tree, method="stairline")
        snapshot = ColumnarIndex.from_tree(clipped)
        rng = random.Random(seed)
        queries = [_grid_rect(rng, 2) for _ in range(40)]
        queries += [
            Rect.from_point((rng.uniform(0, 100), rng.uniform(0, 100))) for _ in range(10)
        ]
        results = range_query_batch(snapshot, queries)
        for query, found in zip(queries, results):
            expected = {obj.oid for obj in brute_force_range(objects, query)}
            assert {obj.oid for obj in found} == expected


class TestIndexingHelpers:
    def test_expand_segments_reference(self):
        rng = random.Random(400)
        for _ in range(50):
            n = rng.randint(0, 12)
            starts = np.array([rng.randint(0, 100) for _ in range(n)], dtype=np.int64)
            counts = np.array([rng.randint(0, 5) for _ in range(n)], dtype=np.int64)
            flat, owners = expand_segments(starts, counts)
            expected_flat, expected_owner = [], []
            for i, (s, c) in enumerate(zip(starts, counts)):
                for j in range(c):
                    expected_flat.append(s + j)
                    expected_owner.append(i)
            assert flat.tolist() == expected_flat
            assert owners.tolist() == expected_owner

    def test_masks_to_bool_reference(self):
        for dims in (1, 2, 3, 4):
            masks = np.arange(1 << dims)
            bools = masks_to_bool(masks, dims)
            for mask in masks:
                for bit in range(dims):
                    assert bools[mask, bit] == bool((mask >> bit) & 1)

    def test_segment_any_reference(self):
        rng = random.Random(500)
        for _ in range(50):
            n_seg = rng.randint(1, 8)
            owners, flags = [], []
            for seg in range(n_seg):
                for _ in range(rng.randint(0, 4)):
                    owners.append(seg)
                    flags.append(rng.random() < 0.3)
            result = segment_any(np.array(flags, dtype=bool), np.array(owners), n_seg)
            expected = [
                any(f for o, f in zip(owners, flags) if o == seg) for seg in range(n_seg)
            ]
            assert result.tolist() == expected

    def test_segment_any_empty(self):
        assert segment_any(np.zeros(0, bool), np.zeros(0, np.int64), 3).tolist() == [
            False,
            False,
            False,
        ]
