"""Shared fixtures and helpers for the test-suite."""

import random

import pytest

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect


def make_random_objects(count, dims=2, seed=0, extent=100.0, max_side=3.0):
    """Deterministic random boxes used across many tests."""
    rng = random.Random(seed)
    objects = []
    for i in range(count):
        low = [rng.uniform(0.0, extent - max_side) for _ in range(dims)]
        high = [lo + rng.uniform(0.01, max_side) for lo in low]
        objects.append(SpatialObject(i, Rect(low, high)))
    return objects


@pytest.fixture
def small_objects_2d():
    """60 small 2d boxes."""
    return make_random_objects(60, dims=2, seed=1)


@pytest.fixture
def small_objects_3d():
    """60 small 3d boxes."""
    return make_random_objects(60, dims=3, seed=2)


@pytest.fixture
def medium_objects_2d():
    """400 small 2d boxes (enough for multi-level trees)."""
    return make_random_objects(400, dims=2, seed=3)


@pytest.fixture
def figure2_objects():
    """Five objects laid out like the paper's Figure 2 running example.

    The layout preserves the relations the paper derives from its figure:
    the oriented skyline for corner ``R^00`` is {o1, o2, o3, o4} with o5
    dominated by o3 and o4, and for corner ``R^11`` the splice of o1's and
    o4's corners is a valid stairline point that clips a large area.
    """
    rects = [
        Rect((0.5, 5.5), (2.0, 7.5)),    # o1: top-left
        Rect((1.0, 3.8), (2.0, 5.0)),    # o2: left
        Rect((3.0, 1.8), (4.5, 2.4)),    # o3: centre-bottom
        Rect((5.5, 1.0), (7.5, 2.5)),    # o4: bottom-right
        Rect((8.0, 2.0), (9.0, 2.45)),   # o5: right
    ]
    return [SpatialObject(i + 1, rect) for i, rect in enumerate(rects)]
