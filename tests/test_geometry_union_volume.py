"""Unit tests for exact union volume and dead-space fraction."""

import pytest

from repro.geometry.rect import Rect
from repro.geometry.union_volume import dead_space_fraction, union_volume


class TestUnionVolume:
    def test_single_rect(self):
        assert union_volume([Rect((0, 0), (2, 3))]) == pytest.approx(6.0)

    def test_disjoint_rects_add_up(self):
        rects = [Rect((0, 0), (1, 1)), Rect((5, 5), (7, 6))]
        assert union_volume(rects) == pytest.approx(1.0 + 2.0)

    def test_overlapping_rects_not_double_counted(self):
        rects = [Rect((0, 0), (2, 2)), Rect((1, 1), (3, 3))]
        assert union_volume(rects) == pytest.approx(4.0 + 4.0 - 1.0)

    def test_nested_rects(self):
        rects = [Rect((0, 0), (10, 10)), Rect((2, 2), (3, 3))]
        assert union_volume(rects) == pytest.approx(100.0)

    def test_empty_input(self):
        assert union_volume([]) == 0.0

    def test_degenerate_rects_contribute_nothing(self):
        rects = [Rect.from_point((1.0, 1.0)), Rect((0, 0), (0, 5))]
        assert union_volume(rects) == 0.0

    def test_three_dimensional(self):
        rects = [Rect((0, 0, 0), (1, 1, 1)), Rect((0.5, 0, 0), (1.5, 1, 1))]
        assert union_volume(rects) == pytest.approx(1.5)

    def test_clipping_to_within(self):
        rects = [Rect((0, 0), (10, 10))]
        window = Rect((5, 5), (20, 20))
        assert union_volume(rects, within=window) == pytest.approx(25.0)

    def test_within_disjoint(self):
        rects = [Rect((0, 0), (1, 1))]
        window = Rect((5, 5), (6, 6))
        assert union_volume(rects, within=window) == 0.0

    def test_many_random_rects_bounded_by_mbb(self):
        import random

        rng = random.Random(0)
        rects = []
        for _ in range(30):
            low = [rng.uniform(0, 10), rng.uniform(0, 10)]
            high = [lo + rng.uniform(0.1, 3) for lo in low]
            rects.append(Rect(low, high))
        total = union_volume(rects)
        assert 0.0 < total <= sum(r.volume() for r in rects) + 1e-9


class TestDeadSpaceFraction:
    def test_full_coverage(self):
        bounding = Rect((0, 0), (2, 2))
        assert dead_space_fraction(bounding, [bounding]) == 0.0

    def test_half_coverage(self):
        bounding = Rect((0, 0), (2, 2))
        child = Rect((0, 0), (1, 2))
        assert dead_space_fraction(bounding, [child]) == pytest.approx(0.5)

    def test_no_children(self):
        bounding = Rect((0, 0), (2, 2))
        assert dead_space_fraction(bounding, []) == 1.0

    def test_zero_volume_bounding_is_all_dead(self):
        bounding = Rect((0, 0), (0, 5))
        assert dead_space_fraction(bounding, [Rect((0, 1), (0, 2))]) == 1.0

    def test_point_children(self):
        bounding = Rect((0, 0), (1, 1))
        children = [Rect.from_point((0.5, 0.5)), Rect.from_point((0.2, 0.8))]
        assert dead_space_fraction(bounding, children) == 1.0

    def test_result_clamped_to_unit_interval(self):
        bounding = Rect((0, 0), (1, 1))
        children = [Rect((-5, -5), (5, 5))]
        assert dead_space_fraction(bounding, children) == 0.0
