"""Variant-specific split / choose-subtree behaviour."""

import pytest

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect, mbb_of_rects
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.quadratic import QuadraticRTree
from repro.rtree.rrstar import RRStarTree
from repro.rtree.rstar import RStarTree
from tests.conftest import make_random_objects


def _leaf_node(rects, node_id=0):
    node = Node(node_id, level=0)
    node.entries = [Entry(r, SpatialObject(i, r)) for i, r in enumerate(rects)]
    return node


class TestQuadraticSplit:
    def test_pick_seeds_maximises_waste(self):
        rects = [Rect((0, 0), (1, 1)), Rect((10, 10), (11, 11)), Rect((0.5, 0.5), (1.5, 1.5))]
        entries = [Entry(r, i) for i, r in enumerate(rects)]
        seeds = QuadraticRTree._pick_seeds(entries)
        assert set(seeds) == {0, 1} or set(seeds) == {1, 2}
        assert 1 in seeds  # the far-away rectangle is always a seed

    def test_split_respects_min_fill(self):
        tree = QuadraticRTree(dims=2, max_entries=6, min_entries=3)
        rects = [Rect((i, 0), (i + 0.5, 1)) for i in range(7)]
        node = _leaf_node(rects)
        group1, group2 = tree._split(node)
        assert len(group1) >= 3 and len(group2) >= 3
        assert len(group1) + len(group2) == 7

    def test_split_separates_two_clusters(self):
        tree = QuadraticRTree(dims=2, max_entries=4, min_entries=2)
        cluster_a = [Rect((i * 0.1, 0), (i * 0.1 + 0.05, 0.1)) for i in range(3)]
        cluster_b = [Rect((100 + i * 0.1, 0), (100 + i * 0.1 + 0.05, 0.1)) for i in range(2)]
        node = _leaf_node(cluster_a + cluster_b)
        group1, group2 = tree._split(node)
        mbb1 = mbb_of_rects([e.rect for e in group1])
        mbb2 = mbb_of_rects([e.rect for e in group2])
        assert mbb1.intersection_volume(mbb2) == 0.0

    def test_choose_subtree_prefers_containing_child(self):
        tree = QuadraticRTree(dims=2, max_entries=4)
        parent = Node(0, level=1)
        parent.entries = [
            Entry(Rect((0, 0), (10, 10)), 1),
            Entry(Rect((20, 20), (30, 30)), 2),
        ]
        assert tree._choose_subtree(parent, Rect((1, 1), (2, 2))) == 0
        assert tree._choose_subtree(parent, Rect((25, 25), (26, 26))) == 1


class TestRStarSplit:
    def test_split_minimises_overlap(self):
        tree = RStarTree(dims=2, max_entries=4, min_entries=2)
        rects = [
            Rect((0, 0), (1, 1)),
            Rect((1.2, 0), (2.2, 1)),
            Rect((10, 0), (11, 1)),
            Rect((11.2, 0), (12.2, 1)),
            Rect((0.5, 0.2), (1.4, 0.8)),
        ]
        node = _leaf_node(rects)
        group1, group2 = tree._split(node)
        mbb1 = mbb_of_rects([e.rect for e in group1])
        mbb2 = mbb_of_rects([e.rect for e in group2])
        assert mbb1.intersection_volume(mbb2) == pytest.approx(0.0)

    def test_forced_reinsert_happens_once_per_level(self):
        tree = RStarTree(dims=2, max_entries=6, min_entries=2)
        objects = make_random_objects(120, seed=2)
        reinserted = 0
        for obj in objects:
            result = tree.insert(obj)
            reinserted += result.reinserted_entries
        assert reinserted > 0, "forced reinsertion should trigger at this scale"
        tree.check_invariants()

    def test_choose_subtree_level1_minimises_overlap_enlargement(self):
        tree = RStarTree(dims=2, max_entries=4)
        parent = Node(0, level=1)
        # Child 0 would overlap child 1 heavily if enlarged; child 2 is free.
        parent.entries = [
            Entry(Rect((0, 0), (4, 4)), 1),
            Entry(Rect((3, 0), (7, 4)), 2),
            Entry(Rect((20, 0), (24, 4)), 3),
        ]
        choice = tree._choose_subtree(parent, Rect((21, 1), (22, 2)))
        assert choice == 2


class TestRRStarBehaviour:
    def test_covering_child_preferred(self):
        tree = RRStarTree(dims=2, max_entries=4)
        parent = Node(0, level=1)
        parent.entries = [
            Entry(Rect((0, 0), (10, 10)), 1),
            Entry(Rect((2, 2), (5, 5)), 2),
        ]
        # Both children cover the rect; the smaller one must win.
        assert tree._choose_subtree(parent, Rect((3, 3), (4, 4))) == 1

    def test_no_reinsertion(self):
        tree = RRStarTree(dims=2, max_entries=6, min_entries=2)
        objects = make_random_objects(100, seed=3)
        total_reinserted = 0
        for obj in objects:
            total_reinserted += tree.insert(obj).reinserted_entries
        assert total_reinserted == 0
        tree.check_invariants()

    def test_rrstar_query_io_not_worse_than_quadratic(self):
        """The RR*-tree's packing should be at least as good as Guttman's."""
        from repro.query.range_query import execute_workload
        from repro.query.workload import RangeQueryWorkload

        objects = make_random_objects(500, seed=4)
        quadratic = QuadraticRTree(dims=2, max_entries=10)
        revised = RRStarTree(dims=2, max_entries=10)
        for obj in objects:
            quadratic.insert(obj)
            revised.insert(obj)
        workload = RangeQueryWorkload.from_objects(objects, target_results=10, seed=1)
        queries = workload.query_list(40)
        io_quadratic = execute_workload(quadratic, queries).avg_leaf_accesses
        io_revised = execute_workload(revised, queries).avg_leaf_accesses
        assert io_revised <= io_quadratic * 1.25
