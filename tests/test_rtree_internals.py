"""Tests for node/entry internals and the base-tree plumbing."""

import pytest

from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.rtree.base import InsertResult, RTreeBase
from repro.rtree.entry import Entry
from repro.rtree.node import Node
from repro.rtree.quadratic import QuadraticRTree
from tests.conftest import make_random_objects


class TestEntryAndNode:
    def test_entry_kinds(self):
        rect = Rect((0, 0), (1, 1))
        node_entry = Entry(rect, 7)
        object_entry = Entry(rect, SpatialObject(3, rect))
        assert node_entry.is_node_pointer
        assert not object_entry.is_node_pointer

    def test_node_mbb_and_child_rects(self):
        node = Node(0, level=0)
        rects = [Rect((0, 0), (1, 1)), Rect((2, 2), (4, 3))]
        node.entries = [Entry(r, SpatialObject(i, r)) for i, r in enumerate(rects)]
        assert node.mbb() == Rect((0, 0), (4, 3))
        assert node.child_rects() == rects
        assert len(node) == 2

    def test_empty_node_mbb_raises(self):
        with pytest.raises(ValueError):
            Node(0, level=0).mbb()

    def test_find_child_entry(self):
        node = Node(0, level=1)
        node.entries = [Entry(Rect((0, 0), (1, 1)), 5), Entry(Rect((2, 2), (3, 3)), 9)]
        assert node.find_child_entry(9).child == 9
        assert node.find_child_entry(77) is None

    def test_is_leaf_and_repr(self):
        leaf, directory = Node(1, level=0), Node(2, level=2)
        assert leaf.is_leaf and not directory.is_leaf
        assert "leaf" in repr(leaf)
        assert "level=2" in repr(directory)

    def test_insert_result_record_added(self):
        result = InsertResult()
        rect = Rect((0, 0), (1, 1))
        result.record_added(4, rect)
        result.record_added(4, rect)
        assert result.added_rects == {4: [rect, rect]}


class TestBaseTreePlumbing:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            QuadraticRTree(dims=0)
        with pytest.raises(ValueError):
            QuadraticRTree(dims=2, max_entries=1)

    def test_min_entries_defaults_to_40_percent(self):
        tree = QuadraticRTree(dims=2, max_entries=10)
        assert tree.min_entries == 4
        custom = QuadraticRTree(dims=2, max_entries=10, min_entries=3)
        assert custom.min_entries == 3

    def test_oversized_min_entries_is_corrected(self):
        tree = QuadraticRTree(dims=2, max_entries=10, min_entries=9)
        assert tree.min_entries <= tree.max_entries // 2

    def test_empty_tree_queries(self):
        tree = QuadraticRTree(dims=2, max_entries=4)
        assert len(tree) == 0
        assert tree.range_query(Rect((0, 0), (10, 10))) == []
        assert tree.height == 1
        tree.check_invariants()

    def test_root_grows_and_shrinks(self):
        tree = QuadraticRTree(dims=2, max_entries=4, min_entries=2)
        objects = make_random_objects(40, seed=51)
        for obj in objects:
            tree.insert(obj)
        assert tree.height >= 2
        for obj in objects:
            tree.delete(obj)
        assert len(tree) == 0
        assert tree.height == 1
        tree.check_invariants()

    def test_base_hooks_are_abstract(self):
        tree = RTreeBase(dims=2, max_entries=4)
        node = Node(99, level=1)
        with pytest.raises(NotImplementedError):
            tree._choose_subtree(node, Rect((0, 0), (1, 1)))
        with pytest.raises(NotImplementedError):
            tree._split(node)

    def test_check_invariants_detects_stale_parent_rect(self):
        tree = QuadraticRTree(dims=2, max_entries=4, min_entries=2)
        for obj in make_random_objects(30, seed=52):
            tree.insert(obj)
        root = tree.root
        assert not root.is_leaf
        # Corrupt one parent rectangle on purpose.
        root.entries[0].rect = Rect((-1000, -1000), (-999, -999))
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_check_invariants_detects_wrong_size(self):
        tree = QuadraticRTree(dims=2, max_entries=4, min_entries=2)
        for obj in make_random_objects(10, seed=53):
            tree.insert(obj)
        tree._size = 99
        with pytest.raises(AssertionError):
            tree.check_invariants()

    def test_pack_level_respects_min_fill(self):
        tree = QuadraticRTree(dims=2, max_entries=4, min_entries=2)
        del tree._nodes[tree.root_id]
        leaves = []
        objects = make_random_objects(33, seed=54)
        for start in range(0, 33, 3):
            leaf = tree._new_node(level=0)
            leaf.entries = [Entry(o.rect, o) for o in objects[start : start + 3]]
            leaves.append(leaf)
        root = tree._pack_level(leaves, level=0)
        tree._adopt_structure(root.node_id, len(objects))
        for node in tree.internal_nodes():
            if node.node_id != tree.root_id:
                assert len(node.entries) >= tree.min_entries

    def test_objects_iterator_matches_size(self):
        tree = QuadraticRTree(dims=2, max_entries=4, min_entries=2)
        objects = make_random_objects(25, seed=55)
        for obj in objects:
            tree.insert(obj)
        assert sorted(o.oid for o in tree.objects()) == sorted(o.oid for o in objects)

    def test_has_node_and_node_lookup(self):
        tree = QuadraticRTree(dims=2, max_entries=4)
        assert tree.has_node(tree.root_id)
        assert not tree.has_node(12345)
        assert tree.node(tree.root_id) is tree.root
