"""Tests for the archived-experiment harness.

Covers the four layers the harness introduced: the registry contract,
the runner's archive folders, the compare gate's regression semantics,
and the shared table/record serializers — plus the dataset cache that
keeps back-to-back runs from regenerating identical datasets.
"""

import json

import pytest

from repro.bench.archive import (
    ArchiveError,
    Floor,
    check_floors,
    classify_metric,
    compare_metrics,
    list_runs,
    load_run,
    resolve_run,
    write_legacy_bench,
    write_run,
)
from repro.bench.config import BenchConfig, ParameterError
from repro.bench.harness import DatasetCache, ExperimentContext
from repro.bench.registry import derive_metrics, experiment_ids, get_experiment
from repro.bench.reporting import display_width, format_table, to_markdown
from repro.bench.runner import (
    compare_experiment,
    parse_set_overrides,
    run_experiment,
)
from repro.cli import main


# ----------------------------------------------------------------------
# reporting: None cells, display widths, markdown
# ----------------------------------------------------------------------


def test_format_table_renders_none_cells_as_dash():
    text = format_table([{"a": 1, "b": None}, {"a": None, "b": 2.5}])
    lines = text.splitlines()
    assert [cell.strip() for cell in lines[0].split(" | ")] == ["a", "b"]
    assert "-" in lines[2]
    assert "2.50" in lines[3]


def test_format_table_handles_missing_keys():
    text = format_table([{"a": 1, "b": 2}, {"a": 3}])
    assert text.splitlines()[-1].rstrip() == "3 | -"


def test_format_table_empty_rows():
    assert format_table([]) == "(no rows)"
    assert format_table([], title="t") == "t\n(no rows)"


def test_display_width_wide_and_combining_characters():
    assert display_width("abc") == 3
    assert display_width("数据") == 4  # east-asian wide: 2 columns each
    assert display_width("é") == 1  # combining acute adds no width


def test_format_table_aligns_wide_characters():
    text = format_table([{"name": "数据", "v": 1}, {"name": "ab", "v": 2}])
    header, _, row1, row2 = text.splitlines()
    # Every row must end at the same terminal column.
    assert display_width(row1) == display_width(row2) == display_width(header)


def test_to_markdown_escapes_pipes_and_adds_heading():
    md = to_markdown([{"a": "x|y"}], title="T")
    assert md.startswith("### T\n")
    assert "x\\|y" in md
    assert to_markdown([], title="T") == "### T\n\n(no rows)"


# ----------------------------------------------------------------------
# archive: round-trip, resolution
# ----------------------------------------------------------------------


def _write_sample_run(root, metrics=None):
    tables = {"t": [{"x": 1, "label": "a"}, {"x": 3, "label": "b"}]}
    return write_run(
        root,
        "sample",
        tables,
        metrics if metrics is not None else derive_metrics(tables),
        {"seed": 7},
        {"note": "test"},
    )


def test_archive_round_trip(tmp_path):
    run = _write_sample_run(tmp_path)
    for name in ("config.json", "meta.json", "result.json", "table.txt", "table.md"):
        assert (run.path / name).is_file()
    loaded = load_run(run.path)
    assert loaded.experiment == "sample"
    assert loaded.run_id == run.run_id
    assert loaded.tables == run.tables
    assert loaded.metrics == run.metrics
    assert loaded.config == {"seed": 7}


def test_resolve_latest_and_list_runs(tmp_path):
    first = _write_sample_run(tmp_path)
    second = _write_sample_run(tmp_path)
    assert list_runs(tmp_path, "sample") == sorted([first.run_id, second.run_id])
    assert resolve_run(tmp_path, "sample").run_id == second.run_id
    assert resolve_run(tmp_path, "sample", first.run_id).run_id == first.run_id


def test_resolve_missing_experiment_raises(tmp_path):
    with pytest.raises(ArchiveError):
        resolve_run(tmp_path, "nope")


def test_derive_metrics_means_and_row_counts():
    metrics = derive_metrics({"t": [{"x": 1, "s": "a"}, {"x": 3, "s": "b"}]})
    assert metrics == {"t.rows": 2.0, "t.x": 2.0}


# ----------------------------------------------------------------------
# compare: self no-op, doctored regression, direction/timing semantics
# ----------------------------------------------------------------------


def test_compare_against_self_is_noop(tmp_path):
    run = _write_sample_run(tmp_path)
    report = compare_metrics(run.metrics, run.metrics)
    assert report.ok
    assert all(delta.delta_pct == 0.0 for delta in report.deltas)


def test_compare_flags_doctored_gated_metric():
    baseline = {"t.leaf_accesses": 10.0}
    report = compare_metrics(baseline, {"t.leaf_accesses": 13.0})  # +30%
    assert not report.ok
    assert report.regressions[0].metric == "t.leaf_accesses"
    # An *improvement* on a lower-is-better metric does not regress.
    assert compare_metrics(baseline, {"t.leaf_accesses": 5.0}).ok


def test_compare_direction_higher_is_better():
    baseline = {"t.io_reduction_pct": 40.0}
    assert not compare_metrics(baseline, {"t.io_reduction_pct": 20.0}).ok
    assert compare_metrics(baseline, {"t.io_reduction_pct": 60.0}).ok


def test_compare_timing_metrics_never_gate_by_default():
    baseline = {"wall_seconds": 1.0, "t.qps": 100.0}
    current = {"wall_seconds": 10.0, "t.qps": 10.0}
    assert compare_metrics(baseline, current).ok
    assert not compare_metrics(baseline, current, include_timing=True).ok


def test_compare_missing_gated_metric_regresses():
    report = compare_metrics({"t.rows": 2.0}, {})
    assert not report.ok


def test_classify_metric():
    assert classify_metric("fig11.relative_pct")[1] is True  # gating
    assert classify_metric("wall_seconds") == ("lower", False)
    assert classify_metric("updates.speedup")[1] is False
    assert classify_metric("t.io_reduction_pct")[0] == "higher"
    assert classify_metric("t.leaf_accesses")[0] == "lower"
    assert classify_metric("t.rows")[0] == "neutral"


# ----------------------------------------------------------------------
# legacy BENCH records + floors
# ----------------------------------------------------------------------


def test_write_legacy_bench_is_byte_compatible(tmp_path):
    record = {"objects": 100, "speedup": 7.5, "nested": {"a": 1}}
    path = tmp_path / "BENCH_x.json"
    write_legacy_bench(record, path)
    assert path.read_bytes() == (json.dumps(record, indent=2) + "\n").encode()


def test_check_floors_dotted_paths_and_enforcement():
    record = {"speedup": 4.0, "clip": {"speedup": 9.0}}
    assert check_floors(record, [Floor("clip.speedup", 5.0)]) == []
    failures = check_floors(record, [Floor("speedup", 5.0, label="engine speedup")])
    assert failures and "engine speedup" in failures[0]
    # Unenforced floors never fail; missing keys report clearly.
    assert check_floors(record, [Floor("speedup", 5.0, enforce=False)]) == []
    assert "missing" in check_floors(record, [Floor("missing", 1.0)])[0]


# ----------------------------------------------------------------------
# config schema + overrides
# ----------------------------------------------------------------------


def test_apply_overrides_unknown_key_lists_alternatives():
    with pytest.raises(ParameterError) as excinfo:
        BenchConfig.tiny().apply_overrides({"bogus": "1"})
    message = str(excinfo.value)
    assert "bogus" in message and "seed" in message


def test_apply_overrides_parses_types():
    config = BenchConfig.tiny().apply_overrides(
        {
            "size": "123",
            "clip_tau": "0.1",
            "clip_k": "none",
            "variants": "rstar, hilbert",
            "workers": "3",
        }
    )
    assert set(config.dataset_sizes.values()) == {123}
    assert config.clip_tau == 0.1
    assert config.clip_k is None
    assert config.variants == ("rstar", "hilbert")
    assert config.workers == 3


def test_apply_overrides_bad_value():
    with pytest.raises(ParameterError):
        BenchConfig.tiny().apply_overrides({"seed": "not-a-number"})


def test_config_dict_round_trip():
    config = BenchConfig.tiny()
    config.apply_overrides({"engine": "columnar", "seed": "11"})
    rebuilt = BenchConfig.from_dict(json.loads(json.dumps(config.as_dict())))
    assert rebuilt == config


def test_parse_set_overrides():
    assert parse_set_overrides(["a=1", "b=x=y"]) == {"a": "1", "b": "x=y"}
    with pytest.raises(ParameterError):
        parse_set_overrides(["novalue"])


# ----------------------------------------------------------------------
# dataset cache
# ----------------------------------------------------------------------


def test_dataset_cache_shared_across_contexts():
    cache = DatasetCache()
    config = BenchConfig.tiny()
    first = ExperimentContext(config, dataset_cache=cache)
    objects = first.objects("par02")
    assert cache.misses == 1 and cache.hits == 0
    # A *different* context with the same cache must hit, not regenerate.
    second = ExperimentContext(BenchConfig.tiny(), dataset_cache=cache)
    assert second.objects("par02") is objects
    assert cache.hits == 1 and cache.misses == 1


def test_dataset_cache_workload_hits():
    cache = DatasetCache()
    context = ExperimentContext(BenchConfig.tiny(), dataset_cache=cache)
    workload = context.workload("par02", 10)
    hits = cache.hits
    assert context.workload("par02", 10) is workload
    assert cache.hits == hits + 1
    # A different target_results is a different calibration: a second
    # workload entry appears (the shared objects lookup itself hits).
    assert context.workload("par02", 20) is not workload
    assert len(cache.workloads) == 2


def test_dataset_cache_keys_include_seed():
    cache = DatasetCache()
    context = ExperimentContext(BenchConfig.tiny(), dataset_cache=cache)
    a = context.objects("par02", seed=1)
    b = context.objects("par02", seed=2)
    assert a is not b


# ----------------------------------------------------------------------
# runner: archived smoke runs + the compare gate
# ----------------------------------------------------------------------


def test_run_experiment_archives_provenance(tmp_path):
    run = run_experiment("fig08", smoke=True, archive_root=tmp_path)
    assert run.experiment == "fig08"
    assert run.meta["smoke"] is True
    assert run.meta["seed"] == run.config["seed"]
    assert "wall_seconds" in run.metrics and "cpu_seconds" in run.metrics
    assert set(run.meta["dataset_cache"]) == {"hits", "misses"}
    assert run.tables["fig08"], "fig08 must produce rows"
    loaded = resolve_run(tmp_path, "fig08")
    assert loaded.metrics == run.metrics


def test_run_experiment_rejects_unknown_override(tmp_path):
    with pytest.raises(ParameterError):
        run_experiment("fig08", {"bogus": "1"}, smoke=True, archive_root=tmp_path)


def test_compare_experiment_reruns_baseline_config(tmp_path):
    run_experiment("fig08", smoke=True, archive_root=tmp_path)
    report, current = compare_experiment("fig08", archive_root=tmp_path)
    assert report.ok, report.render()
    # The re-run was archived as a new run under the same experiment.
    assert len(list_runs(tmp_path, "fig08")) == 2
    assert current.run_id == list_runs(tmp_path, "fig08")[-1]


def test_compare_experiment_detects_doctored_baseline(tmp_path):
    baseline = run_experiment("fig08", smoke=True, archive_root=tmp_path)
    result_file = baseline.path / "result.json"
    doctored = json.loads(result_file.read_text())
    name, value = next(
        (k, v) for k, v in doctored["metrics"].items()
        if classify_metric(k)[1] and v
    )
    doctored["metrics"][name] = value * 2.0  # inject a ≥20% drift
    result_file.write_text(json.dumps(doctored))
    report, _ = compare_experiment("fig08", archive_root=tmp_path)
    assert not report.ok
    assert any(delta.metric == name for delta in report.regressions)


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------


def test_cli_bench_run_and_compare(tmp_path, capsys):
    root = str(tmp_path)
    assert main(["bench", "run", "fig08", "--smoke", "--archive-root", root, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "archived fig08 run" in out
    assert main(["bench", "compare", "fig08", "--archive-root", root]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_bench_run_unknown_experiment(tmp_path, capsys):
    assert main(["bench", "run", "nope", "--archive-root", str(tmp_path)]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_bench_run_unknown_set_key(tmp_path, capsys):
    code = main([
        "bench", "run", "fig08", "--smoke",
        "--archive-root", str(tmp_path), "--set", "bogus=1",
    ])
    assert code == 2
    err = capsys.readouterr().err
    assert "bogus" in err and "settable parameters" in err


def test_cli_bench_compare_missing_baseline(tmp_path, capsys):
    assert main(["bench", "compare", "fig08", "--archive-root", str(tmp_path)]) == 2
    assert "no archived runs" in capsys.readouterr().err


def test_cli_bench_compare_regression_exit_code(tmp_path, capsys):
    root = str(tmp_path)
    baseline = run_experiment("fig08", smoke=True, archive_root=root)
    doctored = json.loads((baseline.path / "result.json").read_text())
    doctored["metrics"]["fig08.rows"] = doctored["metrics"]["fig08.rows"] * 3
    (baseline.path / "result.json").write_text(json.dumps(doctored))
    assert main(["bench", "compare", "fig08", "--archive-root", root]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_bench_archive_listing(tmp_path, capsys):
    root = str(tmp_path)
    run_experiment("fig08", smoke=True, archive_root=root)
    assert main(["bench", "archive", "--archive-root", root]) == 0
    assert "fig08" in capsys.readouterr().out
    assert main(["bench", "archive", "fig08", "--archive-root", root]) == 0
    assert "fig08" in capsys.readouterr().out


# ----------------------------------------------------------------------
# every registered experiment completes in smoke mode
# ----------------------------------------------------------------------


def test_registry_covers_cli_experiments():
    ids = experiment_ids()
    assert {"fig01", "fig11", "joins", "updates", "ablations"} <= set(ids)
    assert {"dims", "mixed", "hotspot"} <= set(ids)
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        assert experiment.description


@pytest.mark.parametrize("experiment_id", experiment_ids())
def test_smoke_run_completes(experiment_id, tmp_path):
    """``repro bench run <exp> --smoke`` finishes and archives rows."""
    run = run_experiment(experiment_id, smoke=True, archive_root=tmp_path)
    assert run.tables, f"{experiment_id} produced no tables"
    assert any(rows for rows in run.tables.values()), (
        f"{experiment_id} produced only empty tables"
    )
    assert run.metrics["wall_seconds"] >= 0.0
