"""Unit tests for the clipped intersection test (Algorithm 2)."""

import pytest

from repro.cbb.clip_point import ClipPoint
from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.intersection import clipped_intersects, insertion_keeps_clips_valid
from repro.geometry.rect import Rect, mbb_of_rects


@pytest.fixture
def clipped_example(figure2_objects):
    rects = [o.rect for o in figure2_objects]
    mbb = mbb_of_rects(rects)
    clips = compute_clip_points(mbb, rects, ClippingConfig(method="stairline", tau=0.0))
    return mbb, rects, clips


class TestClippedIntersects:
    def test_disjoint_query_rejected_by_mbb(self, clipped_example):
        mbb, _, clips = clipped_example
        far = Rect((100, 100), (101, 101))
        assert not clipped_intersects(mbb, clips, far)

    def test_query_over_object_accepted(self, clipped_example):
        mbb, rects, clips = clipped_example
        for rect in rects:
            assert clipped_intersects(mbb, clips, rect.scaled(0.5))

    def test_query_in_clipped_corner_rejected(self, clipped_example):
        mbb, rects, clips = clipped_example
        # The top-right corner of the running example is dead space.
        corner = mbb.corner(0b11)
        query = Rect((corner[0] - 0.5, corner[1] - 0.5), corner)
        assert not any(query.intersects(r) for r in rects)
        assert not clipped_intersects(mbb, clips, query)

    def test_no_clip_points_reduces_to_mbb_test(self):
        mbb = Rect((0, 0), (10, 10))
        assert clipped_intersects(mbb, [], Rect((1, 1), (2, 2)))
        assert not clipped_intersects(mbb, [], Rect((11, 11), (12, 12)))

    def test_never_prunes_query_touching_an_object(self, clipped_example):
        """Exhaustive check on a grid of query boxes: no false negatives."""
        mbb, rects, clips = clipped_example
        import itertools

        xs = [mbb.low[0] + i * (mbb.high[0] - mbb.low[0]) / 12 for i in range(13)]
        ys = [mbb.low[1] + i * (mbb.high[1] - mbb.low[1]) / 12 for i in range(13)]
        for (x1, x2), (y1, y2) in itertools.product(
            itertools.combinations(xs, 2), itertools.combinations(ys, 2)
        ):
            query = Rect((x1, y1), (x2, y2))
            touches_object = any(query.intersects(r) for r in rects)
            if touches_object:
                assert clipped_intersects(mbb, clips, query), query

    def test_prunes_some_dead_space_queries(self, clipped_example):
        mbb, rects, clips = clipped_example
        pruned = 0
        import random

        rng = random.Random(1)
        for _ in range(300):
            cx = rng.uniform(mbb.low[0], mbb.high[0])
            cy = rng.uniform(mbb.low[1], mbb.high[1])
            query = Rect((cx - 0.05, cy - 0.05), (cx + 0.05, cy + 0.05))
            if any(query.intersects(r) for r in rects):
                continue
            if not clipped_intersects(mbb, clips, query):
                pruned += 1
        assert pruned > 0, "clipping should prune at least some dead-space queries"


class TestInsertionValidity:
    def test_insert_outside_clip_regions_is_valid(self, clipped_example):
        mbb, rects, clips = clipped_example
        # A rectangle nested inside an existing object cannot reach into any
        # clipped (dead) region, so every clip point stays valid.
        new_rect = rects[2].scaled(0.5)
        assert insertion_keeps_clips_valid(mbb, clips, new_rect)

    def test_insert_into_clipped_corner_invalidates(self, clipped_example):
        mbb, rects, clips = clipped_example
        corner = mbb.corner(0b11)
        intruder = Rect((corner[0] - 0.4, corner[1] - 0.4), corner)
        assert not insertion_keeps_clips_valid(mbb, clips, intruder)

    def test_paper_figure7_insertion_example(self):
        # Figure 7b: after deleting o3, clip point c' prunes the space o3
        # occupied; re-inserting o3 must be detected as invalidating c'.
        o3 = Rect((3.0, 3.5), (4.5, 5.0))
        others = [
            Rect((1.0, 6.5), (2.5, 8.0)),
            Rect((0.5, 3.0), (1.5, 4.5)),
            Rect((5.5, 1.0), (7.5, 2.5)),
            Rect((8.0, 2.0), (9.0, 3.0)),
        ]
        mbb = mbb_of_rects(others + [o3])
        clips_without_o3 = compute_clip_points(mbb, others, ClippingConfig(method="stairline", tau=0.0))
        assert not insertion_keeps_clips_valid(mbb, clips_without_o3, o3)

    def test_empty_clip_set_always_valid(self):
        mbb = Rect((0, 0), (10, 10))
        assert insertion_keeps_clips_valid(mbb, [], Rect((9, 9), (10, 10)))

    def test_selector_distinguishes_query_and_insert(self):
        # A rectangle that partially overlaps a clipped region invalidates
        # the clip (insert semantics) but is not pruned (query semantics),
        # because only part of it lies in dead space.
        mbb = Rect((0, 0), (10, 10))
        clip = ClipPoint((6.0, 6.0), 0b11, score=16.0)
        straddling = Rect((5.0, 5.0), (7.0, 7.0))
        assert clipped_intersects(mbb, [clip], straddling)
        assert not insertion_keeps_clips_valid(mbb, [clip], straddling)
