"""Unit tests for clip-point construction (Algorithm 1)."""

import pytest

from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.scoring import clip_volume
from repro.geometry.rect import Rect, mbb_of_rects


class TestClippingConfig:
    def test_defaults_match_paper(self):
        config = ClippingConfig()
        assert config.method == "stairline"
        assert config.tau == pytest.approx(0.025)
        assert config.max_clip_points(2) == 8
        assert config.max_clip_points(3) == 16

    def test_explicit_k(self):
        assert ClippingConfig(k=3).max_clip_points(2) == 3

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            ClippingConfig(method="convex-hull")

    def test_invalid_tau_rejected(self):
        with pytest.raises(ValueError):
            ClippingConfig(tau=1.5)
        with pytest.raises(ValueError):
            ClippingConfig(tau=-0.1)

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            ClippingConfig(k=-1)


class TestComputeClipPoints:
    def test_no_children_yields_no_clips(self):
        mbb = Rect((0, 0), (10, 10))
        assert compute_clip_points(mbb, []) == []

    def test_zero_volume_mbb_yields_no_clips(self):
        children = [Rect((0, 1), (0, 2)), Rect((0, 5), (0, 6))]
        mbb = mbb_of_rects(children)
        assert compute_clip_points(mbb, children) == []

    def test_k_zero_yields_no_clips(self, figure2_objects):
        rects = [o.rect for o in figure2_objects]
        mbb = mbb_of_rects(rects)
        assert compute_clip_points(mbb, rects, ClippingConfig(k=0)) == []

    def test_full_coverage_yields_no_clips(self):
        mbb = Rect((0, 0), (4, 4))
        children = [Rect((0, 0), (2, 4)), Rect((2, 0), (4, 4))]
        assert compute_clip_points(mbb, children, ClippingConfig(tau=0.01)) == []

    def test_clip_points_never_overlap_children(self, figure2_objects):
        rects = [o.rect for o in figure2_objects]
        mbb = mbb_of_rects(rects)
        for method in ("skyline", "stairline"):
            clips = compute_clip_points(mbb, rects, ClippingConfig(method=method, tau=0.0))
            assert clips
            for clip in clips:
                region = clip.region(mbb)
                for rect in rects:
                    assert region.intersection_volume(rect) == pytest.approx(0.0, abs=1e-12)

    def test_sorted_by_descending_score(self, figure2_objects):
        rects = [o.rect for o in figure2_objects]
        mbb = mbb_of_rects(rects)
        clips = compute_clip_points(mbb, rects, ClippingConfig(method="stairline", tau=0.0))
        scores = [c.score for c in clips]
        assert scores == sorted(scores, reverse=True)

    def test_respects_k_limit(self, figure2_objects):
        rects = [o.rect for o in figure2_objects]
        mbb = mbb_of_rects(rects)
        clips = compute_clip_points(mbb, rects, ClippingConfig(method="stairline", k=3, tau=0.0))
        assert len(clips) <= 3

    def test_tau_threshold_filters_small_clips(self, figure2_objects):
        rects = [o.rect for o in figure2_objects]
        mbb = mbb_of_rects(rects)
        loose = compute_clip_points(mbb, rects, ClippingConfig(method="skyline", tau=0.0))
        strict = compute_clip_points(mbb, rects, ClippingConfig(method="skyline", tau=0.2))
        assert len(strict) <= len(loose)
        node_volume = mbb.volume()
        for clip in strict:
            assert clip_volume(clip.coord, clip.mask, mbb) > 0.2 * node_volume

    def test_stairline_clips_at_least_as_much_as_skyline(self, figure2_objects):
        from repro.cbb.scoring import clipped_union_volume

        rects = [o.rect for o in figure2_objects]
        mbb = mbb_of_rects(rects)
        sky = compute_clip_points(mbb, rects, ClippingConfig(method="skyline", tau=0.0))
        sta = compute_clip_points(mbb, rects, ClippingConfig(method="stairline", tau=0.0))
        assert clipped_union_volume(sta, mbb) >= clipped_union_volume(sky, mbb) - 1e-9

    def test_point_children_produce_valid_clips(self):
        children = [Rect.from_point((1.0, 1.0)), Rect.from_point((5.0, 9.0)), Rect.from_point((9.0, 3.0))]
        mbb = mbb_of_rects(children)
        clips = compute_clip_points(mbb, children, ClippingConfig(method="stairline", tau=0.0))
        assert clips
        for clip in clips:
            region = clip.region(mbb)
            for child in children:
                assert not (
                    region.low[0] < child.low[0] < region.high[0]
                    and region.low[1] < child.low[1] < region.high[1]
                )

    def test_3d_clipping(self, small_objects_3d):
        rects = [o.rect for o in small_objects_3d[:25]]
        mbb = mbb_of_rects(rects)
        clips = compute_clip_points(mbb, rects, ClippingConfig(method="stairline"))
        assert len(clips) <= 16
        for clip in clips:
            assert clip.dims == 3
            region = clip.region(mbb)
            for rect in rects:
                assert region.intersection_volume(rect) == pytest.approx(0.0, abs=1e-9)
