"""Chaos suite: seeded fault injection against the full serving stack.

Three layers, in increasing integration order:

1. **Self-healing ParallelExecutor** — a seeded plan kills a pool worker
   mid-batch (``os._exit`` inside the submitted task).  The executor
   must detect the broken pool, rebuild it (bounded retries), re-run
   *only* the unfinished shards, and return results — hit lists *and*
   ``IOStats`` — bit-identical to a serial run.  With rebuilds
   exhausted, it must fall back to in-process serial execution instead
   of failing.
2. **Snapshot-load faults** — the plan's installed hook corrupts one
   coordinator-side validation load; the server's retry loop recreates
   the executor and succeeds.
3. **End-to-end chaos serving** — a seeded plan (worker kill + snapshot
   load fault + batch-fault burst + latency spike) under a query-only
   closed loop: every admitted request must complete with the correct
   answer or be explicitly shed/stale-stamped; nothing hangs, nothing
   is silently wrong.
"""

import asyncio

import pytest

from repro.engine import (
    ColumnarIndex,
    ParallelExecutor,
    knn_batch,
    range_query_batch,
)
from repro.engine.delta import SnapshotManager
from repro.geometry.rect import Rect
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.serve.faults import (
    BATCH_FAULT,
    REQUEST_LATENCY,
    SNAPSHOT_LOAD,
    WORKER_KILL,
    FaultPlan,
    FaultSpec,
)
from repro.serve.loadgen import generate_requests, run_closed_loop
from repro.serve.resilience import LogicalClock
from repro.serve.server import CoalescingServer, Request, ServeConfig
from repro.storage.stats import IOStats
from tests.conftest import make_random_objects


@pytest.fixture(scope="module")
def frozen():
    objects = make_random_objects(240, dims=3, seed=11)
    tree = build_rtree("rstar", objects, max_entries=8)
    clipped = ClippedRTree.wrap(tree, method="stairline")
    return objects, ColumnarIndex.from_tree(clipped)


@pytest.fixture(scope="module")
def queries(frozen):
    objects, _ = frozen
    step = max(1, len(objects) // 20)
    result = []
    for obj in objects[::step][:20]:
        low = [c - 2.0 for c in obj.rect.low]
        high = [c + 2.0 for c in obj.rect.high]
        result.append(Rect(low, high))
    return result


def _oid_lists(results):
    return [[obj.oid for obj in batch] for batch in results]


# ----------------------------------------------------------------------
# 1. self-healing ParallelExecutor
# ----------------------------------------------------------------------


def test_worker_kill_recovery_bit_identical(frozen, queries):
    _, snapshot = frozen
    serial_stats = IOStats()
    serial = _oid_lists(range_query_batch(snapshot, queries, stats=serial_stats))

    plan = FaultPlan([FaultSpec(WORKER_KILL, at=2, message="killed mid-batch")])
    stats = IOStats()
    with ParallelExecutor(snapshot, workers=2, fault_plan=plan) as executor:
        results = executor.range_query_batch(queries, stats=stats)
        assert executor.pool_rebuilds >= 1
        assert executor.serial_fallbacks == 0
    assert plan.fired(WORKER_KILL) == 1
    assert _oid_lists(results) == serial
    assert stats == serial_stats


def test_worker_kill_recovery_knn(frozen, queries):
    _, snapshot = frozen
    points = [q.low for q in queries[:8]]
    serial_stats = IOStats()
    serial = [
        [(d, o.oid) for d, o in r]
        for r in knn_batch(snapshot, points, k=4, stats=serial_stats)
    ]
    plan = FaultPlan([FaultSpec(WORKER_KILL, at=1)])
    stats = IOStats()
    with ParallelExecutor(snapshot, workers=2, fault_plan=plan) as executor:
        results = executor.knn_batch(points, k=4, stats=stats)
        assert executor.pool_rebuilds >= 1
    assert [[(d, o.oid) for d, o in r] for r in results] == serial
    assert stats == serial_stats


def test_rebuilds_exhausted_fall_back_to_serial(frozen, queries):
    _, snapshot = frozen
    serial = _oid_lists(range_query_batch(snapshot, queries))
    # every submission is killed: the pool can never make progress
    plan = FaultPlan([FaultSpec(WORKER_KILL, at=1, times=10_000)])
    with ParallelExecutor(
        snapshot, workers=2, fault_plan=plan, pool_rebuild_retries=1
    ) as executor:
        results = executor.range_query_batch(queries)
        assert executor.pool_rebuilds == 1
        assert executor.serial_fallbacks == 1
    assert _oid_lists(results) == serial


def test_partial_batch_survives_kill(frozen, queries):
    """Shards finished before the pool broke keep their results."""
    _, snapshot = frozen
    serial_stats = IOStats()
    serial = _oid_lists(range_query_batch(snapshot, queries, stats=serial_stats))
    # kill a late shard so earlier shards complete first
    plan = FaultPlan([FaultSpec(WORKER_KILL, at=4)])
    stats = IOStats()
    with ParallelExecutor(snapshot, workers=2, fault_plan=plan) as executor:
        results = executor.range_query_batch(queries, stats=stats)
    # re-running only unfinished shards must not double-count I/O
    assert stats == serial_stats
    assert _oid_lists(results) == serial


# ----------------------------------------------------------------------
# 2. snapshot-load faults through the server's executor validation
# ----------------------------------------------------------------------


def test_snapshot_load_fault_retried_by_server(frozen, queries):
    _, snapshot = frozen
    manager = SnapshotManager(snapshot, update_engine="delta")
    expected = _oid_lists(manager.range_query_batch(queries))
    plan = FaultPlan([FaultSpec(SNAPSHOT_LOAD, at=1, message="torn load")])
    config = ServeConfig(workers=2, retry_base_delay=0.001, retry_max_delay=0.002)

    async def main():
        async with CoalescingServer(manager, config, fault_plan=plan) as server:
            futures = [server.submit_nowait(Request.range(q)) for q in queries]
            responses = await asyncio.gather(*futures)
            return responses, server.report()

    responses, report = _run(main())
    assert all(r.ok for r in responses)
    assert _oid_lists([r.value for r in responses]) == expected
    assert report["retries"] >= 1
    assert plan.fired(SNAPSHOT_LOAD) == 1


def _run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# 3. end-to-end chaos serving
# ----------------------------------------------------------------------


def test_end_to_end_chaos_every_request_accounted_for(frozen):
    """The ISSUE's acceptance scenario: worker kill + snapshot-load
    corruption + transient burst + latency spike, under load, with the
    parallel executor engaged (query-only stream keeps the overlay
    empty).  Every admitted request completes correctly or is explicitly
    shed; degraded answers are stale-stamped; recovery counters are
    nonzero.
    """
    objects, snapshot = frozen
    manager = SnapshotManager(snapshot, update_engine="delta")
    plan = FaultPlan(
        [
            FaultSpec(WORKER_KILL, at=1, message="worker killed"),
            FaultSpec(SNAPSHOT_LOAD, at=1, message="snapshot load I/O error"),
            FaultSpec(BATCH_FAULT, at=4, times=3, message="transient burst"),
            FaultSpec(REQUEST_LATENCY, at=2, delay=0.005, message="latency spike"),
        ],
        seed=17,
    )
    config = ServeConfig(
        workers=2,
        admission_rate=200.0,
        admission_burst=32,
        breaker_failure_threshold=3,
        breaker_cooldown=0.3,
        retry_max_attempts=5,
        retry_base_delay=0.001,
        retry_max_delay=0.002,
        default_deadline=60.0,
    )
    requests = generate_requests(
        120, seed=17, dims=3, write_fraction=0.0, knn_fraction=0.25
    )
    clock = LogicalClock()

    async def main():
        async with CoalescingServer(
            manager, config, fault_plan=plan, clock=clock
        ) as server:
            responses = await run_closed_loop(
                server, requests, concurrency=24, pace=0.01, clock=clock
            )
            return responses, server.report()

    responses, report = _run(main())
    assert len(responses) == len(requests)
    assert all(r.status in ("ok", "shed") for r in responses)
    assert report["completed"] == report["admitted"]
    assert report["errors"] == 0

    # recovery machinery engaged: the kill broke a pool, the load fault
    # forced an executor recreation, the burst tripped the breaker
    assert plan.fired(WORKER_KILL) == 1
    assert plan.fired(SNAPSHOT_LOAD) == 1
    assert report["faults_injected"] == plan.total_fired() >= 4
    assert report["retries"] >= 1
    assert report["breaker_opens"] >= 1
    assert report["pool_rebuilds"] >= 1

    # every ok answer is correct: fresh answers equal the live view; the
    # overlay is empty throughout, so stale-stamped degraded answers
    # coincide with it too
    for request, response in zip(requests, responses):
        if not response.ok:
            continue
        if request.kind == "range":
            expected = sorted(o.oid for o in manager.range_query(request.payload))
            assert sorted(o.oid for o in response.value) == expected
        elif request.kind == "knn":
            point, k = request.payload
            expected_knn = [
                (d, o.oid) for d, o in manager.knn_batch([point], k)[0]
            ]
            assert [(d, o.oid) for d, o in response.value] == expected_knn
