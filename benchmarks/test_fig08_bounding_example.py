"""Figure 8: bounding methods on the paper's running example."""

from repro.bench.reporting import format_table
from repro.bench.experiments import fig08_bounding_example


def test_fig08_bounding_example(benchmark):
    rows = benchmark.pedantic(fig08_bounding_example.run, rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Figure 8 — dead space of bounding methods on the running example"))
    by_method = {row["method"]: row for row in rows}

    # Convex shapes improve monotonically with corner count: MBC is the
    # coarsest, the convex hull the tightest convex shape.
    assert by_method["MBC"]["leaf1_dead_pct"] >= by_method["MBB"]["leaf1_dead_pct"]
    assert by_method["MBB"]["leaf1_dead_pct"] >= by_method["4-C"]["leaf1_dead_pct"]
    assert by_method["4-C"]["leaf1_dead_pct"] >= by_method["CH"]["leaf1_dead_pct"] - 1e-9

    # The paper's headline: stairline clipping prunes more dead space than
    # the convex hull while storing fewer points.
    assert by_method["CBBSTA"]["leaf1_dead_pct"] < by_method["CH"]["leaf1_dead_pct"]
    assert by_method["CBBSTA"]["leaf1_points"] <= by_method["CH"]["leaf1_points"]
    # Skyline clipping falls between the raw MBB and the stairline variant.
    assert by_method["CBBSTA"]["leaf1_dead_pct"] <= by_method["CBBSKY"]["leaf1_dead_pct"]
    assert by_method["CBBSKY"]["leaf1_dead_pct"] <= by_method["MBB"]["leaf1_dead_pct"]
