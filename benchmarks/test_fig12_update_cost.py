"""Figure 12: expected number of re-clipped CBBs per insertion."""

from repro.bench.reporting import format_table
from repro.bench.experiments import fig12_update_cost


def test_fig12_update_cost(benchmark, context):
    rows = benchmark.pedantic(fig12_update_cost.run, args=(context,), rounds=1, iterations=1)
    print("\n" + format_table(
        rows,
        columns=["dataset", "variant", "reclips_per_insert", "node_splits", "mbb_changes", "cbb_changes"],
        title="Figure 12 — expected #re-clips per insertion (by cause)",
    ))

    # The §IV-D strategies avoid the worst case of one extra CBB update per
    # insert: the CBB-only component stays well below 1.0.
    assert all(row["cbb_changes"] < 1.0 for row in rows)
    # Causes add up to the total.
    for row in rows:
        total = row["node_splits"] + row["mbb_changes"] + row["cbb_changes"]
        assert abs(total - row["reclips_per_insert"]) < 0.01
    # Among the insertion-built variants the R*-tree suffers the most
    # re-clips on average (forced reinsertion), as observed in the paper.
    # The HR-tree is excluded: it is bulk-loaded at 100% node fill here, so
    # the measured inserts split almost every touched node — an artifact of
    # the loading strategy, not of the Hilbert splitting policy.
    by_variant = {}
    for row in rows:
        by_variant.setdefault(row["variant"], []).append(row["reclips_per_insert"])
    averages = {variant: sum(values) / len(values) for variant, values in by_variant.items()}
    assert averages["R*-tree"] > averages["QR-tree"]
    assert averages["R*-tree"] > averages["RR*-tree"]
