"""Smoke benchmark: scalar vs columnar batch range-query throughput.

Builds an STR-packed tree over a uniform dataset, runs the same
calibrated workload through both engines, asserts the acceptance floor
(batch ≥ 5× scalar queries/second), and records the measurement in
``benchmarks/BENCH_engine.json`` so throughput regressions show up in
review diffs.

The default scale (`REPRO_ENGINE_BENCH_SCALE=1`) uses 25 000 objects and
250 queries to keep the tier-1 suite fast; `REPRO_ENGINE_BENCH_SCALE=4`
reproduces the ISSUE's 100k-object / 1k-query setting.
"""

import os
import time
from pathlib import Path

from repro.bench.archive import Floor
from repro.datasets import generate
from repro.engine import ColumnarIndex
from repro.query.range_query import execute_workload
from repro.query.workload import RangeQueryWorkload
from repro.rtree.registry import build_rtree

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"
#: Acceptance floor from the issue: batch ≥ 5× scalar throughput.
MIN_SPEEDUP = 5.0


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_ENGINE_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_engine_speedup_smoke(bench_recorder):
    scale = _scale()
    n_objects = int(25_000 * scale)
    n_queries = int(250 * scale)

    objects = generate("uniform02", n_objects, seed=7)
    tree = build_rtree("str", objects, max_entries=48)
    workload = RangeQueryWorkload.from_objects(objects, target_results=10, seed=1)
    queries = workload.query_list(n_queries)

    freeze_start = time.perf_counter()
    snapshot = ColumnarIndex.from_tree(tree)
    freeze_seconds = time.perf_counter() - freeze_start

    scalar_result = execute_workload(tree, queries, engine="scalar")
    batch_result = execute_workload(snapshot, queries, engine="columnar")
    # The two engines must agree before their timing is comparable.
    assert batch_result.total_results == scalar_result.total_results
    assert batch_result.stats.leaf_accesses == scalar_result.stats.leaf_accesses
    assert (
        batch_result.stats.contributing_leaf_accesses
        == scalar_result.stats.contributing_leaf_accesses
    )

    scalar_seconds = _best_of(lambda: execute_workload(tree, queries, engine="scalar"))
    batch_seconds = _best_of(
        lambda: execute_workload(snapshot, queries, engine="columnar")
    )
    speedup = scalar_seconds / batch_seconds

    record = {
        "objects": n_objects,
        "queries": n_queries,
        "scale": scale,
        "scalar_seconds": round(scalar_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "freeze_seconds": round(freeze_seconds, 4),
        "scalar_qps": round(n_queries / scalar_seconds, 1),
        "batch_qps": round(n_queries / batch_seconds, 1),
        "speedup": round(speedup, 2),
        "avg_results_per_query": round(scalar_result.avg_results, 2),
        "leaf_accesses": scalar_result.stats.leaf_accesses,
    }
    bench_recorder(
        BENCH_PATH,
        record,
        floors=[
            Floor("speedup", MIN_SPEEDUP, label="columnar engine speedup over scalar"),
        ],
    )
