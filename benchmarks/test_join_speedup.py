"""Smoke benchmark: scalar vs columnar spatial-join throughput.

Builds clipped STR-packed indexes over the §V axon/dendrite workload,
verifies that the columnar joins reproduce the scalar joins exactly
(pair counts and leaf accesses), asserts the acceptance floor (columnar
INLJ and STT each ≥ 3× scalar), and records the measurements in
``benchmarks/BENCH_joins.json`` so join-throughput regressions show up
in review diffs.

The default scale (``REPRO_JOIN_BENCH_SCALE=1``) uses 6 000 objects per
side to keep the tier-1 suite fast; raise it to stress
production-scale joins.
"""

import os
import time
from pathlib import Path

from repro.bench.archive import Floor
from repro.datasets.neurites import NeuriteGenerator
from repro.engine import ColumnarIndex, inlj_batch, stt_batch
from repro.join.inlj import index_nested_loop_join
from repro.join.stt import synchronized_tree_traversal_join
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_joins.json"
#: Acceptance floor from the issue: each columnar join ≥ 3× its scalar twin.
MIN_SPEEDUP = 3.0
MAX_ENTRIES = 32


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_JOIN_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


def _best_of(fn, repeats):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _leaf_profile(result):
    return (
        result.pair_count,
        result.outer_stats.leaf_accesses,
        result.outer_stats.contributing_leaf_accesses,
        result.inner_stats.leaf_accesses,
        result.inner_stats.contributing_leaf_accesses,
    )


def test_join_speedup_smoke(bench_recorder):
    scale = _scale()
    n_objects = int(6_000 * scale)

    extent = 500.0
    axons = NeuriteGenerator(kind="axon", extent=extent).generate(n_objects, seed=7)
    dendrites = NeuriteGenerator(kind="dendrite", extent=extent).generate(
        n_objects, seed=8
    )
    axon_index = ClippedRTree.wrap(
        build_rtree("str", axons, max_entries=MAX_ENTRIES),
        method="stairline",
        engine="vectorized",
    )
    dendrite_index = ClippedRTree.wrap(
        build_rtree("str", dendrites, max_entries=MAX_ENTRIES),
        method="stairline",
        engine="vectorized",
    )

    freeze_start = time.perf_counter()
    axon_snapshot = ColumnarIndex.from_tree(axon_index)
    dendrite_snapshot = ColumnarIndex.from_tree(dendrite_index)
    freeze_seconds = time.perf_counter() - freeze_start

    # The engines must agree before their timing is comparable.
    scalar_inlj = index_nested_loop_join(dendrites, axon_index, collect_pairs=False)
    batch_inlj = inlj_batch(dendrites, axon_snapshot, collect_pairs=False)
    assert _leaf_profile(batch_inlj) == _leaf_profile(scalar_inlj)
    scalar_stt = synchronized_tree_traversal_join(
        axon_index, dendrite_index, collect_pairs=False
    )
    batch_stt = stt_batch(axon_snapshot, dendrite_snapshot, collect_pairs=False)
    assert _leaf_profile(batch_stt) == _leaf_profile(scalar_stt)
    assert scalar_stt.pair_count == scalar_inlj.pair_count > 0

    inlj_scalar_seconds = _best_of(
        lambda: index_nested_loop_join(dendrites, axon_index, collect_pairs=False), 2
    )
    inlj_batch_seconds = _best_of(
        lambda: inlj_batch(dendrites, axon_snapshot, collect_pairs=False), 3
    )
    stt_scalar_seconds = _best_of(
        lambda: synchronized_tree_traversal_join(
            axon_index, dendrite_index, collect_pairs=False
        ),
        2,
    )
    stt_batch_seconds = _best_of(
        lambda: stt_batch(axon_snapshot, dendrite_snapshot, collect_pairs=False), 3
    )
    inlj_speedup = inlj_scalar_seconds / inlj_batch_seconds
    stt_speedup = stt_scalar_seconds / stt_batch_seconds

    record = {
        "objects_per_side": n_objects,
        "scale": scale,
        "max_entries": MAX_ENTRIES,
        "pairs": scalar_inlj.pair_count,
        "freeze_seconds": round(freeze_seconds, 4),
        "inlj_scalar_seconds": round(inlj_scalar_seconds, 4),
        "inlj_columnar_seconds": round(inlj_batch_seconds, 4),
        "inlj_speedup": round(inlj_speedup, 2),
        "inlj_probes_per_second_columnar": round(n_objects / inlj_batch_seconds, 1),
        "stt_scalar_seconds": round(stt_scalar_seconds, 4),
        "stt_columnar_seconds": round(stt_batch_seconds, 4),
        "stt_speedup": round(stt_speedup, 2),
    }
    bench_recorder(
        BENCH_PATH,
        record,
        floors=[
            Floor("inlj_speedup", MIN_SPEEDUP, label="columnar INLJ speedup over scalar"),
            Floor("stt_speedup", MIN_SPEEDUP, label="columnar STT speedup over scalar"),
        ],
    )
