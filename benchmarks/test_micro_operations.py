"""Micro-benchmarks of the core CBB operations (true pytest-benchmark timings)."""

import random

from repro.cbb.clipping import ClippingConfig, compute_clip_points
from repro.cbb.intersection import clipped_intersects
from repro.geometry.rect import Rect, mbb_of_rects
from repro.skyline.skyline import oriented_skyline


def _random_rects(count, dims, seed):
    rng = random.Random(seed)
    rects = []
    for _ in range(count):
        low = [rng.uniform(0, 100) for _ in range(dims)]
        high = [lo + rng.uniform(0.1, 5.0) for lo in low]
        rects.append(Rect(low, high))
    return rects


def test_bench_oriented_skyline(benchmark):
    rects = _random_rects(64, 2, seed=1)
    corners = [r.corner(0) for r in rects]
    result = benchmark(oriented_skyline, corners, 0)
    assert result


def test_bench_clip_node_skyline(benchmark):
    rects = _random_rects(64, 2, seed=2)
    mbb = mbb_of_rects(rects)
    config = ClippingConfig(method="skyline")
    clips = benchmark(compute_clip_points, mbb, rects, config)
    assert isinstance(clips, list)


def test_bench_clip_node_stairline(benchmark):
    rects = _random_rects(64, 3, seed=3)
    mbb = mbb_of_rects(rects)
    config = ClippingConfig(method="stairline")
    clips = benchmark(compute_clip_points, mbb, rects, config)
    assert isinstance(clips, list)


def test_bench_clipped_intersection_test(benchmark):
    rects = _random_rects(64, 3, seed=4)
    mbb = mbb_of_rects(rects)
    clips = compute_clip_points(mbb, rects, ClippingConfig(method="stairline"))
    query = Rect([1.0, 1.0, 1.0], [4.0, 4.0, 4.0])
    result = benchmark(clipped_intersects, mbb, clips, query)
    assert result in (True, False)
