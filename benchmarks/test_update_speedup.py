"""Smoke benchmark: amortized update cost, delta overlay vs refreeze.

Builds a clipped STR-packed index over ``par02``, then pushes the same
mixed insert/delete stream through two ``SnapshotManager`` engines:
``refreeze`` (every write re-clips synchronously and re-freezes the
snapshot) and ``delta`` (writes buffer in the overlay and fold in through
periodic compactions with dirty-node-only re-clipping).  Before timing,
both engines must serve identical query results — checked against each
other *and* against a brute-force scan of the expected live set — and
the delta engine's post-compaction clip store must equal a fresh
``clip_all`` over its own tree.  The measurements land in
``benchmarks/BENCH_updates.json`` and the amortized delta write must be
at least ``MIN_SPEEDUP``× cheaper than refreeze-per-write.

The default scale (``REPRO_UPDATE_BENCH_SCALE=1``) uses 6 000 base
objects and 300 updates to keep the suite fast; raise it to stress
larger snapshots.
"""

import copy
import os
import random
import time
from pathlib import Path

from repro.bench.archive import Floor
from repro.datasets.registry import dataset_info
from repro.engine.delta import SnapshotManager
from repro.query.range_query import brute_force_range
from repro.query.workload import RangeQueryWorkload
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_updates.json"
#: Acceptance floor from the issue: amortized delta write ≥ 5× cheaper.
MIN_SPEEDUP = 5.0
MAX_ENTRIES = 32
COMPACT_EVERY = 150


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_UPDATE_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


def _build_clipped(objects):
    return ClippedRTree.wrap(
        build_rtree("str", objects, max_entries=MAX_ENTRIES),
        method="stairline",
        engine="vectorized",
    )


def _apply(manager, ops):
    for kind, obj in ops:
        if kind == "insert":
            manager.insert(obj)
        else:
            assert manager.delete(obj)
    manager.compact()


def _timed_apply(clipped, ops, repeats, **manager_kwargs):
    """Best-of-``repeats`` seconds to apply ``ops`` to a fresh manager."""
    times = []
    for _ in range(repeats):
        manager = SnapshotManager(copy.deepcopy(clipped), **manager_kwargs)
        start = time.perf_counter()
        _apply(manager, ops)
        times.append(time.perf_counter() - start)
    return min(times), manager


def _keys(hits):
    return sorted((obj.oid, obj.rect.low, obj.rect.high) for obj in hits)


def test_update_speedup_smoke(bench_recorder):
    scale = _scale()
    n_objects = int(6_000 * scale)
    n_updates = int(300 * scale)

    generator = dataset_info("par02")
    base = generator.generate(n_objects, seed=7)
    fresh = generator.generate(n_updates - n_updates // 2, seed=8)
    rng = random.Random(9)
    victims = rng.sample(base, n_updates // 2)
    ops = [("delete", obj) for obj in victims] + [("insert", obj) for obj in fresh]
    rng.shuffle(ops)

    clipped = _build_clipped(base)
    queries = RangeQueryWorkload.from_objects(
        base, target_results=20, seed=7
    ).query_list(24)

    # The engines must agree — with each other and with brute force over
    # the expected live set — before their timing is comparable.
    refreeze = SnapshotManager(copy.deepcopy(clipped), update_engine="refreeze")
    delta = SnapshotManager(
        copy.deepcopy(clipped), update_engine="delta", compact_every=COMPACT_EVERY
    )
    _apply(refreeze, ops)
    _apply(delta, ops)
    victim_set = set(id(obj) for obj in victims)
    live = [obj for obj in base if id(obj) not in victim_set] + fresh
    for query in queries:
        expected = _keys(brute_force_range(live, query))
        assert _keys(refreeze.range_query(query)) == expected
        assert _keys(delta.range_query(query)) == expected

    # After compaction the delta engine's clip store must match a fresh
    # full clipping pass over its own (mutated) tree.
    source = delta._source
    reference = ClippedRTree(copy.deepcopy(source.tree), source.config)
    reference.clip_all(engine="vectorized")
    assert dict(source.store.items()) == dict(reference.store.items())

    refreeze_seconds, _ = _timed_apply(clipped, ops, 2, update_engine="refreeze")
    delta_seconds, delta_manager = _timed_apply(
        clipped, ops, 3, update_engine="delta", compact_every=COMPACT_EVERY
    )
    speedup = refreeze_seconds / delta_seconds

    record = {
        "objects": n_objects,
        "updates": n_updates,
        "scale": scale,
        "max_entries": MAX_ENTRIES,
        "compact_every": COMPACT_EVERY,
        "refreeze_seconds": round(refreeze_seconds, 4),
        "refreeze_ms_per_update": round(1000 * refreeze_seconds / n_updates, 4),
        "delta_seconds": round(delta_seconds, 4),
        "delta_ms_per_update": round(1000 * delta_seconds / n_updates, 4),
        "speedup": round(speedup, 2),
        "compactions": delta_manager.total_compactions,
        "reclipped_nodes": delta_manager.total_reclipped_nodes,
    }
    bench_recorder(
        BENCH_PATH,
        record,
        floors=[
            Floor(
                "speedup",
                MIN_SPEEDUP,
                label="amortized delta write speedup over refreeze-per-write",
            ),
        ],
    )
