"""Figure 14: index-building time and CBB-computation overhead."""

from repro.bench.reporting import format_table
from repro.bench.experiments import fig14_build_time


def test_fig14_build_time(benchmark, context):
    rows = benchmark.pedantic(fig14_build_time.run, args=(context,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Figure 14 — build time relative to unclipped RR*-tree (%)"))

    for row in rows:
        # The bulk-loaded HR-tree is the fastest to build.
        assert row["hr_tree_pct"] <= 100.0 + 10.0
        # Clipping adds overhead on top of the plain RR*-tree build.
        assert row["csky_rrstar_pct"] >= 100.0 - 15.0
        assert row["csta_rrstar_pct"] >= row["csky_rrstar_pct"] - 15.0
        # The stairline computation is at least as expensive as the skyline one.
        assert row["csta_clip_share_pct"] >= row["csky_clip_share_pct"] - 5.0
