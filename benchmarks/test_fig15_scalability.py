"""Figure 15: query latency on a cold simulated disk at the largest scale."""

from repro.bench.reporting import format_table
from repro.bench.experiments import fig15_scalability


def test_fig15_scalability(benchmark, context):
    rows = benchmark.pedantic(fig15_scalability.run, args=(context,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Figure 15 — avg. simulated query time (ms), cold buffer pool"))

    for row in rows:
        # Clipping reduces (or at worst matches) simulated query latency; a
        # small tolerance absorbs LRU-eviction noise between separate runs.
        assert row["CSTA_ms"] <= row["unclipped_ms"] * 1.05 + 1e-9
        assert row["CSKY_ms"] <= row["unclipped_ms"] * 1.05 + 1e-9

    # The paper's stand-out observation: a stairline-clipped HR-tree becomes
    # competitive with the unclipped RR*-tree.
    for dataset in {row["dataset"] for row in rows}:
        for profile in {row["profile"] for row in rows}:
            hr = next(
                (r for r in rows if r["dataset"] == dataset and r["profile"] == profile and r["variant"] == "HR-tree"),
                None,
            )
            rr = next(
                (r for r in rows if r["dataset"] == dataset and r["profile"] == profile and r["variant"] == "RR*-tree"),
                None,
            )
            if hr is None or rr is None:
                continue
            assert hr["CSTA_ms"] <= rr["unclipped_ms"] * 1.6
