"""Figure 1: overlap, dead space, and I/O optimality of unclipped R-trees."""

from repro.bench.reporting import format_table
from repro.bench.experiments import fig01_motivation


def test_fig1a_overlap(benchmark, context):
    rows = benchmark.pedantic(fig01_motivation.run_overlap, args=(context,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Figure 1a — avg. overlap within a node (%)"))
    # The paper reports 8-30 % overlap: small relative to dead space.
    assert all(0.0 <= row["overlap_pct"] <= 60.0 for row in rows)


def test_fig1b_dead_space(benchmark, context):
    rows = benchmark.pedantic(fig01_motivation.run_dead_space, args=(context,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Figure 1b — avg. dead space per node (%)"))
    # The motivating observation: the large majority of every node is dead space.
    assert all(row["dead_space_pct"] >= 50.0 for row in rows)
    axo = [row["dead_space_pct"] for row in rows if row["dataset"] == "axo03"]
    assert min(axo) >= 85.0, "3d neuroscience nodes should be almost entirely dead space"


def test_fig1c_io_optimality(benchmark, context):
    rows = benchmark.pedantic(
        fig01_motivation.run_io_optimality, args=(context,), rounds=1, iterations=1
    )
    print("\n" + format_table(rows, title="Figure 1c — optimal/actual leaf accesses (%)"))
    # All values are valid percentages and some leaf accesses are wasted on
    # dead space (optimality below 100 %), most visibly on the 3d dataset.
    assert all(0.0 < row["optimal_leaf_access_pct"] <= 100.0 for row in rows)
    axo_avg = sum(r["optimal_leaf_access_pct"] for r in rows if r["dataset"] == "axo03") / 3
    rea_avg = sum(r["optimal_leaf_access_pct"] for r in rows if r["dataset"] == "rea02") / 3
    assert axo_avg <= rea_avg + 2.0, "the 3d dataset should waste at least as many accesses"
    assert axo_avg < 100.0
