"""Benchmark: zero-copy snapshot loads + multi-process sharded execution.

Two claims are measured and recorded in ``benchmarks/BENCH_parallel.json``:

1. **Snapshot loading** — opening a saved snapshot with ``mmap=True``
   must be ≥ 10× faster than rebuilding the same index from its objects
   (``build_columnar_str``, itself the fast array-native bulk load).
   This floor is enforced everywhere: it does not need spare cores.
2. **Sharded execution** — a scaled Figure-15-style range workload
   (≥ 250 000 objects, ≥ 10 000 queries) and the §V 6 000 × 6 000
   neurite joins, each run single-worker vs through a
   :class:`ParallelExecutor` pool at ≥ 4 workers, must speed up ≥ 3×.
   These floors are only *enforced* when the runner actually has ≥ 4
   usable cores (``os.sched_getaffinity``); the measurements are
   recorded either way, with a ``parallel_floors_enforced`` flag saying
   which regime produced the file.

Every parallel run is first checked for exactness against the serial
engine (result counts and ``IOStats``) — a speedup over wrong answers
counts for nothing.  ``REPRO_PARALLEL_BENCH_SCALE`` scales the workload.
"""

import os
import time
from pathlib import Path

import numpy as np

from repro.bench.archive import Floor

from repro.datasets.neurites import NeuriteGenerator
from repro.engine import (
    ColumnarIndex,
    ParallelExecutor,
    build_columnar_str,
    inlj_batch,
    load_snapshot,
    range_query_batch,
    save_snapshot,
    stt_batch,
)
from repro.geometry.objects import SpatialObject
from repro.geometry.rect import Rect
from repro.query.workload import RangeQueryWorkload
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.storage.stats import IOStats

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"
#: Acceptance floors from the issue.
MIN_LOAD_SPEEDUP = 10.0  # mmap cold load vs rebuild-from-objects
MIN_PARALLEL_SPEEDUP = 3.0  # pooled vs single-worker columnar, at 4+ workers
POOL_WORKERS = 4
RANGE_MAX_ENTRIES = 50
JOIN_MAX_ENTRIES = 32


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_PARALLEL_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(fn, repeats):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _uniform_objects(count: int, dims: int = 2, seed: int = 7):
    """Vectorised random-box generation — 250k objects in a few seconds."""
    rng = np.random.default_rng(seed)
    lows = rng.uniform(0.0, 1000.0, (count, dims))
    highs = lows + rng.uniform(0.05, 1.5, (count, dims))
    return [
        SpatialObject(i, Rect(low, high))
        for i, (low, high) in enumerate(zip(lows.tolist(), highs.tolist()))
    ]


def test_parallel_speedup_smoke(tmp_path, bench_recorder):
    scale = _scale()
    cores = _usable_cores()
    enforce_parallel = cores >= POOL_WORKERS
    record = {
        "scale": scale,
        "usable_cores": cores,
        "pool_workers": POOL_WORKERS,
        "parallel_floors_enforced": enforce_parallel,
        "min_parallel_speedup": MIN_PARALLEL_SPEEDUP,
        "min_load_speedup": MIN_LOAD_SPEEDUP,
    }

    # ------------------------------------------------------------------
    # scaled fig15-style range workload: 250k objects, 10k queries
    # ------------------------------------------------------------------
    n_objects = int(250_000 * scale)
    n_queries = int(10_000 * scale)
    objects = _uniform_objects(n_objects)

    rebuild_seconds = _best_of(
        lambda: build_columnar_str(objects, max_entries=RANGE_MAX_ENTRIES), 2
    )
    snapshot = build_columnar_str(objects, max_entries=RANGE_MAX_ENTRIES)
    snapshot_dir = tmp_path / "range-snapshot"
    save_start = time.perf_counter()
    save_snapshot(snapshot, snapshot_dir)
    save_seconds = time.perf_counter() - save_start
    load_seconds = _best_of(lambda: load_snapshot(snapshot_dir, mmap=True), 3)
    load_speedup = rebuild_seconds / load_seconds

    workload = RangeQueryWorkload.from_objects(objects, target_results=10, seed=7)
    queries = workload.query_list(n_queries, seed=7)

    serial_stats = IOStats()
    serial_results = range_query_batch(snapshot, queries, stats=serial_stats)
    serial_range_seconds = _best_of(
        lambda: range_query_batch(snapshot, queries), 2
    )
    with ParallelExecutor(
        snapshot_dir, workers=POOL_WORKERS, task_timeout=600.0
    ) as executor:
        pool_stats = IOStats()
        pool_results = executor.range_query_batch(queries, stats=pool_stats)
        # Exactness first: the pool must reproduce the serial engine.
        assert pool_stats == serial_stats
        assert [[o.oid for o in r] for r in pool_results] == [
            [o.oid for o in r] for r in serial_results
        ]
        pool_range_seconds = _best_of(
            lambda: executor.range_query_batch(queries), 2
        )
    range_speedup = serial_range_seconds / pool_range_seconds

    record.update(
        {
            "range_objects": n_objects,
            "range_queries": n_queries,
            "rebuild_seconds": round(rebuild_seconds, 4),
            "snapshot_save_seconds": round(save_seconds, 4),
            "snapshot_load_seconds": round(load_seconds, 5),
            "load_speedup_vs_rebuild": round(load_speedup, 1),
            "range_serial_seconds": round(serial_range_seconds, 4),
            "range_pool_seconds": round(pool_range_seconds, 4),
            "range_parallel_speedup": round(range_speedup, 2),
            "range_serial_qps": round(n_queries / serial_range_seconds, 1),
            "range_pool_qps": round(n_queries / pool_range_seconds, 1),
        }
    )

    # ------------------------------------------------------------------
    # §V join workload: 6k x 6k stairline-clipped STR neurites
    # ------------------------------------------------------------------
    n_join = int(6_000 * scale)
    extent = 500.0
    axons = NeuriteGenerator(kind="axon", extent=extent).generate(n_join, seed=7)
    dendrites = NeuriteGenerator(kind="dendrite", extent=extent).generate(
        n_join, seed=8
    )
    axon_snapshot = ColumnarIndex.from_tree(
        ClippedRTree.wrap(
            build_rtree("str", axons, max_entries=JOIN_MAX_ENTRIES),
            method="stairline",
            engine="vectorized",
        )
    )
    dendrite_snapshot = ColumnarIndex.from_tree(
        ClippedRTree.wrap(
            build_rtree("str", dendrites, max_entries=JOIN_MAX_ENTRIES),
            method="stairline",
            engine="vectorized",
        )
    )
    axon_dir = tmp_path / "axons"
    dendrite_dir = tmp_path / "dendrites"
    save_snapshot(axon_snapshot, axon_dir)
    save_snapshot(dendrite_snapshot, dendrite_dir)

    serial_inlj = inlj_batch(dendrites, axon_snapshot, collect_pairs=False)
    serial_stt = stt_batch(axon_snapshot, dendrite_snapshot, collect_pairs=False)
    inlj_serial_seconds = _best_of(
        lambda: inlj_batch(dendrites, axon_snapshot, collect_pairs=False), 3
    )
    stt_serial_seconds = _best_of(
        lambda: stt_batch(axon_snapshot, dendrite_snapshot, collect_pairs=False), 3
    )

    with ParallelExecutor(axon_dir, workers=POOL_WORKERS) as executor:
        pool_inlj = executor.inlj_batch(dendrites, collect_pairs=False)
        assert pool_inlj.pair_count == serial_inlj.pair_count
        assert pool_inlj.inner_stats.leaf_accesses == serial_inlj.inner_stats.leaf_accesses
        inlj_pool_seconds = _best_of(
            lambda: executor.inlj_batch(dendrites, collect_pairs=False), 3
        )
        pool_stt = executor.stt_batch(str(dendrite_dir), collect_pairs=False)
        assert pool_stt.pair_count == serial_stt.pair_count
        assert pool_stt.total_leaf_accesses == serial_stt.total_leaf_accesses
        stt_pool_seconds = _best_of(
            lambda: executor.stt_batch(str(dendrite_dir), collect_pairs=False), 3
        )
    inlj_speedup = inlj_serial_seconds / inlj_pool_seconds
    stt_speedup = stt_serial_seconds / stt_pool_seconds

    record.update(
        {
            "join_objects_per_side": n_join,
            "join_pairs": serial_inlj.pair_count,
            "inlj_serial_seconds": round(inlj_serial_seconds, 4),
            "inlj_pool_seconds": round(inlj_pool_seconds, 4),
            "inlj_parallel_speedup": round(inlj_speedup, 2),
            "stt_serial_seconds": round(stt_serial_seconds, 4),
            "stt_pool_seconds": round(stt_pool_seconds, 4),
            "stt_parallel_speedup": round(stt_speedup, 2),
        }
    )
    bench_recorder(
        BENCH_PATH,
        record,
        floors=[
            Floor(
                "load_speedup_vs_rebuild",
                MIN_LOAD_SPEEDUP,
                label="mmap snapshot load speedup vs rebuild-from-objects",
            ),
            Floor(
                "range_parallel_speedup",
                MIN_PARALLEL_SPEEDUP,
                enforce=enforce_parallel,
                label=f"pooled range batch speedup on {cores} cores",
            ),
            Floor(
                "inlj_parallel_speedup",
                MIN_PARALLEL_SPEEDUP,
                enforce=enforce_parallel,
                label=f"pooled INLJ speedup on {cores} cores",
            ),
        ],
    )
