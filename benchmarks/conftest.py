"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper.  Building
the R-trees dominates the cost, so a single session-scoped
:class:`ExperimentContext` caches datasets, trees and clipped trees across
benchmark modules.  Scale everything up or down with the
``REPRO_BENCH_SCALE`` environment variable.
"""

import pytest

from repro.bench import BenchConfig, ExperimentContext
from repro.bench.archive import check_floors, write_legacy_bench


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """One shared experiment context for the whole benchmark session."""
    return ExperimentContext(BenchConfig())


@pytest.fixture
def bench_recorder():
    """Write a legacy ``BENCH_*.json`` record and enforce its floors.

    The five speedup benchmarks used to carry identical copies of the
    write-json-then-assert-floors block; they now delegate to the archive
    serializer (byte-compatible output) and the shared
    :class:`repro.bench.archive.Floor` checker.
    """

    def _record(path, record, floors=()):
        write_legacy_bench(record, path)
        failures = check_floors(record, floors)
        assert not failures, "; ".join(failures) + f"; see {path}"

    return _record


def pytest_addoption(parser):
    parser.addoption(
        "--print-tables",
        action="store_true",
        default=True,
        help="print the reproduced paper tables/figures to stdout",
    )
