"""Shared fixtures for the benchmark suite.

The benchmarks regenerate every table and figure of the paper.  Building
the R-trees dominates the cost, so a single session-scoped
:class:`ExperimentContext` caches datasets, trees and clipped trees across
benchmark modules.  Scale everything up or down with the
``REPRO_BENCH_SCALE`` environment variable.
"""

import pytest

from repro.bench import BenchConfig, ExperimentContext


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """One shared experiment context for the whole benchmark session."""
    return ExperimentContext(BenchConfig())


def pytest_addoption(parser):
    parser.addoption(
        "--print-tables",
        action="store_true",
        default=True,
        help="print the reproduced paper tables/figures to stdout",
    )
