"""Figure 11 and Table I: range-query I/O reduction from clipping."""

from repro.bench.reporting import format_table
from repro.bench.experiments import fig11_range_queries


def test_fig11_and_table1_range_queries(benchmark, context):
    rows = benchmark.pedantic(fig11_range_queries.run, args=(context,), rounds=1, iterations=1)
    print("\n" + format_table(
        rows,
        columns=[
            "dataset", "profile", "variant", "unclipped_leaf_acc",
            "csky_relative_pct", "csta_relative_pct", "avg_results",
        ],
        title="Figure 11 — leaf accesses of clipped trees relative to unclipped (100%)",
    ))
    table = fig11_range_queries.table1(rows)
    print("\n" + format_table(table, title="Table I — avg. % I/O reduction (skyline/stairline)"))

    # Clipping never *increases* I/O: relative leaf accesses stay <= 100 %.
    assert all(row["csta_relative_pct"] <= 100.0 + 1e-6 for row in rows)
    assert all(row["csky_relative_pct"] <= 100.0 + 1e-6 for row in rows)

    # Averaged over everything, stairline clipping yields a real reduction
    # and beats (or matches) skyline clipping — the paper's ~14 % vs ~26 %.
    avg_sta = sum(row["csta_relative_pct"] for row in rows) / len(rows)
    avg_sky = sum(row["csky_relative_pct"] for row in rows) / len(rows)
    assert avg_sta < 97.0, f"stairline clipping should save I/O (got {avg_sta:.1f}%)"
    assert avg_sta <= avg_sky + 1.0

    # Gains are strongest for the most selective profile (QR0), as in the paper.
    def average(profile):
        selected = [r["csta_relative_pct"] for r in rows if r["profile"] == profile]
        return sum(selected) / len(selected)

    assert average("QR0") <= average("QR2") + 5.0
