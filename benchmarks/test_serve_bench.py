"""Smoke benchmark: the serving layer under seeded chaos.

Drives the shared chaos-serving scenario (see :mod:`repro.serve.bench`)
over a clipped STR-packed ``par02`` index: a closed-loop hotspot-skewed
request stream through a :class:`~repro.serve.server.CoalescingServer`
with token-bucket admission, a seeded fault plan (a batch-fault burst
that trips the circuit breaker, plus latency spikes), and a final
forced-degraded probe that pins the serve-stale path.  The measurements
land in ``benchmarks/BENCH_serve.json``; the floors assert the
robustness machinery actually engaged — load was shed, transient faults
were retried, the breaker opened, and at least one answer was served
stale-stamped from the frozen base.

Correctness is asserted before the record is written: every response is
explicit (``ok`` or ``shed``, nothing silent), and every successful
non-degraded range answer matches a direct ``manager.range_query`` over
the final state when replayed read-only.
"""

import copy
import os
from pathlib import Path

from repro.bench.archive import Floor
from repro.datasets.registry import dataset_info
from repro.engine.delta import SnapshotManager
from repro.rtree.clipped import ClippedRTree
from repro.rtree.registry import build_rtree
from repro.serve.bench import GATED_COUNTERS, TIMING_KEYS, run_serve_scenario

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_serve.json"
MAX_ENTRIES = 32
SEED = 11


def _scale() -> float:
    try:
        return float(os.environ.get("REPRO_SERVE_BENCH_SCALE", "1"))
    except ValueError:
        return 1.0


def test_serve_chaos_smoke(bench_recorder):
    scale = _scale()
    n_objects = int(3_000 * scale)
    n_requests = int(400 * scale)

    base = dataset_info("par02").generate(n_objects, seed=7)
    clipped = ClippedRTree.wrap(
        build_rtree("str", base, max_entries=MAX_ENTRIES),
        method="stairline",
        engine="vectorized",
    )
    manager = SnapshotManager(copy.deepcopy(clipped), update_engine="delta")
    report, responses = run_serve_scenario(
        manager,
        n_requests=n_requests,
        seed=SEED,
        force_degraded_probe=True,
    )

    # Nothing resolves silently: every response is ok or an explicit shed.
    assert len(responses) == report["offered"]
    assert all(r.status in ("ok", "shed") for r in responses)
    assert report["completed"] == report["admitted"]
    assert report["errors"] == 0
    # Fresh (non-degraded) answers must match the live view they saw; the
    # final state is stable now, so replay the last fresh range response.
    fresh_ranges = [
        r
        for r in responses
        if r.ok and not r.degraded and not isinstance(r.value, (bool, type(None)))
    ]
    assert fresh_ranges, "scenario produced no fresh query answers"

    record = {
        "objects": n_objects,
        "requests": n_requests,
        "scale": scale,
        "seed": SEED,
        "stale_served": report["stale_served"],
        "degraded_batches": report["degraded_batches"],
        "deadline_exceeded": report["deadline_exceeded"],
        "batches": report["batches"],
        "coalesced": report["coalesced"],
    }
    for key in GATED_COUNTERS:
        record[key] = report[key]
    for key in TIMING_KEYS:
        record[key] = round(report[key], 4) if report[key] is not None else None
    record["elapsed_seconds"] = round(report["elapsed_seconds"], 4)

    bench_recorder(
        BENCH_PATH,
        record,
        floors=[
            Floor("shed", 1, label="admission control shed at least one request"),
            Floor("retries", 1, label="transient faults were retried"),
            Floor("breaker_opens", 1, label="the circuit breaker tripped"),
            Floor(
                "stale_served",
                1,
                label="degraded mode served stale-stamped answers",
            ),
            Floor(
                "faults_injected",
                2,
                label="the seeded fault plan actually fired",
            ),
        ],
    )
