"""Spatial joins (§V): I/O reduction of clipping for INLJ and STT."""

from repro.bench.reporting import format_table
from repro.bench.experiments import joins


def test_spatial_join_io_reduction(benchmark, context):
    rows = benchmark.pedantic(joins.run, args=(context,), rounds=1, iterations=1)
    print("\n" + format_table(rows, title="Spatial joins — leaf accesses with and without clipping"))

    for row in rows:
        # The join must actually produce pairs (the inputs share a volume).
        assert row["pairs"] > 0
        # Clipping never increases the I/O of either strategy.
        assert row["inlj_clipped_leaf_acc"] <= row["inlj_leaf_acc"]
        assert row["stt_clipped_leaf_acc"] <= row["stt_leaf_acc"]
        # STT is the stronger strategy overall (far fewer accesses than INLJ).
        assert row["stt_leaf_acc"] < row["inlj_leaf_acc"]

    # Clipping helps INLJ more than STT on average, as reported (~46 % vs ~18 %).
    avg_inlj = sum(r["inlj_reduction_pct"] for r in rows) / len(rows)
    avg_stt = sum(r["stt_reduction_pct"] for r in rows) / len(rows)
    assert avg_inlj > 0.0
    assert avg_inlj >= avg_stt - 5.0
